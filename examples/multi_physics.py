#!/usr/bin/env python
"""The 2MESH multi-physics experiment at example scale (paper §IV-E).

Runs the coupled L0 (MPI-everywhere) + L1 (MPI+OpenMP) application with
both quiescence mechanisms — QUO_barrier and the sessions-based
MPI_Ibarrier + nanosleep replacement — and prints the Fig-7-style
normalized execution times.  Uses a shrunken P1-like problem so it runs
in seconds; the full-size problems live in ``benchmarks/test_fig7_twomesh.py``.

Run with::

    python examples/multi_physics.py
"""

from repro.apps.twomesh.driver import TwoMeshProblem, run_twomesh
from repro.machine.presets import trinity

PROBLEM = TwoMeshProblem(
    name="P1-mini",
    ranks=64,
    ppn=32,
    couplings=4,
    l0_steps=4,
    l1_steps=2,
    l0_compute=170e-6,
    l1_compute=6.0e-3,
    halo_bytes=8192,
    workers_per_node=2,
)


def main() -> None:
    machine = trinity(PROBLEM.ranks // PROBLEM.ppn)
    baseline = run_twomesh(PROBLEM, use_sessions=False, machine=machine)
    sessions = run_twomesh(PROBLEM, use_sessions=True, machine=machine)
    normalized = sessions / baseline
    print(f"problem {PROBLEM.name}: {PROBLEM.ranks} ranks on "
          f"{PROBLEM.ranks // PROBLEM.ppn} Trinity nodes")
    print(f"  baseline (QUO_barrier):        {baseline * 1e3:8.3f} ms")
    print(f"  sessions (Ibarrier+nanosleep): {sessions * 1e3:8.3f} ms")
    print(f"  normalized execution time:     {normalized:8.4f}")
    assert 1.0 < normalized < 1.06, normalized
    print("sessions quiescence overhead is small, as in the paper's Fig 7 — OK")


if __name__ == "__main__":
    main()

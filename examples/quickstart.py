#!/usr/bin/env python
"""Quickstart: the MPI Sessions flow from Figure 1 of the paper.

Eight simulated ranks each: acquire a session handle, query the runtime
for available process sets, build an MPI group from ``mpi://world``,
create a communicator with MPI_Comm_create_from_group, and compute with
it.  Run with::

    python examples/quickstart.py
"""

from repro.api import SimSpec, run_mpi
from repro.ompi.config import MpiConfig
from repro.ompi.constants import SUM


def main(mpi):
    # Step 1 (Fig 1): MPI_Session_init — local and light-weight.
    session = yield from mpi.session_init()

    # Step 2: query the runtime for available process sets.
    num = yield from session.get_num_psets()
    names = []
    for n in range(num):
        names.append((yield from session.get_nth_pset(n)))
    info = yield from session.get_pset_info("mpi://world")

    # Step 3: MPI_Group_from_session_pset — still local.
    group = yield from session.group_from_pset("mpi://world")

    # Step 4: MPI_Comm_create_from_group — collective over the group.
    comm = yield from mpi.comm_create_from_group(group, "quickstart")

    total = yield from comm.allreduce(comm.rank, op=SUM)
    if comm.rank == 0:
        print(f"process sets visible to the runtime: {names}")
        print(f"mpi://world size reported by the runtime: {info['mpi_size']}")
        print(f"allreduce over ranks 0..{comm.size - 1}: {total}")

    comm.free()
    yield from session.finalize()
    return total


if __name__ == "__main__":
    results = run_mpi(SimSpec(nprocs=8, config=MpiConfig.sessions_prototype()),
                      main)
    expected = sum(range(8))
    assert results == [expected] * 8, results
    print(f"all 8 ranks agreed on {expected} — quickstart OK")

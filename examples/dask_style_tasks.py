#!/usr/bin/env python
"""DASK-style task orchestration over runtime-defined process sets.

Paper §II-A: frameworks like DASK-MPI "orchestrate concurrent execution
of many parallel tasks and thus want to re-initialize new MPI
environments, each tailored to a different task".  Here the launcher
defines one process set per worker pool; each task opens its own
session, builds a communicator over just its pool, runs, and tears its
MPI environment down — concurrently with tasks in other pools, which is
exactly what the thread-safe, isolated MPI_Session_init permits.

Run with::

    python examples/dask_style_tasks.py
"""

from repro.api import SimSpec, run_mpi
from repro.machine.presets import laptop
from repro.ompi.config import MpiConfig
from repro.ompi.constants import MAX, SUM
from repro.simtime.process import Sleep

# Two worker pools defined by the resource manager at launch.
PSETS = {
    "dask://pool-a": [0, 1, 2, 3],
    "dask://pool-b": [4, 5, 6, 7],
}

TASKS = {
    "dask://pool-a": [("sum-squares", SUM), ("max-rank", MAX), ("sum-ranks", SUM)],
    "dask://pool-b": [("max-cube", MAX), ("sum-cubes", SUM)],
}


def run_task(mpi, pool: str, task_no: int, name, op):
    """One task = one short-lived MPI environment over one pool."""
    session = yield from mpi.session_init()
    group = yield from session.group_from_pset(pool)
    comm = yield from mpi.comm_create_from_group(group, f"{pool}/{name}")
    yield Sleep(20e-6)  # task compute
    contribution = (comm.rank + 1) ** (3 if "cube" in name else 2)
    result = yield from comm.allreduce(contribution, op=op)
    comm.free()
    yield from session.finalize()
    return result


def main(mpi):
    # Which pool does this rank belong to?  Ask the runtime.
    probe = yield from mpi.session_init()
    my_pool = None
    for pool in PSETS:
        group = yield from probe.group_from_pset(pool)
        if group.rank_of(mpi.proc) >= 0:
            my_pool = pool
    results = []
    for task_no, (name, op) in enumerate(TASKS[my_pool]):
        value = yield from run_task(mpi, my_pool, task_no, name, op)
        results.append((name, value))
    yield from probe.finalize()
    return (my_pool, results)


if __name__ == "__main__":
    out = run_mpi(
        SimSpec(nprocs=8, machine=laptop(),
                config=MpiConfig.sessions_prototype(),
                psets=dict(PSETS)),
        main,
    )
    pool_a = out[0][1]
    pool_b = out[4][1]
    assert all(o == (out[0][0], pool_a) for o in out[:4])
    assert all(o == (out[4][0], pool_b) for o in out[4:])
    print("pool-a task results:", pool_a)
    print("pool-b task results:", pool_b)
    assert dict(pool_a)["sum-squares"] == 1 + 4 + 9 + 16
    assert dict(pool_b)["sum-cubes"] == 1 + 8 + 27 + 64
    print("two pools ran independent per-task MPI environments — OK")

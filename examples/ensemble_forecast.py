#!/usr/bin/env python
"""Ensemble forecasting with re-initializable MPI (paper §II-A).

The paper motivates Sessions with ECMWF's wish to "initialize and
re-initialize MPI for the Integrated Forecast System": an ensemble of
perturbed forecasts runs as fork-join parallel regions.  With
MPI_Init/MPI_Finalize this is impossible — MPI cannot be initialized
twice.  With Sessions, each ensemble member opens a fresh session,
computes, and finalizes it completely before the next member starts.

Run with::

    python examples/ensemble_forecast.py
"""

import numpy as np

from repro.api import SimSpec, run_mpi
from repro.machine.presets import laptop
from repro.ompi.config import MpiConfig
from repro.ompi.constants import SUM
from repro.simtime.process import Sleep

N_MEMBERS = 4
GRID = 64


def forecast_member(mpi, member: int):
    """One ensemble member: a tiny perturbed 'forecast' on all ranks."""
    session = yield from mpi.session_init()
    group = yield from session.group_from_pset("mpi://world")
    comm = yield from mpi.comm_create_from_group(group, f"ifs-member-{member}")

    rng = np.random.default_rng(1000 + member)  # per-member perturbation
    local = rng.normal(loc=1.0, scale=0.01, size=GRID // comm.size)
    for _step in range(3):
        yield Sleep(50e-6)                       # local physics
        local *= 1.0 + 1e-3 * comm.rank
        total = yield from comm.allreduce(float(local.sum()), op=SUM, nbytes=8)
    mean = total / GRID

    comm.free()
    yield from session.finalize()                # MPI fully torn down...
    return mean


def main(mpi):
    means = []
    for member in range(N_MEMBERS):
        mean = yield from forecast_member(mpi, member)  # ...and up again
        means.append(mean)
    # After the last finalize the library is truly quiescent: the next
    # session_init re-initializes every subsystem from scratch.
    assert mpi.instance_refcount == 0
    return means


if __name__ == "__main__":
    results = run_mpi(
        SimSpec(nprocs=8, machine=laptop(),
                config=MpiConfig.sessions_prototype()),
        main,
    )
    ensemble = results[0]
    assert all(r == ensemble for r in results)
    print("ensemble means (one forecast per re-initialized MPI epoch):")
    for member, mean in enumerate(ensemble):
        print(f"  member {member}: global mean = {mean:.6f}")
    spread = max(ensemble) - min(ensemble)
    print(f"ensemble spread: {spread:.6f} — {N_MEMBERS} full init/finalize cycles OK")

#!/usr/bin/env python
"""Checkpoint/restart across MPI epochs (paper §II-C roll-forward).

Sessions let an application tear MPI down completely and come back:
epoch 1 computes and writes a collective checkpoint through MPI-IO
(the file handle built straight from a group, §III-B6); after full
finalization, epoch 2 re-initializes MPI — here with a *different*
number of active ranks, as after losing a node — reads the checkpoint
back, redistributes the data, and finishes the computation.

Run with::

    python examples/checkpoint_restart.py
"""

import numpy as np

from repro.api import SimSpec, run_mpi
from repro.machine.presets import laptop
from repro.ompi.config import MpiConfig
from repro.ompi.constants import SUM
from repro.ompi.io import File
from repro.simtime.process import Sleep

N_RANKS = 8
EPOCH2_RANKS = 6          # roll forward with fewer resources
VALUES_PER_RANK = 16
CKPT = "/scratch/state.ckpt"


def main(mpi):
    # ---- epoch 1: everyone computes, checkpoints, finalizes ----------
    session = yield from mpi.session_init()
    group = yield from session.group_from_pset("mpi://world")
    fh = yield from File.open_from_group(mpi, group, "ckpt", CKPT)
    comm = yield from mpi.comm_create_from_group(group, "epoch1")

    local = np.arange(VALUES_PER_RANK, dtype=np.float64) + comm.rank * VALUES_PER_RANK
    yield Sleep(100e-6)  # "compute"
    local *= 2.0
    total_epoch1 = yield from comm.allreduce(float(local.sum()), op=SUM, nbytes=8)

    stride = VALUES_PER_RANK * 8
    yield from fh.write_at_all(comm.rank * stride, local.tobytes())
    yield from fh.close()
    comm.free()
    yield from session.finalize()
    assert mpi.instance_refcount == 0  # MPI is completely down

    # ---- epoch 2: restart with fewer ranks ---------------------------
    if mpi.rank_in_job >= EPOCH2_RANKS:
        return ("retired", total_epoch1)

    session = yield from mpi.session_init()
    world = yield from session.group_from_pset("mpi://world")
    survivors = world.incl(list(range(EPOCH2_RANKS)))
    survivors.session = session
    comm = yield from mpi.comm_create_from_group(survivors, "epoch2")
    fh = yield from File.open_from_group(mpi, survivors, "ckpt2", CKPT)

    # Redistribution is "entirely under user control": each survivor
    # reads a larger, re-balanced slice of the checkpoint.
    total_values = N_RANKS * VALUES_PER_RANK
    per = total_values // EPOCH2_RANKS
    extra = total_values % EPOCH2_RANKS
    lo = comm.rank * per + min(comm.rank, extra)
    count = per + (1 if comm.rank < extra else 0)
    raw = yield from fh.read_at_all(lo * 8, count * 8)
    restored = np.frombuffer(raw, dtype=np.float64)

    total_epoch2 = yield from comm.allreduce(float(restored.sum()), op=SUM, nbytes=8)
    yield from fh.close()
    comm.free()
    yield from session.finalize()
    return ("continued", total_epoch1, total_epoch2)


if __name__ == "__main__":
    results = run_mpi(
        SimSpec(nprocs=N_RANKS, machine=laptop(num_nodes=2), ppn=4,
                config=MpiConfig.sessions_prototype()),
        main,
    )
    expected = float(sum(2 * v for v in range(N_RANKS * VALUES_PER_RANK)))
    survivors = [r for r in results if r[0] == "continued"]
    retired = [r for r in results if r[0] == "retired"]
    assert len(survivors) == EPOCH2_RANKS and len(retired) == N_RANKS - EPOCH2_RANKS
    for _tag, t1, t2 in survivors:
        assert t1 == expected, (t1, expected)
        assert t2 == expected, (t2, expected)
    print(f"epoch 1: {N_RANKS} ranks computed checksum {survivors[0][1]:.0f} and checkpointed")
    print(f"epoch 2: {EPOCH2_RANKS} ranks restored the state (checksum {survivors[0][2]:.0f})")
    print("full finalize + restart with fewer ranks preserved the data — OK")

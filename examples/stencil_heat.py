#!/usr/bin/env python
"""2-D heat diffusion on a Cartesian process grid.

A classic MPI mini-app exercising the breadth of the reproduced API in
one place: a session-derived communicator, MPI_Cart_create, persistent
halo-exchange requests restarted every timestep, an allreduce
convergence check, and a window-based gather of the final field.

Run with::

    python examples/stencil_heat.py
"""

import numpy as np

from repro.api import SimSpec, run_mpi
from repro.machine.presets import laptop
from repro.ompi.config import MpiConfig
from repro.ompi.constants import PROC_NULL, SUM
from repro.ompi.persistent import startall
from repro.ompi.persistent import waitall as pwaitall
from repro.ompi.win import Window
from repro.simtime.process import Sleep

GRID = (2, 3)            # process grid
TILE = 8                 # local tile is TILE x TILE
STEPS = 12
ALPHA = 0.1


def main(mpi):
    session = yield from mpi.session_init()
    group = yield from session.group_from_pset("mpi://world")
    base = yield from mpi.comm_create_from_group(group, "heat")
    comm = yield from base.create_cart(dims=GRID, periods=False)
    cart = comm.cart
    y, x = cart.coords(comm.rank)

    # Hot spot in the top-left process's tile.
    field = np.zeros((TILE, TILE))
    if (y, x) == (0, 0):
        field[TILE // 2, TILE // 2] = 100.0

    # Persistent halo plumbing: one send+recv pair per live neighbor.
    neighbor_of = {}
    for dim, disp, name in ((0, -1, "north"), (0, 1, "south"),
                            (1, -1, "west"), (1, 1, "east")):
        _src, dest = cart.shift(comm.rank, dim, disp)
        if dest != PROC_NULL:
            neighbor_of[name] = dest
    psends = {n: comm.send_init(None, r, tag=1, nbytes=TILE * 8)
              for n, r in neighbor_of.items()}
    precvs = {n: comm.recv_init(source=r, tag=1) for n, r in neighbor_of.items()}

    edge = {"north": lambda f: f[0], "south": lambda f: f[-1],
            "west": lambda f: f[:, 0], "east": lambda f: f[:, -1]}

    for _step in range(STEPS):
        for name in neighbor_of:
            psends[name].obj = edge[name](field).copy()
        yield from startall(list(precvs.values()) + list(psends.values()))
        yield Sleep(20e-6)  # interior compute overlaps the exchange
        yield from pwaitall(list(psends.values()) + list(precvs.values()))

        halo = {n: precvs[n].payload for n in neighbor_of}
        padded = np.zeros((TILE + 2, TILE + 2))
        padded[1:-1, 1:-1] = field
        padded[0, 1:-1] = halo.get("north", edge["north"](field))
        padded[-1, 1:-1] = halo.get("south", edge["south"](field))
        padded[1:-1, 0] = halo.get("west", edge["west"](field))
        padded[1:-1, -1] = halo.get("east", edge["east"](field))
        lap = (padded[:-2, 1:-1] + padded[2:, 1:-1] +
               padded[1:-1, :-2] + padded[1:-1, 2:] - 4 * field)
        field = field + ALPHA * lap
        total = yield from comm.allreduce(float(field.sum()), op=SUM, nbytes=8)

    for pr in list(psends.values()) + list(precvs.values()):
        pr.free()

    # Gather every tile's mean into rank 0's window, one-sidedly.
    win = yield from Window.allocate(comm, comm.size)
    yield from win.fence()
    yield from win.put(np.array([field.mean()]), target=0, offset=comm.rank)
    yield from win.fence()
    means = win.memory.copy() if comm.rank == 0 else None
    yield from win.fence()
    win.free()

    comm.free()
    base.free()
    yield from session.finalize()
    return (total, means.tolist() if means is not None else None)


if __name__ == "__main__":
    nprocs = GRID[0] * GRID[1]
    results = run_mpi(
        SimSpec(nprocs=nprocs, machine=laptop(num_nodes=2), ppn=3,
                config=MpiConfig.sessions_prototype()),
        main,
    )
    totals = {round(t, 6) for t, _ in results}
    assert len(totals) == 1, "all ranks agree on the global heat total"
    total = totals.pop()
    means = results[0][1]
    print(f"grid {GRID[0]}x{GRID[1]} of {TILE}x{TILE} tiles, {STEPS} steps")
    print(f"global heat (conserved on the open boundary up to leakage): {total:.4f}")
    print("per-tile means via RMA gather:", [f"{m:.4f}" for m in means])
    assert means[0] == max(means), "heat stays concentrated near the source"
    print("cartesian + persistent-request + RMA stencil — OK")

#!/usr/bin/env python
"""Fault isolation with sessions (paper §II-C).

In classic MPI, connecting a client and a server yields one set of
connected processes: a client failure can cascade into the server.
Sessions permit "isolating resources used for internal coordination of
server processes from resources used to manage client connections" —
a clean separation that "avoids a cascade failure and permits the
server to continue serving other clients".

This example runs 2 server ranks and 4 client ranks.  Each server uses
*two* sessions: an internal one (server-to-server heartbeats) and one
per client connection.  Mid-run, one client is killed; its server sees
the PMIx termination event, drops that connection, and keeps serving
everyone else — its internal session never notices.

Run with::

    python examples/client_server_isolation.py
"""

from repro.api import SimSpec, make_world
from repro.machine.presets import laptop
from repro.ompi.config import MpiConfig
from repro.ompi.constants import SUM
from repro.ompi.group import Group
from repro.pmix.types import PMIX_ERR_PROC_TERMINATED
from repro.simtime.process import Sleep

SERVERS = [0, 1]
CLIENTS = [2, 3, 4, 5]
DOOMED = 3            # this client dies mid-run
ROUNDS = 8
TAG_REQ, TAG_RESP = 10, 11


def server_of(client: int) -> int:
    return SERVERS[client % len(SERVERS)]


def server_program(mpi, log):
    session_internal = yield from mpi.session_init()
    session_clients = yield from mpi.session_init()   # isolated resources

    dead = set()
    mpi.pmix.register_event_handler(
        [PMIX_ERR_PROC_TERMINATED],
        lambda code, src, info: dead.add(src.rank),
    )

    # Internal coordination communicator (server pset).
    grp = yield from session_internal.group_from_pset("svc://servers")
    internal = yield from mpi.comm_create_from_group(grp, "svc-internal")

    # One connection communicator per client, from the client-facing session.
    my_clients = [c for c in CLIENTS if server_of(c) == mpi.rank_in_job]
    conns = {}
    for c in my_clients:
        pair = Group([mpi.job.proc(mpi.rank_in_job), mpi.job.proc(c)])
        pair.session = session_clients
        conns[c] = yield from mpi.comm_create_from_group(pair, f"conn-{c}")

    served = {c: 0 for c in my_clients}
    finished = set()
    while len(finished | dead.intersection(my_clients)) < len(my_clients):
        # Poll each live connection for a request (never block on one
        # client: a dead client must not stall the loop).
        for c, conn in conns.items():
            if c in dead or c in finished:
                continue
            status = conn.iprobe(source=conn.group.rank_of(mpi.job.proc(c)), tag=TAG_REQ)
            if status is None:
                continue
            request = yield from conn.recv(status.source, TAG_REQ)
            if request == "bye":
                finished.add(c)
                continue
            yield from conn.send(request * 2, status.source, TAG_RESP, nbytes=8)
            served[c] += 1
        yield Sleep(20e-6)

    # The internal session was never touched by the client failure:
    # server-to-server coordination still works after the death.
    total = yield from internal.allreduce(1, op=SUM, nbytes=8)
    assert total == len(SERVERS)
    heartbeats = 1

    log.append(("server", mpi.rank_in_job, dict(served), sorted(dead), heartbeats))
    for conn in conns.values():
        conn.free()
    internal.free()
    yield from session_clients.finalize()
    yield from session_internal.finalize()


def client_program(mpi, log, progress):
    session = yield from mpi.session_init()
    me = mpi.rank_in_job
    srv = server_of(me)
    pair = Group([mpi.job.proc(srv), mpi.job.proc(me)])
    pair.session = session
    conn = yield from mpi.comm_create_from_group(pair, f"conn-{me}")
    srv_rank = conn.group.rank_of(mpi.job.proc(srv))

    answers = []
    for i in range(ROUNDS):
        yield from conn.send(me * 100 + i, srv_rank, TAG_REQ, nbytes=8)
        answers.append((yield from conn.recv(srv_rank, TAG_RESP)))
        progress[me] = len(answers)
        yield Sleep(50e-6)
    yield from conn.send("bye", srv_rank, TAG_REQ, nbytes=8)

    log.append(("client", me, answers))
    conn.free()
    yield from session.finalize()


def main() -> None:
    world = make_world(spec=SimSpec(
        nprocs=len(SERVERS) + len(CLIENTS),
        machine=laptop(num_nodes=2),
        ppn=3,
        config=MpiConfig.sessions_prototype(),
        psets={"svc://servers": SERVERS},
    ))
    log = []
    progress = {c: 0 for c in CLIENTS}
    procs = {}
    for rank in SERVERS:
        procs[rank] = world.cluster.spawn(server_program(world.runtimes[rank], log), f"server{rank}")
    for rank in CLIENTS:
        procs[rank] = world.cluster.spawn(
            client_program(world.runtimes[rank], log, progress), f"client{rank}"
        )
    for p in procs.values():
        p.defuse()

    def chaos():
        # Kill the doomed client only once it is past connection setup
        # and mid-conversation (a kill during the collective group
        # construct would stall its partner — a different failure mode).
        while progress[DOOMED] < 2:
            yield Sleep(50e-6)
        world.cluster.fail_process(world.job, DOOMED, procs[DOOMED])

    world.cluster.spawn(chaos(), "chaos")
    world.run()

    for kind, rank, *rest in sorted(log):
        if kind == "server":
            served, dead, heartbeats = rest
            print(f"server {rank}: served={served} observed-dead={dead} heartbeats={heartbeats}")
        else:
            print(f"client {rank}: got {len(rest[0])} responses")

    servers = [entry for entry in log if entry[0] == "server"]
    assert len(servers) == len(SERVERS), "every server survived the client failure"
    doomed_server = next(e for e in servers if e[1] == server_of(DOOMED))
    assert DOOMED in doomed_server[3], "the server learned of the client death"
    surviving = [c for c in CLIENTS if c != DOOMED]
    for e in log:
        if e[0] == "client" and e[1] in surviving:
            assert len(e[2]) == ROUNDS
    print(f"client {DOOMED} died; both servers finished serving everyone else — OK")


if __name__ == "__main__":
    main()

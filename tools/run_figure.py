#!/usr/bin/env python
"""Run one paper figure (or ablation) from the shell.

Usage::

    python tools/run_figure.py --list
    python tools/run_figure.py fig3b
    python tools/run_figure.py fig5c --presync
    python tools/run_figure.py fig7 --full        # includes P3 (1,024 ranks)
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.bench import figures


def discover():
    out = {}
    for name, fn in vars(figures).items():
        if name.startswith(("fig", "table", "ablation_")) and callable(fn):
            out[name] = fn
    return out


def _unknown_msg(name: str, catalog) -> str:
    import difflib

    msg = f"unknown figure {name!r}; try --list"
    close = difflib.get_close_matches(name, catalog, n=3)
    if close:
        msg += " (did you mean: " + ", ".join(close) + "?)"
    return msg


def main(argv=None) -> int:
    catalog = discover()
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("figure", nargs="?", help="entry point name (see --list)")
    parser.add_argument("--list", action="store_true", help="list available figures")
    parser.add_argument("--full", action="store_true", help="paper-scale sweeps")
    parser.add_argument("--presync", action="store_true", help="fig5c: pair pre-sync")
    parser.add_argument("--csv", metavar="FILE", help="also write the series as CSV")
    parser.add_argument("--obs", action="store_true",
                        help="instrument runs: attach critical-path breakdowns "
                             "(figures that support it)")
    parser.add_argument("--json", metavar="FILE",
                        help="write the result (series + obs data) as JSON")
    args = parser.parse_args(argv)

    # Validate the figure name even when --list is passed: listing must
    # not mask a typo'd name with a zero exit status.
    unknown = args.figure is not None and args.figure not in catalog

    if args.list or not args.figure:
        for name in sorted(catalog):
            doc = (inspect.getdoc(catalog[name]) or "").splitlines()
            print(f"  {name:28s} {doc[0] if doc else ''}")
        if unknown:
            print(_unknown_msg(args.figure, catalog), file=sys.stderr)
            return 2
        return 0

    if unknown:
        print(_unknown_msg(args.figure, catalog), file=sys.stderr)
        return 2
    fn = catalog[args.figure]

    kwargs = {}
    params = inspect.signature(fn).parameters
    if "quick" in params:
        kwargs["quick"] = not args.full
    if "presync" in params and args.presync:
        kwargs["presync"] = True
    if args.obs:
        if "obs" not in params:
            print(f"{args.figure} does not support --obs", file=sys.stderr)
            return 2
        kwargs["obs"] = True

    t0 = time.time()
    result = fn(**kwargs)
    print(result.render())
    if result.obs:
        for key, data in result.obs.items():
            print(f"\n-- obs {key}: critical-path attribution "
                  f"(total {data['total'] * 1e3:.3f} ms) --")
            for name, dur in data["by_stage"].items():
                pct = 100.0 * dur / data["total"] if data["total"] else 0.0
                print(f"  {dur * 1e3:>10.3f}ms {pct:5.1f}%  {name}")
    if args.json:
        try:
            with open(args.json, "w") as fh:
                fh.write(result.to_json())
        except OSError as err:
            print(f"cannot write {args.json}: {err}", file=sys.stderr)
            return 1
        print(f"wrote {args.json}")
    if args.csv:
        try:
            with open(args.csv, "w") as fh:
                fh.write(result.to_csv())
        except OSError as err:
            print(f"cannot write {args.csv}: {err}", file=sys.stderr)
            return 1
        print(f"wrote {args.csv}")
    print(f"\n({time.time() - t0:.1f}s wall)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

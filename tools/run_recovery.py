#!/usr/bin/env python
"""Deprecated location: forwards to ``python -m repro recovery``.

The implementation moved to :mod:`repro.cli.recovery`; this shim keeps
existing ``python tools/run_recovery.py ...`` invocations working with
identical flags, output, and exit codes.  See docs/serving.md
("Migrating to python -m repro") for the full mapping.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cli.recovery import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())

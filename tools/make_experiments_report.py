#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md: run every figure and record paper-vs-measured.

Usage::

    python tools/make_experiments_report.py [--full] [-o EXPERIMENTS.md]

``--full`` runs the paper-scale sweeps (adds P3's 1,024-rank run and the
32-node init sweeps; takes several minutes).
"""

from __future__ import annotations

import argparse
import datetime
import io
import sys
import time

from repro.bench import figures

#: (function, kwargs, paper claim, how we judge the shape)
EXPERIMENTS = [
    ("table1", {}, "Cray XC40 (Trinity, 2x16c) and XC30 (Jupiter, 2x14c), Aries",
     lambda r: "machine models encode Table I"),
    ("fig3a", {}, "sessions init costs ~20% over MPI_Init at 1 ppn; dominated by "
     "MPI resource init",
     lambda r: _ratio_note(r, "Sessions", "MPI_Init")),
    ("fig3b", {}, "~20% overhead at 28 ppn; ~30% of sessions-specific time in "
     "session-handle init, remainder in communicator construction",
     lambda r: _ratio_note(r, "Sessions", "MPI_Init")),
    ("fig4", {}, "sessions MPI_Comm_dup clearly slower; overhead accounted for "
     "by PMIx group context-id acquisition",
     lambda r: _ratio_note(r, "Sessions", "MPI_Init")),
    ("fig5a", {}, "small effect on latency, sometimes an improvement",
     lambda r: _range_note(r, "Sessions/MPI_Init latency ratio")),
    ("fig5b", {}, "2 procs: pre-loop barrier completes the CID switch; rates "
     "essentially identical",
     lambda r: _range_note(r, "Sessions/MPI_Init message-rate ratio")),
    ("fig5c", {}, "16 procs: barrier does NOT pre-switch pairs; sessions lags "
     "at small sizes until the ACK switches to local CIDs",
     lambda r: _range_note(r, "Sessions/MPI_Init message-rate ratio")),
    ("fig5c", {"presync": True}, "with MPI_Sendrecv pre-sync the rates are "
     "essentially identical",
     lambda r: _range_note(r, "Sessions/MPI_Init message-rate ratio")),
    ("fig6a", {}, "random-order ring latency practically identical",
     lambda r: _ratio_note(r, "Sessions", "MPI_Init")),
    ("fig6b", {}, "natural-order ring latency practically identical",
     lambda r: _ratio_note(r, "Sessions", "MPI_Init")),
    ("fig7", {}, "2MESH: <= 3% overhead from the Ibarrier+nanosleep quiescence",
     lambda r: _series_note(r, "Sessions/Baseline")),
    ("ablation_dup_policy", {}, "(DESIGN §4.1) subfield derivation amortizes "
     "the PGCID over 255 dups",
     lambda r: _series_note(r, "per-iteration dup time")),
    ("ablation_fragmentation", {}, "(§IV-C2) fragmentation hurts the consensus "
     "algorithm, not the exCID generator",
     lambda r: _series_note(r, "per-iteration dup time")),
    ("ablation_grpcomm", {}, "(§III-A) hierarchical exchange beats flat "
     "all-to-all at scale",
     lambda r: ""),
    ("ablation_handshake", {}, "(§III-B4) the local-CID switch avoids a real "
     "per-message cost",
     lambda r: _series_note(r, "forced-extended / normal message rate")),
    ("ablation_eager_limit", {}, "(model validation) the eager/rendezvous "
     "crossover behaves like a real PML",
     lambda r: ""),
]


def _ratio_note(res, num, den):
    ratios = [f"{x}: {v:.3f}" for x, v in res.ratio(num, den)]
    return f"measured {num}/{den} ratios: " + ", ".join(ratios)


def _range_note(res, label):
    ys = res.series[label].ys()
    return f"measured {label}: min={min(ys):.3f} max={max(ys):.3f}"


def _series_note(res, label):
    pts = [f"{x}: {v:.4g}" for x, v in res.series[label].points]
    return f"measured {label}: " + ", ".join(pts)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--full", action="store_true", help="paper-scale sweeps")
    parser.add_argument("-o", "--output", default="EXPERIMENTS.md")
    args = parser.parse_args(argv)
    quick = not args.full

    out = io.StringIO()
    out.write("# EXPERIMENTS — paper vs. measured\n\n")
    out.write(
        "Regenerated with `python tools/make_experiments_report.py"
        + ("" if quick else " --full")
        + f"` on {datetime.date.today()}.\n\n"
        "All measured times are **simulated seconds** produced by the\n"
        "deterministic middleware simulation (see DESIGN.md §1): absolute\n"
        "values are calibrated to be plausible, and only the *shapes* —\n"
        "who wins, by what factor, where crossovers fall — are claimed to\n"
        "reproduce the paper.  Sweeps here are the "
        + ("quick CI-sized ones; pass --full for paper-scale.\n\n" if quick
           else "full paper-scale ones.\n\n")
    )

    for name, kwargs, claim, judge in EXPERIMENTS:
        fn = getattr(figures, name)
        t0 = time.time()
        try:
            if name.startswith("fig") or name == "table1":
                res = fn(quick=quick, **kwargs) if name != "table1" else fn()
            else:
                res = fn(**kwargs)
        except TypeError:
            res = fn(**kwargs)
        wall = time.time() - t0
        out.write(f"## {res.exp_id}: {res.title}\n\n")
        out.write(f"*Paper:* {claim}\n\n")
        note = judge(res)
        if note:
            out.write(f"*Measured:* {note}\n\n")
        out.write("```\n" + res.render() + "\n```\n")
        out.write(f"\n(_{wall:.1f}s wall_)\n\n")
        print(f"done: {res.exp_id} ({wall:.1f}s)", file=sys.stderr)

    with open(args.output, "w") as fh:
        fh.write(out.getvalue())
    print(f"wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Wall-clock benchmark CLI: fast-path engine vs compat reference.

Usage::

    python tools/bench.py                     # full suite -> BENCH_PR4.json
    python tools/bench.py --quick             # small scales, smoke-sized
    python tools/bench.py --cases fence-storm comm-dup --repeats 5
    python tools/bench.py --jobs 4            # one worker process per case

Each case runs twice — once on the default fast-path scheduler, once on
``Engine(compat=True)`` — and reports events/second plus the speedup.
Cases with an acceptance bar (the scheduler-bound kernels) fail the run
when they miss it.  See docs/performance.md for how to read the output.

``--jobs`` fans cases across worker processes via ``repro.sweep``; use
it for a fast sanity pass, not for publishable numbers — concurrent
cases contend for cores and perturb each other's wall times.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.harness import format_table
from repro.bench.perf import CASES, run_case_point
from repro.sweep import SweepPoint, run_sweep


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="BENCH_PR4.json", metavar="FILE",
                    help="where to write the JSON report (default: %(default)s)")
    ap.add_argument("--quick", action="store_true",
                    help="small scales (CI smoke), still both engines")
    ap.add_argument("--repeats", type=int, default=3,
                    help="best-of-N wall-clock repeats (default: 3)")
    ap.add_argument("--cases", nargs="+", metavar="NAME",
                    choices=[c.name for c in CASES],
                    help="subset of cases (default: all)")
    ap.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="worker processes (timings contend; keep 1 for "
                         "publishable numbers)")
    args = ap.parse_args(argv)

    selected = [c for c in CASES if args.cases is None or c.name in args.cases]
    points = [
        SweepPoint("bench", run_case_point,
                   {"case": c.name, "quick": args.quick,
                    "repeats": args.repeats})
        for c in selected
    ]
    # Deliberately no cache here: a memoized wall time is a stale
    # measurement, not a result.
    records = run_sweep(points, jobs=args.jobs)

    report = {
        "bench": "engine-fast-path",
        "mode": "quick" if args.quick else "full",
        "repeats": args.repeats,
        "python": sys.version.split()[0],
        "cases": {c.name: rec for c, rec in zip(selected, records)},
    }

    rows = []
    failed = []
    for case in selected:
        rec = report["cases"][case.name]
        bar = f">={case.min_speedup:.1f}x" if case.min_speedup else "track"
        # The acceptance bars are a full-scale claim; quick scales are
        # smoke-sized and too noisy to fail a run on.
        ok = (args.quick or case.min_speedup is None
              or rec["speedup"] >= case.min_speedup)
        if not ok:
            failed.append(case.name)
        rows.append([
            case.name,
            f"{rec['events']}",
            f"{rec['fast_eps']:,.0f}",
            f"{rec['compat_eps']:,.0f}",
            f"{rec['speedup']:.2f}x",
            bar,
            "ok" if ok else "FAIL",
        ])
    print(format_table(
        ["case", "events", "fast ev/s", "compat ev/s", "speedup", "bar", ""],
        rows,
    ))

    try:
        with open(args.out, "w") as fh:
            json.dump(report, fh, sort_keys=True, indent=2)
            fh.write("\n")
    except OSError as err:
        print(f"cannot write {args.out}: {err}", file=sys.stderr)
        return 1
    print(f"wrote {args.out}")
    if failed:
        print(f"FAILED speedup bars: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Deprecated location: forwards to ``python -m repro bench``.

The implementation moved to :mod:`repro.cli.bench`; this shim keeps
existing ``python tools/bench.py ...`` invocations working with
identical flags, output, and exit codes.  See docs/serving.md
("Migrating to python -m repro") for the full mapping.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cli.bench import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())

"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON + flame report.

The Chrome format (loadable at ``ui.perfetto.dev`` or
``chrome://tracing``) maps our model as:

* track group (``rank``, ``daemon``, ``events``) -> process (``pid``),
* track -> thread (``tid``), named via ``M`` metadata events,
* span -> ``X`` complete event (``ts``/``dur`` in microseconds),
* instant -> ``i`` event,
* flow edge -> ``s``/``f`` flow-event pair (send -> receive arrows).

Export is byte-deterministic for identical runs: event order is fully
specified, ids come from the tracer's own counters, and
:func:`dumps` serializes with sorted keys and fixed separators.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Tuple

#: Simulated seconds -> trace microseconds.
_US = 1e6


def _natural(track: str) -> Tuple:
    """Sort key that orders numeric fragments numerically, so
    ``rank:job/10`` lands after ``rank:job/2``."""
    return tuple(int(p) if p.isdigit() else p
                 for p in re.split(r"(\d+)", track))


def _track_layout(tracer) -> Tuple[Dict[str, Tuple[int, int]], List[str]]:
    """Deterministic track -> (pid, tid) assignment, grouped by prefix."""
    return _layout_from_tracks(tracer.tracks())


def _layout_from_tracks(
    track_names,
) -> Tuple[Dict[str, Tuple[int, int]], List[str]]:
    tracks = sorted(track_names, key=_natural)
    groups: List[str] = []
    for t in tracks:
        g = t.split(":", 1)[0]
        if g not in groups:
            groups.append(g)
    groups.sort()
    layout: Dict[str, Tuple[int, int]] = {}
    tids: Dict[str, int] = {}
    for t in tracks:
        g = t.split(":", 1)[0]
        tids[g] = tids.get(g, 0) + 1
        layout[t] = (1 + groups.index(g), tids[g])
    return layout, groups


def _args(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """JSON-safe, deterministically ordered args."""
    out: Dict[str, Any] = {}
    for k in sorted(attrs):
        v = attrs[k]
        out[str(k)] = v if isinstance(v, (int, float, bool, str, type(None))) else str(v)
    return out


def chrome_trace(tracer) -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` JSON object from a tracer."""
    layout, groups = _track_layout(tracer)
    t_max = tracer.max_time()
    events: List[Dict[str, Any]] = []

    # Metadata: name the processes (track groups) and threads (tracks).
    for g in groups:
        events.append({"ph": "M", "name": "process_name", "pid": 1 + groups.index(g),
                       "tid": 0, "args": {"name": g}})
    for track in sorted(layout, key=_natural):
        pid, tid = layout[track]
        events.append({"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                       "args": {"name": track}})

    # Spans -> complete events.  Open spans are clamped to the end of
    # the run and flagged, so a hung protocol is visible, not invisible.
    for sid in sorted(tracer.spans):
        span = tracer.spans[sid]
        pid, tid = layout[span.track]
        end = span.end if span.end is not None else t_max
        args = _args(span.attrs)
        if span.end is None:
            args["open"] = True
        events.append({
            "ph": "X", "name": span.name, "cat": span.name.split(".", 1)[0],
            "ts": span.start * _US, "dur": (end - span.start) * _US,
            "pid": pid, "tid": tid, "args": args,
        })

    # Instants.
    for inst in tracer.instants:
        pid, tid = layout[inst.track]
        events.append({
            "ph": "i", "s": "t", "name": inst.name,
            "cat": inst.name.split(".", 1)[0],
            "ts": inst.time * _US, "pid": pid, "tid": tid,
            "args": _args(inst.attrs),
        })

    # Flows: emit the start half always (a dangling 's' marks a dropped
    # or in-flight message); the finish half only when bound.
    for fid in sorted(tracer.flows):
        flow = tracer.flows[fid]
        cat = flow.name.split(".", 1)[0]
        pid, tid = layout[flow.src_track]
        events.append({
            "ph": "s", "id": fid, "name": flow.name, "cat": cat,
            "ts": flow.src_time * _US, "pid": pid, "tid": tid,
        })
        if flow.complete:
            pid, tid = layout[flow.dst_track]
            events.append({
                "ph": "f", "bp": "e", "id": fid, "name": flow.name, "cat": cat,
                "ts": flow.dst_time * _US, "pid": pid, "tid": tid,
            })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs"},
    }


#: Arg keys dropped by :func:`canonical_chrome_trace`: they carry raw
#: tracer span/flow ids, which are allocation-order artifacts (a
#: partitioned run strides its id spaces, see ``repro.dsim``).
CANON_DROP_ARGS = frozenset({"flow", "span"})

_PARTITION_PREFIX = re.compile(r"^p\d+:")


def canonical_chrome_trace(obj: Dict[str, Any]) -> Dict[str, Any]:
    """Partition-invariant normal form of a Chrome trace object.

    A partitioned run (``repro.dsim``) namespaces its tracks ``p{k}:``
    and allocates span/flow ids with a per-partition stride, so its raw
    export differs from the single-process reference in exactly three
    id-shaped ways.  This strips all three — track prefixes (tracks are
    re-laid-out with the standard :func:`_track_layout` algorithm),
    flow ids (renumbered by event content), and the ``flow``/``span``
    arg keys — and re-sorts events by content.  Timestamps, durations,
    names and all remaining args are kept verbatim: two runs of the
    same world are equivalent iff their canonical forms are
    byte-identical under :func:`dumps`.
    """
    events = obj["traceEvents"]
    old_track: Dict[Tuple[int, int], str] = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            old_track[(ev["pid"], ev["tid"])] = ev["args"]["name"]
    stripped = {key: _PARTITION_PREFIX.sub("", t)
                for key, t in old_track.items()}
    layout, groups = _layout_from_tracks(set(stripped.values()))

    out: List[Dict[str, Any]] = []
    for g in groups:
        out.append({"ph": "M", "name": "process_name",
                    "pid": 1 + groups.index(g), "tid": 0, "args": {"name": g}})
    for track in sorted(layout, key=_natural):
        pid, tid = layout[track]
        out.append({"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                    "args": {"name": track}})

    flows: Dict[Any, List[Dict[str, Any]]] = {}
    for ev in events:
        ph = ev.get("ph")
        if ph == "M":
            continue
        ev = dict(ev)
        pid, tid = layout[stripped[(ev["pid"], ev["tid"])]]
        ev["pid"], ev["tid"] = pid, tid
        if "args" in ev:
            ev["args"] = {k: v for k, v in ev["args"].items()
                          if k not in CANON_DROP_ARGS}
        if ph in ("s", "t", "f"):
            flows.setdefault(ev["id"], []).append(ev)
        else:
            out.append(ev)

    def flow_key(evs: List[Dict[str, Any]]) -> str:
        return dumps(sorted(
            ({k: v for k, v in e.items() if k != "id"} for e in evs),
            key=dumps))

    renumbered = sorted(flows.items(), key=lambda kv: (flow_key(kv[1]), kv[0]))
    for new_id, (_old, evs) in enumerate(renumbered, start=1):
        for e in evs:
            e["id"] = new_id
            out.append(e)

    out.sort(key=lambda e: (e["ph"] != "M", dumps(e)))
    return {"traceEvents": out, "displayTimeUnit": "ms",
            "otherData": {"generator": "repro.obs"}}


def dumps(obj: Any) -> str:
    """Deterministic JSON: sorted keys, fixed separators, no whitespace
    drift — two identical runs serialize byte-identically."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def validate_chrome_trace(obj: Any) -> List[str]:
    """Structural validation against the Chrome trace_event schema.
    Returns a list of problems (empty = valid)."""
    errors: List[str] = []
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        return ["top level must be an object with a 'traceEvents' list"]
    events = obj["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in {"X", "B", "E", "i", "I", "M", "s", "t", "f", "C"}:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        for field_name in ("pid", "tid"):
            if not isinstance(ev.get(field_name), int):
                errors.append(f"{where}: missing int {field_name!r}")
        if ph != "M" and not isinstance(ev.get("ts"), (int, float)):
            errors.append(f"{where}: missing numeric 'ts'")
        if ph == "X":
            if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
                errors.append(f"{where}: 'X' event needs non-negative 'dur'")
            if not ev.get("name"):
                errors.append(f"{where}: 'X' event needs a name")
        if ph in ("s", "t", "f") and "id" not in ev:
            errors.append(f"{where}: flow event needs an 'id'")
        if ph == "M" and ev.get("name") not in (
                "process_name", "thread_name", "process_labels",
                "process_sort_index", "thread_sort_index"):
            errors.append(f"{where}: unknown metadata {ev.get('name')!r}")
    return errors


def flame_report(tracer, *, min_frac: float = 0.0) -> str:
    """Plain-text flamegraph-style report: span names aggregated along
    their ancestry path, with inclusive time, self time, and counts."""
    # path (tuple of names root->leaf) -> [inclusive, count]
    agg: Dict[Tuple[str, ...], List[float]] = {}
    child_time: Dict[Tuple[str, ...], float] = {}

    def path_of(span) -> Tuple[str, ...]:
        names: List[str] = []
        s = span
        while s is not None:
            names.append(s.name)
            s = tracer.spans.get(s.parent)
        return tuple(reversed(names))

    for span in tracer.spans.values():
        if span.end is None:
            continue
        p = path_of(span)
        slot = agg.setdefault(p, [0.0, 0])
        slot[0] += span.duration
        slot[1] += 1
        if len(p) > 1:
            child_time[p[:-1]] = child_time.get(p[:-1], 0.0) + span.duration

    if not agg:
        return "(no closed spans)"
    total = sum(v[0] for p, v in agg.items() if len(p) == 1)
    kids: Dict[Tuple[str, ...], List[Tuple[str, ...]]] = {}
    for p in agg:
        kids.setdefault(p[:-1], []).append(p)
    lines = [f"{'inclusive':>12} {'self':>12} {'count':>6}  span"]

    def walk(p: Tuple[str, ...]) -> None:
        incl, count = agg[p]
        if total and incl / total < min_frac and len(p) > 1:
            return
        self_t = incl - child_time.get(p, 0.0)
        indent = "  " * (len(p) - 1)
        lines.append(f"{incl * 1e3:>10.3f}ms {self_t * 1e3:>10.3f}ms {count:>6}  "
                     f"{indent}{p[-1]}")
        for child in sorted(kids.get(p, ()), key=lambda c: (-agg[c][0], c[-1])):
            walk(child)

    for root in sorted(kids.get((), ()), key=lambda c: (-agg[c][0], c[-1])):
        walk(root)
    return "\n".join(lines)

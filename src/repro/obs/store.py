"""Persistent run ledger: an append-only sqlite store of every run.

The ROADMAP's campaign-manager item calls for "a persistent results
database (sqlite) that indexes every run by spec digest, scenario,
seed, and metrics"; :class:`RunLedger` is that substrate.  Three
producers write to it:

* :class:`repro.serve.server.SimServer` — one row per completed
  request (``kind="serve"``), carrying the request's cache-key digest,
  wall-clock latency, cache status, trace id and sim-trace pointer;
* :func:`repro.sweep.run_sweep` — one row per evaluated point
  (``kind="sweep"``);
* ``tools/bench.py`` — one row per bench case (``kind="bench"``) via
  :func:`repro.bench.perf.ledger_records`.

``tools/obs_report.py --runs LEDGER`` queries it (filter by scenario /
digest / time window, per-scenario trend summary).  The schema is
append-only: rows are never updated, so the ledger is a faithful
history, and every perf claim is traceable to a recorded run (the
Hunold & Carpen-Amarie measurement discipline).

The connection is opened lazily and guarded by a lock so one ledger
can be written from the serve loop thread and read from the CLI.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from typing import Any, Dict, List, Optional

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    id         INTEGER PRIMARY KEY AUTOINCREMENT,
    ts         REAL    NOT NULL,
    kind       TEXT    NOT NULL,
    scenario   TEXT    NOT NULL,
    digest     TEXT    NOT NULL DEFAULT '',
    seed       INTEGER,
    status     TEXT    NOT NULL DEFAULT 'ok',
    wall_s     REAL,
    cached     INTEGER NOT NULL DEFAULT 0,
    trace      TEXT    NOT NULL DEFAULT '',
    trace_path TEXT    NOT NULL DEFAULT '',
    detail     TEXT    NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS runs_scenario ON runs (scenario);
CREATE INDEX IF NOT EXISTS runs_digest   ON runs (digest);
CREATE INDEX IF NOT EXISTS runs_ts       ON runs (ts);
"""

_COLUMNS = ("id", "ts", "kind", "scenario", "digest", "seed", "status",
            "wall_s", "cached", "trace", "trace_path", "detail")


class RunLedger:
    """Append-only sqlite store of serve/sweep/bench runs."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._conn: Optional[sqlite3.Connection] = None
        self._lock = threading.Lock()

    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            # check_same_thread=False + our own lock: the serve loop
            # thread records while the owning thread closes/queries.
            self._conn = sqlite3.connect(self.path, check_same_thread=False)
            self._conn.executescript(_SCHEMA)
            self._conn.commit()
        return self._conn

    # -- writing -------------------------------------------------------------
    def record(self, *, kind: str, scenario: str, digest: str = "",
               seed: Optional[int] = None, status: str = "ok",
               wall_s: Optional[float] = None, cached: bool = False,
               trace: str = "", trace_path: str = "",
               detail: Optional[Dict[str, Any]] = None,
               ts: Optional[float] = None) -> int:
        """Append one run row; returns its ledger id."""
        blob = json.dumps(detail or {}, sort_keys=True,
                          separators=(",", ":"), default=str)
        with self._lock:
            conn = self._connect()
            cur = conn.execute(
                "INSERT INTO runs (ts, kind, scenario, digest, seed, status,"
                " wall_s, cached, trace, trace_path, detail)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (time.time() if ts is None else ts, kind, scenario, digest,
                 seed, status, wall_s, int(bool(cached)), trace, trace_path,
                 blob))
            conn.commit()
            return int(cur.lastrowid)

    # -- querying ------------------------------------------------------------
    def query(self, *, kind: Optional[str] = None,
              scenario: Optional[str] = None, digest: Optional[str] = None,
              since: Optional[float] = None,
              limit: int = 100) -> List[Dict[str, Any]]:
        """Rows newest-last (insertion order), optionally filtered.

        ``digest`` matches a prefix, so the 12-char digests printed by
        the CLI are directly usable as filters.
        """
        where, params = [], []
        if kind is not None:
            where.append("kind = ?")
            params.append(kind)
        if scenario is not None:
            where.append("scenario = ?")
            params.append(scenario)
        if digest is not None:
            where.append("digest LIKE ?")
            params.append(digest + "%")
        if since is not None:
            where.append("ts >= ?")
            params.append(since)
        sql = "SELECT " + ", ".join(_COLUMNS) + " FROM runs"
        if where:
            sql += " WHERE " + " AND ".join(where)
        # LIMIT keeps the *newest* rows but we return them oldest-first.
        sql += f" ORDER BY id DESC LIMIT {int(limit)}"
        with self._lock:
            rows = self._connect().execute(sql, params).fetchall()
        out = []
        for row in reversed(rows):
            rec = dict(zip(_COLUMNS, row))
            rec["cached"] = bool(rec["cached"])
            try:
                rec["detail"] = json.loads(rec["detail"])
            except ValueError:
                rec["detail"] = {}
            out.append(rec)
        return out

    def trend(self, *, kind: Optional[str] = None,
              scenario: Optional[str] = None,
              since: Optional[float] = None) -> List[Dict[str, Any]]:
        """Per-scenario aggregate: run counts, ok-rate, wall-clock mean
        and bounds, cache-hit count, first/last timestamps."""
        where, params = [], []
        if kind is not None:
            where.append("kind = ?")
            params.append(kind)
        if scenario is not None:
            where.append("scenario = ?")
            params.append(scenario)
        if since is not None:
            where.append("ts >= ?")
            params.append(since)
        sql = ("SELECT kind, scenario, COUNT(*),"
               " SUM(CASE WHEN status = 'ok' THEN 1 ELSE 0 END),"
               " SUM(cached), AVG(wall_s), MIN(wall_s), MAX(wall_s),"
               " MIN(ts), MAX(ts) FROM runs")
        if where:
            sql += " WHERE " + " AND ".join(where)
        sql += " GROUP BY kind, scenario ORDER BY kind, scenario"
        with self._lock:
            rows = self._connect().execute(sql, params).fetchall()
        return [
            {"kind": k, "scenario": s, "runs": n, "ok": ok or 0,
             "cached": cached or 0, "wall_mean_s": mean,
             "wall_min_s": lo, "wall_max_s": hi,
             "first_ts": t0, "last_ts": t1}
            for k, s, n, ok, cached, mean, lo, hi, t0, t1 in rows
        ]

    def count(self) -> int:
        with self._lock:
            return int(self._connect().execute(
                "SELECT COUNT(*) FROM runs").fetchone()[0])

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

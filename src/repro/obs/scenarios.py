"""Canned, fully-instrumented runs for the observability tooling.

Each scenario boots a world with a live :class:`~repro.simtime.trace.Tracer`
and an enabled metrics registry, runs a short deterministic program, and
returns an :class:`ObsRun` bundling everything the exporters need.  The
same registry backs ``tools/obs_report.py`` and the ``tests/obs`` suite,
so the CLI demos and the assertions exercise identical code paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.api import MpiWorld, SimSpec, make_world
from repro.machine.presets import jupiter, laptop, trinity
from repro.obs.metrics import MetricsRegistry, snapshot_cluster
from repro.ompi.config import MpiConfig
from repro.simtime.trace import Tracer

MACHINES = {"jupiter": jupiter, "trinity": trinity, "laptop": laptop}


@dataclass
class ObsRun:
    """One instrumented scenario execution.

    ``world`` is ``None`` for partitioned executions (each worker
    process owned its own world replica; only the merged trace and
    metrics travel back — see ``repro.dsim``).
    """

    name: str
    world: Optional[MpiWorld]
    tracer: Tracer
    metrics: MetricsRegistry
    t_end: float

    @property
    def cluster(self):
        return self.world.cluster


def _execute(
    name: str,
    main: Callable,
    *,
    nodes: int,
    ppn: int,
    config: MpiConfig,
    machine: str = "jupiter",
    plan=None,
    tolerate_errors: bool = False,
    engine_compat: bool = False,
    partitions: int = 1,
) -> ObsRun:
    if partitions > 1:
        return _execute_partitioned(
            name, main, nodes=nodes, ppn=ppn, config=config, machine=machine,
            plan=plan, tolerate_errors=tolerate_errors,
            engine_compat=engine_compat, partitions=partitions)
    tracer = Tracer()
    world = make_world(spec=SimSpec(
        nprocs=nodes * ppn,
        machine=MACHINES[machine](nodes),
        ppn=ppn,
        config=config,
        tracer=tracer,
        engine_compat=engine_compat,
    ))
    world.cluster.metrics.enabled = True
    if plan is not None:
        world.cluster.install_faults(plan)
    procs = world.spawn_ranks(main)
    t_end = world.run()
    if not tolerate_errors:
        for p in procs:
            if p.exception is not None:
                raise p.exception
    snapshot_cluster(world.cluster.metrics, world.cluster, world)
    return ObsRun(name=name, world=world, tracer=tracer,
                  metrics=world.cluster.metrics, t_end=t_end)


def _execute_partitioned(
    name: str,
    main: Callable,
    *,
    nodes: int,
    ppn: int,
    config: MpiConfig,
    machine: str,
    plan,
    tolerate_errors: bool,
    engine_compat: bool,
    partitions: int,
) -> ObsRun:
    from repro import dsim

    if engine_compat:
        raise dsim.PartitionError(
            "engine_compat runs on the reference scheduler, which has no "
            "window-bounded execution; use partitions=1")
    spec = SimSpec(
        nprocs=nodes * ppn,
        machine=MACHINES[machine](nodes),
        ppn=ppn,
        config=config,
        partitions=partitions,
    )
    res = dsim.run_partitioned(spec, main, plan=plan, traced=True,
                               metrics_on=True)
    if not tolerate_errors:
        res.raise_first_failure()
    return ObsRun(name=name, world=None, tracer=res.tracer,
                  metrics=res.metrics, t_end=res.t_end)


# ---------------------------------------------------------------------------
# scenario programs
# ---------------------------------------------------------------------------
def _sessions_init_main(mpi):
    """The paper's Fig 3 Sessions sequence: init -> pset -> group -> comm."""
    session = yield from mpi.session_init()
    group = yield from session.group_from_pset("mpi://world")
    comm = yield from mpi.comm_create_from_group(group, "obs/fig3")
    yield from comm.barrier()
    comm.free()
    yield from session.finalize()


def _world_init_main(mpi):
    """The Fig 3 baseline: MPI_Init / MPI_Finalize."""
    comm = yield from mpi.mpi_init()
    yield from comm.barrier()
    yield from mpi.mpi_finalize()


def _dup_main(mpi):
    """Fig 4 flavour: sessions init plus a short MPI_Comm_dup loop."""
    session = yield from mpi.session_init()
    group = yield from session.group_from_pset("mpi://world")
    comm = yield from mpi.comm_create_from_group(group, "obs/fig4")
    for _ in range(3):
        dup = yield from comm.dup()
        dup.free()
    comm.free()
    yield from session.finalize()


def _fence_chain_main(mpi):
    """Sequential PMIx fences: the critical path IS the fence chain."""
    session = yield from mpi.session_init()
    for _ in range(4):
        yield from mpi.pmix.fence()
    yield from session.finalize()


def _pingpong_main(mpi):
    """Cross-node eager + rendezvous traffic for send->recv flow demos."""
    session = yield from mpi.session_init()
    group = yield from session.group_from_pset("mpi://world")
    comm = yield from mpi.comm_create_from_group(group, "obs/pp")
    peer = comm.size - 1 - comm.rank
    if peer != comm.rank:
        for nbytes in (64, 1 << 20):   # one eager, one rendezvous
            if comm.rank < peer:
                yield from comm.send(None, peer, tag=7, nbytes=nbytes)
                yield from comm.recv(peer, tag=8)
            else:
                yield from comm.recv(peer, tag=7)
                yield from comm.send(None, peer, tag=8, nbytes=nbytes)
    comm.free()
    yield from session.finalize()


def _faults_drop_main(mpi):
    """Fence under a dropped grpcomm message: the flow stays dangling."""
    from repro.pmix.types import PmixError

    session = yield from mpi.session_init()
    try:
        yield from mpi.pmix.fence()
    except PmixError:
        pass
    yield from session.finalize()


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
def _build_faults_plan():
    from repro.faults import FaultPlan

    return FaultPlan().drop_msg(layer="rml", tag="grpcomm_up", max_hits=1)


_SPECS: Dict[str, dict] = {
    "fig3-init": dict(main=_sessions_init_main,
                      config=MpiConfig.sessions_prototype),
    "fig3-init-world": dict(main=_world_init_main, config=MpiConfig.baseline),
    "fig4-dup": dict(main=_dup_main, config=MpiConfig.sessions_prototype),
    "fence-chain": dict(main=_fence_chain_main,
                        config=MpiConfig.sessions_prototype),
    "pingpong": dict(main=_pingpong_main,
                     config=MpiConfig.sessions_prototype),
    "faults-drop": dict(main=_faults_drop_main,
                        config=MpiConfig.sessions_prototype,
                        plan=_build_faults_plan, tolerate_errors=True),
}


def scenario_names() -> List[str]:
    return sorted(_SPECS)


def run_scenario(
    name: str,
    *,
    nodes: int = 2,
    ppn: int = 2,
    machine: str = "jupiter",
    engine_compat: bool = False,
    partitions: int = 1,
) -> ObsRun:
    """Run a named scenario and return its :class:`ObsRun`.

    ``engine_compat=True`` runs on the pure-heap reference scheduler —
    the golden-trace tests compare its byte-exact export against the
    default fast-path engine's.  ``partitions=N`` executes the same
    world across N worker processes (``repro.dsim``); scenarios whose
    fault plan is not partition-safe raise
    :class:`~repro.dsim.PartitionError`.
    """
    try:
        spec = _SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r} (have: {', '.join(scenario_names())})"
        ) from None
    plan_factory: Optional[Callable] = spec.get("plan")
    return _execute(
        name,
        spec["main"],
        nodes=nodes,
        ppn=ppn,
        machine=machine,
        config=spec["config"](),
        plan=plan_factory() if plan_factory is not None else None,
        tolerate_errors=spec.get("tolerate_errors", False),
        engine_compat=engine_compat,
        partitions=partitions,
    )

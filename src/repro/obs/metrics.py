"""Metrics registry: counters, gauges, histograms with label aggregation.

Metrics are keyed by ``(name, labels)`` where ``labels`` is a sorted
tuple of ``(key, value)`` pairs — e.g. ``("pml.bytes", (("node", 1),))``.
Aggregation across label dimensions (per-process -> per-node ->
cluster-wide) is a query-time fold, so instrumentation sites only ever
record at the finest granularity they know.

Everything is deterministic: insertion order never affects output
(tables render in sorted key order), histogram percentiles use sorted
linear interpolation, and no wall clock or PRNG is touched.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Tuple

LabelKey = Tuple[str, Tuple[Tuple[str, Any], ...]]


def _key(name: str, labels: Dict[str, Any]) -> LabelKey:
    return (name, tuple(sorted(labels.items())))


class Histogram:
    """Raw-sample histogram with exact interpolated percentiles."""

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return math.fsum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    def percentile(self, p: float) -> float:
        """Interpolated percentile, ``p`` in [0, 100]."""
        if not self.values:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile out of range: {p}")
        ordered = sorted(self.values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> Dict[str, float]:
        if not self.values:
            return {"count": 0}
        ordered = sorted(self.values)
        return {
            "count": len(ordered),
            "min": ordered[0],
            "max": ordered[-1],
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Counters, gauges and histograms for one cluster.

    Disabled by default: live ``inc``/``set``/``observe`` calls cost one
    branch.  Snapshot-style harvesting (:func:`snapshot_cluster`) calls
    the ``force=True`` variants so an end-of-run report works even when
    live collection was off.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.counters: Dict[LabelKey, float] = {}
        self.gauges: Dict[LabelKey, float] = {}
        self.histograms: Dict[LabelKey, Histogram] = {}

    # -- recording ----------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, *, force: bool = False,
            **labels: Any) -> None:
        if not (self.enabled or force):
            return
        key = _key(name, labels)
        self.counters[key] = self.counters.get(key, 0.0) + value

    def set(self, name: str, value: float, *, force: bool = False,
            **labels: Any) -> None:
        if not (self.enabled or force):
            return
        self.gauges[_key(name, labels)] = value

    def observe(self, name: str, value: float, *, force: bool = False,
                **labels: Any) -> None:
        if not (self.enabled or force):
            return
        key = _key(name, labels)
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = Histogram()
        hist.observe(value)

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    # -- queries ------------------------------------------------------------
    def names(self) -> List[str]:
        """Sorted distinct metric names across all kinds."""
        seen = {k[0] for k in self.counters}
        seen.update(k[0] for k in self.gauges)
        seen.update(k[0] for k in self.histograms)
        return sorted(seen)

    def value(self, name: str, **labels: Any) -> Optional[float]:
        key = _key(name, labels)
        if key in self.counters:
            return self.counters[key]
        if key in self.gauges:
            return self.gauges[key]
        return None

    def histogram(self, name: str, **labels: Any) -> Optional[Histogram]:
        return self.histograms.get(_key(name, labels))

    def aggregate(self, name: str, by: Optional[str] = None) -> Dict[Any, float]:
        """Sum a counter/gauge across labels.

        ``by=None`` folds everything into ``{"total": x}`` (cluster-wide);
        ``by="node"`` returns per-node sums, etc.
        """
        out: Dict[Any, float] = {}
        for store in (self.counters, self.gauges):
            for (n, labels), v in store.items():
                if n != name:
                    continue
                group = "total" if by is None else dict(labels).get(by, "total")
                out[group] = out.get(group, 0.0) + v
        return out

    def merged_histogram(self, name: str) -> Histogram:
        """All samples for ``name`` across every label set."""
        merged = Histogram()
        for (n, _labels), hist in self.histograms.items():
            if n == name:
                merged.values.extend(hist.values)
        return merged

    # -- rendering ----------------------------------------------------------
    @staticmethod
    def _label_str(labels: Iterable[Tuple[str, Any]]) -> str:
        items = list(labels)
        if not items:
            return ""
        return "{" + ",".join(f"{k}={v}" for k, v in items) + "}"

    @staticmethod
    def _num(v: float) -> str:
        if v == int(v) and abs(v) < 1e15:
            return str(int(v))
        return f"{v:.6g}"

    def rows(self) -> List[Tuple[str, str, str]]:
        """Deterministic (name+labels, kind, rendered value) rows."""
        out: List[Tuple[str, str, str]] = []
        for key in sorted(self.counters):
            out.append((key[0] + self._label_str(key[1]), "counter",
                        self._num(self.counters[key])))
        for key in sorted(self.gauges):
            out.append((key[0] + self._label_str(key[1]), "gauge",
                        self._num(self.gauges[key])))
        for key in sorted(self.histograms):
            s = self.histograms[key].summary()
            if s["count"] == 0:
                rendered = "count=0"
            else:
                rendered = (f"count={s['count']} mean={self._num(s['mean'])} "
                            f"p50={self._num(s['p50'])} p90={self._num(s['p90'])} "
                            f"p99={self._num(s['p99'])} max={self._num(s['max'])}")
            out.append((key[0] + self._label_str(key[1]), "histogram", rendered))
        out.sort()
        return out

    def render(self) -> str:
        rows = self.rows()
        if not rows:
            return "(no metrics recorded)"
        w_name = max(len(r[0]) for r in rows)
        w_kind = max(len(r[1]) for r in rows)
        lines = [f"{name:<{w_name}}  {kind:<{w_kind}}  {value}"
                 for name, kind, value in rows]
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly dump, deterministically ordered."""
        out: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for key in sorted(self.counters):
            out["counters"][key[0] + self._label_str(key[1])] = self.counters[key]
        for key in sorted(self.gauges):
            out["gauges"][key[0] + self._label_str(key[1])] = self.gauges[key]
        for key in sorted(self.histograms):
            out["histograms"][key[0] + self._label_str(key[1])] = \
                self.histograms[key].summary()
        return out


def snapshot_cluster(metrics: MetricsRegistry, cluster, world=None) -> None:
    """Harvest structural counters the layers already keep into the
    registry (``force=True``: works even with live collection off)."""
    m = metrics
    m.set("simtime.events", cluster.engine.events_executed, force=True)
    tr = cluster.engine.tracer
    m.set("obs.spans", len(tr.spans), force=True)
    m.set("obs.flows", len(tr.flows), force=True)

    rml = cluster.dvm.rml
    m.set("rml.messages", rml.messages_sent, force=True)
    m.set("rml.bytes", rml.bytes_sent, force=True)
    m.set("rml.dropped", getattr(rml, "dropped", 0), force=True)
    m.set("prrte.pgcid.allocated", cluster.dvm.pgcids_allocated, force=True)

    for kind, n in sorted(cluster.faults.stats.items()):
        m.set(f"faults.{kind}", n, force=True)

    # Recovery-layer counters (docs/recovery.md).  Gated on the cluster
    # actually being in recovery mode so non-recovery snapshots stay
    # byte-identical to what they were before the layer existed.
    if getattr(cluster, "recovery", False):
        m.set("recovery.rml.retransmits", rml.retransmits, force=True)
        m.set("recovery.rml.acks", rml.acks_sent, force=True)
        m.set("recovery.rml.dup_suppressed", rml.dup_suppressed, force=True)
        m.set("recovery.rml.retry_exhausted", rml.retry_exhausted, force=True)
        m.set("recovery.heal.reparents",
              sum(d.heals for d in cluster.dvm.daemons), force=True)
        m.set("recovery.grpcomm.restarts",
              sum(d.grpcomm.restarts for d in cluster.dvm.daemons), force=True)
        m.set("recovery.fence.retries", cluster.dvm.fence_retries, force=True)
        for kind in sorted(cluster.recovery_stats):
            m.set(f"recovery.{kind}", cluster.recovery_stats[kind], force=True)

    if world is not None:
        fabric = world.fabric
        m.set("pml.packets", getattr(fabric, "packets", 0), force=True)
        m.set("pml.bytes", getattr(fabric, "bytes", 0), force=True)
        for rt in world.runtimes:
            ep = getattr(rt, "endpoint", None)
            if ep is not None:
                ep.harvest_metrics(m, force=True)

"""Metrics registry: counters, gauges, histograms with label aggregation.

Metrics are keyed by ``(name, labels)`` where ``labels`` is a sorted
tuple of ``(key, value)`` pairs — e.g. ``("pml.bytes", (("node", 1),))``.
Aggregation across label dimensions (per-process -> per-node ->
cluster-wide) is a query-time fold, so instrumentation sites only ever
record at the finest granularity they know.

Everything is deterministic: insertion order never affects output
(tables render in sorted key order), histogram percentiles use sorted
linear interpolation, and no wall clock or PRNG is touched.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Any, Dict, Iterable, List, Optional, Tuple

LabelKey = Tuple[str, Tuple[Tuple[str, Any], ...]]


def _key(name: str, labels: Dict[str, Any]) -> LabelKey:
    return (name, tuple(sorted(labels.items())))


class Histogram:
    """Raw-sample histogram with exact interpolated percentiles.

    By default every sample is kept and percentiles are exact.  With
    ``max_samples`` set, the raw list is bounded: below the cap,
    behavior is identical (exact percentiles); past it, samples go
    through a seeded reservoir (Vitter's Algorithm R), so memory stays
    O(cap) under unbounded traffic (a long-lived serve loadgen) while
    ``count``/``total``/``mean``/``min``/``max`` remain exact running
    aggregates.  The reservoir PRNG is seeded, so summaries are a
    deterministic function of the observation sequence.
    """

    __slots__ = ("values", "max_samples", "_seed", "_rng",
                 "_count", "_total", "_min", "_max")

    def __init__(self, max_samples: Optional[int] = None,
                 seed: int = 0) -> None:
        if max_samples is not None and max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.values: List[float] = []
        self.max_samples = max_samples
        self._seed = seed
        self._rng: Optional[random.Random] = None
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self._count += 1
        self._total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self.max_samples is None or len(self.values) < self.max_samples:
            self.values.append(value)
            return
        # Reservoir (Algorithm R): keep each of the n samples seen so
        # far with probability cap/n, deterministically via the seed.
        if self._rng is None:
            self._rng = random.Random(self._seed)
        j = self._rng.randrange(self._count)
        if j < self.max_samples:
            self.values[j] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Interpolated percentile, ``p`` in [0, 100]."""
        if not self.values:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile out of range: {p}")
        ordered = sorted(self.values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> Dict[str, float]:
        if not self._count:
            return {"count": 0}
        return {
            "count": self._count,
            "min": self._min,
            "max": self._max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Counters, gauges and histograms for one cluster.

    Disabled by default: live ``inc``/``set``/``observe`` calls cost one
    branch.  Snapshot-style harvesting (:func:`snapshot_cluster`) calls
    the ``force=True`` variants so an end-of-run report works even when
    live collection was off.
    """

    def __init__(self, enabled: bool = False,
                 histogram_max_samples: Optional[int] = None,
                 reservoir_seed: int = 0) -> None:
        self.enabled = enabled
        self.histogram_max_samples = histogram_max_samples
        self.reservoir_seed = reservoir_seed
        self.counters: Dict[LabelKey, float] = {}
        self.gauges: Dict[LabelKey, float] = {}
        self.histograms: Dict[LabelKey, Histogram] = {}

    # -- recording ----------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, *, force: bool = False,
            **labels: Any) -> None:
        if not (self.enabled or force):
            return
        key = _key(name, labels)
        self.counters[key] = self.counters.get(key, 0.0) + value

    def set(self, name: str, value: float, *, force: bool = False,
            **labels: Any) -> None:
        if not (self.enabled or force):
            return
        self.gauges[_key(name, labels)] = value

    def observe(self, name: str, value: float, *, force: bool = False,
                **labels: Any) -> None:
        if not (self.enabled or force):
            return
        key = _key(name, labels)
        hist = self.histograms.get(key)
        if hist is None:
            # Per-key seed: deterministic (crc32, not hash()) and
            # distinct across label sets, so bounded reservoirs don't
            # correlate their sampling decisions.
            hist = self.histograms[key] = Histogram(
                self.histogram_max_samples,
                seed=self.reservoir_seed ^ zlib.crc32(repr(key).encode()))
        hist.observe(value)

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    # -- queries ------------------------------------------------------------
    def names(self) -> List[str]:
        """Sorted distinct metric names across all kinds."""
        seen = {k[0] for k in self.counters}
        seen.update(k[0] for k in self.gauges)
        seen.update(k[0] for k in self.histograms)
        return sorted(seen)

    def value(self, name: str, **labels: Any) -> Optional[float]:
        key = _key(name, labels)
        if key in self.counters:
            return self.counters[key]
        if key in self.gauges:
            return self.gauges[key]
        return None

    def histogram(self, name: str, **labels: Any) -> Optional[Histogram]:
        return self.histograms.get(_key(name, labels))

    def aggregate(self, name: str, by: Optional[str] = None) -> Dict[Any, float]:
        """Sum a counter/gauge across labels.

        ``by=None`` folds everything into ``{"total": x}`` (cluster-wide);
        ``by="node"`` returns per-node sums, etc.
        """
        out: Dict[Any, float] = {}
        for store in (self.counters, self.gauges):
            for (n, labels), v in store.items():
                if n != name:
                    continue
                group = "total" if by is None else dict(labels).get(by, "total")
                out[group] = out.get(group, 0.0) + v
        return out

    def merged_histogram(self, name: str) -> Histogram:
        """All samples for ``name`` across every label set.

        Label sets merge in sorted key order (deterministic), and the
        exact running aggregates (count/total/min/max) merge exactly
        even when the per-label histograms are bounded reservoirs.
        """
        merged = Histogram()
        for key in sorted(self.histograms):
            if key[0] != name:
                continue
            hist = self.histograms[key]
            merged.values.extend(hist.values)
            merged._count += hist._count
            merged._total += hist._total
            merged._min = min(merged._min, hist._min)
            merged._max = max(merged._max, hist._max)
        return merged

    # -- rendering ----------------------------------------------------------
    @staticmethod
    def _label_str(labels: Iterable[Tuple[str, Any]]) -> str:
        items = list(labels)
        if not items:
            return ""
        return "{" + ",".join(f"{k}={v}" for k, v in items) + "}"

    @staticmethod
    def _num(v: float) -> str:
        if v == int(v) and abs(v) < 1e15:
            return str(int(v))
        return f"{v:.6g}"

    def rows(self) -> List[Tuple[str, str, str]]:
        """Deterministic (name+labels, kind, rendered value) rows."""
        out: List[Tuple[str, str, str]] = []
        for key in sorted(self.counters):
            out.append((key[0] + self._label_str(key[1]), "counter",
                        self._num(self.counters[key])))
        for key in sorted(self.gauges):
            out.append((key[0] + self._label_str(key[1]), "gauge",
                        self._num(self.gauges[key])))
        for key in sorted(self.histograms):
            s = self.histograms[key].summary()
            if s["count"] == 0:
                rendered = "count=0"
            else:
                rendered = (f"count={s['count']} mean={self._num(s['mean'])} "
                            f"p50={self._num(s['p50'])} p90={self._num(s['p90'])} "
                            f"p99={self._num(s['p99'])} max={self._num(s['max'])}")
            out.append((key[0] + self._label_str(key[1]), "histogram", rendered))
        out.sort()
        return out

    def render(self) -> str:
        rows = self.rows()
        if not rows:
            return "(no metrics recorded)"
        w_name = max(len(r[0]) for r in rows)
        w_kind = max(len(r[1]) for r in rows)
        lines = [f"{name:<{w_name}}  {kind:<{w_kind}}  {value}"
                 for name, kind, value in rows]
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly dump, deterministically ordered."""
        out: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for key in sorted(self.counters):
            out["counters"][key[0] + self._label_str(key[1])] = self.counters[key]
        for key in sorted(self.gauges):
            out["gauges"][key[0] + self._label_str(key[1])] = self.gauges[key]
        for key in sorted(self.histograms):
            out["histograms"][key[0] + self._label_str(key[1])] = \
                self.histograms[key].summary()
        return out


def snapshot_cluster(metrics: MetricsRegistry, cluster, world=None) -> None:
    """Harvest structural counters the layers already keep into the
    registry (``force=True``: works even with live collection off)."""
    m = metrics
    m.set("simtime.events", cluster.engine.events_executed, force=True)
    tr = cluster.engine.tracer
    m.set("obs.spans", len(tr.spans), force=True)
    m.set("obs.flows", len(tr.flows), force=True)

    rml = cluster.dvm.rml
    m.set("rml.messages", rml.messages_sent, force=True)
    m.set("rml.bytes", rml.bytes_sent, force=True)
    m.set("rml.dropped", getattr(rml, "dropped", 0), force=True)
    m.set("prrte.pgcid.allocated", cluster.dvm.pgcids_allocated, force=True)

    for kind, n in sorted(cluster.faults.stats.items()):
        m.set(f"faults.{kind}", n, force=True)

    # Recovery-layer counters (docs/recovery.md).  Gated on the cluster
    # actually being in recovery mode so non-recovery snapshots stay
    # byte-identical to what they were before the layer existed.
    if getattr(cluster, "recovery", False):
        m.set("recovery.rml.retransmits", rml.retransmits, force=True)
        m.set("recovery.rml.acks", rml.acks_sent, force=True)
        m.set("recovery.rml.dup_suppressed", rml.dup_suppressed, force=True)
        m.set("recovery.rml.retry_exhausted", rml.retry_exhausted, force=True)
        m.set("recovery.heal.reparents",
              sum(d.heals for d in cluster.dvm.daemons), force=True)
        m.set("recovery.grpcomm.restarts",
              sum(d.grpcomm.restarts for d in cluster.dvm.daemons), force=True)
        m.set("recovery.fence.retries", cluster.dvm.fence_retries, force=True)
        for kind in sorted(cluster.recovery_stats):
            m.set(f"recovery.{kind}", cluster.recovery_stats[kind], force=True)

    if world is not None:
        fabric = world.fabric
        m.set("pml.packets", getattr(fabric, "packets", 0), force=True)
        m.set("pml.bytes", getattr(fabric, "bytes", 0), force=True)
        for rt in world.runtimes:
            ep = getattr(rt, "endpoint", None)
            if ep is not None:
                ep.harvest_metrics(m, force=True)

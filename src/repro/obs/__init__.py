"""Observability layer: metrics, trace export, critical-path profiling.

Built on the span/flow model in :mod:`repro.simtime.trace` (see
``docs/observability.md``):

* :mod:`repro.obs.metrics` — counters/gauges/histograms with label
  aggregation,
* :mod:`repro.obs.export` — Chrome/Perfetto ``trace_event`` JSON and a
  plain-text flamegraph-style report,
* :mod:`repro.obs.critical_path` — longest-chain extraction over the
  span + causality DAG,
* :mod:`repro.obs.scenarios` — canned instrumented runs for
  ``tools/obs_report.py`` and the bench ``--obs`` mode.
"""

from repro.obs.critical_path import compute_critical_path
from repro.obs.export import chrome_trace, dumps, flame_report, validate_chrome_trace
from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "chrome_trace",
    "compute_critical_path",
    "dumps",
    "flame_report",
    "validate_chrome_trace",
]

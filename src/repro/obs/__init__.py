"""Observability layer: metrics, trace export, critical-path profiling.

Built on the span/flow model in :mod:`repro.simtime.trace` (see
``docs/observability.md``):

* :mod:`repro.obs.metrics` — counters/gauges/histograms with label
  aggregation,
* :mod:`repro.obs.export` — Chrome/Perfetto ``trace_event`` JSON and a
  plain-text flamegraph-style report,
* :mod:`repro.obs.critical_path` — longest-chain extraction over the
  span + causality DAG,
* :mod:`repro.obs.scenarios` — canned instrumented runs for
  ``tools/obs_report.py`` and the bench ``--obs`` mode.

Live (wall-clock) telemetry for the serving stack — see the "Live
telemetry" section of ``docs/observability.md``:

* :mod:`repro.obs.live` — real-time spans + trace-id propagation,
* :mod:`repro.obs.events` — structured JSONL event log with rotation,
* :mod:`repro.obs.store` — the persistent sqlite run ledger,
* :mod:`repro.obs.prom` — Prometheus text exposition of the registry.
"""

from repro.obs.critical_path import compute_critical_path
from repro.obs.events import EventLog
from repro.obs.export import chrome_trace, dumps, flame_report, validate_chrome_trace
from repro.obs.live import LiveTelemetry, normalize_chrome_trace, trace_id
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.prom import prometheus_text
from repro.obs.store import RunLedger

__all__ = [
    "EventLog",
    "Histogram",
    "LiveTelemetry",
    "MetricsRegistry",
    "RunLedger",
    "chrome_trace",
    "compute_critical_path",
    "dumps",
    "flame_report",
    "normalize_chrome_trace",
    "prometheus_text",
    "trace_id",
    "validate_chrome_trace",
]

"""Prometheus text exposition rendered from a :class:`MetricsRegistry`.

The registry's dotted names (``serve.requests{status=ok}``) map to the
Prometheus naming rules as underscores (``serve_requests{status="ok"}``)
— the dotted scheme stays canonical in code (the metric-name lint
enforces it); this module is a pure rendering of it.

* counters / gauges -> one ``# TYPE`` header + one sample per label set
* histograms -> a Prometheus *summary*: ``{quantile="0.5|0.9|0.99"}``
  samples plus ``_sum`` and ``_count``

Output is deterministic: families and samples render in sorted order,
numbers use the registry's own formatter, and no timestamp is emitted
(scrape time is the scraper's business).  ``tools/serve.py metrics``
and the ``metrics`` wire op serve this text.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List, Tuple

from repro.obs.metrics import MetricsRegistry

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def prom_name(name: str) -> str:
    """Dotted registry name -> Prometheus metric name."""
    out = _NAME_OK.sub("_", name.replace(".", "_"))
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _escape(value: Any) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _labels(items: Iterable[Tuple[str, Any]]) -> str:
    rendered = [f'{prom_name(str(k))}="{_escape(v)}"' for k, v in items]
    return "{" + ",".join(rendered) + "}" if rendered else ""


def _num(v: float) -> str:
    return MetricsRegistry._num(float(v))


def prometheus_text(metrics: MetricsRegistry) -> str:
    """Render the whole registry as Prometheus text exposition."""
    lines: List[str] = []

    def family(store: Dict, kind: str) -> None:
        by_name: Dict[str, List] = {}
        for key in store:
            by_name.setdefault(key[0], []).append(key)
        for name in sorted(by_name):
            pname = prom_name(name)
            lines.append(f"# TYPE {pname} {kind}")
            for key in sorted(by_name[name]):
                lines.append(f"{pname}{_labels(key[1])} "
                             f"{_num(store[key])}")

    family(metrics.counters, "counter")
    family(metrics.gauges, "gauge")

    by_name: Dict[str, List] = {}
    for key in metrics.histograms:
        by_name.setdefault(key[0], []).append(key)
    for name in sorted(by_name):
        pname = prom_name(name)
        lines.append(f"# TYPE {pname} summary")
        for key in sorted(by_name[name]):
            hist = metrics.histograms[key]
            base = list(key[1])
            for q, p in (("0.5", 50.0), ("0.9", 90.0), ("0.99", 99.0)):
                lines.append(
                    f"{pname}{_labels(base + [('quantile', q)])} "
                    f"{_num(hist.percentile(p))}")
            lines.append(f"{pname}_sum{_labels(base)} {_num(hist.total)}")
            lines.append(f"{pname}_count{_labels(base)} {hist.count}")

    return "\n".join(lines) + ("\n" if lines else "")

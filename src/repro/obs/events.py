"""Structured JSONL event log with size-based rotation.

One line per event, canonical JSON (sorted keys, compact separators)::

    {"event":"serve.request.admitted","scenario":"sim","trace":"c-1","ts":...}

The serve layer emits lifecycle events here (request admitted /
rejected / completed, worker spawn / death / retry, cache hit / miss)
when an :class:`EventLog` is attached; with none attached each site
costs one branch, per the telemetry discipline (docs/observability.md).

Rotation is size-based: when the active file exceeds ``max_bytes``
after a write, it is renamed to ``<path>.1`` (shifting ``.1`` ->
``.2`` ... up to ``backups``, dropping the oldest) and a fresh file is
started — an always-bounded disk footprint for long-lived servers.

Event names follow the metric convention ``layer.noun.verb``
(``serve.worker.death``), so the log greps the same way the metrics
read.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional


class EventLog:
    """Append-only JSONL log, opened lazily, rotated by size."""

    def __init__(self, path: str, *, max_bytes: int = 1_000_000,
                 backups: int = 2,
                 clock: Callable[[], float] = time.time) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if backups < 0:
            raise ValueError("backups must be >= 0")
        self.path = path
        self.max_bytes = max_bytes
        self.backups = backups
        self._clock = clock
        self._fh = None
        self._lock = threading.Lock()
        self.emitted = 0

    # -- writing -------------------------------------------------------------
    def emit(self, event: str, **fields: Any) -> None:
        """Append one event line; ``ts`` is stamped here."""
        record = dict(fields)
        record["event"] = event
        record["ts"] = self._clock()
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._fh is None:
                parent = os.path.dirname(self.path)
                if parent:
                    os.makedirs(parent, exist_ok=True)
                self._fh = open(self.path, "a")
            self._fh.write(line + "\n")
            self._fh.flush()
            self.emitted += 1
            if self._fh.tell() >= self.max_bytes:
                self._rotate_locked()

    def _rotate_locked(self) -> None:
        self._fh.close()
        self._fh = None
        if self.backups == 0:
            os.remove(self.path)
            return
        # Shift path.1 -> path.2 -> ... dropping the oldest.
        oldest = f"{self.path}.{self.backups}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for i in range(self.backups - 1, 0, -1):
            src = f"{self.path}.{i}"
            if os.path.exists(src):
                os.replace(src, f"{self.path}.{i + 1}")
        os.replace(self.path, f"{self.path}.1")

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- reading -------------------------------------------------------------
    @staticmethod
    def read(path: str) -> List[Dict[str, Any]]:
        """Parse one log file (skipping any torn trailing line)."""
        out: List[Dict[str, Any]] = []
        try:
            with open(path) as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        out.append(json.loads(line))
                    except ValueError:
                        continue
        except OSError:
            pass
        return out

    def read_all(self) -> List[Dict[str, Any]]:
        """All retained events, oldest first (rotated files included)."""
        out: List[Dict[str, Any]] = []
        for i in range(self.backups, 0, -1):
            out.extend(self.read(f"{self.path}.{i}"))
        out.extend(self.read(self.path))
        return out


def normalize_events(events: List[Dict[str, Any]],
                     drop: Optional[set] = None) -> List[Dict[str, Any]]:
    """Strip the wall-clock fields from event records so two identical
    request sequences compare equal (the JSONL determinism contract)."""
    drop = drop or {"ts", "latency_s", "wall_s", "wait_s", "run_s",
                    "uptime_s"}
    return [{k: v for k, v in ev.items() if k not in drop}
            for ev in events]

"""Wall-clock telemetry: real-time spans for the serving stack.

PR 2's tracer records *simulated* time — the clock inside the world.
This module points the same span/flow model at the *wall* clock, so the
operational side of the stack (``repro.serve``, ``repro.sweep``,
``tools/bench.py``) gets the observability the simulation already has:
request-scoped spans (``serve.request`` -> ``serve.queue`` ->
``serve.run``), dispatch flow edges, and the same byte-deterministic
Chrome/Perfetto export (:func:`repro.obs.export.chrome_trace`) on
real-time tracks.

A request's spans are tied together by a **trace id** minted in the
client (:class:`repro.serve.client.ServeClient`), carried through the
newline-JSON protocol as the ``trace`` field, through the admission
queue, the worker pipe, and — for ``sim`` requests — into the
simulation itself: the worker exports the run's simulated-time trace
next to the wall-clock one and the ``serve.run`` span carries a
``sim_trace`` attribute pointing at it, so one request is followable
client -> server -> worker -> simulated world.

Telemetry is **off by default** and follows the PR 2 discipline: every
instrumentation site costs one branch (``if tel is not None``) when
disabled.  :class:`LiveTelemetry` is thread-safe (the serve layer spans
from the asyncio loop thread while a client may span from its own).

Wall-clock timestamps are inherently nondeterministic; tests compare
exports through :func:`normalize_chrome_trace`, which zeroes ``ts`` and
``dur`` — everything else (track layout, span names, attrs, flow ids,
ordering) is byte-deterministic for identical request sequences.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional

from repro.obs.export import chrome_trace, dumps
from repro.simtime.trace import Tracer


def trace_id(prefix: str, n: int) -> str:
    """Deterministic trace id: ``<prefix>-<n>`` (no PRNG, no pid)."""
    return f"{prefix}-{n}"


class LiveTelemetry:
    """A wall-clock span recorder over the PR 2 :class:`Tracer`.

    Times are seconds since construction (``time.monotonic`` based), so
    exported traces start near zero.  ``clock`` is injectable for
    deterministic tests.
    """

    def __init__(self, *, enabled: bool = True,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.enabled = enabled
        self.tracer = Tracer()
        self._clock = clock
        self._t0 = clock()
        self._lock = threading.Lock()

    def now(self) -> float:
        """Seconds since this telemetry object was created."""
        return self._clock() - self._t0

    # -- span recording ------------------------------------------------------
    def begin(self, track: str, name: str, **attrs: Any) -> int:
        if not self.enabled:
            return 0
        with self._lock:
            return self.tracer.begin(self.now(), track, name, **attrs)

    def end(self, sid: int) -> None:
        if not sid:
            return
        with self._lock:
            self.tracer.end(self.now(), sid)

    def annotate(self, sid: int, **attrs: Any) -> None:
        """Attach attributes to an open or closed span after the fact
        (e.g. the request status, known only at completion)."""
        if not sid:
            return
        with self._lock:
            span = self.tracer.spans.get(sid)
            if span is not None:
                span.attrs.update(attrs)

    def event(self, track: str, name: str, **attrs: Any) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.tracer.event(self.now(), track, name, **attrs)

    def flow(self, name: str, src_track: str, dst_track: str,
             **attrs: Any) -> int:
        """A causality edge between two real-time tracks, both ends
        stamped now (e.g. queue -> worker dispatch)."""
        if not self.enabled:
            return 0
        with self._lock:
            t = self.now()
            return self.tracer.flow(name, src_track, t, dst_track, t, **attrs)

    @contextmanager
    def span(self, track: str, name: str, **attrs: Any) -> Iterator[int]:
        sid = self.begin(track, name, **attrs)
        try:
            yield sid
        finally:
            self.end(sid)

    # -- export --------------------------------------------------------------
    def export(self) -> Dict[str, Any]:
        """The Chrome ``trace_event`` object for everything recorded."""
        with self._lock:
            return chrome_trace(self.tracer)

    def write(self, path: str) -> None:
        """Write the export as deterministic JSON (modulo timestamps)."""
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as fh:
            fh.write(dumps(self.export()))


#: Span/event argument keys that carry measured wall-clock durations —
#: stripped alongside ``ts``/``dur`` when normalizing for comparison.
WALL_ARG_KEYS = frozenset({"wait_s", "latency_s", "wall_s", "run_s"})


def normalize_chrome_trace(obj: Dict[str, Any]) -> Dict[str, Any]:
    """A copy of a Chrome trace object with wall-clock fields zeroed.

    ``ts``/``dur`` and the measured-duration argument keys in
    :data:`WALL_ARG_KEYS` are the only nondeterministic fields in a
    wall-clock export; with them normalized away, two identical request
    sequences must serialize byte-identically (the live-telemetry
    determinism contract asserted by ``tests/serve/test_telemetry.py``).
    """
    out = dict(obj)
    events = []
    for ev in obj.get("traceEvents", ()):
        ev = dict(ev)
        if "ts" in ev:
            ev["ts"] = 0
        if "dur" in ev:
            ev["dur"] = 0
        args = ev.get("args")
        if isinstance(args, dict) and not WALL_ARG_KEYS.isdisjoint(args):
            ev["args"] = {k: v for k, v in args.items()
                          if k not in WALL_ARG_KEYS}
        events.append(ev)
    # Event order must not depend on timing either: sort by the
    # deterministic identity fields.
    events.sort(key=lambda e: (e.get("ph", ""), e.get("pid", 0),
                               e.get("tid", 0), e.get("name", ""),
                               e.get("id", 0), dumps(e.get("args", {}))))
    out["traceEvents"] = events
    return out


#: A telemetry object that records nothing — handy as an explicit
#: "off" argument; the serve layer treats it exactly like ``None``.
DISABLED = LiveTelemetry(enabled=False)

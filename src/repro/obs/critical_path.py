"""Critical-path extraction over the span + causality DAG.

Starting from the latest-ending span (or an explicit target), walk
*backwards* in time: within a track, time is attributed to the innermost
span covering each instant (gaps are ``idle``); whenever a causality
edge (:class:`~repro.simtime.trace.FlowEdge`) arrives at the current
position, the walk jumps to the edge's source track and the transit time
is attributed to the edge itself.

The resulting stages partition ``[t_start, t_end]`` exactly — their
durations sum to the end-to-end time, which is what makes the report
trustworthy as an answer to "where did init time go?".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

_EPS = 1e-15


@dataclass
class Stage:
    """One contiguous segment of the critical path."""

    name: str
    track: str
    start: float
    end: float
    kind: str                          # "span" | "flow" | "idle"

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPath:
    stages: List[Stage]                # chronological
    t_start: float
    t_end: float

    @property
    def total(self) -> float:
        return self.t_end - self.t_start

    def by_stage(self) -> Dict[str, float]:
        """Total duration per stage name, sorted by descending time."""
        agg: Dict[str, float] = {}
        for st in self.stages:
            agg[st.name] = agg.get(st.name, 0.0) + st.duration
        return dict(sorted(agg.items(), key=lambda kv: (-kv[1], kv[0])))

    def stage_sum(self) -> float:
        return math.fsum(st.duration for st in self.stages)

    def render(self) -> str:
        lines = [f"critical path: {self.total * 1e3:.3f} ms "
                 f"({self.t_start * 1e3:.3f} -> {self.t_end * 1e3:.3f} ms), "
                 f"{len(self.stages)} stages"]
        for st in self.stages:
            mark = {"flow": "->", "idle": "..", "span": "  "}[st.kind]
            lines.append(f"  {st.start * 1e3:>10.3f}ms {st.duration * 1e3:>10.3f}ms "
                         f"{mark} {st.name}  [{st.track}]")
        lines.append("  -- per-stage attribution --")
        for name, dur in self.by_stage().items():
            pct = 100.0 * dur / self.total if self.total else 0.0
            lines.append(f"  {dur * 1e3:>10.3f}ms {pct:5.1f}%  {name}")
        return "\n".join(lines)


def _attribute_track(tracer, track: str, lo: float, hi: float) -> List[Stage]:
    """Partition [lo, hi] on one track into innermost-span/idle stages."""
    if hi - lo <= _EPS:
        return []
    covering = [
        s for s in tracer.spans.values()
        if s.track == track and s.start < hi - _EPS
        and (s.end is None or s.end > lo + _EPS)
    ]
    cuts = {lo, hi}
    for s in covering:
        if lo < s.start < hi:
            cuts.add(s.start)
        if s.end is not None and lo < s.end < hi:
            cuts.add(s.end)
    points = sorted(cuts)
    stages: List[Stage] = []
    for a, b in zip(points, points[1:]):
        mid = (a + b) / 2.0
        inner = None
        for s in covering:
            s_end = s.end if s.end is not None else hi
            if s.start <= mid <= s_end:
                # Innermost = latest start; tie-break on highest sid
                # (children always have higher ids than parents).
                if inner is None or (s.start, s.sid) > (inner.start, inner.sid):
                    inner = s
        if inner is None:
            stages.append(Stage("idle", track, a, b, "idle"))
        else:
            stages.append(Stage(inner.name, track, a, b, "span"))
    return stages


def _merge(stages: List[Stage]) -> List[Stage]:
    out: List[Stage] = []
    for st in stages:
        if out and out[-1].name == st.name and out[-1].track == st.track \
                and out[-1].kind == st.kind and abs(out[-1].end - st.start) <= _EPS:
            out[-1] = Stage(st.name, st.track, out[-1].start, st.end, st.kind)
        else:
            out.append(st)
    return out


def compute_critical_path(tracer, *, t_start: float = 0.0,
                          target=None) -> CriticalPath:
    """Walk the span+flow DAG backwards from ``target`` (default: the
    latest-ending span) down to ``t_start``."""
    closed = [s for s in tracer.spans.values() if s.end is not None]
    if target is None:
        if not closed:
            return CriticalPath([], t_start, t_start)
        target = max(closed, key=lambda s: (s.end, s.sid))

    # Inbound flows per destination track, complete and strictly
    # time-advancing (a zero-duration edge cannot move the walk).
    inbound: Dict[str, List] = {}
    for f in tracer.flows.values():
        if f.complete and f.src_time < f.dst_time - _EPS:
            inbound.setdefault(f.dst_track, []).append(f)
    for flows in inbound.values():
        flows.sort(key=lambda f: (f.dst_time, f.fid))

    stages: List[Stage] = []
    track, t = target.track, target.end
    t_end = target.end
    for _ in range(1_000_000):         # hard guard against walk bugs
        if t <= t_start + _EPS:
            break
        best = None
        for f in inbound.get(track, ()):
            if f.dst_time <= t + _EPS and f.dst_time > t_start + _EPS:
                if best is None or (f.dst_time, f.fid) > (best.dst_time, best.fid):
                    best = f
        if best is None:
            stages.extend(_attribute_track(tracer, track, t_start, t))
            break
        if best.dst_time < t - _EPS:
            stages.extend(_attribute_track(tracer, track, best.dst_time, t))
        stages.append(Stage(best.name, f"{best.src_track}->{track}",
                            best.src_time, best.dst_time, "flow"))
        track, t = best.src_track, best.src_time
    stages.sort(key=lambda st: st.start)
    return CriticalPath(_merge(stages), t_start, t_end)

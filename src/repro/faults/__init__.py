"""Fault injection across the simulated stack (see docs/faults.md).

The :class:`FaultManager` is the runtime half of fault injection: it
owns the installed :class:`~repro.simtime.faults.FaultPlan`, executes
kills, tracks which procs/nodes are dead, and is consulted by the two
message fault points:

* the PRRTE RML (``layer="rml"``) for daemon-to-daemon traffic, and
* the ob1 fabric (``layer="pml"``) for MPI point-to-point packets.

Failure propagation it drives:

* ``kill_rank`` — kills the rank's simulated process, tells its home
  PMIx server (which evicts it from psets, aborts local collectives it
  was part of, and broadcasts a ``PMIX_ERR_PROC_ABORTED`` event to every
  node), and notifies registered MPI runtimes after a small detection
  latency so communicators can raise typed ``ProcFailed`` errors.
* ``kill_node`` — marks the daemon dead (the RML silently drops traffic
  to/from dead nodes), kills the node's rank processes, and schedules a
  ``daemon_down`` announcement from the HNP that fans out over a radix
  tree, letting surviving daemons fail in-flight grpcomm instances and
  evict the node's procs.

Everything is scheduled on the simulation engine, so runs stay
deterministic: same seed + same plan = same event sequence.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional

from repro.pmix.types import PMIX_ERR_PROC_ABORTED, PmixProc
from repro.simtime.faults import (  # re-exported: the public fault API
    Disposition,
    FaultAction,
    FaultPlan,
    MsgView,
    random_plan,
)

__all__ = [
    "Disposition",
    "FaultAction",
    "FaultManager",
    "FaultPlan",
    "MsgView",
    "random_plan",
]


class FaultManager:
    """Per-cluster fault state: the plan, the dead, and the fault points."""

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self.engine = cluster.engine
        self.machine = cluster.machine
        self.plan: Optional[FaultPlan] = None
        self.default_job = None            # bound by Cluster.launch
        self.dead_procs: set = set()       # PmixProc
        self.dead_nodes: set = set()       # node ids
        self._rank_procs: Dict[PmixProc, Any] = {}   # PmixProc -> SimProcess
        self._runtimes: List[Any] = []     # MpiRuntime observers
        self.stats: Counter = Counter()
        # Once any fault has happened (or a plan is installed), servers
        # arm per-collective timeout timers so no protocol race can hang
        # the simulation — see docs/faults.md "bounded termination".
        self.active = False
        # Partition context under repro.dsim (None = single-process).
        # Kills execute fully in the owner partition; everywhere else
        # only the replicated liveness bookkeeping runs (dead sets,
        # daemon.alive, local-runtime notification) so sender-side fault
        # checks in remote partitions see deaths at the exact same
        # simulated time as the single-process reference.
        self.dsim = None

    def _owns_kill(self, act: "FaultAction") -> bool:
        """Whether this partition owns the kill target (dsim mode)."""
        if self.dsim is None:
            return True
        if act.kind == "kill_node":
            return self.dsim.owns_node(act.node)
        job = self.default_job
        if job is None:
            return self.dsim.pid == 0
        return self.dsim.owns_node(job.topology.node_of(act.rank))

    # -- wiring ------------------------------------------------------------
    def install(self, plan: FaultPlan) -> None:
        """Install a plan; timed kills are scheduled immediately."""
        if self.plan is not None:
            raise RuntimeError("a FaultPlan is already installed on this cluster")
        self.plan = plan
        self.active = True
        if self.dsim is None or self.dsim.pid == 0:
            self.cluster.trace("faults", "plan_installed", plan=plan.describe())
        for act in plan.timed_kills():
            when = max(self.engine.now, act.at_time)
            if self._owns_kill(act):
                self.engine.call_at(when, lambda a=act: self._execute(a))
            else:
                # Non-owner partitions replicate the bookkeeping at the
                # same instant but must not perturb the logical event
                # count: the charge_events(-1) cancels this entry's +1.
                def run_silent(a=act):
                    self.engine.charge_events(-1)
                    self._execute(a)
                self.engine.call_at(when, run_silent)

    def register_runtime(self, runtime) -> None:
        self._runtimes.append(runtime)

    def register_rank_proc(self, proc: PmixProc, sim_proc) -> None:
        self._rank_procs[proc] = sim_proc

    # -- queries -----------------------------------------------------------
    def is_dead_proc(self, proc: PmixProc) -> bool:
        return proc in self.dead_procs

    def is_dead_node(self, node: int) -> bool:
        return node in self.dead_nodes

    def daemon_alive(self, node: int) -> bool:
        return node not in self.dead_nodes

    @property
    def collective_timeout(self) -> float:
        return self.machine.fault_collective_timeout

    # -- message fault points ---------------------------------------------
    def on_message(self, layer: str, src, dst, tag, fid: int = 0) -> Optional[Disposition]:
        """Consult the plan for one message; executes triggered kills.

        ``fid`` is the message's observability flow id (0 = untraced);
        it is attached to every emitted ``faults.*`` event so dropped or
        duplicated packets can be located on the exported timeline.
        """
        plan = self.plan
        if plan is None or not plan.msg_actions_for(layer):
            return None
        view = MsgView(layer=layer, src=src, dst=dst, tag=tag, time=self.engine.now)
        disp = plan.on_message(view)
        if not disp:
            return None
        for kind in disp.matched:
            # Kill kinds are counted by kill_rank/kill_node themselves.
            if kind not in ("kill_proc", "kill_node"):
                self.stats[kind] += 1
        self.cluster.trace(
            "faults", "msg_fault", layer=layer, src=str(src), dst=str(dst),
            tag=str(tag), matched=tuple(disp.matched), flow=fid,
        )
        # One event per message-fault kind, so each injected action is
        # individually visible in the timeline next to its flow arrow.
        for kind in disp.matched:
            if kind in ("drop_msg", "delay_msg", "dup_msg"):
                self.cluster.trace("faults", kind, layer=layer, src=str(src),
                                   dst=str(dst), tag=str(tag), flow=fid)
        for act in disp.kills:
            self._execute(act)
        return disp

    def dead_drop(self, layer: str, src, dst, fid: int = 0) -> None:
        """Account for a message silently dropped at a dead endpoint."""
        self.stats["dead_drop"] += 1
        self.cluster.trace("faults", "dead_drop", layer=layer, src=str(src),
                           dst=str(dst), flow=fid)

    # -- kill execution ----------------------------------------------------
    def _execute(self, act: FaultAction) -> None:
        if act.kind == "kill_proc":
            job = self.default_job
            if job is None:
                self.cluster.trace("faults", "kill_skipped", reason="no job bound",
                                   rank=act.rank)
                return
            self.kill_rank(job, act.rank)
        else:
            self.kill_node(act.node)

    def kill_rank(self, job, rank: int, sim_proc=None, code: Optional[int] = None,
                  reason: str = "injected failure") -> None:
        """Kill one rank: SimProcess, PMIx liveness, event broadcast.

        ``code`` overrides the event status broadcast to handlers
        (``Cluster.fail_process`` passes ``PMIX_ERR_PROC_TERMINATED``
        for backward compatibility); the server always marks the proc
        dead either way.
        """
        proc = job.proc(rank)
        if proc in self.dead_procs:
            return
        self.active = True
        self.dead_procs.add(proc)
        node = job.topology.node_of(rank)
        if self.dsim is not None and not self.dsim.owns_node(node):
            # Remote kill: replicate liveness only.  Stats, traces, the
            # SimProcess kill and the PMIx abort belong to the owner;
            # local MPI runtimes still learn of the death here.
            self._notify_runtimes(proc)
            return
        self.stats["kill_proc"] += 1
        sim = sim_proc if sim_proc is not None else self._rank_procs.get(proc)
        self.cluster.trace("faults", "kill_proc", proc=str(proc), rank=rank,
                           reason=reason,
                           span=getattr(sim, "obs_span", 0) if sim else 0)
        if sim is not None:
            sim.kill(f"fault injection: {reason} (rank {rank})")
        self.cluster.servers[node].client_aborted(proc, code=code)
        self._notify_runtimes(proc)

    def kill_node(self, node: int, reason: str = "injected node failure") -> None:
        """Kill a whole node: daemon, PMIx server, and its rank processes."""
        dvm = self.cluster.dvm
        if node == dvm.hnp_node:
            raise ValueError(
                "cannot kill the HNP node (node 0): the model has no HNP "
                "failover, see docs/faults.md"
            )
        if node in self.dead_nodes:
            return
        self.active = True
        self.dead_nodes.add(node)
        owner = self.dsim is None or self.dsim.owns_node(node)
        if owner:
            self.stats["kill_node"] += 1
            self.cluster.trace("faults", "kill_node", node=node, reason=reason)
        daemon = dvm.daemon_for(node)
        daemon.alive = False

        # Every proc hosted on the node dies with it.  The dead node's
        # own server does no broadcasting — survivors learn through the
        # HNP's daemon_down announcement below.
        victims = []
        server = self.cluster.servers[node]
        for nspace, rank_map in server.job_maps.items():
            for rank, home in rank_map.items():
                if home == node:
                    victims.append(PmixProc(nspace, rank))
        for proc in sorted(victims):
            if proc in self.dead_procs:
                continue
            self.dead_procs.add(proc)
            sim = self._rank_procs.get(proc)
            if sim is not None:
                sim.kill(f"fault injection: node {node} died")
            self._notify_runtimes(proc)

        # Failure detection: after the detect latency the HNP notices the
        # lost daemon and xcasts daemon_down over the routing tree.  The
        # announcement is the HNP's event: under dsim only the partition
        # owning the HNP schedules it (the xcast reaches every other
        # partition's daemons as ordinary cross-partition RML traffic).
        if self.dsim is None or self.dsim.owns_node(dvm.hnp_node):
            self.engine.call_later(
                self.machine.daemon_failure_detect,
                lambda: dvm.announce_daemon_down(node),
            )

    # -- MPI-runtime notification ------------------------------------------
    def _notify_runtimes(self, proc: PmixProc) -> None:
        latency = self.machine.daemon_failure_detect
        for rt in list(self._runtimes):
            self.engine.call_later(latency, lambda r=rt: r.peer_failed(proc))

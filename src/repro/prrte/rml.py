"""Runtime messaging layer (RML) between PRRTE daemons.

Carries out-of-band runtime traffic (fence contributions, group
construction, PGCID allocation, dmodex, event forwarding).  Delivery is
scheduled on the simulation engine with a cost of one server-to-server
software/wire hop plus serialized payload bytes over the inter-node
link.

Reliable mode (docs/recovery.md): when :meth:`RoutingLayer.
enable_reliability` has been called (``Cluster(recovery=True)``), every
data message carries a per-(src, dst) sequence number, the receiver
acks each arrival, unacked messages are retransmitted with exponential
backoff + deterministic jitter up to a bounded retry budget, duplicates
are suppressed, and delivery to the daemon's handler is strictly
in-sequence-order per link.  That last property is what makes the
channel FIFO *by construction* — a retransmission can never overtake
its delayed original, because the original has the lower sequence
number and the receiver holds back anything after a gap.  Disabled
(the default) the layer behaves exactly as before recovery existed, so
the fault-detection semantics of docs/faults.md are unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.machine.model import MachineModel
from repro.pmix.datastore import _value_size
from repro.simtime.engine import Engine
from repro.simtime.trace import track_for_daemon

# Reserved dispatch tag for reliability acknowledgements.  Acks are
# unsequenced and never themselves acked: a lost ack only costs one
# redundant retransmission, which duplicate suppression absorbs.
ACK_TAG = "rml_ack"


@dataclass
class RmlMessage:
    src: int            # sending daemon's node id
    dst: int            # receiving daemon's node id
    tag: str            # dispatch tag, e.g. "grpcomm_up"
    payload: Dict[str, Any] = field(default_factory=dict)
    fid: int = 0        # observability flow id (send -> receive edge)
    seq: Optional[int] = None   # per-(src, dst) sequence (reliable mode)
    _size: Optional[int] = None    # cached wire_size (payload never mutates
                                   # after send, and retransmits resend as-is)

    def wire_size(self) -> int:
        """Approximate serialized size (64-byte envelope + payload)."""
        size = self._size
        if size is None:
            size = self._size = 64 + _value_size(self.payload)
        return size


class RoutingLayer:
    """Delivers :class:`RmlMessage`s between registered daemons.

    Each daemon is a single-threaded progress loop: its CPU serializes
    both outbound injections and inbound handling (``_busy``).  This is
    what makes a flat all-to-all exchange among many servers lose to
    the hierarchical pattern — without it every fan-in would be free.
    """

    def __init__(self, engine: Engine, machine: MachineModel) -> None:
        self.engine = engine
        self.machine = machine
        self._daemons: Dict[int, Callable[[RmlMessage], None]] = {}
        self._busy: Dict[int, float] = {}
        # One message's share of the progress loop (send or receive).
        self.process_cost = machine.server_msg_cost / 2
        self.messages_sent = 0
        self.bytes_sent = 0
        # Fault injection (wired by Cluster): messages to/from dead
        # daemons vanish; the plan may drop/delay/duplicate others.
        self.faults = None
        self.dropped = 0
        # Per-(src, dst) delivery floor: delay/dup faults must not
        # reorder a pair's messages — RML is a FIFO channel and the
        # grpcomm/event handlers rely on that.  In reliable mode the
        # sequence numbers enforce FIFO end-to-end regardless, but the
        # floor still keeps the *wire* arrival order sane.
        self._pair_floor: Dict[tuple, float] = {}
        # Cross-partition boundary (repro.dsim); None = single-process.
        # Messages to daemons owned by another partition are shipped as
        # (arrival, msg) envelopes after every sender-side effect has
        # run, and re-enter via _arrive in the owner partition.
        self.boundary = None
        # Reliability state (inert until enable_reliability()).
        self.reliable = False
        self._seed = 0
        self.retransmits = 0
        self.acks_sent = 0
        self.dup_suppressed = 0
        self.retry_exhausted = 0
        self._link_seq: Dict[Tuple[int, int], int] = {}
        # (src, dst, seq) -> [attempts, retransmit timer]
        self._unacked: Dict[Tuple[int, int, int], list] = {}
        self._recv_next: Dict[Tuple[int, int], int] = {}
        self._recv_buf: Dict[Tuple[int, int], Dict[int, RmlMessage]] = {}
        self._link_rng: Dict[Tuple[int, int], random.Random] = {}

    def register(self, node: int, deliver: Callable[[RmlMessage], None]) -> None:
        if node in self._daemons:
            raise ValueError(f"daemon already registered for node {node}")
        self._daemons[node] = deliver
        self._busy[node] = 0.0

    def enable_reliability(self, seed: int = 0) -> None:
        """Turn on sequencing, acks and retransmission (docs/recovery.md)."""
        self.reliable = True
        self._seed = seed

    def send(self, msg: RmlMessage) -> None:
        """Inject a message: occupies the sender, transits, then occupies
        the receiver before its handler runs."""
        deliver = self._daemons.get(msg.dst)
        if deliver is None:
            raise KeyError(f"no daemon registered for node {msg.dst}")
        if self.reliable and msg.tag != ACK_TAG and msg.seq is None:
            key = (msg.src, msg.dst)
            msg.seq = self._link_seq.get(key, 0)
            self._link_seq[key] = msg.seq + 1
            self._arm_retransmit(msg, deliver, attempts=0)
        self._transmit(msg, deliver)

    # -- reliability: sender side ------------------------------------------
    def _link_jitter(self, src: int, dst: int) -> random.Random:
        key = (src, dst)
        rng = self._link_rng.get(key)
        if rng is None:
            # String seeds hash deterministically (no PYTHONHASHSEED
            # dependence), so the jitter stream is a pure function of
            # (cluster seed, link).
            rng = self._link_rng[key] = random.Random(f"{self._seed}/{src}/{dst}")
        return rng

    def _arm_retransmit(self, msg: RmlMessage, deliver, attempts: int) -> None:
        m = self.machine
        rto = m.rml_rto * (m.rml_backoff ** attempts)
        # Jitter desynchronizes links that lost traffic simultaneously.
        rto += self._link_jitter(msg.src, msg.dst).uniform(0.0, 0.25 * rto)
        timer = self.engine.call_later(rto, lambda: self._retransmit(msg, deliver))
        self._unacked[(msg.src, msg.dst, msg.seq)] = [attempts, timer]

    def _retransmit(self, msg: RmlMessage, deliver) -> None:
        key = (msg.src, msg.dst, msg.seq)
        entry = self._unacked.get(key)
        if entry is None:
            return  # acked while this timer was in flight
        attempts = entry[0] + 1
        faults = self.faults
        if faults is not None and (
            not faults.daemon_alive(msg.src) or not faults.daemon_alive(msg.dst)
        ):
            # No point resending to (or from) the dead; daemon_down
            # healing owns recovery from here.
            del self._unacked[key]
            return
        tr = self.engine.tracer
        if attempts > self.machine.rml_max_retries:
            del self._unacked[key]
            self.retry_exhausted += 1
            if tr.enabled:
                tr.event(self.engine.now, track_for_daemon(msg.src),
                         "recovery.rml.retry_exhausted", dst=msg.dst,
                         tag=msg.tag, seq=msg.seq)
            return
        self.retransmits += 1
        if tr.enabled:
            tr.event(self.engine.now, track_for_daemon(msg.src),
                     "recovery.rml.retransmit", dst=msg.dst, tag=msg.tag,
                     seq=msg.seq, attempt=attempts)
        self._arm_retransmit(msg, deliver, attempts)
        self._transmit(msg, deliver)

    def _abandon(self, msg: RmlMessage) -> None:
        entry = self._unacked.pop((msg.src, msg.dst, msg.seq), None)
        if entry is not None:
            entry[1].cancel()

    def _handle_ack(self, ack: RmlMessage) -> None:
        # ack.src is the data receiver, ack.dst the original sender.
        entry = self._unacked.pop((ack.dst, ack.src, ack.payload["seq"]), None)
        if entry is not None:
            entry[1].cancel()

    # -- transmission (one attempt; fault hooks re-consulted each time) ----
    def _transmit(self, msg: RmlMessage, deliver) -> None:
        tr = self.engine.tracer
        if tr.enabled:
            msg.fid = tr.flow_begin(self.engine.now, track_for_daemon(msg.src),
                                    f"rml.{msg.tag}", nbytes=msg.wire_size())

        copies = 1
        extra_delay = 0.0
        faults = self.faults
        # ``active`` mirrors the ob1 fast path: with no plan installed and
        # no kills executed the whole fault block is one attribute check.
        if faults is not None and faults.active:
            if not faults.daemon_alive(msg.src) or not faults.daemon_alive(msg.dst):
                self.dropped += 1
                faults.dead_drop("rml", msg.src, msg.dst, fid=msg.fid)
                if self.reliable and msg.seq is not None:
                    self._abandon(msg)
                return
            disp = faults.on_message("rml", msg.src, msg.dst, msg.tag, fid=msg.fid)
            if disp is not None:
                if disp.drop:
                    self.dropped += 1
                    return
                extra_delay = disp.extra_delay
                copies += disp.duplicates

        nbytes = msg.wire_size()
        self.messages_sent += 1
        self.bytes_sent += nbytes

        start = max(self.engine.now, self._busy[msg.src])
        injected = start + self.process_cost
        self._busy[msg.src] = injected
        if msg.src == msg.dst:
            transit = self.machine.local_rpc_cost
        else:
            transit = (
                self.machine.server_msg_cost / 2
                + nbytes / self.machine.inter_node_bandwidth
            )
        arrival = injected + transit + extra_delay
        # The floor only engages once faults are active, keeping
        # fault-free timing identical to the pre-fault code path.
        if faults is not None and faults.active:
            key = (msg.src, msg.dst)
            arrival = max(arrival, self._pair_floor.get(key, 0.0))
            self._pair_floor[key] = arrival
        boundary = self.boundary
        if boundary is not None and not boundary.owns_node(msg.dst):
            boundary.ship_rml(arrival, msg, copies)
            return
        if copies == 1:
            self.engine.call_at(arrival, lambda: self._arrive(msg, deliver))
        else:
            # Fault-injected duplicates are the one genuinely same-instant
            # fan-out in the stack: every copy arrives at the same time, so
            # the whole burst collapses into one scheduled delivery on the
            # fast path (the compat reference keeps one heap entry per copy).
            self.engine.call_at_batch(
                arrival, [lambda: self._arrive(msg, deliver)] * copies
            )

    def _arrive(self, msg: RmlMessage, deliver: Callable[[RmlMessage], None]) -> None:
        # Booking happens at arrival time so deliveries from different
        # senders serialize in true arrival order.
        start = max(self.engine.now, self._busy[msg.dst])
        done = start + self.process_cost
        self._busy[msg.dst] = done
        self.engine.call_at(done, lambda: self._deliver(msg, deliver))

    def _deliver(self, msg: RmlMessage, deliver: Callable[[RmlMessage], None]) -> None:
        if msg.fid:
            # Duplicated copies share one flow id; the first arrival binds it.
            self.engine.tracer.flow_end(
                self.engine.now, track_for_daemon(msg.dst), msg.fid
            )
        if self.reliable:
            if msg.tag == ACK_TAG:
                self._handle_ack(msg)
                return
            if msg.seq is not None:
                self._sequenced_deliver(msg, deliver)
                return
        deliver(msg)

    # -- reliability: receiver side ----------------------------------------
    def _send_ack(self, msg: RmlMessage) -> None:
        self.acks_sent += 1
        self.send(RmlMessage(src=msg.dst, dst=msg.src, tag=ACK_TAG,
                             payload={"seq": msg.seq}))

    def _sequenced_deliver(self, msg: RmlMessage, deliver) -> None:
        """Selective-ack, in-order handoff: every arrival (including
        duplicates) is acked; the daemon's handler only ever sees each
        sequence number once, in order."""
        key = (msg.src, msg.dst)
        self._send_ack(msg)
        expected = self._recv_next.get(key, 0)
        if msg.seq < expected:
            self.dup_suppressed += 1
            return
        buf = self._recv_buf.setdefault(key, {})
        if msg.seq > expected:
            if msg.seq in buf:
                self.dup_suppressed += 1
            else:
                buf[msg.seq] = msg
            return
        self._recv_next[key] = expected + 1
        deliver(msg)
        nxt = expected + 1
        while nxt in buf:
            queued = buf.pop(nxt)
            self._recv_next[key] = nxt + 1
            deliver(queued)
            nxt += 1

"""Runtime messaging layer (RML) between PRRTE daemons.

Carries out-of-band runtime traffic (fence contributions, group
construction, PGCID allocation, dmodex, event forwarding).  Delivery is
scheduled on the simulation engine with a cost of one server-to-server
software/wire hop plus serialized payload bytes over the inter-node
link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict

from repro.machine.model import MachineModel
from repro.pmix.datastore import _value_size
from repro.simtime.engine import Engine
from repro.simtime.trace import track_for_daemon


@dataclass
class RmlMessage:
    src: int            # sending daemon's node id
    dst: int            # receiving daemon's node id
    tag: str            # dispatch tag, e.g. "grpcomm_up"
    payload: Dict[str, Any] = field(default_factory=dict)
    fid: int = 0        # observability flow id (send -> receive edge)

    def wire_size(self) -> int:
        """Approximate serialized size (64-byte envelope + payload)."""
        return 64 + _value_size(self.payload)


class RoutingLayer:
    """Delivers :class:`RmlMessage`s between registered daemons.

    Each daemon is a single-threaded progress loop: its CPU serializes
    both outbound injections and inbound handling (``_busy``).  This is
    what makes a flat all-to-all exchange among many servers lose to
    the hierarchical pattern — without it every fan-in would be free.
    """

    def __init__(self, engine: Engine, machine: MachineModel) -> None:
        self.engine = engine
        self.machine = machine
        self._daemons: Dict[int, Callable[[RmlMessage], None]] = {}
        self._busy: Dict[int, float] = {}
        # One message's share of the progress loop (send or receive).
        self.process_cost = machine.server_msg_cost / 2
        self.messages_sent = 0
        self.bytes_sent = 0
        # Fault injection (wired by Cluster): messages to/from dead
        # daemons vanish; the plan may drop/delay/duplicate others.
        self.faults = None
        self.dropped = 0
        # Per-(src, dst) delivery floor: delay/dup faults must not
        # reorder a pair's messages — RML is a FIFO channel and the
        # grpcomm/event handlers rely on that.
        self._pair_floor: Dict[tuple, float] = {}

    def register(self, node: int, deliver: Callable[[RmlMessage], None]) -> None:
        if node in self._daemons:
            raise ValueError(f"daemon already registered for node {node}")
        self._daemons[node] = deliver
        self._busy[node] = 0.0

    def send(self, msg: RmlMessage) -> None:
        """Inject a message: occupies the sender, transits, then occupies
        the receiver before its handler runs."""
        deliver = self._daemons.get(msg.dst)
        if deliver is None:
            raise KeyError(f"no daemon registered for node {msg.dst}")

        tr = self.engine.tracer
        if tr.enabled:
            msg.fid = tr.flow_begin(self.engine.now, track_for_daemon(msg.src),
                                    f"rml.{msg.tag}", nbytes=msg.wire_size())

        copies = 1
        extra_delay = 0.0
        faults = self.faults
        if faults is not None:
            if not faults.daemon_alive(msg.src) or not faults.daemon_alive(msg.dst):
                self.dropped += 1
                faults.dead_drop("rml", msg.src, msg.dst, fid=msg.fid)
                return
            disp = faults.on_message("rml", msg.src, msg.dst, msg.tag, fid=msg.fid)
            if disp is not None:
                if disp.drop:
                    self.dropped += 1
                    return
                extra_delay = disp.extra_delay
                copies += disp.duplicates

        nbytes = msg.wire_size()
        self.messages_sent += 1
        self.bytes_sent += nbytes

        start = max(self.engine.now, self._busy[msg.src])
        injected = start + self.process_cost
        self._busy[msg.src] = injected
        if msg.src == msg.dst:
            transit = self.machine.local_rpc_cost
        else:
            transit = (
                self.machine.server_msg_cost / 2
                + nbytes / self.machine.inter_node_bandwidth
            )
        arrival = injected + transit + extra_delay
        # The floor only engages once faults are active, keeping
        # fault-free timing identical to the pre-fault code path.
        if faults is not None and faults.active:
            key = (msg.src, msg.dst)
            arrival = max(arrival, self._pair_floor.get(key, 0.0))
            self._pair_floor[key] = arrival
        for _ in range(copies):
            self.engine.call_at(arrival, lambda: self._arrive(msg, deliver))

    def _arrive(self, msg: RmlMessage, deliver: Callable[[RmlMessage], None]) -> None:
        # Booking happens at arrival time so deliveries from different
        # senders serialize in true arrival order.
        start = max(self.engine.now, self._busy[msg.dst])
        done = start + self.process_cost
        self._busy[msg.dst] = done
        self.engine.call_at(done, lambda: self._deliver(msg, deliver))

    def _deliver(self, msg: RmlMessage, deliver: Callable[[RmlMessage], None]) -> None:
        if msg.fid:
            # Duplicated copies share one flow id; the first arrival binds it.
            self.engine.tracer.flow_end(
                self.engine.now, track_for_daemon(msg.dst), msg.fid
            )
        deliver(msg)

"""Simulated PRRTE: the PMIx reference runtime environment.

Provides what the paper's prototype needed from PRRTE: a distributed
virtual machine of one daemon per node (§III-A), a runtime messaging
layer between daemons, the generalized inter-daemon data-exchange
("grpcomm") used by PMIx fence and group operations, runtime-defined
process sets, and a prun-style launcher.
"""

from repro.prrte.rml import RoutingLayer, RmlMessage
from repro.prrte.grpcomm import GrpcommModule, GrpcommResult
from repro.prrte.dvm import Daemon, DVM
from repro.prrte.psets import PsetRegistry
from repro.prrte.launch import JobSpec, Launcher

__all__ = [
    "RoutingLayer",
    "RmlMessage",
    "GrpcommModule",
    "GrpcommResult",
    "Daemon",
    "DVM",
    "PsetRegistry",
    "JobSpec",
    "Launcher",
]

"""Generalized inter-daemon data exchange ("grpcomm").

This is the all-to-all substrate paper §III-A says PMIx groups and
fences ride on.  Two wire strategies are provided:

* ``"tree"`` (default): contributions flow up a radix tree rooted at the
  lowest participating node, the root optionally obtains a Process Group
  Context ID from the HNP, and the combined result is broadcast back
  down — the "three-stage hierarchical fashion" of the paper once the
  node-local gather done by the PMIx server is counted as stage one.
* ``"flat"``: every daemon sends its contribution directly to every
  other participant.  Kept as an ablation (DESIGN.md §4.3) to show why
  the hierarchy matters at scale.

Each daemon owns one :class:`GrpcommModule`; collective instances are
keyed by an opaque signature that all participants derive identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional

from repro.simtime.primitives import SimEvent
from repro.simtime.trace import track_for_daemon


@dataclass
class GrpcommResult:
    """Outcome of one allgather: merged payloads + optional context id.

    ``status`` is 0 on success; a nonzero (PMIx) status means the
    collective was abandoned — e.g. a participating daemon died — and
    ``data`` is not meaningful.
    """

    data: Dict[Any, Any]
    context_id: Optional[int] = None
    status: int = 0


@dataclass
class _Instance:
    sig: Hashable
    participants: List[int] = field(default_factory=list)
    need_context_id: bool = False
    contribution: Optional[Dict] = None
    child_payloads: Dict[int, Dict] = field(default_factory=dict)
    early_up: List[Dict] = field(default_factory=list)   # ups before contribute()
    early_flat: List[Dict] = field(default_factory=list)
    early_down: List[Dict] = field(default_factory=list)  # downs before contribute()
    flat_received: Dict[int, Dict] = field(default_factory=dict)
    completed: SimEvent = field(default_factory=SimEvent)
    up_sent: bool = False
    awaiting_pgcid: bool = False
    obs_span: int = 0                  # prrte.grpcomm.allgather span
    # Recovery mode: traffic from peers that already healed onto a
    # smaller participant list than ours — replayed once we restart.
    pending_restart: List[Dict] = field(default_factory=list)


class GrpcommModule:
    """Per-daemon collective engine. ``daemon`` supplies rml/node/dvm."""

    def __init__(self, daemon, mode: str = "tree", radix: int = 2) -> None:
        if mode not in ("tree", "flat"):
            raise ValueError(f"unknown grpcomm mode {mode!r}")
        if radix < 1:
            raise ValueError("radix must be >= 1")
        self.daemon = daemon
        self.mode = mode
        self.radix = radix
        self._instances: Dict[Hashable, _Instance] = {}
        # Signatures already completed/aborted: late or duplicated
        # messages for them (possible under fault injection) are ignored
        # instead of resurrecting an empty instance.
        self._done_sigs: set = set()
        # Recovery mode (docs/recovery.md): instead of failing in-flight
        # collectives on a daemon death, restart them over the healed
        # topology.  Set by Cluster(recovery=True).
        self.recovery = False
        self.restarts = 0
        # Completed results kept (recovery only) so a participant that
        # restarts after we already finished can be re-answered with the
        # *same* data and context id instead of hanging.
        self._results: Dict[Hashable, GrpcommResult] = {}

    # -- public API ------------------------------------------------------
    def allgather(
        self,
        sig: Hashable,
        participants: List[int],
        contribution: Dict,
        need_context_id: bool = False,
    ) -> SimEvent:
        """Contribute to collective ``sig`` over daemon nodes ``participants``.

        Returns an event that succeeds with a :class:`GrpcommResult` once
        every participant's payload (and the PGCID, if requested) has
        arrived at this daemon.
        """
        participants = sorted(participants)
        if self.recovery:
            # Exclude nodes this daemon already knows are dead; peers
            # that learn later converge via _restart_instance, and the
            # parts gating below keeps mismatched generations apart.
            participants = [
                n for n in participants
                if n == self.daemon.node or not self.daemon.is_node_down(n)
            ]
        if self.daemon.node not in participants:
            raise ValueError(
                f"daemon {self.daemon.node} not in participants {participants}"
            )
        inst = self._get(sig)
        if inst.contribution is not None:
            raise RuntimeError(f"duplicate contribution for signature {sig!r}")
        inst.participants = participants
        inst.need_context_id = need_context_id
        inst.contribution = dict(contribution)
        inst.obs_span = self.daemon.engine.tracer.begin(
            self.daemon.engine.now, track_for_daemon(self.daemon.node),
            "prrte.grpcomm.allgather", mode=self.mode,
            nodes=len(participants), cid=need_context_id,
        )
        # Replay any traffic that arrived before we knew the shape.
        for payload in inst.early_up:
            gate = self._parts_gate(inst, payload)
            if gate == "accept":
                self._accept_up(inst, payload)
            elif gate == "defer":
                inst.pending_restart.append(payload)
        inst.early_up.clear()
        for payload in inst.early_flat:
            if self._parts_gate(inst, payload) == "accept":
                self._accept_flat(inst, payload)
        inst.early_flat.clear()
        if inst.early_down:
            payload = inst.early_down[0]
            inst.early_down.clear()
            self._forward_down(inst, payload["data"], payload["context_id"])
            return inst.completed

        if len(participants) == 1:
            self._single_node_complete(inst)
        elif self.mode == "tree":
            self._try_send_up(inst)
        else:
            self._flat_broadcast(inst)
            self._check_flat_done(inst)
        return inst.completed

    # -- message handlers (called by the daemon's dispatcher) --------------
    def _parts_gate(self, inst: _Instance, payload: Dict) -> str:
        """Decide what to do with a contribution given its sender's view
        of the participant list (recovery mode only).

        Same list -> accept.  Sender healed onto a *smaller* list than
        ours -> defer (we have not processed the death yet; replay after
        our own restart).  Sender on a *larger* list -> drop: that is
        stale pre-death traffic, and the sender will resend once its own
        instance restarts.
        """
        if not self.recovery:
            return "accept"
        parts = payload.get("parts")
        if parts is None or list(parts) == list(inst.participants):
            return "accept"
        if len(parts) < len(inst.participants):
            return "defer"
        return "drop"

    def handle_up(self, msg) -> None:
        sig = msg.payload["sig"]
        if sig in self._done_sigs:
            if self.recovery and sig in self._results:
                # A peer restarted after we finished: re-answer with the
                # cached result so every survivor sees the same data and
                # context id.
                res = self._results[sig]
                self.daemon.send(
                    msg.payload["from_node"], "grpcomm_down",
                    {"sig": sig, "data": res.data, "context_id": res.context_id},
                )
            return
        inst = self._get(sig)
        if inst.contribution is None:
            inst.early_up.append(msg.payload)
            return
        gate = self._parts_gate(inst, msg.payload)
        if gate == "defer":
            inst.pending_restart.append(msg.payload)
            return
        if gate == "drop":
            return
        self._accept_up(inst, msg.payload)
        self._try_send_up(inst)

    def handle_down(self, msg) -> None:
        if msg.payload["sig"] in self._done_sigs:
            return
        inst = self._get(msg.payload["sig"])
        if inst.contribution is None:
            # Possible only under fault injection (delayed up + fast
            # path elsewhere); replayed when allgather() is called.
            inst.early_down.append(msg.payload)
            return
        self._forward_down(inst, msg.payload["data"], msg.payload["context_id"])

    def handle_flat(self, msg) -> None:
        if msg.payload["sig"] in self._done_sigs:
            return
        inst = self._get(msg.payload["sig"])
        if inst.contribution is None:
            inst.early_flat.append(msg.payload)
            return
        if self._parts_gate(inst, msg.payload) != "accept":
            return
        self._accept_flat(inst, msg.payload)
        self._check_flat_done(inst)

    def handle_pgcid_resp(self, msg) -> None:
        inst = self._instances.get(msg.payload["sig"])
        if inst is None or not inst.awaiting_pgcid:
            return
        inst.awaiting_pgcid = False
        self._root_dispatch(inst, msg.payload["context_id"])

    # -- tree mechanics ----------------------------------------------------
    def _index(self, inst: _Instance) -> int:
        return inst.participants.index(self.daemon.node)

    def _children(self, inst: _Instance) -> List[int]:
        idx = self._index(inst)
        n = len(inst.participants)
        lo = self.radix * idx + 1
        return [inst.participants[i] for i in range(lo, min(lo + self.radix, n))]

    def _parent(self, inst: _Instance) -> Optional[int]:
        idx = self._index(inst)
        if idx == 0:
            return None
        return inst.participants[(idx - 1) // self.radix]

    def _accept_up(self, inst: _Instance, payload: Dict) -> None:
        inst.child_payloads[payload["from_node"]] = payload["data"]

    def _try_send_up(self, inst: _Instance) -> None:
        if inst.up_sent or inst.contribution is None:
            return
        children = self._children(inst)
        if any(ch not in inst.child_payloads for ch in children):
            return
        combined: Dict = dict(inst.contribution)
        for ch in children:
            combined.update(inst.child_payloads[ch])
        inst.up_sent = True
        parent = self._parent(inst)
        if parent is None:
            self._root_complete(inst, combined)
        else:
            payload = {"sig": inst.sig, "from_node": self.daemon.node, "data": combined}
            if self.recovery:
                # Only in recovery mode: the extra field changes the
                # wire size, and non-recovery timing must stay byte-
                # identical to the pre-recovery code path.
                payload["parts"] = list(inst.participants)
            self.daemon.send(parent, "grpcomm_up", payload)

    def _root_complete(self, inst: _Instance, combined: Dict) -> None:
        inst.child_payloads["__combined__"] = combined
        if inst.need_context_id:
            hnp = self.daemon.dvm.hnp_node
            if self.daemon.node == hnp:
                pgcid = self.daemon.dvm.allocate_pgcid()
                delay = self.daemon.machine.pgcid_allocate_cost
                self.daemon.engine.call_later(
                    delay, lambda: self._root_dispatch(inst, pgcid)
                )
            else:
                inst.awaiting_pgcid = True
                self.daemon.send(hnp, "pgcid_req", {"sig": inst.sig, "reply_to": self.daemon.node})
        else:
            self._root_dispatch(inst, None)

    def _root_dispatch(self, inst: _Instance, context_id: Optional[int]) -> None:
        combined = inst.child_payloads["__combined__"]
        self._forward_down(inst, combined, context_id)

    def _forward_down(self, inst: _Instance, data: Dict, context_id: Optional[int]) -> None:
        if self.mode == "tree":
            targets = list(self._children(inst))
            if self.recovery and not inst.up_sent:
                # Completing via a down without ever having sent our up
                # (possible only around a restart): our healed parent is
                # still waiting for us, so push the result to it too.
                # Downs for finished signatures are ignored, so this can
                # only unstick the spine, never corrupt it.
                parent = self._parent(inst)
                if parent is not None:
                    targets.append(parent)
            for ch in targets:
                self.daemon.send(
                    ch, "grpcomm_down", {"sig": inst.sig, "data": data, "context_id": context_id}
                )
        self._complete(inst, GrpcommResult(data=data, context_id=context_id))

    # -- flat mechanics ------------------------------------------------------
    def _flat_broadcast(self, inst: _Instance) -> None:
        for node in inst.participants:
            if node != self.daemon.node:
                payload = {"sig": inst.sig, "from_node": self.daemon.node,
                           "data": inst.contribution}
                if self.recovery:
                    payload["parts"] = list(inst.participants)
                self.daemon.send(node, "grpcomm_flat", payload)

    def _accept_flat(self, inst: _Instance, payload: Dict) -> None:
        inst.flat_received[payload["from_node"]] = payload["data"]

    def _check_flat_done(self, inst: _Instance) -> None:
        others = [n for n in inst.participants if n != self.daemon.node]
        if any(n not in inst.flat_received for n in others):
            return
        combined: Dict = dict(inst.contribution or {})
        for data in inst.flat_received.values():
            combined.update(data)
        if inst.need_context_id:
            # Flat mode still needs one authoritative PGCID: the lowest
            # participant asks the HNP and redistributes.
            root = inst.participants[0]
            if self.daemon.node == root:
                inst.child_payloads["__combined__"] = combined
                self._root_complete_flat(inst)
            # Non-roots wait for the root's grpcomm_down carrying the id.
            else:
                inst.child_payloads["__combined__"] = combined
        else:
            self._complete(inst, GrpcommResult(data=combined))

    def _root_complete_flat(self, inst: _Instance) -> None:
        hnp = self.daemon.dvm.hnp_node
        if self.daemon.node == hnp:
            pgcid = self.daemon.dvm.allocate_pgcid()
            self.daemon.engine.call_later(
                self.daemon.machine.pgcid_allocate_cost,
                lambda: self._flat_distribute(inst, pgcid),
            )
        else:
            inst.awaiting_pgcid = True
            self.daemon.send(hnp, "pgcid_req", {"sig": inst.sig, "reply_to": self.daemon.node})

    def _flat_distribute(self, inst: _Instance, pgcid: int) -> None:
        combined = inst.child_payloads["__combined__"]
        for node in inst.participants:
            if node != self.daemon.node:
                self.daemon.send(
                    node, "grpcomm_down", {"sig": inst.sig, "data": combined, "context_id": pgcid}
                )
        self._complete(inst, GrpcommResult(data=combined, context_id=pgcid))

    # -- shared ---------------------------------------------------------------
    def _single_node_complete(self, inst: _Instance) -> None:
        combined = dict(inst.contribution or {})
        inst.child_payloads["__combined__"] = combined
        if inst.need_context_id:
            self._root_complete(inst, combined)
        else:
            self._complete(inst, GrpcommResult(data=combined))

    def _complete(self, inst: _Instance, result: GrpcommResult) -> None:
        if self.mode == "flat" and inst.need_context_id and result.context_id is None:
            # Flat non-root: completion happens via the root's grpcomm_down.
            return
        self._instances.pop(inst.sig, None)
        self._done_sigs.add(inst.sig)
        if self.recovery and result.status == 0:
            self._results[inst.sig] = result
        self.daemon.engine.tracer.end(self.daemon.engine.now, inst.obs_span)
        inst.completed.succeed(result)

    def _get(self, sig: Hashable) -> _Instance:
        inst = self._instances.get(sig)
        if inst is None:
            inst = _Instance(sig=sig)
            self._instances[sig] = inst
        return inst

    # -- fault handling ----------------------------------------------------
    def node_down(self, node: int) -> None:
        """A participating daemon died.

        Default: every in-flight instance whose participant list names
        the dead node completes with an error status — the PMIx server
        above translates that into error releases for its waiting
        clients.  In recovery mode (tree only) the instance instead
        *restarts* over the healed topology and completes normally,
        with the dead node's procs marked aborted in the result.
        """
        from repro.pmix.types import PMIX_ERR_PROC_ABORTED

        for sig, inst in list(self._instances.items()):
            if not inst.participants or node not in inst.participants:
                continue
            if self.recovery and self.mode == "tree" and inst.contribution is not None:
                self._restart_instance(inst, node)
                continue
            self._instances.pop(sig, None)
            self._done_sigs.add(sig)
            self.daemon.engine.tracer.end(self.daemon.engine.now, inst.obs_span)
            if not inst.completed.triggered:
                inst.completed.succeed(
                    GrpcommResult(data={}, status=PMIX_ERR_PROC_ABORTED)
                )

    def _restart_instance(self, inst: _Instance, down: int) -> None:
        """Re-run an in-flight collective over the survivors.

        Every survivor independently derives the same healed participant
        list, resets its up/flat state, substitutes aborted markers for
        the dead node's procs, and replays the reduction.  Deferred
        contributions from peers that healed before us are replayed;
        stale pre-death traffic is discarded by the parts gating.
        """
        from repro.pmix.types import ABORTED_MARKER, PmixProc

        inst.participants = [n for n in inst.participants if n != down]
        inst.up_sent = False
        inst.awaiting_pgcid = False
        inst.child_payloads = {}
        inst.flat_received = {}
        self.restarts += 1
        tr = self.daemon.engine.tracer
        if tr.enabled:
            tr.event(self.daemon.engine.now, track_for_daemon(self.daemon.node),
                     "recovery.grpcomm.restart", sig=str(inst.sig), down=down,
                     survivors=len(inst.participants))
        # Stand in aborted markers for the dead node's procs so the
        # merged result names them as failed.  Every survivor injects
        # the same markers, so dict merges stay consistent.
        server = self.daemon.pmix_server
        if server is not None and inst.contribution is not None:
            nspaces = {p.nspace for p in inst.contribution
                       if hasattr(p, "nspace")}
            for nspace, rank_map in sorted(server.job_maps.items()):
                if nspaces and nspace not in nspaces:
                    continue
                for rank in sorted(rank_map):
                    if rank_map[rank] == down:
                        inst.contribution[PmixProc(nspace, rank)] = ABORTED_MARKER
        pending, inst.pending_restart = inst.pending_restart, []
        for payload in pending:
            gate = self._parts_gate(inst, payload)
            if gate == "accept":
                self._accept_up(inst, payload)
            elif gate == "defer":
                inst.pending_restart.append(payload)
        if len(inst.participants) == 1:
            self._single_node_complete(inst)
        else:
            self._try_send_up(inst)

    def abort_sig(self, sig: Hashable) -> None:
        """Abandon one signature (server-side collective timeout)."""
        self._instances.pop(sig, None)
        self._done_sigs.add(sig)

"""Runtime-defined process sets.

A process set is *just a name for a list of processes* (paper §III-B6);
PRRTE owns the registry and PMIx queries read it.  The MPI layer adds
its reserved names (``mpi://world`` etc.) on top of whatever the user or
site configured at launch time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.pmix.types import PmixProc


class PsetRegistry:
    """Name -> ordered tuple of :class:`PmixProc` members."""

    def __init__(self) -> None:
        self._sets: Dict[str, Tuple[PmixProc, ...]] = {}

    def define(self, name: str, members: Iterable[PmixProc]) -> None:
        """Register a process set; redefining an existing name is an error."""
        if not name:
            raise ValueError("process set name must be non-empty")
        if name in self._sets:
            raise ValueError(f"process set {name!r} already defined")
        members = tuple(members)
        if len(set(members)) != len(members):
            raise ValueError(f"process set {name!r} has duplicate members")
        self._sets[name] = members

    def undefine(self, name: str) -> None:
        self._sets.pop(name, None)

    def evict(self, proc: PmixProc) -> List[str]:
        """Remove a dead process from every set (idempotent).

        Returns the names of the sets that changed.  Sets may become
        empty but keep their names — queries stay answerable and all
        servers (which share this registry) see the same membership.
        """
        changed = []
        for name, members in self._sets.items():
            if proc in members:
                self._sets[name] = tuple(p for p in members if p != proc)
                changed.append(name)
        return changed

    def names(self) -> List[str]:
        return sorted(self._sets)

    def count(self) -> int:
        return len(self._sets)

    def members(self, name: str) -> Optional[Tuple[PmixProc, ...]]:
        return self._sets.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._sets

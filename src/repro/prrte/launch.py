"""prun-style job launcher.

Creates a namespace for the job, replicates the job map and job-level
info to every node's PMIx server, registers runtime-defined process
sets, and instantiates one PMIx client per rank.  The MPI layer builds
its world on top of the returned :class:`Job`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.machine.topology import Topology
from repro.pmix.client import PmixClient
from repro.pmix.types import PMIX_JOB_SIZE, PMIX_LOCAL_PEERS, PMIX_UNIV_SIZE, PmixProc
from repro.prrte.dvm import DVM
from repro.prrte.psets import PsetRegistry


@dataclass
class JobSpec:
    """What prun was asked to start."""

    num_ranks: int
    ppn: int
    psets: Dict[str, Sequence[int]] = field(default_factory=dict)  # name -> ranks
    nspace: Optional[str] = None


@dataclass
class Job:
    nspace: str
    topology: Topology
    clients: List[PmixClient]

    def __post_init__(self) -> None:
        # One shared identifier object per rank: process ids are hashed
        # on every message and collective, so they are interned per job.
        self._procs = tuple(
            PmixProc(self.nspace, r) for r in range(self.topology.num_ranks)
        )

    @property
    def num_ranks(self) -> int:
        return self.topology.num_ranks

    @property
    def all_procs(self) -> tuple:
        return self._procs

    def proc(self, rank: int) -> PmixProc:
        return self._procs[rank]

    def client(self, rank: int) -> PmixClient:
        return self.clients[rank]


class Launcher:
    """Maps a :class:`JobSpec` onto a booted :class:`DVM`."""

    def __init__(self, dvm: DVM, psets: PsetRegistry) -> None:
        self.dvm = dvm
        self.psets = psets

    def launch(self, spec: JobSpec) -> Job:
        topo = Topology(spec.num_ranks, spec.ppn)
        if topo.num_nodes > self.dvm.machine.num_nodes:
            raise ValueError(
                f"job needs {topo.num_nodes} nodes but machine has "
                f"{self.dvm.machine.num_nodes}"
            )
        nspace = spec.nspace or self.dvm.next_job_name()
        rank_to_node = {r: topo.node_of(r) for r in range(topo.num_ranks)}
        job_info = {
            PMIX_JOB_SIZE: topo.num_ranks,
            PMIX_UNIV_SIZE: topo.num_ranks,
            "pmix.node.map": rank_to_node,
        }
        clients: List[PmixClient] = []
        for node in range(topo.num_nodes):
            server = self.dvm.server_for(node)
            local_ranks = topo.ranks_on_node(node)
            info = dict(job_info)
            info[PMIX_LOCAL_PEERS] = local_ranks
            server.register_namespace(nspace, rank_to_node, info)
        # Servers on nodes not used by this job still need the map for
        # event forwarding and dmodex routing.
        for node in range(topo.num_nodes, self.dvm.machine.num_nodes):
            self.dvm.server_for(node).register_namespace(nspace, rank_to_node, job_info)
        for rank in range(topo.num_ranks):
            server = self.dvm.server_for(topo.node_of(rank))
            clients.append(PmixClient(PmixProc(nspace, rank), server))
        for name, ranks in spec.psets.items():
            self.psets.define(name, [PmixProc(nspace, r) for r in ranks])
        tr = self.dvm.engine.tracer
        if tr.enabled:
            from repro.simtime.trace import track_for_daemon

            tr.event(self.dvm.engine.now, track_for_daemon(self.dvm.hnp_node),
                     "prrte.dvm.launch", nspace=nspace,
                     ranks=topo.num_ranks, nodes=topo.num_nodes)
        return Job(nspace=nspace, topology=topo, clients=clients)

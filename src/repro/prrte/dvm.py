"""The distributed virtual machine: one daemon per node plus the HNP.

The DVM boots before any job runs (the paper launched with the ``prte``
daemon and ``prun``).  Daemon 0 doubles as the Head Node Process (HNP),
which owns the global PGCID allocator — the "resource manager" that the
PMIx group extension says assigns the unique 64-bit context ids.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional

from repro.machine.model import MachineModel
from repro.prrte.grpcomm import GrpcommModule
from repro.prrte.rml import RmlMessage, RoutingLayer
from repro.simtime.engine import Engine
from repro.simtime.trace import track_for_daemon


class Daemon:
    """Per-node runtime daemon: RML endpoint + grpcomm + local PMIx server."""

    def __init__(
        self,
        dvm: "DVM",
        node: int,
        grpcomm_mode: str = "tree",
        grpcomm_radix: int = 2,
    ) -> None:
        self.dvm = dvm
        self.node = node
        self.engine: Engine = dvm.engine
        self.machine: MachineModel = dvm.machine
        self.grpcomm = GrpcommModule(self, mode=grpcomm_mode, radix=grpcomm_radix)
        self.pmix_server = None  # attached by PmixServer.__init__
        self.alive = True
        self.known_down: set = set()   # nodes this daemon knows are dead
        self.heals = 0                 # routing-tree re-parent events here
        self._handlers: Dict[str, Callable[[RmlMessage], None]] = {
            "grpcomm_up": self.grpcomm.handle_up,
            "grpcomm_down": self.grpcomm.handle_down,
            "grpcomm_flat": self.grpcomm.handle_flat,
            "pgcid_req": self._handle_pgcid_req,
            "pgcid_resp": self.grpcomm.handle_pgcid_resp,
            "pub_put": self._handle_pub_put,
            "pub_lookup": self._handle_pub_lookup,
            "pub_unpublish": self._handle_pub_unpublish,
            "daemon_down": self._handle_daemon_down,
        }
        dvm.rml.register(node, self.deliver)

    def send(self, dst_node: int, tag: str, payload: Dict[str, Any]) -> None:
        self.dvm.rml.send(RmlMessage(src=self.node, dst=dst_node, tag=tag, payload=payload))

    def deliver(self, msg: RmlMessage) -> None:
        handler = self._handlers.get(msg.tag)
        if handler is None:
            raise KeyError(f"daemon {self.node}: no handler for tag {msg.tag!r}")
        handler(msg)

    def add_handler(self, tag: str, handler: Callable[[RmlMessage], None]) -> None:
        """Register an extra dispatch tag (used by the PMIx server)."""
        if tag in self._handlers:
            raise ValueError(f"handler for {tag!r} already registered")
        self._handlers[tag] = handler

    # -- daemon failure propagation ---------------------------------------
    def is_node_down(self, node: int) -> bool:
        return node in self.known_down

    def _handle_daemon_down(self, msg: RmlMessage) -> None:
        self.daemon_down(msg.payload["node"])

    # -- healed routing tree (docs/recovery.md) ----------------------------
    def survivors(self) -> List[int]:
        """Node ids this daemon believes are alive, sorted."""
        return [n for n in range(self.machine.num_nodes) if n not in self.known_down]

    def tree_parent(self) -> Optional[int]:
        """This daemon's parent in the radix tree over the survivor list.

        Every survivor computes the same sorted survivor list, so the
        healed topology is a deterministic function of the death set —
        no election protocol needed.  Returns ``None`` at the root.
        """
        alive = self.survivors()
        idx = alive.index(self.node)
        if idx == 0:
            return None
        return alive[(idx - 1) // self.grpcomm.radix]

    def tree_children(self) -> List[int]:
        """This daemon's children in the healed radix tree."""
        alive = self.survivors()
        idx = alive.index(self.node)
        radix = self.grpcomm.radix
        lo = radix * idx + 1
        return alive[lo:lo + radix]

    def daemon_down(self, down: int) -> None:
        """Learn (and relay) that a daemon died.

        The announcement fans out over a static radix tree rooted at the
        HNP (grpcomm's radix, over all node ids) — each daemon relays to
        its tree children, then repairs its own state: in-flight grpcomm
        instances involving the dead node complete with an error (or
        restart over the survivors, in recovery mode), and the local
        PMIx server evicts the node's procs.
        """
        if down in self.known_down:
            return
        old_parent = self.tree_parent() if self.alive else None
        self.known_down.add(down)
        if self.alive and self.node not in self.known_down:
            new_parent = self.tree_parent()
            if new_parent != old_parent:
                # This daemon was re-parented by the healed topology.
                self.heals += 1
                tr = self.engine.tracer
                if tr.enabled:
                    tr.event(self.engine.now, track_for_daemon(self.node),
                             "recovery.heal", down=down,
                             old_parent=old_parent, new_parent=new_parent)
        # Relay to tree children; a dead child's subtree is adopted (its
        # children are contacted directly) so the announcement reaches
        # every survivor.
        radix = self.grpcomm.radix
        n = self.machine.num_nodes
        stack = list(range(radix * self.node + 1, min(radix * self.node + 1 + radix, n)))
        while stack:
            child = stack.pop(0)
            if child == down or child in self.known_down:
                stack.extend(range(radix * child + 1, min(radix * child + 1 + radix, n)))
            else:
                self.send(child, "daemon_down", {"node": down})
        self.grpcomm.node_down(down)
        if self.pmix_server is not None:
            self.pmix_server.node_down(down)

    # -- HNP services -----------------------------------------------------
    def _require_hnp(self) -> None:
        if self.node != self.dvm.hnp_node:
            raise RuntimeError("publish/lookup request routed to non-HNP daemon")

    def _handle_pub_put(self, msg: RmlMessage) -> None:
        """PMIx_Publish: store on the HNP's board; wake pending lookups."""
        self._require_hnp()
        key = msg.payload["key"]
        self.dvm.published[key] = msg.payload["value"]
        for reply_to, req_id in self.dvm.pending_lookups.pop(key, []):
            self.send(reply_to, "pub_resp",
                      {"req_id": req_id, "found": True, "value": msg.payload["value"]})

    def _handle_pub_lookup(self, msg: RmlMessage) -> None:
        """PMIx_Lookup: answer immediately, or queue if wait requested."""
        self._require_hnp()
        key = msg.payload["key"]
        if key in self.dvm.published:
            self.send(msg.payload["reply_to"], "pub_resp",
                      {"req_id": msg.payload["req_id"], "found": True,
                       "value": self.dvm.published[key]})
        elif msg.payload.get("wait"):
            self.dvm.pending_lookups.setdefault(key, []).append(
                (msg.payload["reply_to"], msg.payload["req_id"])
            )
        else:
            self.send(msg.payload["reply_to"], "pub_resp",
                      {"req_id": msg.payload["req_id"], "found": False, "value": None})

    def _handle_pub_unpublish(self, msg: RmlMessage) -> None:
        self._require_hnp()
        self.dvm.published.pop(msg.payload["key"], None)

    def _handle_pgcid_req(self, msg: RmlMessage) -> None:
        if self.node != self.dvm.hnp_node:
            raise RuntimeError("pgcid_req routed to non-HNP daemon")
        pgcid = self.dvm.allocate_pgcid()

        def respond() -> None:
            self.send(
                msg.payload["reply_to"],
                "pgcid_resp",
                {"sig": msg.payload["sig"], "context_id": pgcid},
            )

        self.engine.call_later(self.machine.pgcid_allocate_cost, respond)


class DVM:
    """The booted runtime: daemons on every node, HNP on node 0."""

    def __init__(
        self,
        engine: Engine,
        machine: MachineModel,
        grpcomm_mode: str = "tree",
        grpcomm_radix: int = 2,
    ) -> None:
        self.engine = engine
        self.machine = machine
        self.rml = RoutingLayer(engine, machine)
        self.hnp_node = 0
        self._pgcid_counter = itertools.count(1)  # PGCIDs are non-zero
        self.pgcids_allocated = 0
        self.daemons: List[Daemon] = [
            Daemon(self, node, grpcomm_mode, grpcomm_radix)
            for node in range(machine.num_nodes)
        ]
        self._job_counter = itertools.count(1)
        self.fence_retries = 0   # survivor-reissued fences (recovery mode)
        self.boot_time = self._model_boot_time()
        # PMIx publish/lookup board, owned by the HNP.
        self.published: Dict[str, Any] = {}
        self.pending_lookups: Dict[str, List] = {}

    def _model_boot_time(self) -> float:
        """Simulated DVM bootstrap cost (daemons wire up over a tree)."""
        import math

        n = self.machine.num_nodes
        rounds = max(1, math.ceil(math.log2(n + 1)))
        return self.machine.daemon_wireup_cost * rounds

    def allocate_pgcid(self) -> int:
        """Allocate the next 64-bit process-group context id (HNP-only)."""
        self.pgcids_allocated += 1
        pgcid = next(self._pgcid_counter)
        tr = self.engine.tracer
        if tr.enabled:
            from repro.simtime.trace import track_for_daemon

            tr.event(self.engine.now, track_for_daemon(self.hnp_node),
                     "prrte.hnp.pgcid_alloc", pgcid=pgcid)
        return pgcid

    def announce_daemon_down(self, node: int) -> None:
        """HNP detected a dead daemon; start the xcast at the tree root."""
        self.daemon_for(self.hnp_node).daemon_down(node)

    def next_job_name(self) -> str:
        return f"prrte-job-{next(self._job_counter)}"

    def daemon_for(self, node: int) -> Daemon:
        return self.daemons[node]

    def server_for(self, node: int):
        server = self.daemons[node].pmix_server
        if server is None:
            raise RuntimeError(f"no PMIx server attached on node {node}")
        return server

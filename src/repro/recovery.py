"""Chaos-soak scenario for the fault-recovery layer (docs/recovery.md).

One :func:`soak_run` boots a recovery-enabled cluster, installs a
seed-deterministic *survivable* fault plan (lossy RML links plus timed
proc/node kills), and runs a rank program that rides the faults out:

    compute loop -> damage detected -> revoke -> agree -> shrink ->
    allreduce over the shrunk communicator.

The acceptance contract (ISSUE.md): every run completes in bounded
simulated time, every fence that saw PROC_ABORTED was retried by the
survivors, the shrunk communicator has a fresh CID spanning exactly the
survivors, and the final allreduce result is correct.  The whole run is
deterministic per seed — same seed, same trace, same digest.

Shared by ``tools/run_recovery.py`` (the chaos-soak CLI) and
``tests/recovery/test_soak.py`` (the seed-swept property test).
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Any, Dict, Optional

from repro.api import SimSpec, make_world
from repro.faults import FaultPlan, random_plan
from repro.machine.presets import laptop
from repro.ompi.constants import SUM
from repro.ompi.errors import ERRORS_RETURN, MPIErrProcFailed, MPIErrRevoked
from repro.simtime.process import Sleep

# Timeline (seconds of simulated time).  mpi_init for 8 ranks on the
# laptop preset ends near t=0.003, so the fault window opens mid-way
# through the compute loop, and T_SAFE sits past the window plus the
# failure detection latency: by T_SAFE every survivor has observed
# every death.
FAULT_START = 0.05
FAULT_HORIZON = 0.05
T_SAFE = 0.15
# One 0.5s collective timeout plus a full retry must fit comfortably.
SIM_BOUND = 3.0
# Fixed iteration count (not wall-clock) keeps all ranks in lock-step:
# ~70 * (allreduce + 2ms sleep) spans [~0.003, ~0.145], covering the
# fault window for every rank without time-based divergence.
LOOP_ITERS = 70


def _soak_main(mpi, t_safe: float):
    """The rank program: compute until damaged, then recover."""
    world = yield from mpi.mpi_init()
    world.set_errhandler(ERRORS_RETURN)
    damaged = False
    for _ in range(LOOP_ITERS):
        if world.failed_peers or world.revoked:
            damaged = True
            break
        try:
            yield from world.allreduce(1, op=SUM)
        except (MPIErrProcFailed, MPIErrRevoked):
            damaged = True
            break
        yield Sleep(2.0e-3)
    if damaged:
        world.revoke()
    # Let the fault window close so all survivors agree on the damage.
    while mpi.wtime() < t_safe:
        yield Sleep(1.0e-3)
    flag = yield from world.agree(True)
    shrunk = yield from world.shrink()
    total = yield from shrunk.allreduce(shrunk.rank, op=SUM)
    expected = shrunk.size * (shrunk.size - 1) // 2
    return {
        "rank": mpi.rank_in_job,
        "damaged": damaged,
        "flag": flag,
        "shrunk_size": shrunk.size,
        "shrunk_cid": shrunk.local_cid,
        "world_cid": world.local_cid,
        "sum": total,
        "ok": bool(flag) and total == expected,
    }


def soak_plan(seed: int, *, num_ranks: int, num_nodes: int,
              with_node_kill: bool = True, lossy: bool = True,
              partition_safe: bool = False) -> FaultPlan:
    """The per-seed fault plan: a survivable random plan, plus (so every
    soak run exercises the full recovery stack, per the acceptance
    criteria) one guaranteed lossy RML link and one guaranteed non-HNP
    node kill inside the fault window.

    ``partition_safe=True`` draws from the restricted action pool that
    ``repro.dsim`` can replicate deterministically: timed kills only (no
    ``after_count`` triggers, which count messages globally) and
    src-pinned lossy RML links (so exactly one partition observes each
    matching message).  Still seed-deterministic and survivable."""
    if partition_safe:
        rng = random.Random(seed)
        plan = FaultPlan()
        # Timed rank kills drawn from the upper ranks (rank 0 survives:
        # it anchors the shrink results the record asserts on).
        for _ in range(1 + rng.randrange(2)):
            plan.kill_proc(rng.randrange(1, num_ranks),
                           at_time=FAULT_START + rng.random() * FAULT_HORIZON)
        if lossy:
            for _ in range(1 + rng.randrange(2)):
                plan.lossy_link(0.15, seed=seed ^ 0x5EED, layer="rml",
                                src=rng.randrange(num_nodes),
                                at_time=FAULT_START, max_hits=4)
        if with_node_kill and num_nodes > 1:
            plan.kill_node(1 + seed % (num_nodes - 1),
                           at_time=FAULT_START + 0.4 * FAULT_HORIZON)
        return plan
    plan = random_plan(
        seed,
        survivable=True,
        num_ranks=num_ranks,
        num_nodes=num_nodes,
        start_at=FAULT_START,
        horizon=FAULT_HORIZON,
        n_actions=5,
    )
    if lossy:
        plan.lossy_link(0.15, seed=seed ^ 0x5EED, layer="rml",
                        at_time=FAULT_START, max_hits=8)
    if with_node_kill and num_nodes > 1:
        plan.kill_node(1 + seed % (num_nodes - 1),
                       at_time=FAULT_START + 0.4 * FAULT_HORIZON)
    return plan


def soak_run(
    seed: int,
    *,
    num_nodes: int = 4,
    num_ranks: int = 8,
    with_node_kill: bool = True,
    lossy: bool = True,
    config=None,
    tracer=None,
    return_world: bool = False,
    engine_compat: bool = False,
    partitions: int = 1,
    partition_safe: bool = False,
) -> Dict[str, Any]:
    """One chaos-soak run.  Returns a deterministic result record;
    ``result["ok"]`` is the pass/fail verdict.  ``return_world=True``
    additionally returns the (quiesced) world, for post-mortem
    inspection — metric harvesting, trace export.  ``engine_compat``
    selects the pure-heap reference scheduler; the digest must come out
    identical either way (tested).

    ``partitions=N`` runs the soak across N worker processes
    (``repro.dsim``); this requires ``partition_safe=True`` (the default
    plan's message-count triggers are rejected) and produces a record —
    digest included — identical to the ``partitions=1`` run of the same
    arguments."""
    if partitions > 1:
        return _soak_run_partitioned(
            seed, num_nodes=num_nodes, num_ranks=num_ranks,
            with_node_kill=with_node_kill, lossy=lossy, config=config,
            tracer=tracer, return_world=return_world,
            engine_compat=engine_compat, partitions=partitions,
            partition_safe=partition_safe)
    world = make_world(spec=SimSpec(
        nprocs=num_ranks,
        machine=laptop(num_nodes=num_nodes),
        ppn=max(1, num_ranks // num_nodes),
        config=config,
        tracer=tracer,
        recovery=True,
        recovery_seed=seed,
        engine_compat=engine_compat,
    ))
    cluster = world.cluster
    plan = soak_plan(seed, num_ranks=num_ranks, num_nodes=num_nodes,
                     with_node_kill=with_node_kill, lossy=lossy,
                     partition_safe=partition_safe)
    cluster.faults.install(plan)

    procs = world.spawn_ranks(_soak_main, args=(T_SAFE,))
    world.run()
    t_end = cluster.now
    bounded = t_end < SIM_BOUND

    dead = cluster.faults.dead_procs
    dead_ranks = sorted(r for r in range(num_ranks)
                        if world.job.proc(r) in dead)
    expected_size = num_ranks - len(dead_ranks)

    errors = []
    results = []
    for rank, p in enumerate(procs):
        if world.job.proc(rank) in dead:
            continue
        if p.exception is not None:
            errors.append(f"rank {rank}: {type(p.exception).__name__}: {p.exception}")
        else:
            results.append(p.result)

    sizes = sorted({r["shrunk_size"] for r in results})
    fresh_cids = all(r["shrunk_cid"] != r["world_cid"] for r in results)
    ok = (
        bounded
        and not errors
        and len(results) == expected_size
        and all(r["ok"] for r in results)
        and sizes == [expected_size]
        and fresh_cids
    )

    rml = cluster.dvm.rml
    record = {
        "seed": seed,
        "ok": ok,
        "bounded": bounded,
        "t_end": t_end,
        "dead_ranks": dead_ranks,
        "survivors": len(results),
        "shrunk_sizes": sizes,
        "fresh_cids": fresh_cids,
        "errors": errors,
        "fence_retries": cluster.dvm.fence_retries,
        "retransmits": rml.retransmits,
        "dup_suppressed": rml.dup_suppressed,
        "retry_exhausted": rml.retry_exhausted,
        "reparents": sum(d.heals for d in cluster.dvm.daemons),
        "grpcomm_restarts": sum(d.grpcomm.restarts for d in cluster.dvm.daemons),
        "revokes": cluster.recovery_stats.get("revoke", 0),
        "agrees": cluster.recovery_stats.get("agree", 0),
        "shrinks": cluster.recovery_stats.get("shrink", 0),
        "events": cluster.engine.events_executed,
    }
    record["digest"] = digest(record)
    if return_world:
        return record, world
    return record


def _soak_run_partitioned(
    seed: int,
    *,
    num_nodes: int,
    num_ranks: int,
    with_node_kill: bool,
    lossy: bool,
    config,
    tracer,
    return_world: bool,
    engine_compat: bool,
    partitions: int,
    partition_safe: bool,
) -> Dict[str, Any]:
    from repro import dsim

    if return_world:
        raise dsim.PartitionError(
            "return_world is meaningless for a partitioned soak: each "
            "worker process owns its own world replica")
    if tracer is not None:
        raise dsim.PartitionError(
            "pass no tracer to a partitioned soak (repro.dsim builds "
            "per-worker tracers)")
    if engine_compat:
        raise dsim.PartitionError(
            "engine_compat runs on the reference scheduler, which has no "
            "window-bounded execution; use partitions=1")
    plan = soak_plan(seed, num_ranks=num_ranks, num_nodes=num_nodes,
                     with_node_kill=with_node_kill, lossy=lossy,
                     partition_safe=partition_safe)
    spec = SimSpec(
        nprocs=num_ranks,
        machine=laptop(num_nodes=num_nodes),
        ppn=max(1, num_ranks // num_nodes),
        config=config,
        recovery=True,
        recovery_seed=seed,
        partitions=partitions,
    )
    res = dsim.run_partitioned(spec, _soak_main, args=(T_SAFE,), plan=plan)

    t_end = res.t_end
    bounded = t_end < SIM_BOUND
    dead_ranks = res.dead_ranks
    dead_set = set(dead_ranks)
    expected_size = num_ranks - len(dead_ranks)

    # Mirror the serial record construction exactly (rank order, dead
    # ranks skipped, identical error strings) so digests compare equal.
    errors = []
    results = []
    for rank in range(num_ranks):
        if rank in dead_set:
            continue
        if rank in res.failures:
            tname, msg = res.failures[rank]
            errors.append(f"rank {rank}: {tname}: {msg}")
        elif rank in res.results:
            results.append(res.results[rank])

    sizes = sorted({r["shrunk_size"] for r in results})
    fresh_cids = all(r["shrunk_cid"] != r["world_cid"] for r in results)
    ok = (
        bounded
        and not errors
        and len(results) == expected_size
        and all(r["ok"] for r in results)
        and sizes == [expected_size]
        and fresh_cids
    )

    c = res.counters
    record = {
        "seed": seed,
        "ok": ok,
        "bounded": bounded,
        "t_end": t_end,
        "dead_ranks": dead_ranks,
        "survivors": len(results),
        "shrunk_sizes": sizes,
        "fresh_cids": fresh_cids,
        "errors": errors,
        "fence_retries": c["dvm.fence_retries"],
        "retransmits": c["rml.retransmits"],
        "dup_suppressed": c["rml.dup_suppressed"],
        "retry_exhausted": c["rml.retry_exhausted"],
        "reparents": c["dvm.heals"],
        "grpcomm_restarts": c["dvm.grpcomm_restarts"],
        "revokes": c["recovery_stats"].get("revoke", 0),
        "agrees": c["recovery_stats"].get("agree", 0),
        "shrinks": c["recovery_stats"].get("shrink", 0),
        "events": res.events,
    }
    record["digest"] = digest(record)
    return record


def digest(record: Dict[str, Any]) -> str:
    """Canonical sha256 over a result record (minus any digest field):
    two runs of the same seed must produce the same digest."""
    clean = {k: v for k, v in record.items() if k != "digest"}
    blob = json.dumps(clean, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()

"""Generator-based simulated processes.

A simulated process is a Python generator that ``yield``-s *effect*
objects; the trampoline in :class:`SimProcess` interprets each effect
against the :class:`~repro.simtime.engine.Engine`.  Sub-routines compose
with ``yield from`` and return values with ``return``:

    def worker(env):
        yield Sleep(1e-6)              # advance simulated time
        value = yield Wait(event)      # block on an event
        child = yield Spawn(other())   # start a concurrent process
        result = yield Join(child)     # wait for it and get its result
        return result

Unhandled exceptions in a process abort the whole simulation run unless
another process ``Join``-s it (or :meth:`SimProcess.defuse` is called),
in which case the exception is re-raised at the join site.  This makes
protocol bugs fail loudly while still supporting deliberate failure
injection in the fault-tolerance demos.

Two trampoline implementations share these semantics
(docs/performance.md):

* the **fast path** (default) dispatches on the effect's exact class
  (``Sleep`` and ``Wait`` first — they dominate every workload), resumes
  via pre-bound methods instead of per-suspension lambdas, and lands
  zero-delay resumptions on the engine's ready lane; and
* the **reference path**, selected by ``Engine(compat=True)``: the
  original isinstance-chain interpreter scheduling through closures on
  the pure heap.

Both produce identical event orderings — the golden-trace equivalence
tests prove it.  The module-level :data:`NOW`, :data:`SELF` and
:data:`SLEEP0` singletons exist so hot call sites can yield a shared
effect object instead of allocating one per suspension.
"""

from __future__ import annotations

from functools import partial
from heapq import heappush
from typing import Any, Generator, Iterable, Optional

from repro.simtime.engine import Engine, SimulationError
from repro.simtime.primitives import SimEvent


class ProcessKilled(Exception):
    """Thrown into a generator when its process is killed (fault injection)."""


class SimTimeout(SimulationError):
    """Raised by ``Wait(event, timeout=...)`` when the timeout expires first."""


class Sleep:
    """Effect: suspend the process for ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        self.delay = float(delay)


class SleepUntil:
    """Effect: suspend until absolute simulated time ``t``.

    ``extra`` logical events are charged to the engine when the process
    resumes: a fused sleep chain (N consecutive ``Sleep`` effects with no
    externally observable work between them, collapsed into one
    suspension) stands for ``extra + 1`` reference events, and the
    determinism contract counts logical events (docs/performance.md).
    ``t`` must be computed by replaying the reference's exact float
    additions, so resume timestamps stay byte-identical.  If the process
    is killed before ``t`` nothing is charged — matching a reference
    chain canceled before its first sleep fires.
    """

    __slots__ = ("t", "extra")

    def __init__(self, t: float, extra: int = 0) -> None:
        self.t = t
        self.extra = extra


class Wait:
    """Effect: block until ``event`` triggers; evaluates to its value.

    With ``timeout`` set, raises :class:`SimTimeout` if the event has not
    triggered within that many simulated seconds.
    """

    __slots__ = ("event", "timeout")

    def __init__(self, event: SimEvent, timeout: Optional[float] = None) -> None:
        self.event = event
        self.timeout = timeout


class WaitAny:
    """Effect: block until any of ``events`` triggers.

    Evaluates to ``(index, value)`` of the first event to fire.  Events
    already triggered are served immediately (lowest index wins).
    """

    __slots__ = ("events",)

    def __init__(self, events: Iterable[SimEvent]) -> None:
        self.events = list(events)


class Spawn:
    """Effect: start ``gen`` as a new concurrent process; evaluates to it."""

    __slots__ = ("gen", "name")

    def __init__(self, gen: Generator, name: str = "") -> None:
        self.gen = gen
        self.name = name


class Join:
    """Effect: wait for ``proc`` to terminate; evaluates to its result.

    Re-raises the process's exception if it failed.
    """

    __slots__ = ("proc",)

    def __init__(self, proc: "SimProcess") -> None:
        self.proc = proc


class Now:
    """Effect: evaluates to the current simulated time (no suspension)."""

    __slots__ = ()


class Self:
    """Effect: evaluates to the currently running :class:`SimProcess`."""

    __slots__ = ()


#: Reusable effect singletons — ``Now``/``Self`` are stateless and
#: ``Sleep(0)`` is immutable in practice, so hot loops can yield these
#: shared instances instead of allocating a fresh effect per suspension.
NOW = Now()
SELF = Self()
SLEEP0 = Sleep(0.0)


class SimProcess:
    """A generator being trampolined by the engine."""

    __slots__ = (
        "engine",
        "gen",
        "name",
        "done",
        "result",
        "exception",
        "_defused",
        "_finished",
        "_pending_timer",
        "_pending_event",
        "_resume_cb",
        "_event_cb",
        "_waiting_on",
        "obs_span",
    )

    def __init__(self, engine: Engine, gen: Generator, name: str = "") -> None:
        self.engine = engine
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "proc")
        self.done = SimEvent()
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self._defused = False
        self._finished = False
        self._pending_timer = None     # engine queue entry (list) or Timer
        self._pending_event: Optional[SimEvent] = None
        # Pre-bound resume callbacks: one allocation per process instead
        # of one closure per suspension.  The plain resume is a C-level
        # partial — no Python frame between the engine and _step.
        self._resume_cb = partial(self._step, None, None)
        self._event_cb = self._event_resume
        self._waiting_on: Optional[SimEvent] = None
        self.obs_span = 0              # lifetime span id (set by spawners)
        engine._process_started(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self._finished else "running"
        return f"<SimProcess {self.name} {state}>"

    @property
    def finished(self) -> bool:
        return self._finished

    def defuse(self) -> None:
        """Mark this process's failure as handled (suppresses fail-fast)."""
        self._defused = True

    def start(self) -> None:
        """Schedule the first step of the generator at the current time."""
        self.engine._sched_soon(self._resume_cb)

    def kill(self, reason: str = "") -> None:
        """Throw :class:`ProcessKilled` into the process (fault injection).

        A killed process may catch the exception to clean up; if it does
        not, the kill is treated as handled (it does not abort the run).
        """
        if self._finished:
            return
        pending = self._pending_timer
        if pending is not None:
            if pending.__class__ is list:
                self.engine._cancel_entry(pending)
            else:
                pending.cancel()
            self._pending_timer = None
        if self._waiting_on is not None:
            self._waiting_on.discard_waiter(self._step)
            self._waiting_on = None
        self._defused = True
        self._step(None, ProcessKilled(reason))

    # -- resume callbacks (pre-bound, no per-suspension closures) ---------
    def _event_resume(self) -> None:
        event = self._pending_event
        self._pending_event = None
        if event is None:
            return
        if event.exception is not None:
            self._step(None, event.exception)
        else:
            self._step(event.value, None)

    # -- trampoline -------------------------------------------------------
    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.engine.compat:
            return self._step_reference(value, exc)
        self._pending_timer = None
        self._waiting_on = None
        engine = self.engine
        gen = self.gen
        send = gen.send
        try:
            while True:
                if exc is not None:
                    pending, exc = exc, None
                    effect = gen.throw(pending)
                else:
                    effect = send(value)
                value = None

                # Exact-class dispatch, hottest effects first.  Effect
                # subclasses (rare) fall through to the reference
                # interpreter's isinstance chain below.
                cls = effect.__class__
                if cls is Sleep:
                    # Inlined scheduling: the engine's compat flag is
                    # known False here, so the lane choice is direct.
                    delay = effect.delay
                    engine._seq = seq = engine._seq + 1
                    if delay == 0.0:
                        entry = [engine._now, seq, self._resume_cb]
                        engine._ready.append(entry)
                    else:
                        if delay < 0:
                            raise SimulationError(f"negative delay: {delay}")
                        entry = [engine._now + delay, seq, self._resume_cb]
                        heappush(engine._queue, entry)
                    self._pending_timer = entry
                    return
                if cls is Wait:
                    if effect.timeout is not None:
                        self._do_wait(effect)
                        return
                    event = effect.event
                    if event.triggered:
                        # Mirrors the reference path: the resume is
                        # scheduled (not run inline) and is deliberately
                        # not cancel-tracked, so kill() interleavings
                        # execute the same engine events in both modes.
                        self._pending_event = event
                        engine._seq = seq = engine._seq + 1
                        engine._ready.append([engine._now, seq, self._event_cb])
                    else:
                        self._waiting_on = event
                        event.add_waiter(self._step)
                    return
                if cls is SleepUntil:
                    t = effect.t
                    if t < engine._now:
                        raise SimulationError(
                            f"cannot sleep until the past ({t} < {engine._now})"
                        )
                    extra = effect.extra
                    cb = (partial(self._charged_resume, extra) if extra
                          else self._resume_cb)
                    engine._seq = seq = engine._seq + 1
                    entry = [t, seq, cb]
                    if t == engine._now:
                        engine._ready.append(entry)
                    else:
                        heappush(engine._queue, entry)
                    self._pending_timer = entry
                    return
                if cls is Now:
                    value = engine._now
                elif cls is Self:
                    value = self
                elif cls is Spawn:
                    child = SimProcess(engine, effect.gen, effect.name)
                    child.start()
                    value = child
                elif cls is Join:
                    self._do_join(effect.proc)
                    return
                elif cls is WaitAny:
                    self._do_wait_any(effect)
                    return
                elif isinstance(effect, Now):
                    value = engine._now
                elif isinstance(effect, Self):
                    value = self
                elif isinstance(effect, Spawn):
                    child = SimProcess(engine, effect.gen, effect.name)
                    child.start()
                    value = child
                elif isinstance(effect, Sleep):
                    self._pending_timer = self.engine.call_later(
                        effect.delay, lambda: self._step(None, None)
                    )
                    return
                elif isinstance(effect, SleepUntil):
                    self._do_sleep_until(effect)
                    return
                elif isinstance(effect, Wait):
                    self._do_wait(effect)
                    return
                elif isinstance(effect, WaitAny):
                    self._do_wait_any(effect)
                    return
                elif isinstance(effect, Join):
                    self._do_join(effect.proc)
                    return
                else:
                    raise SimulationError(
                        f"process {self.name!r} yielded non-effect {effect!r}"
                    )
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None), None)
        except ProcessKilled as killed:
            self._finish(None, killed)
        except BaseException as err:  # noqa: BLE001 - deliberate fail-fast
            self._finish(None, err)

    def _step_reference(self, value: Any, exc: Optional[BaseException]) -> None:
        """The original interpreter (``Engine(compat=True)``): isinstance
        chain plus per-suspension closures through the public heap API.
        Kept verbatim as the behavioral reference for the fast path."""
        self._pending_timer = None
        self._waiting_on = None
        try:
            while True:
                if exc is not None:
                    pending, exc = exc, None
                    effect = self.gen.throw(pending)
                else:
                    effect = self.gen.send(value)
                value = None

                if isinstance(effect, Now):
                    value = self.engine.now
                elif isinstance(effect, Self):
                    value = self
                elif isinstance(effect, Spawn):
                    child = SimProcess(self.engine, effect.gen, effect.name)
                    child.start()
                    value = child
                elif isinstance(effect, Sleep):
                    self._pending_timer = self.engine.call_later(
                        effect.delay, lambda: self._step(None, None)
                    )
                    return
                elif isinstance(effect, SleepUntil):
                    self._do_sleep_until(effect)
                    return
                elif isinstance(effect, Wait):
                    self._do_wait(effect)
                    return
                elif isinstance(effect, WaitAny):
                    self._do_wait_any(effect)
                    return
                elif isinstance(effect, Join):
                    self._do_join(effect.proc)
                    return
                else:
                    raise SimulationError(
                        f"process {self.name!r} yielded non-effect {effect!r}"
                    )
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None), None)
        except ProcessKilled as killed:
            self._finish(None, killed)
        except BaseException as err:  # noqa: BLE001 - deliberate fail-fast
            self._finish(None, err)

    def _charged_resume(self, extra: int) -> None:
        self.engine.events_executed += extra
        self._step(None, None)

    def _do_sleep_until(self, effect: SleepUntil) -> None:
        """SleepUntil via the public heap API (reference / fallback path).

        Charges the fused logical events on resume in this mode too, so
        the effect means the same thing under either trampoline."""
        extra = effect.extra
        cb = partial(self._charged_resume, extra) if extra else self._resume_cb
        self._pending_timer = self.engine.call_at(effect.t, cb)

    def _do_wait(self, effect: Wait) -> None:
        event = effect.event
        if event.triggered:
            self.engine.call_at(
                self.engine.now,
                lambda: self._step_event_result(event),
            )
            return
        if effect.timeout is None:
            self._waiting_on = event
            event.add_waiter(self._step)
            return
        # Timed wait: arm both the event and a timer; first wins.
        fired = [False]

        def on_event(value: Any, exc: Optional[BaseException]) -> None:
            if fired[0]:
                return
            fired[0] = True
            if timer is not None:
                timer.cancel()
            self._step(value, exc)

        def on_timeout() -> None:
            if fired[0]:
                return
            fired[0] = True
            event.discard_waiter(on_event)
            self._step(None, SimTimeout(f"wait timed out after {effect.timeout}s"))

        event.add_waiter(on_event)
        timer = self.engine.call_later(effect.timeout, on_timeout)

    def _step_event_result(self, event: SimEvent) -> None:
        if event.exception is not None:
            self._step(None, event.exception)
        else:
            self._step(event.value, None)

    def _do_wait_any(self, effect: WaitAny) -> None:
        events = effect.events
        if not events:
            raise SimulationError("WaitAny on empty event list")
        for idx, ev in enumerate(events):
            if ev.triggered:
                if ev.exception is not None:
                    exc = ev.exception
                    self.engine.call_at(self.engine.now, lambda e=exc: self._step(None, e))
                else:
                    pair = (idx, ev.value)
                    self.engine.call_at(self.engine.now, lambda p=pair: self._step(p, None))
                return
        fired = [False]
        callbacks = []

        def make_cb(idx: int, ev: SimEvent):
            def cb(value: Any, exc: Optional[BaseException]) -> None:
                if fired[0]:
                    return
                fired[0] = True
                for other, other_cb in callbacks:
                    if other is not ev:
                        other.discard_waiter(other_cb)
                if exc is not None:
                    self._step(None, exc)
                else:
                    self._step((idx, value), None)

            return cb

        for idx, ev in enumerate(events):
            cb = make_cb(idx, ev)
            callbacks.append((ev, cb))
            ev.add_waiter(cb)

    def _do_join(self, proc: "SimProcess") -> None:
        proc.defuse()
        if proc._finished:
            if proc.exception is not None:
                exc = proc.exception
                self.engine.call_at(self.engine.now, lambda: self._step(None, exc))
            else:
                res = proc.result
                self.engine.call_at(self.engine.now, lambda: self._step(res, None))
            return
        self._waiting_on = proc.done
        proc.done.add_waiter(self._step)

    def _finish(self, result: Any, exc: Optional[BaseException]) -> None:
        if self._finished:
            return
        self._finished = True
        self.result = result
        self.exception = exc
        if self.obs_span:
            self.engine.tracer.end(self.engine.now, self.obs_span)
        self.engine._process_finished(self)
        self.gen.close()
        if exc is not None:
            if self.done.has_waiters or self._defused:
                self.done.fail(exc)
            else:
                # Fail fast: nobody is watching this process, so surface
                # the error through the engine's run loop immediately.
                raise exc
        else:
            self.done.succeed(result)

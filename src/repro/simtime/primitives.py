"""Synchronization primitives for simulated processes.

These are *simulation-level* primitives used to build the middleware
stack; they are distinct from the MPI-level objects (``MPI_Barrier``
etc.) implemented on top of the simulated transport.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional


class SimEvent:
    """One-shot event carrying a value or an exception.

    Waiters are callbacks ``cb(value, exception)`` registered by the
    process trampoline; they run synchronously, in registration order,
    when the event triggers.
    """

    __slots__ = ("_waiters", "triggered", "value", "exception")

    def __init__(self) -> None:
        self._waiters: deque = deque()
        self.triggered = False
        self.value: Any = None
        self.exception: Optional[BaseException] = None

    @property
    def has_waiters(self) -> bool:
        return bool(self._waiters)

    def add_waiter(self, cb: Callable[[Any, Optional[BaseException]], None]) -> None:
        if self.triggered:
            cb(self.value, self.exception)
            return
        self._waiters.append(cb)

    def discard_waiter(self, cb: Callable) -> None:
        try:
            self._waiters.remove(cb)
        except ValueError:
            pass

    def succeed(self, value: Any = None) -> None:
        """Trigger the event with ``value``; wakes all waiters in order."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, deque()
        for cb in waiters:
            cb(value, None)

    def fail(self, exc: BaseException) -> None:
        """Trigger the event with an exception; waiters re-raise it."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.exception = exc
        waiters, self._waiters = self._waiters, deque()
        for cb in waiters:
            cb(None, exc)


class Mailbox:
    """Unbounded FIFO channel between simulated processes.

    ``put`` never blocks; ``get`` is a sub-generator to be used as
    ``item = yield from mbox.get()``.
    """

    __slots__ = ("_items", "_waiters")

    def __init__(self) -> None:
        self._items: deque = deque()
        self._waiters: deque = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        while self._waiters:
            ev = self._waiters.popleft()
            if not ev.triggered:
                ev.succeed(item)
                return
        self._items.append(item)

    def get(self):
        """Sub-generator: receive the next item, blocking if empty."""
        from repro.simtime.process import Wait

        if self._items:
            return self._items.popleft()
        ev = SimEvent()
        self._waiters.append(ev)
        item = yield Wait(ev)
        return item

    def get_nowait(self) -> Any:
        """Pop the next item immediately; raises IndexError if empty."""
        return self._items.popleft()


class Semaphore:
    """Counting semaphore with FIFO wakeup."""

    __slots__ = ("_count", "_waiters")

    def __init__(self, value: int = 1) -> None:
        if value < 0:
            raise ValueError("semaphore initial value must be >= 0")
        self._count = value
        self._waiters: deque = deque()

    @property
    def value(self) -> int:
        return self._count

    def acquire(self):
        """Sub-generator: ``yield from sem.acquire()``."""
        from repro.simtime.process import Wait

        if self._count > 0 and not self._waiters:
            self._count -= 1
            return
        ev = SimEvent()
        self._waiters.append(ev)
        yield Wait(ev)

    def release(self) -> None:
        while self._waiters:
            ev = self._waiters.popleft()
            if not ev.triggered:
                ev.succeed(None)
                return
        self._count += 1


class SimBarrier:
    """Reusable barrier over a fixed number of simulated processes."""

    __slots__ = ("_parties", "_count", "_event", "generation")

    def __init__(self, parties: int) -> None:
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self._parties = parties
        self._count = 0
        self._event = SimEvent()
        self.generation = 0

    @property
    def parties(self) -> int:
        return self._parties

    def wait(self):
        """Sub-generator: block until all parties have arrived."""
        from repro.simtime.process import Wait

        self._count += 1
        if self._count == self._parties:
            event = self._event
            self._event = SimEvent()
            self._count = 0
            self.generation += 1
            event.succeed(self.generation)
            return self.generation
        gen = yield Wait(self._event)
        return gen


class Resource:
    """FIFO resource with bounded capacity (models contended hardware).

    Usage::

        yield from res.acquire()
        try:
            ...
        finally:
            res.release()
    """

    __slots__ = ("_sem", "capacity")

    def __init__(self, capacity: int = 1) -> None:
        self.capacity = capacity
        self._sem = Semaphore(capacity)

    @property
    def available(self) -> int:
        return self._sem.value

    def acquire(self):
        yield from self._sem.acquire()

    def release(self) -> None:
        self._sem.release()

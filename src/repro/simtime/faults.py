"""Deterministic fault plans for the simulated cluster.

A :class:`FaultPlan` is a declarative schedule of fault actions —
``kill_proc``, ``kill_node``, ``drop_msg``, ``delay_msg``, ``dup_msg`` —
triggered either at an absolute simulated time (``at_time``) or when the
N-th matching message crosses a fault point (``after_count``).  The plan
is pure bookkeeping: it decides *what* happens; executing kills and
re-scheduling deliveries is the job of :class:`repro.faults.FaultManager`,
which consults the plan from the RML (daemon traffic) and the PML
fabric (MPI traffic).

Determinism contract: a plan holds no wall-clock or PRNG state of its
own.  Message matching and counting depend only on the simulated
traffic, so two runs with the same seed and the same plan take byte-
identical decisions.  :func:`random_plan` derives a plan from a seed via
``random.Random`` — same seed, same plan.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List, Optional

KILL_KINDS = ("kill_proc", "kill_node")
MSG_KINDS = ("drop_msg", "delay_msg", "dup_msg")
# "lossy_msg" drops each matching message with probability ``prob``,
# drawn from a per-action PRNG seeded with ``seed`` — the lossy-link
# mode that exercises the reliable-RML retransmission protocol
# (docs/recovery.md).  Deliberately not in MSG_KINDS so the action pool
# (and therefore the plans) of pre-existing random_plan seeds is
# unchanged.
KINDS = KILL_KINDS + MSG_KINDS + ("lossy_msg",)

LAYERS = ("rml", "pml")


@dataclass(slots=True)
class MsgView:
    """What a fault point exposes about one message about to be delivered."""

    layer: str          # "rml" (daemon traffic) | "pml" (MPI traffic)
    src: Any            # node id (rml) or PmixProc (pml)
    dst: Any
    tag: Any            # dispatch tag (rml) or MPI tag / packet kind (pml)
    time: float


@dataclass
class FaultAction:
    """One scheduled fault.

    Kill actions name a victim (``rank`` for ``kill_proc``, ``node`` for
    ``kill_node``) and fire either at ``at_time`` or when the
    ``after_count``-th message matching the src/dst/tag/layer criteria
    is seen.  Message actions apply their effect to matching messages:
    up to ``max_hits`` of them (None = unlimited), skipping matches
    until ``after_count`` when given, and only at or after ``at_time``
    when given.
    """

    kind: str
    rank: Optional[int] = None        # kill_proc victim (rank in the bound job)
    node: Optional[int] = None        # kill_node victim
    at_time: Optional[float] = None   # absolute sim-time trigger / activation floor
    after_count: Optional[int] = None  # fire on the Nth matching message (1-based)
    layer: Optional[str] = None       # match only this fault point
    src: Any = None                   # match source (None = any)
    dst: Any = None                   # match destination (None = any)
    tag: Any = None                   # match tag (None = any)
    delay: float = 0.0                # delay_msg: extra transit seconds
    copies: int = 1                   # dup_msg: extra deliveries per hit
    max_hits: Optional[int] = 1       # message actions: how many messages hit
    prob: float = 0.0                 # lossy_msg: per-message drop probability
    seed: int = 0                     # lossy_msg: PRNG seed for the drop rolls
    # runtime counters (owned by the plan, not user input)
    seen: int = field(default=0, compare=False)
    hits: int = field(default=0, compare=False)
    _rng: Any = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (have {KINDS})")
        if self.kind == "lossy_msg" and not 0.0 < self.prob <= 1.0:
            raise ValueError("lossy_msg needs 0 < prob <= 1")
        if self.kind == "kill_proc" and self.rank is None:
            raise ValueError("kill_proc needs rank=")
        if self.kind == "kill_node" and self.node is None:
            raise ValueError("kill_node needs node=")
        if self.kind in KILL_KINDS and self.at_time is None and self.after_count is None:
            raise ValueError(f"{self.kind} needs at_time= or after_count=")
        if self.kind == "delay_msg" and self.delay <= 0.0:
            raise ValueError("delay_msg needs delay > 0")
        if self.kind == "dup_msg" and self.copies < 1:
            raise ValueError("dup_msg needs copies >= 1")
        if self.layer is not None and self.layer not in LAYERS:
            raise ValueError(f"unknown layer {self.layer!r} (have {LAYERS})")
        if self.after_count is not None and self.after_count < 1:
            raise ValueError("after_count is 1-based (>= 1)")

    # -- matching ----------------------------------------------------------
    @property
    def message_triggered(self) -> bool:
        """Kill actions fired by traffic rather than by the clock."""
        return self.kind in KILL_KINDS and self.after_count is not None

    @staticmethod
    def _field_match(crit: Any, val: Any) -> bool:
        if crit is None:
            return True
        if crit == val:
            return True
        # Convenience: an int criterion matches a PmixProc by rank, so
        # pml-layer actions can be written without importing PmixProc.
        return isinstance(crit, int) and getattr(val, "rank", None) == crit

    def matches(self, view: MsgView) -> bool:
        if self.layer is not None and view.layer != self.layer:
            return False
        if self.at_time is not None and view.time < self.at_time:
            return False
        return (
            self._field_match(self.src, view.src)
            and self._field_match(self.dst, view.dst)
            and self._field_match(self.tag, view.tag)
        )

    def observe(self, view: MsgView) -> bool:
        """Count a matching message; True if the action fires on it."""
        if not self.matches(view):
            return False
        self.seen += 1
        if self.kind == "lossy_msg":
            # One PRNG roll per matching message — the roll sequence is a
            # pure function of (seed, match order), so runs stay
            # deterministic.  max_hits bounds total drops as usual.
            if self._rng is None:
                self._rng = random.Random(self.seed)
            if self._rng.random() >= self.prob:
                return False
            if self.max_hits is not None and self.hits >= self.max_hits:
                return False
            self.hits += 1
            return True
        if self.after_count is not None:
            if self.seen != self.after_count:
                return False
        elif self.max_hits is not None and self.hits >= self.max_hits:
            return False
        self.hits += 1
        return True

    def describe(self) -> str:
        bits = [self.kind]
        for name in ("rank", "node", "at_time", "after_count", "layer",
                     "src", "dst", "tag"):
            v = getattr(self, name)
            if v is not None:
                bits.append(f"{name}={v}")
        if self.kind == "delay_msg":
            bits.append(f"delay={self.delay}")
        if self.kind == "dup_msg":
            bits.append(f"copies={self.copies}")
        if self.kind == "lossy_msg":
            bits.append(f"prob={self.prob} seed={self.seed}")
        return " ".join(bits)


@dataclass
class Disposition:
    """What the plan decided about one message."""

    drop: bool = False
    extra_delay: float = 0.0
    duplicates: int = 0
    kills: List[FaultAction] = field(default_factory=list)
    matched: List[str] = field(default_factory=list)   # kinds, for tracing

    def __bool__(self) -> bool:
        return bool(self.drop or self.extra_delay or self.duplicates or self.kills)


class FaultPlan:
    """An ordered schedule of :class:`FaultAction`s.

    A plan instance carries per-action match counters, so it is bound to
    a single run: install it on exactly one cluster.
    """

    def __init__(self, actions: Optional[List[FaultAction]] = None) -> None:
        self.actions: List[FaultAction] = []
        self._msg_actions_by_layer: dict = {}
        for act in actions or []:
            self.add(act)

    def add(self, action: FaultAction) -> "FaultPlan":
        if not isinstance(action, FaultAction):
            raise TypeError(f"expected FaultAction, got {type(action).__name__}")
        self.actions.append(action)
        self._msg_actions_by_layer.clear()
        return self

    def msg_actions_for(self, layer: str) -> List[FaultAction]:
        """Actions that can affect a message at the ``layer`` fault point.

        Timed kills never react to traffic (``on_message`` skips them
        without even counting the message), so they are filtered out
        here along with actions pinned to another layer; the per-layer
        list is cached so the per-message cost is one dict hit.  When
        this comes back empty the fault point can skip the whole
        consultation — observation counters are untouched either way.
        """
        acts = self._msg_actions_by_layer.get(layer)
        if acts is None:
            acts = [
                a for a in self.actions
                if (a.layer is None or a.layer == layer)
                and (a.kind not in KILL_KINDS or a.message_triggered)
            ]
            self._msg_actions_by_layer[layer] = acts
        return acts

    # convenience constructors -------------------------------------------
    def kill_proc(self, rank: int, **kw) -> "FaultPlan":
        return self.add(FaultAction("kill_proc", rank=rank, **kw))

    def kill_node(self, node: int, **kw) -> "FaultPlan":
        return self.add(FaultAction("kill_node", node=node, **kw))

    def drop_msg(self, **kw) -> "FaultPlan":
        return self.add(FaultAction("drop_msg", **kw))

    def delay_msg(self, delay: float, **kw) -> "FaultPlan":
        return self.add(FaultAction("delay_msg", delay=delay, **kw))

    def dup_msg(self, copies: int = 1, **kw) -> "FaultPlan":
        return self.add(FaultAction("dup_msg", copies=copies, **kw))

    def lossy_link(self, prob: float, seed: int = 0, *, layer: str = "rml",
                   max_hits: Optional[int] = None, **kw) -> "FaultPlan":
        """Probabilistic drops: each matching message is lost with
        probability ``prob`` (seeded PRNG; docs/recovery.md)."""
        return self.add(FaultAction("lossy_msg", prob=prob, seed=seed,
                                    layer=layer, max_hits=max_hits, **kw))

    # plan queries --------------------------------------------------------
    def timed_kills(self) -> List[FaultAction]:
        """Kill actions scheduled purely by the clock."""
        return [a for a in self.actions if a.kind in KILL_KINDS and not a.message_triggered]

    def on_message(self, view: MsgView) -> Optional[Disposition]:
        """Consulted by the FaultManager at each fault point.

        Returns None when no action fired — equivalent to the (falsy)
        empty Disposition, allocated lazily only on the first firing
        action.  ``observe`` is still called on every candidate action,
        so the ``seen`` counters advance exactly as before.
        """
        disp = None
        for act in self.msg_actions_for(view.layer):
            if act.kind in KILL_KINDS:
                if act.observe(view):
                    if disp is None:
                        disp = Disposition()
                    disp.kills.append(act)
                    disp.matched.append(act.kind)
                continue
            if not act.observe(view):
                continue
            if disp is None:
                disp = Disposition()
            disp.matched.append(act.kind)
            if act.kind in ("drop_msg", "lossy_msg"):
                disp.drop = True
            elif act.kind == "delay_msg":
                disp.extra_delay += act.delay
            elif act.kind == "dup_msg":
                disp.duplicates += act.copies
        return disp

    def describe(self) -> str:
        return "; ".join(act.describe() for act in self.actions) or "<empty plan>"

    def __len__(self) -> int:
        return len(self.actions)


def random_plan(
    seed: int,
    *,
    num_ranks: int,
    num_nodes: int = 1,
    horizon: float = 5.0e-3,
    n_actions: int = 3,
    allow_kills: bool = True,
    max_kills: Optional[int] = None,
    protect_ranks: tuple = (0,),
    survivable: bool = False,
    start_at: float = 0.0,
) -> FaultPlan:
    """A seed-deterministic plan: same arguments, same plan.

    Kills never target node 0 (the HNP must survive — see docs/faults.md)
    nor the ranks in ``protect_ranks``; ``max_kills`` (default: leave at
    least two survivors) bounds how many ranks a plan may remove.
    ``start_at`` shifts the whole fault window (all actions land in
    ``[start_at, start_at + horizon]``), so faults can be aimed past a
    slow init phase.

    ``survivable=True`` emits only faults the recovery layer
    (docs/recovery.md) is contracted to absorb: RML-only message faults
    (reliable RML retransmits through drops/lossy links), clock-triggered
    kills only (so the fault window is bounded), at most one node kill
    (below the routing tree's partition threshold — node 0 plus one more
    survivor always keep the healed radix tree connected), and lossy
    links with a bounded drop budget (so the per-message retry budget
    cannot be exhausted).
    """
    rng = random.Random(seed)
    plan = FaultPlan()
    if max_kills is None:
        max_kills = max(0, num_ranks - len(protect_ranks) - 2)
    killable = [r for r in range(num_ranks) if r not in protect_ranks]
    rml_tags = (None, "grpcomm_up", "grpcomm_down", "event_fwd")
    kills = 0
    if survivable:
        node_kills = 0
        for _ in range(n_actions):
            t = start_at + rng.uniform(0.0, horizon)
            roll = rng.random()
            if allow_kills and kills < max_kills and killable and roll < 0.30:
                rank = rng.choice(killable)
                killable.remove(rank)
                kills += 1
                plan.kill_proc(rank, at_time=t)
            elif (allow_kills and node_kills < 1 and num_nodes > 2
                  and kills < max_kills and roll < 0.40):
                plan.kill_node(rng.randrange(1, num_nodes), at_time=t)
                node_kills += 1
                kills = max_kills   # a node kill may take several ranks
            elif roll < 0.60:
                plan.lossy_link(rng.uniform(0.05, 0.35),
                                seed=rng.randrange(2**31), layer="rml",
                                at_time=t, max_hits=rng.randint(2, 8))
            else:
                kind = rng.choice(MSG_KINDS)
                tag = rng.choice(rml_tags)
                hits = rng.randint(1, 3)
                if kind == "drop_msg":
                    plan.drop_msg(layer="rml", tag=tag, max_hits=hits, at_time=t)
                elif kind == "delay_msg":
                    plan.delay_msg(rng.uniform(1.0e-6, 5.0e-4), layer="rml",
                                   tag=tag, max_hits=hits, at_time=t)
                else:
                    plan.dup_msg(rng.randint(1, 2), layer="rml", tag=tag,
                                 max_hits=hits, at_time=t)
        return plan
    for _ in range(n_actions):
        t = start_at + rng.uniform(0.0, horizon)
        roll = rng.random()
        if allow_kills and kills < max_kills and killable and roll < 0.35:
            rank = rng.choice(killable)
            killable.remove(rank)
            kills += 1
            plan.kill_proc(rank, at_time=t)
        elif allow_kills and kills < max_kills and num_nodes > 2 and roll < 0.40:
            # Node kills take every rank on the node; only roll one when
            # the cluster is big enough to keep quorum interesting.
            plan.kill_node(rng.randrange(1, num_nodes), at_time=t)
            kills = max_kills   # a node kill may take several ranks; stop killing
        else:
            kind = rng.choice(MSG_KINDS)
            tag = rng.choice(rml_tags)
            hits = rng.randint(1, 3)
            if kind == "drop_msg":
                # Unrestricted RML drops can sever the protocol outright;
                # keep drops bounded so the timeout net stays exercised
                # but most runs make progress.
                plan.drop_msg(layer="rml", tag=tag, max_hits=1, at_time=t)
            elif kind == "delay_msg":
                plan.delay_msg(rng.uniform(1.0e-6, 5.0e-4), layer="rml",
                               tag=tag, max_hits=hits, at_time=t)
            else:
                plan.dup_msg(rng.randint(1, 2), layer="rml", tag=tag,
                             max_hits=hits, at_time=t)
    return plan

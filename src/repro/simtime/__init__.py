"""Deterministic discrete-event simulation core.

Every component of the reproduced middleware stack (PMIx servers, PRRTE
daemons, MPI ranks, benchmark drivers) runs as a :class:`SimProcess` — a
Python generator driven by a single :class:`Engine`.  Blocking operations
are expressed by ``yield``-ing effect objects (:class:`Sleep`,
:class:`Wait`, ...) and composed with ``yield from``.  Simulated time is
a float in seconds and is completely decoupled from wall-clock time,
which makes experiments deterministic and lets thousands of simulated
ranks run inside one OS process.
"""

from repro.simtime.engine import Engine, SimulationError, DeadlockError
from repro.simtime.process import (
    SimProcess,
    Sleep,
    Wait,
    WaitAny,
    Spawn,
    Join,
    Now,
    Self,
    ProcessKilled,
)
from repro.simtime.primitives import SimEvent, Mailbox, Semaphore, SimBarrier, Resource

__all__ = [
    "Engine",
    "SimulationError",
    "DeadlockError",
    "SimProcess",
    "Sleep",
    "Wait",
    "WaitAny",
    "Spawn",
    "Join",
    "Now",
    "Self",
    "ProcessKilled",
    "SimEvent",
    "Mailbox",
    "Semaphore",
    "SimBarrier",
    "Resource",
]

"""Event loop and simulated clock.

The engine owns a priority queue of timestamped callbacks.  Ties are
broken by a monotonically increasing sequence number so that events
scheduled earlier fire earlier — the FIFO tie-break is part of the
simulator's determinism contract and is exercised by the property tests.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.simtime.trace import NULL_TRACER


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation core."""


class DeadlockError(SimulationError):
    """Raised by :meth:`Engine.run` when live processes remain but no
    event is scheduled — every remaining process is blocked forever."""


class _Canceled:
    """Sentinel stored in place of a callback when a timer is canceled."""

    __slots__ = ()


_CANCELED = _Canceled()


class Timer:
    """Handle returned by :meth:`Engine.call_at` / :meth:`Engine.call_later`.

    Canceling a timer is O(1): the heap entry is left in place and skipped
    when popped.
    """

    __slots__ = ("_entry",)

    def __init__(self, entry: list) -> None:
        self._entry = entry

    @property
    def time(self) -> float:
        return self._entry[0]

    @property
    def canceled(self) -> bool:
        return self._entry[2] is _CANCELED

    def cancel(self) -> None:
        self._entry[2] = _CANCELED


class Engine:
    """Discrete-event scheduler with a float clock (seconds).

    The engine knows nothing about processes; :mod:`repro.simtime.process`
    layers generator-trampolining on top of :meth:`call_at`.
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._queue: list = []
        self._seq = itertools.count()
        self._live: set = set()
        self._running = False
        # Observability hooks.  Every layer reaches tracing/metrics via
        # its existing engine reference; the Cluster swaps in real
        # instances when the user asks for them.  The null defaults keep
        # the instrumented hot paths at one branch per emission.
        self.tracer = NULL_TRACER
        self.metrics = None                # repro.obs.metrics.MetricsRegistry
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def call_at(self, when: float, fn: Callable[[], Any]) -> Timer:
        """Schedule ``fn()`` to run at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event in the past ({when} < {self._now})"
            )
        entry = [when, next(self._seq), fn]
        heapq.heappush(self._queue, entry)
        return Timer(entry)

    def call_later(self, delay: float, fn: Callable[[], Any]) -> Timer:
        """Schedule ``fn()`` to run ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, fn)

    # -- process accounting (used for deadlock detection) ----------------
    def _process_started(self, proc=None) -> None:
        self._live.add(proc)

    def _process_finished(self, proc=None) -> None:
        self._live.discard(proc)

    @property
    def live_processes(self) -> int:
        """Number of spawned processes that have not yet terminated."""
        return len(self._live)

    # -- run loop ---------------------------------------------------------
    def step(self) -> bool:
        """Run the next scheduled event.  Returns False if queue empty."""
        while self._queue:
            when, _seq, fn = heapq.heappop(self._queue)
            if fn is _CANCELED:
                continue
            self._now = when
            self.events_executed += 1
            fn()
            return True
        return False

    def run(self, until: Optional[float] = None, *, detect_deadlock: bool = True) -> float:
        """Run events until the queue drains or ``until`` is reached.

        Returns the simulated time at which the run stopped.  If
        ``detect_deadlock`` is set and live processes remain once the
        queue drains, a :class:`DeadlockError` is raised with the count
        of blocked processes — the most common failure mode of an MPI
        protocol bug (e.g. a rank waiting on a message never sent).
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        try:
            while self._queue:
                when = self._queue[0][0]
                if until is not None and when > until:
                    self._now = until
                    return self._now
                self.step()
            if until is not None:
                self._now = max(self._now, until)
            if detect_deadlock and self._live and until is None:
                names = sorted(getattr(p, "name", "?") for p in self._live)
                shown = ", ".join(names[:10]) + (" …" if len(names) > 10 else "")
                raise DeadlockError(
                    f"simulation deadlock: {len(self._live)} process(es) "
                    f"blocked forever at t={self._now}: {shown}"
                )
            return self._now
        finally:
            self._running = False

"""Event loop and simulated clock.

The engine owns a priority queue of timestamped callbacks.  Ties are
broken by a monotonically increasing sequence number so that events
scheduled earlier fire earlier — the FIFO tie-break is part of the
simulator's determinism contract and is exercised by the property tests.

Two scheduler implementations share that contract (docs/performance.md):

* the **fast path** (default) keeps a same-timestamp FIFO *ready lane*
  (a deque) next to the heap.  An event scheduled for the current
  instant — the zero-delay chains that dominate message-delivery
  cascades — skips the heap entirely.  Because a heap entry at time T
  can only have been pushed while ``now < T`` and a ready-lane entry at
  T is only appended while ``now == T``, every heap entry at T carries a
  smaller sequence number than every ready entry at T: draining the
  heap's due entries first, then the ready lane FIFO, reproduces the
  exact global (time, seq) order of the pure-heap scheduler.
* the **compat path** (``Engine(compat=True)``) is the original
  pure-heap scheduler: every event goes through ``heapq``.  It is kept
  as the reference implementation for the golden-trace equivalence
  tests and as the baseline for ``tools/bench.py``.

Canceled timers are lazily deleted (cancel is O(1)); a cancellation
counter triggers an in-place compaction of the heap once canceled
entries outnumber live ones, so pathological cancel-heavy workloads
(e.g. per-message retransmission timers that are almost always acked)
cannot accumulate O(n) dead entries.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Optional

from repro.simtime.trace import NULL_TRACER

#: Compaction is considered once at least this many canceled entries
#: are pending — below it the heap is too small for the sweep to matter.
_COMPACT_MIN = 64


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation core."""


class DeadlockError(SimulationError):
    """Raised by :meth:`Engine.run` when live processes remain but no
    event is scheduled — every remaining process is blocked forever."""


class _Canceled:
    """Sentinel stored in place of a callback when a timer is canceled."""

    __slots__ = ()


_CANCELED = _Canceled()


class Timer:
    """Handle returned by :meth:`Engine.call_at` / :meth:`Engine.call_later`.

    Canceling a timer is O(1): the heap entry is left in place and skipped
    when popped.  The engine counts pending cancellations and compacts
    the heap when they exceed the live entries (see :meth:`Engine._compact`).
    """

    __slots__ = ("_entry", "_engine")

    def __init__(self, entry: list, engine: "Engine") -> None:
        self._entry = entry
        self._engine = engine

    @property
    def time(self) -> float:
        return self._entry[0]

    @property
    def canceled(self) -> bool:
        return self._entry[2] is _CANCELED

    def cancel(self) -> None:
        self._engine._cancel_entry(self._entry)


class Engine:
    """Discrete-event scheduler with a float clock (seconds).

    The engine knows nothing about processes; :mod:`repro.simtime.process`
    layers generator-trampolining on top of :meth:`call_at`.

    ``compat=True`` selects the pure-heap reference scheduler (and the
    reference trampoline in :mod:`repro.simtime.process`); event order,
    traces and digests are identical either way — proven by the
    golden-trace tests — only the wall-clock cost differs.
    """

    def __init__(self, compat: bool = False) -> None:
        self._now: float = 0.0
        self._queue: list = []
        self._ready: deque = deque()      # entries due at exactly _now
        self._seq = 0
        self._ncanceled = 0               # canceled entries still queued
        self._live: set = set()
        self._running = False
        self.compat = compat
        # Observability hooks.  Every layer reaches tracing/metrics via
        # its existing engine reference; the Cluster swaps in real
        # instances when the user asks for them.  The null defaults keep
        # the instrumented hot paths at one branch per emission.
        self.tracer = NULL_TRACER
        self.metrics = None                # repro.obs.metrics.MetricsRegistry
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling -------------------------------------------------------
    def _sched(self, when: float, fn: Callable[[], Any]) -> list:
        """Queue ``fn`` at ``when`` (assumed >= now); returns the entry."""
        self._seq = seq = self._seq + 1
        entry = [when, seq, fn]
        if when == self._now and not self.compat:
            self._ready.append(entry)
        else:
            heapq.heappush(self._queue, entry)
        return entry

    def _sched_soon(self, fn: Callable[[], Any]) -> list:
        """Queue ``fn`` at the current instant (ready-lane fast path)."""
        self._seq = seq = self._seq + 1
        entry = [self._now, seq, fn]
        if self.compat:
            heapq.heappush(self._queue, entry)
        else:
            self._ready.append(entry)
        return entry

    def call_at(self, when: float, fn: Callable[[], Any]) -> Timer:
        """Schedule ``fn()`` to run at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event in the past ({when} < {self._now})"
            )
        return Timer(self._sched(when, fn), self)

    def call_later(self, delay: float, fn: Callable[[], Any]) -> Timer:
        """Schedule ``fn()`` to run ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return Timer(self._sched(self._now + delay, fn), self)

    def call_soon(self, fn: Callable[[], Any]) -> Timer:
        """Schedule ``fn()`` at the current instant, after everything
        already queued for it (equivalent to ``call_later(0, fn)``)."""
        return Timer(self._sched_soon(fn), self)

    # -- logical-event batching (fast-path only; docs/performance.md) -----
    def charge_events(self, extra: int) -> None:
        """Account for ``extra`` logical events executed inside one
        physical callback.

        The determinism contract counts *logical* events: a fast-path
        batch that folds N same-instant callbacks into one scheduled
        delivery must still report N executed events, so digests and the
        fast-vs-compat event-count cross-check stay exact."""
        self.events_executed += extra

    def call_at_batch(self, when: float, fns: list) -> None:
        """Schedule ``fns`` at ``when`` as consecutive events.

        On the compat reference every callback is its own heap entry —
        exactly what a naive loop over :meth:`call_at` produces.  On the
        fast path the whole batch becomes ONE physical entry that runs
        the callbacks back-to-back and charges the extra logical events.
        Because a loop scheduling N callbacks hands them consecutive
        sequence numbers, nothing can interleave between them in the
        reference order either — the two executions are byte-identical.

        Only for fire-and-forget deliveries: batch entries cannot be
        individually canceled.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event in the past ({when} < {self._now})"
            )
        if self.compat or len(fns) <= 1:
            for fn in fns:
                self._sched(when, fn)
            return
        extra = len(fns) - 1

        def run_batch() -> None:
            self.events_executed += extra
            for fn in fns:
                fn()

        self._sched(when, run_batch)

    # -- lazy deletion ----------------------------------------------------
    def _cancel_entry(self, entry: list) -> None:
        if entry[2] is _CANCELED:
            return
        entry[2] = _CANCELED
        self._ncanceled = n = self._ncanceled + 1
        if n >= _COMPACT_MIN and n * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Sweep canceled entries out of the heap, in place.

        In-place (slice assignment) so the run loop's local alias of the
        queue stays valid when a callback's cancel triggers compaction
        mid-run.  Ready-lane entries are not swept — they drain within
        the current instant anyway."""
        q = self._queue
        live = [e for e in q if e[2] is not _CANCELED]
        self._ncanceled -= len(q) - len(live)
        q[:] = live
        heapq.heapify(q)

    # -- process accounting (used for deadlock detection) ----------------
    def _process_started(self, proc=None) -> None:
        self._live.add(proc)

    def _process_finished(self, proc=None) -> None:
        self._live.discard(proc)

    @property
    def live_processes(self) -> int:
        """Number of spawned processes that have not yet terminated."""
        return len(self._live)

    # -- run loop ---------------------------------------------------------
    def step(self) -> bool:
        """Run the next scheduled event.  Returns False if queue empty."""
        ready = self._ready
        q = self._queue
        while True:
            # Heap entries due at _now predate (smaller seq) every ready
            # entry, so they drain first; see the module docstring.
            if ready and (not q or q[0][0] > self._now):
                fn = ready.popleft()[2]
                if fn is _CANCELED:
                    self._ncanceled -= 1
                    continue
            elif q:
                when, _seq, fn = heapq.heappop(q)
                if fn is _CANCELED:
                    self._ncanceled -= 1
                    continue
                self._now = when
            else:
                return False
            self.events_executed += 1
            fn()
            return True

    def run(self, until: Optional[float] = None, *, detect_deadlock: bool = True) -> float:
        """Run events until the queue drains or ``until`` is reached.

        Returns the simulated time at which the run stopped.  Events
        scheduled at exactly ``until`` do fire; the clock never moves
        backwards (``run(until=t)`` with ``t < now`` is a no-op).  If
        ``detect_deadlock`` is set and live processes remain once the
        queue drains, a :class:`DeadlockError` is raised with the count
        of blocked processes — the most common failure mode of an MPI
        protocol bug (e.g. a rank waiting on a message never sent).
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        if until is not None and until < self._now:
            # A horizon in the past runs nothing: events pending at the
            # current instant are strictly later than ``until``.
            return self._now
        self._running = True
        try:
            # The hot loop: locals for the queues and the heappop, one
            # branch to pick the lane, no per-event method call.
            ready = self._ready
            q = self._queue
            heappop = heapq.heappop
            while True:
                if ready and (not q or q[0][0] > self._now):
                    fn = ready.popleft()[2]
                    if fn is _CANCELED:
                        self._ncanceled -= 1
                        continue
                elif q:
                    when = q[0][0]
                    if until is not None and when > until:
                        if until > self._now:
                            self._now = until
                        return self._now
                    fn = heappop(q)[2]
                    if fn is _CANCELED:
                        self._ncanceled -= 1
                        continue
                    self._now = when
                else:
                    break
                self.events_executed += 1
                fn()
            if until is not None and until > self._now:
                self._now = until
            if detect_deadlock and self._live and until is None:
                names = sorted(getattr(p, "name", "?") for p in self._live)
                shown = ", ".join(names[:10]) + (" …" if len(names) > 10 else "")
                raise DeadlockError(
                    f"simulation deadlock: {len(self._live)} process(es) "
                    f"blocked forever at t={self._now}: {shown}"
                )
            return self._now
        finally:
            self._running = False

    # -- window-bounded execution (repro.dsim; docs/performance.md) -------
    def peek_next_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if the queue is
        empty.

        Canceled heap heads are popped on the way (they would otherwise
        report phantom wake-ups to the :mod:`repro.dsim` coordinator and
        cost a synchronization round each).  Safe to call only between
        runs, never from inside a callback.
        """
        if self._ready:
            for entry in self._ready:
                if entry[2] is not _CANCELED:
                    return self._now
        q = self._queue
        while q:
            if q[0][2] is _CANCELED:
                heapq.heappop(q)
                self._ncanceled -= 1
                continue
            return q[0][0]
        return None

    def run_window(self, end: float) -> float:
        """Run every event scheduled strictly *before* ``end``.

        The conservative-window primitive of :mod:`repro.dsim`: a
        partition may execute up to (but excluding) the window edge
        without synchronizing, because the lookahead guarantees no
        cross-partition message can arrive earlier than the edge.  Unlike
        :meth:`run`, the clock is *not* advanced to ``end`` — it stays at
        the last executed event so the final ``now`` of a partitioned
        run equals the single-process reference.  Deadlock detection is
        the coordinator's job (a partition cannot distinguish "blocked
        forever" from "waiting on a remote message").

        Returns the simulated time of the last executed event.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        try:
            ready = self._ready
            q = self._queue
            heappop = heapq.heappop
            while True:
                if ready and (not q or q[0][0] > self._now):
                    fn = ready.popleft()[2]
                    if fn is _CANCELED:
                        self._ncanceled -= 1
                        continue
                elif q:
                    when = q[0][0]
                    if when >= end:
                        return self._now
                    fn = heappop(q)[2]
                    if fn is _CANCELED:
                        self._ncanceled -= 1
                        continue
                    self._now = when
                else:
                    return self._now
                self.events_executed += 1
                fn()
        finally:
            self._running = False

"""Structured trace records for debugging and white-box tests.

Components emit :class:`TraceRecord`s into a shared :class:`Tracer`;
tests assert on the sequence (e.g. "the second message between this pair
carried no extended header").  Tracing is off by default and costs one
attribute check per emission.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    time: float
    category: str
    event: str
    detail: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects trace records, optionally filtered by category."""

    def __init__(self, categories: Optional[set] = None) -> None:
        self.records: List[TraceRecord] = []
        # Normalize to frozenset: accepts any iterable (a bare string
        # would otherwise filter per *character*, silently passing some
        # single-letter categories and dropping everything else).
        if categories is not None:
            if isinstance(categories, str):
                categories = (categories,)
            categories = frozenset(categories)
        self.categories = categories
        self.enabled = True

    def emit(self, time: float, category: str, event: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        self.records.append(TraceRecord(time, category, event, detail))

    def find(self, category: Optional[str] = None, event: Optional[str] = None) -> Iterator[TraceRecord]:
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if event is not None and rec.event != event:
                continue
            yield rec

    def count(self, category: Optional[str] = None, event: Optional[str] = None) -> int:
        return sum(1 for _ in self.find(category, event))

    def clear(self) -> None:
        self.records.clear()


class NullTracer(Tracer):
    """Tracer that drops everything (the default)."""

    def __init__(self) -> None:
        super().__init__()
        self.enabled = False

    def emit(self, time: float, category: str, event: str, **detail: Any) -> None:
        return

"""Structured tracing: flat records, nested spans, and causality edges.

Two generations of API live here side by side:

* the legacy flat-record API (:meth:`Tracer.emit` / :meth:`Tracer.find`
  / :meth:`Tracer.count`) used by white-box protocol tests, and
* the span model (:meth:`Tracer.begin` / :meth:`Tracer.end` /
  :meth:`Tracer.event` / :meth:`Tracer.flow_begin` /
  :meth:`Tracer.flow_end`) that powers the observability layer
  (``repro.obs``): nested timed spans per *track* (one track per
  simulated rank or daemon), instant events, and cross-track causality
  edges (message send -> receive) from which critical paths and
  Chrome/Perfetto timelines are derived.

Legacy ``emit()`` calls are folded into the span model as zero-duration
instants on a synthetic ``events:<category>`` track, so old call sites
show up on exported timelines without modification.

Tracing is off by default (:data:`NULL_TRACER` on the engine) and costs
one attribute check per emission.

Span names follow ``layer.component.op`` (e.g. ``pmix.client.fence``,
``ompi.comm.create_from_group``); the first dotted component doubles as
the record's *category* for filtering, so ``Tracer(categories={"pmix"})``
keeps only PMIx-layer spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    time: float
    category: str
    event: str
    detail: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Span:
    """A nested, timed interval on one track.

    ``parent`` is the span id of the innermost span open on the same
    track when this one began (0 = root).  ``end`` stays ``None`` while
    the span is open.
    """

    sid: int
    track: str
    name: str
    start: float
    parent: int = 0
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0


@dataclass
class Instant:
    """A zero-duration event on a track (Chrome 'i' phase)."""

    time: float
    track: str
    name: str
    span: int = 0                      # innermost open span at emission
    attrs: Dict[str, Any] = field(default_factory=dict)


@dataclass
class FlowEdge:
    """A causality edge between two tracks (message send -> receive).

    The destination half stays ``None`` until :meth:`Tracer.flow_end`
    binds it; a dangling edge means the message never arrived (dropped
    by fault injection, or in flight at simulation end).
    """

    fid: int
    name: str
    src_track: str
    src_time: float
    src_span: int = 0
    dst_track: Optional[str] = None
    dst_time: Optional[float] = None
    dst_span: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.dst_time is not None


def track_for_proc(proc) -> str:
    """Track name for a job proc (anything with .nspace/.rank)."""
    return f"rank:{proc.nspace}/{proc.rank}"


def track_for_daemon(node: int) -> str:
    """Track name for the PRRTE daemon + PMIx server on one node."""
    return f"daemon:{node}"


class Tracer:
    """Collects trace records, spans and flows, optionally filtered by
    category (the first dotted component of a span/event name)."""

    def __init__(self, categories: Optional[set] = None, *,
                 id_start: int = 1, id_step: int = 1) -> None:
        self.records: List[TraceRecord] = []
        # Normalize to frozenset: accepts any iterable (a bare string
        # would otherwise filter per *character*, silently passing some
        # single-letter categories and dropping everything else).
        if categories is not None:
            if isinstance(categories, str):
                categories = (categories,)
            categories = frozenset(categories)
        self.categories = categories
        self.enabled = True
        # category -> records index so find()/count() in hot test loops
        # are O(matches), not O(all records).
        self._by_category: Dict[str, List[TraceRecord]] = {}
        # Span model state.  ``id_start``/``id_step`` carve out disjoint
        # sid/fid spaces per partition under repro.dsim (partition k of N
        # allocates k+1, k+1+N, ...), so merged traces never collide and
        # a flow id shipped inside a cross-partition message still names
        # the sender's allocation.  The defaults reproduce today's ids.
        self.spans: Dict[int, Span] = {}
        self.instants: List[Instant] = []
        self.flows: Dict[int, FlowEdge] = {}
        self._stacks: Dict[str, List[int]] = {}   # track -> open span ids
        self._id_start = id_start
        self._id_step = id_step
        self._next_sid = id_start
        self._next_fid = id_start
        # Under dsim a flow_end may arrive for a fid allocated in another
        # partition; opt in to keeping the dst half (merged later).
        self.record_unmatched_flow_ends = False

    # -- category filtering -------------------------------------------------
    def _wants(self, category: str) -> bool:
        return self.categories is None or category in self.categories

    @staticmethod
    def _category_of(name: str) -> str:
        return name.split(".", 1)[0]

    def _top(self, track: str) -> int:
        stack = self._stacks.get(track)
        return stack[-1] if stack else 0

    # -- legacy flat-record API --------------------------------------------
    def emit(self, time: float, category: str, event: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if not self._wants(category):
            return
        rec = TraceRecord(time, category, event, detail)
        self.records.append(rec)
        self._by_category.setdefault(category, []).append(rec)
        # Fold into the span model as a zero-duration instant so legacy
        # call sites appear on exported timelines.
        track = f"events:{category}"
        self.instants.append(
            Instant(time, track, f"{category}.{event}", self._top(track), detail)
        )

    def find(self, category: Optional[str] = None, event: Optional[str] = None) -> Iterator[TraceRecord]:
        if category is not None:
            records = self._by_category.get(category, ())
        else:
            records = self.records
        for rec in records:
            if event is not None and rec.event != event:
                continue
            yield rec

    def count(self, category: Optional[str] = None, event: Optional[str] = None) -> int:
        if category is not None and event is None:
            return len(self._by_category.get(category, ()))
        return sum(1 for _ in self.find(category, event))

    def clear(self) -> None:
        self.records.clear()
        self._by_category.clear()
        self.spans.clear()
        self.instants.clear()
        self.flows.clear()
        self._stacks.clear()
        self._next_sid = self._id_start
        self._next_fid = self._id_start

    # -- span API -----------------------------------------------------------
    def begin(self, time: float, track: str, name: str, **attrs: Any) -> int:
        """Open a span; returns its id (0 if disabled/filtered).

        The innermost span already open on ``track`` becomes the parent.
        Pass the returned id to :meth:`end`; id 0 is always safe to end.
        """
        if not self.enabled or not self._wants(self._category_of(name)):
            return 0
        sid = self._next_sid
        self._next_sid += self._id_step
        stack = self._stacks.setdefault(track, [])
        parent = stack[-1] if stack else 0
        self.spans[sid] = Span(sid, track, name, time, parent, None, attrs)
        stack.append(sid)
        return sid

    def end(self, time: float, sid: int) -> None:
        """Close a span.  Tolerates id 0, double-close, and out-of-order
        closes (the id is removed from wherever it sits in the stack)."""
        if not sid:
            return
        span = self.spans.get(sid)
        if span is None or span.end is not None:
            return
        span.end = time
        stack = self._stacks.get(span.track)
        if stack and sid in stack:
            stack.remove(sid)

    def event(self, time: float, track: str, name: str, **attrs: Any) -> None:
        """Record an instant on a track, tied to its innermost open span."""
        if not self.enabled or not self._wants(self._category_of(name)):
            return
        self.instants.append(Instant(time, track, name, self._top(track), attrs))

    # -- causality edges ----------------------------------------------------
    def flow_begin(self, time: float, track: str, name: str, **attrs: Any) -> int:
        """Start a causality edge at (track, time); returns its id (0 if
        disabled/filtered).  Bind the arrival with :meth:`flow_end`."""
        if not self.enabled or not self._wants(self._category_of(name)):
            return 0
        fid = self._next_fid
        self._next_fid += self._id_step
        self.flows[fid] = FlowEdge(fid, name, track, time, self._top(track), attrs=attrs)
        return fid

    def flow_end(self, time: float, track: str, fid: int) -> None:
        """Bind the arrival half of a flow.  Tolerates id 0 and double
        binding (duplicated packets keep the first arrival)."""
        if not fid:
            return
        flow = self.flows.get(fid)
        if flow is None:
            if not self.record_unmatched_flow_ends:
                return
            # The begin half lives in another partition (repro.dsim); keep
            # the dst half under the sender-allocated fid so the merge can
            # unify the two.  src_track="" marks the record as partial.
            self.flows[fid] = FlowEdge(fid, "", "", 0.0, 0, track, time,
                                       self._top(track))
            return
        if flow.dst_time is not None:
            return
        flow.dst_track = track
        flow.dst_time = time
        flow.dst_span = self._top(track)

    def flow(self, name: str, src_track: str, src_time: float,
             dst_track: str, dst_time: float, **attrs: Any) -> int:
        """Record a complete causality edge in one shot (for logical
        handoffs with no wire message, e.g. a server releasing a blocked
        client at a scheduled time)."""
        fid = self.flow_begin(src_time, src_track, name, **attrs)
        self.flow_end(dst_time, dst_track, fid)
        return fid

    # -- span-model queries (used by tests and exporters) -------------------
    def spans_named(self, name: str) -> List[Span]:
        return [s for s in self.spans.values() if s.name == name]

    def children(self, sid: int) -> List[Span]:
        return [s for s in self.spans.values() if s.parent == sid]

    def roots(self, track: Optional[str] = None) -> List[Span]:
        return [
            s for s in self.spans.values()
            if s.parent == 0 and (track is None or s.track == track)
        ]

    def span_tree(self, sid: int):
        """Nested ``(name, [children...])`` tuples rooted at ``sid`` —
        handy for asserting exact span shapes in white-box tests."""
        span = self.spans[sid]
        kids = sorted(self.children(sid), key=lambda s: (s.start, s.sid))
        return (span.name, [self.span_tree(k.sid) for k in kids])

    def tracks(self) -> List[str]:
        seen = set()
        for s in self.spans.values():
            seen.add(s.track)
        for i in self.instants:
            seen.add(i.track)
        for f in self.flows.values():
            seen.add(f.src_track)
            if f.dst_track is not None:
                seen.add(f.dst_track)
        return sorted(seen)

    def max_time(self) -> float:
        """Latest timestamp of anything recorded (0.0 if empty)."""
        t = 0.0
        for s in self.spans.values():
            t = max(t, s.start if s.end is None else s.end)
        for i in self.instants:
            t = max(t, i.time)
        for f in self.flows.values():
            t = max(t, f.src_time if f.dst_time is None else f.dst_time)
        return t


class NullTracer(Tracer):
    """Tracer that drops everything (the default).

    Shares every code path with :class:`Tracer`; the only difference is
    that :attr:`enabled` is pinned False, so each emission costs exactly
    one branch.  ``enabled`` is a plain instance attribute (not a
    property) so the hot-path ``tracer.enabled`` check is a single dict
    lookup; the ``__setattr__`` guard keeps the pin — a NullTracer can
    never be switched on (tests rely on this — swap in a real Tracer
    instead).
    """

    def __setattr__(self, name: str, value: Any) -> None:
        if name == "enabled":
            value = False
        object.__setattr__(self, name, value)


#: Shared default tracer attached to engines that were given none.
NULL_TRACER = NullTracer()

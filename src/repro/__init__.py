"""repro — a simulated Open MPI + PMIx + PRRTE stack reproducing
"MPI Sessions: Evaluation of an Implementation in Open MPI"
(Hjelm et al., IEEE CLUSTER 2019).

Quick start::

    from repro.api import SimSpec, run_mpi
    from repro.ompi.constants import SUM

    def main(mpi):
        session = yield from mpi.session_init()
        group = yield from session.group_from_pset("mpi://world")
        comm = yield from mpi.comm_create_from_group(group, "quickstart")
        total = yield from comm.allreduce(comm.rank, op=SUM)
        comm.free()
        yield from session.finalize()
        return total

    print(run_mpi(SimSpec(nprocs=8), main))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproduction index.
"""

__version__ = "1.0.0"

from repro.api import SimSpec, make_world, run_mpi
from repro.cluster import Cluster

__all__ = ["run_mpi", "make_world", "SimSpec", "Cluster", "__version__"]

"""Deterministic fault injection for the *operational* stack.

``repro.faults`` attacks the simulated world (proc kills, dropped RML
messages — all in simulated time).  This module points the same idea at
the wall-clock operational layer around it: the ``repro.serve`` job
server, its process pool and clients, the ``repro.sweep`` executor, and
the on-disk result cache.  A :class:`ChaosPlan` mirrors
:class:`repro.faults.FaultPlan`: a declarative, seeded schedule of
fault actions that fire on the N-th operation crossing an explicit hook
point ("site"), with per-action hit budgets.

Sites and the kinds that fire there (docs/robustness.md):

=================  ======================================================
``worker.call``    ``kill_worker`` (the pool process is killed before the
                   dispatch, surfacing as :class:`~repro.serve.pool
                   .WorkerDied`), ``hang_worker`` (the call stalls
                   ``delay`` wall seconds first), ``break_pipe`` (the
                   parent end of the worker pipe is closed).
``client.send``    ``drop_conn`` — the client connection dies mid-rpc:
                   ``phase="mid"`` writes half the request line then
                   closes (a torn request the server must ignore);
                   ``phase="after"`` sends the full request and drops
                   before the response (the reply is lost and the
                   client must resubmit).
``cache.put``      ``corrupt_cache`` (the written entry's bytes are
                   damaged mid-file), ``torn_write`` (the entry is
                   truncated half-way, as if the writer died).
``sweep.point``    ``crash_point`` — the sweep point dies instead of
                   computing (exercises per-point crash isolation and
                   checkpoint/resume in :func:`repro.sweep.run_sweep`).
``fleet.route``    ``kill_shard`` — the fleet router's kill hook stops
                   the shard that owns the routed key; the router must
                   detect the death and fail the key over to its ring
                   successor (:func:`fleet_failover_run`).
=================  ======================================================

The plan is pure bookkeeping and holds no wall-clock or PRNG state of
its own; each hook point consults it with :meth:`ChaosPlan.on`, which
counts the operation and returns the actions that fired.  Counters are
guarded by a lock so one plan may be shared by the client thread and
the server loop thread of an in-process soak.  Every injection is
recorded in :attr:`ChaosPlan.stats` and fanned out to any attached
:class:`~repro.obs.metrics.MetricsRegistry` /
:class:`~repro.obs.events.EventLog` as ``chaos.injected`` metrics and
events, so injected faults are first-class telemetry.

Determinism contract (the headline invariant of ``tools/run_chaos.py``):
a *survivable* plan — kills within the server's retry budget, connection
drops within the client's resubmit budget, any amount of cache damage —
must leave results byte-identical to a clean run, because every layer it
attacks recomputes or retries deterministically.  :func:`chaos_plan`
derives such a plan from a seed; same seed, same plan, same injections.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import shutil
import tempfile
import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

KINDS = (
    "kill_worker",
    "hang_worker",
    "break_pipe",
    "drop_conn",
    "corrupt_cache",
    "torn_write",
    "crash_point",
    "kill_shard",
)

#: Hook point each kind fires at.
SITE_OF = {
    "kill_worker": "worker.call",
    "hang_worker": "worker.call",
    "break_pipe": "worker.call",
    "drop_conn": "client.send",
    "corrupt_cache": "cache.put",
    "torn_write": "cache.put",
    "crash_point": "sweep.point",
    "kill_shard": "fleet.route",
}

SITES = tuple(sorted(set(SITE_OF.values())))

DROP_PHASES = ("mid", "after")


@dataclass
class ChaosAction:
    """One scheduled operational fault.

    Fires at its kind's site either on the ``after_count``-th matching
    operation (1-based, once), or — with ``after_count=None`` — on every
    matching operation up to ``max_hits`` (``None`` = unlimited, e.g. a
    worker pool where every dispatch dies).  ``scenario`` restricts
    matching to operations carrying that scenario name.
    """

    kind: str
    after_count: Optional[int] = None   # fire on the Nth matching op (1-based)
    max_hits: Optional[int] = 1         # budget when not count-triggered
    scenario: Optional[str] = None      # match only ops for this scenario
    delay: float = 0.0                  # hang_worker: stall seconds
    phase: str = "mid"                  # drop_conn: "mid" | "after" the send
    # runtime counters (owned by the plan, not user input)
    seen: int = field(default=0, compare=False)
    hits: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown chaos kind {self.kind!r} (have {KINDS})")
        if self.kind == "hang_worker" and self.delay <= 0.0:
            raise ValueError("hang_worker needs delay > 0")
        if self.kind == "drop_conn" and self.phase not in DROP_PHASES:
            raise ValueError(f"drop_conn phase must be one of {DROP_PHASES}")
        if self.after_count is not None and self.after_count < 1:
            raise ValueError("after_count is 1-based (>= 1)")

    @property
    def site(self) -> str:
        return SITE_OF[self.kind]

    def observe(self, scenario: Optional[str] = None) -> bool:
        """Count one matching operation; True if the action fires on it."""
        if self.scenario is not None and scenario != self.scenario:
            return False
        self.seen += 1
        if self.after_count is not None:
            if self.seen != self.after_count:
                return False
        elif self.max_hits is not None and self.hits >= self.max_hits:
            return False
        self.hits += 1
        return True

    def describe(self) -> str:
        bits = [self.kind]
        for name in ("after_count", "scenario"):
            v = getattr(self, name)
            if v is not None:
                bits.append(f"{name}={v}")
        if self.after_count is None and self.max_hits != 1:
            bits.append(f"max_hits={self.max_hits}")
        if self.kind == "hang_worker":
            bits.append(f"delay={self.delay}")
        if self.kind == "drop_conn":
            bits.append(f"phase={self.phase}")
        return " ".join(bits)


class ChaosPlan:
    """An ordered schedule of :class:`ChaosAction`s with run-scoped
    counters: install one plan instance per run (like ``FaultPlan``).

    Hook points call :meth:`on`; recorders attached with :meth:`attach`
    see every injection as a ``chaos.injected`` metric/event.
    """

    def __init__(self, actions: Optional[List[ChaosAction]] = None) -> None:
        self.actions: List[ChaosAction] = []
        self.stats: Counter = Counter()
        self._lock = threading.Lock()
        self._recorders: List[Tuple[Any, Any]] = []   # (metrics, events)
        for act in actions or []:
            self.add(act)

    def add(self, action: ChaosAction) -> "ChaosPlan":
        if not isinstance(action, ChaosAction):
            raise TypeError(f"expected ChaosAction, got {type(action).__name__}")
        self.actions.append(action)
        return self

    def attach(self, *, metrics: Any = None, events: Any = None) -> "ChaosPlan":
        """Record every future injection in a metrics registry and/or an
        event log (both optional; callable multiple times — e.g. by the
        server and a test harness)."""
        if metrics is not None or events is not None:
            self._recorders.append((metrics, events))
        return self

    # -- the hook-point API -------------------------------------------------
    def on(self, site: str, scenario: Optional[str] = None,
           **ctx: Any) -> List[ChaosAction]:
        """Consulted by a hook point for one operation at ``site``.

        Counts the operation against every action of that site and
        returns the actions that fired (usually zero or one).  ``ctx``
        is recorder-only context (worker id, cache key, ...).
        """
        fired: List[ChaosAction] = []
        with self._lock:
            for act in self.actions:
                if act.site != site:
                    continue
                if act.observe(scenario):
                    fired.append(act)
            for act in fired:
                self.stats[act.kind] += 1
        for act in fired:
            self._record(site, act, scenario, ctx)
        return fired

    def _record(self, site: str, act: ChaosAction,
                scenario: Optional[str], ctx: Dict[str, Any]) -> None:
        for metrics, events in self._recorders:
            if metrics is not None:
                metrics.inc("chaos.injected", kind=act.kind, site=site)
            if events is not None:
                events.emit("chaos.injected", kind=act.kind, site=site,
                            scenario=scenario, **ctx)

    @property
    def injected(self) -> int:
        """Total injections so far, across all kinds."""
        return sum(self.stats.values())

    # -- convenience constructors (mirror FaultPlan) ------------------------
    def kill_worker(self, **kw: Any) -> "ChaosPlan":
        return self.add(ChaosAction("kill_worker", **kw))

    def hang_worker(self, delay: float, **kw: Any) -> "ChaosPlan":
        return self.add(ChaosAction("hang_worker", delay=delay, **kw))

    def break_pipe(self, **kw: Any) -> "ChaosPlan":
        return self.add(ChaosAction("break_pipe", **kw))

    def drop_conn(self, phase: str = "mid", **kw: Any) -> "ChaosPlan":
        return self.add(ChaosAction("drop_conn", phase=phase, **kw))

    def corrupt_cache(self, **kw: Any) -> "ChaosPlan":
        return self.add(ChaosAction("corrupt_cache", **kw))

    def torn_write(self, **kw: Any) -> "ChaosPlan":
        return self.add(ChaosAction("torn_write", **kw))

    def crash_point(self, **kw: Any) -> "ChaosPlan":
        return self.add(ChaosAction("crash_point", **kw))

    def kill_shard(self, **kw: Any) -> "ChaosPlan":
        return self.add(ChaosAction("kill_shard", **kw))

    def describe(self) -> str:
        return "; ".join(act.describe() for act in self.actions) or "<empty plan>"

    def __len__(self) -> int:
        return len(self.actions)


def chaos_plan(
    seed: int,
    *,
    n_actions: int = 5,
    kinds: Optional[Tuple[str, ...]] = None,
    max_kills: int = 2,
    max_drops: int = 2,
    ops_window: int = 10,
) -> ChaosPlan:
    """A seed-deterministic *survivable* plan: same arguments, same plan.

    Survivable means every injection stays inside the hardening budgets
    the soak servers/clients run with (docs/robustness.md): at most
    ``max_kills`` worker kills and ``max_drops`` connection drops, each
    pinned to a distinct operation index in ``[1, ops_window]`` so no
    single request can accumulate more faults than its retry budget
    absorbs, plus unbounded-damage-but-harmless cache corruption and
    short worker hangs.  Results under such a plan must be
    byte-identical to a clean run.
    """
    rng = random.Random(f"chaos-plan:{seed}")
    pool = list(kinds or ("kill_worker", "hang_worker", "break_pipe",
                          "drop_conn", "corrupt_cache", "torn_write"))
    plan = ChaosPlan()
    kills = drops = 0
    free: Dict[str, List[int]] = {
        site: list(range(1, ops_window + 1)) for site in SITES
    }

    def pick(site: str) -> Optional[int]:
        if not free[site]:
            return None
        n = rng.choice(free[site])
        free[site].remove(n)
        return n

    for _ in range(n_actions):
        kind = rng.choice(pool)
        if kind in ("kill_worker", "break_pipe"):
            n = pick("worker.call")
            if kills >= max_kills or n is None:
                continue
            plan.add(ChaosAction(kind, after_count=n))
            kills += 1
        elif kind == "hang_worker":
            n = pick("worker.call")
            if n is None:
                continue
            plan.hang_worker(rng.uniform(0.01, 0.05), after_count=n)
        elif kind == "drop_conn":
            n = pick("client.send")
            if drops >= max_drops or n is None:
                continue
            plan.drop_conn(rng.choice(DROP_PHASES), after_count=n)
            drops += 1
        elif kind in ("corrupt_cache", "torn_write"):
            n = pick("cache.put")
            if n is None:
                continue
            plan.add(ChaosAction(kind, after_count=n))
        elif kind == "crash_point":
            n = pick("sweep.point")
            if n is None:
                continue
            plan.crash_point(after_count=n)
    return plan


# ---------------------------------------------------------------------------
# The chaos soak (tools/run_chaos.py)
# ---------------------------------------------------------------------------
def _digest(obj: Any) -> str:
    """sha256 of the canonical JSON — byte-parity is digest equality."""
    blob = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def soak_point(x: int = 0, seed: int = 0) -> Dict[str, Any]:
    """The sweep soak's unit of work: pure, fast, picklable, seeded."""
    rng = random.Random(f"chaos-soak:{seed}:{x}")
    vals = [round(rng.random(), 12) for _ in range(8)]
    return {"x": x, "seed": seed, "sum": round(sum(vals), 12), "vals": vals}


def serve_soak(seed: int, workdir: str, *, requests: int = 4,
               nprocs: int = 4) -> Dict[str, Any]:
    """One serve-layer soak leg: clean run vs. injected run, byte-checked.

    The injected run attacks the pool (worker kills, pipe breaks, hangs)
    and the client connection (mid-line and post-send drops) with a
    :func:`chaos_plan` sized inside the hardening budgets: server
    ``retry_limit=3`` absorbs the at-most-2 kills, client ``retries=4``
    absorbs the at-most-2 drops, and the breaker threshold sits above
    every possible death count so degraded mode never engages.  The
    single sequential client makes the operation order — and therefore
    the injection schedule — deterministic for a given seed.
    """
    from repro.api import SimSpec
    from repro.serve import ServeClient, ServerThread

    spec = SimSpec(nprocs=nprocs).to_payload()

    def drive(client: ServeClient) -> List[Any]:
        out = []
        for k in range(requests):
            r = client.submit("sim", {"spec": spec, "program": "allreduce",
                                      "seed": k})
            out.append({"status": r.get("status"), "result": r.get("result")})
        return out

    with ServerThread(workers=2,
                      cache_dir=os.path.join(workdir, f"clean-{seed}")) as srv:
        with ServeClient(srv.address) as client:
            clean = drive(client)

    plan = chaos_plan(seed, kinds=("kill_worker", "hang_worker",
                                   "break_pipe", "drop_conn"))
    with ServerThread(workers=2, retry_limit=3, retry_seed=seed,
                      breaker_threshold=1000, chaos=plan,
                      cache_dir=os.path.join(workdir, f"chaos-{seed}")) as srv:
        with ServeClient(srv.address, retries=4, retry_seed=seed,
                         chaos=plan) as client:
            injected = drive(client)
            reconnects = client.reconnects
        deaths = srv.server.stats.worker_deaths

    return {
        "clean_digest": _digest(clean),
        "chaos_digest": _digest(injected),
        "ok": _digest(clean) == _digest(injected),
        "injected": dict(sorted(plan.stats.items())),
        "worker_deaths": deaths,
        "client_reconnects": reconnects,
    }


def sweep_soak(seed: int, workdir: str, *, points_n: int = 6,
               jobs: int = 2) -> Dict[str, Any]:
    """One sweep-layer soak leg: cache corruption under a parallel sweep.

    Pass 1 runs with a chaos-wired cache (torn and corrupted writes
    land on disk); pass 2 re-reads that damaged cache with a clean
    one — every damaged entry must be quarantined and recomputed.  Both
    passes must be byte-identical to the cache-less clean run.
    """
    from repro.sweep import SweepCache, SweepPoint, run_sweep

    pts = [SweepPoint("chaos-soak", soak_point, {"x": i, "seed": seed})
           for i in range(points_n)]
    clean = run_sweep(pts)
    plan = chaos_plan(seed, kinds=("corrupt_cache", "torn_write"),
                      n_actions=4, ops_window=points_n)
    cdir = os.path.join(workdir, f"sweepcache-{seed}")
    damaged = SweepCache(cdir, chaos=plan)
    first = run_sweep(pts, jobs=jobs, cache=damaged)
    reread = SweepCache(cdir)
    second = run_sweep(pts, jobs=jobs, cache=reread)
    d_clean = _digest(clean)
    return {
        "clean_digest": d_clean,
        "chaos_digest": _digest(first),
        "reread_digest": _digest(second),
        "ok": d_clean == _digest(first) == _digest(second),
        "injected": dict(sorted(plan.stats.items())),
        "quarantined": reread.corrupt,
    }


def soak_run(seed: int, *, workdir: Optional[str] = None, requests: int = 4,
             points_n: int = 6, nprocs: int = 4) -> Dict[str, Any]:
    """One full chaos-soak run (the ``chaos-soak`` CLI unit): the serve
    leg plus the sweep leg for one seed; ``ok`` iff both held byte
    parity.  ``digest`` summarizes every deterministic field, so a
    ``--verify-determinism`` re-run must reproduce it exactly."""
    own = workdir is None
    if own:
        workdir = tempfile.mkdtemp(prefix=f"chaos-soak-{seed}-")
    try:
        serve = serve_soak(seed, workdir, requests=requests, nprocs=nprocs)
        sweep = sweep_soak(seed, workdir, points_n=points_n)
    finally:
        if own:
            shutil.rmtree(workdir, ignore_errors=True)
    rec = {"seed": seed, "ok": serve["ok"] and sweep["ok"],
           "serve": serve, "sweep": sweep}
    rec["digest"] = _digest(rec)
    return rec


def degraded_run(workdir: Optional[str] = None) -> Dict[str, Any]:
    """The corrupt-cache + dead-worker scenario (acceptance criterion):
    the server must end up *degraded* — answering cached requests,
    rejecting uncached ones with a ``degraded`` reason — instead of
    crashing, and the corrupt entry must be quarantined."""
    from repro.api import SimSpec
    from repro.serve import ServeClient, ServerThread
    from repro.sweep import cache_key

    own = workdir is None
    if own:
        workdir = tempfile.mkdtemp(prefix="chaos-degraded-")
    cache_dir = os.path.join(workdir, "cache")
    state_dir = os.path.join(workdir, "flaky")
    spec = SimSpec(nprocs=2).to_payload()
    params_a = {"spec": spec, "program": "allreduce", "seed": 1}
    params_b = {"spec": spec, "program": "allreduce", "seed": 2}
    try:
        with ServerThread(workers=1, cache_dir=cache_dir, retry_limit=0,
                          breaker_threshold=2,
                          breaker_cooldown_s=3600.0) as srv:
            with ServeClient(srv.address) as client:
                ok_a = client.submit("sim", params_a)
                ok_b = client.submit("sim", params_b)
                # Damage B's entry on disk behind the server's back.
                path = os.path.join(cache_dir,
                                    cache_key("sim", params_b) + ".json")
                with open(path, "r+") as fh:
                    fh.seek(max(0, os.path.getsize(path) // 2))
                    fh.write("\x00chaos\x00")
                # Two hard worker deaths with no retry budget: the
                # breaker trips on the second.
                dead_1 = client.submit("flaky", {"state_dir": state_dir,
                                                 "key": "x", "crashes": 9})
                dead_2 = client.submit("flaky", {"state_dir": state_dir,
                                                 "key": "y", "crashes": 9})
                health = client.health()
                hit = client.submit("sim", params_a)        # cached: served
                miss = client.submit("sim", params_b)       # corrupt: rejected
            quarantined = os.path.exists(path + ".corrupt")
            trips = srv.server.stats.breaker_trips
    finally:
        if own:
            shutil.rmtree(workdir, ignore_errors=True)
    reason = str(miss.get("reason", ""))
    record = {
        "precache_ok": (ok_a.get("status"), ok_b.get("status")) == ("ok", "ok"),
        "deaths_errored": (dead_1.get("status") == "error"
                           and dead_2.get("status") == "error"),
        "degraded_in_health": bool(health.get("degraded")),
        "cached_served_while_degraded": (hit.get("status") == "ok"
                                         and bool(hit.get("cached"))),
        "uncached_rejected": miss.get("status") == "rejected",
        "reject_reason": reason,
        "quarantined": quarantined,
        "breaker_trips": trips,
    }
    record["ok"] = all([
        record["precache_ok"], record["deaths_errored"],
        record["degraded_in_health"], record["cached_served_while_degraded"],
        record["uncached_rejected"], reason.startswith("degraded"),
        record["quarantined"], trips == 1,
    ])
    return record


def fleet_failover_run(*, shards: int = 2, requests: int = 4) -> Dict[str, Any]:
    """The shard-death failover scenario (``python -m repro chaos``).

    A ``kill_shard`` action armed at the ``fleet.route`` site takes
    down the shard owning the next routed key; the router must detect
    the death on the forward, fail the key over to its ring successor,
    and keep serving — every subsequent submit must still answer
    ``ok``.  Composes with the degraded-mode contract: with every shard
    dead the router answers a structured ``rejected`` (asserted in
    tests/serve/test_fleet.py), never a hang or a crash.
    """
    from repro.serve import FleetThread, ServeClient

    plan = ChaosPlan().kill_shard(after_count=2)
    with FleetThread(shards=shards, workers=1, chaos=plan) as fl:
        with ServeClient(fl.address) as client:
            results = [client.submit("sleep", {"seconds": 0.005, "tag": k})
                       for k in range(requests)]
            health = client.health()
        failovers = fl.call(_fleet_failovers)
    statuses = [r.get("status") for r in results]
    shards_used = sorted({r.get("shard") for r in results
                          if r.get("shard") is not None})
    record = {
        "shards": shards,
        "requests": requests,
        "statuses": statuses,
        "shards_used": shards_used,
        "killed": plan.stats.get("kill_shard", 0),
        "failovers": failovers,
        "live_after": health.get("live"),
    }
    record["ok"] = all([
        all(s == "ok" for s in statuses),
        record["killed"] == 1,
        failovers >= 1,
        health.get("live") == shards - 1,
    ])
    return record


async def _fleet_failovers(fleet: Any) -> int:
    return fleet.router.failovers

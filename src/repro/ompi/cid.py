"""The legacy consensus CID allocator (paper §III-B2).

Open MPI's classic algorithm: the CID is a 16-bit index into each
process's local communicator array, and all members of a communicator
must agree on the index.  Agreement runs rounds of reductions over the
*parent* communicator:

1. each process proposes its lowest free index at or above the current
   floor;
2. an allreduce(MAX) finds the largest proposal;
3. a second allreduce(MIN over "my proposal == max and it is free
   here") confirms unanimity; if anyone disagrees the floor moves to
   the max and the loop repeats.

With a fragmented CID space (holes at different indices on different
processes) the algorithm can take many rounds — the weakness the exCID
generator eliminates, exercised by the fragmentation ablation bench.

This module also owns the per-process communicator table.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ompi import constants
from repro.ompi.errors import MPIErrIntern

MAX_CID = 2**16


class CidTable:
    """Per-process array of communicators indexed by local CID."""

    def __init__(self) -> None:
        self._table: List[Optional[object]] = []

    def lowest_free(self, at_least: int = 0) -> int:
        for idx in range(at_least, len(self._table)):
            if self._table[idx] is None:
                return idx
        idx = max(at_least, len(self._table))
        if idx >= MAX_CID:
            raise MPIErrIntern("communicator id space exhausted")
        return idx

    def is_free(self, cid: int) -> bool:
        return cid >= len(self._table) or self._table[cid] is None

    def reserve(self, cid: int, comm: object) -> None:
        if not self.is_free(cid):
            raise MPIErrIntern(f"CID {cid} already in use")
        while len(self._table) <= cid:
            self._table.append(None)
        self._table[cid] = comm

    def release(self, cid: int) -> None:
        if cid >= len(self._table) or self._table[cid] is None:
            raise MPIErrIntern(f"release of free CID {cid}")
        self._table[cid] = None

    def get(self, cid: int) -> Optional[object]:
        if 0 <= cid < len(self._table):
            return self._table[cid]
        return None

    @property
    def live_count(self) -> int:
        return sum(1 for c in self._table if c is not None)

    def __len__(self) -> int:
        return len(self._table)


def allocate_consensus_cid(parent_comm):
    """Sub-generator: agree on a free CID using the parent communicator.

    Returns the agreed CID (not yet reserved — the caller reserves it
    for the new communicator).  Runs entirely on MPI point-to-point
    traffic via the parent's allreduce, exactly like Open MPI.
    """
    table: CidTable = parent_comm.runtime.cid_table
    floor = 0
    rounds = 0
    while True:
        rounds += 1
        if rounds > MAX_CID:  # pragma: no cover - defensive
            raise MPIErrIntern("CID consensus failed to converge")
        proposed = table.lowest_free(at_least=floor)
        agreed = yield from parent_comm._internal_allreduce(
            proposed, constants.MAX, constants._TAG_CID
        )
        unanimous = proposed == agreed and table.is_free(agreed)
        all_ok = yield from parent_comm._internal_allreduce(
            1 if unanimous else 0, constants.MIN, constants._TAG_CID
        )
        if all_ok:
            return agreed
        floor = agreed

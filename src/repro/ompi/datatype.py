"""MPI datatypes.

Basic numeric types map to numpy dtypes; derived types (contiguous and
vector) carry the layout needed to compute wire sizes.  The simulator
moves Python objects, so datatypes exist to (a) size messages for the
cost model and (b) mirror the API shape of an MPI library.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ompi.errors import MPIErrArg


class Datatype:
    """An MPI datatype: a name, an extent in bytes, and (for derived
    types) a block layout."""

    def __init__(
        self,
        name: str,
        size: int,
        np_dtype: Optional[np.dtype] = None,
        committed: bool = True,
    ) -> None:
        if size < 0:
            raise MPIErrArg("datatype size must be >= 0")
        self.name = name
        self.size = size            # true data bytes per element
        self.extent = size          # span including gaps (derived types differ)
        self.np_dtype = np_dtype
        self.committed = committed
        self.freed = False

    # -- derived constructors ----------------------------------------------
    def create_contiguous(self, count: int) -> "Datatype":
        if count < 0:
            raise MPIErrArg("count must be >= 0")
        dt = Datatype(f"contig({count})x{self.name}", self.size * count, committed=False)
        dt.extent = self.extent * count
        return dt

    def create_vector(self, count: int, blocklength: int, stride: int) -> "Datatype":
        if count < 0 or blocklength < 0:
            raise MPIErrArg("count and blocklength must be >= 0")
        dt = Datatype(
            f"vector({count},{blocklength},{stride})x{self.name}",
            self.size * count * blocklength,
            committed=False,
        )
        if count > 0:
            dt.extent = self.extent * (stride * (count - 1) + blocklength)
        else:
            dt.extent = 0
        return dt

    def commit(self) -> "Datatype":
        self._check()
        self.committed = True
        return self

    def free(self) -> None:
        self._check()
        self.freed = True

    def _check(self) -> None:
        if self.freed:
            raise MPIErrArg(f"datatype {self.name} used after free")

    def wire_size(self, count: int) -> int:
        """Bytes on the wire for ``count`` elements of this type."""
        self._check()
        if not self.committed:
            raise MPIErrArg(f"datatype {self.name} used before commit")
        return self.size * count

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Datatype {self.name} size={self.size}>"


BYTE = Datatype("MPI_BYTE", 1, np.dtype(np.uint8))
CHAR = Datatype("MPI_CHAR", 1, np.dtype("S1"))
SHORT = Datatype("MPI_SHORT", 2, np.dtype(np.int16))
INT = Datatype("MPI_INT", 4, np.dtype(np.int32))
LONG = Datatype("MPI_LONG", 8, np.dtype(np.int64))
UNSIGNED = Datatype("MPI_UNSIGNED", 4, np.dtype(np.uint32))
UNSIGNED_LONG = Datatype("MPI_UNSIGNED_LONG", 8, np.dtype(np.uint64))
FLOAT = Datatype("MPI_FLOAT", 4, np.dtype(np.float32))
DOUBLE = Datatype("MPI_DOUBLE", 8, np.dtype(np.float64))
COMPLEX = Datatype("MPI_COMPLEX", 8, np.dtype(np.complex64))
DOUBLE_COMPLEX = Datatype("MPI_DOUBLE_COMPLEX", 16, np.dtype(np.complex128))
BOOL = Datatype("MPI_C_BOOL", 1, np.dtype(np.bool_))


def sizeof_payload(payload, datatype: Optional[Datatype] = None, count: Optional[int] = None) -> int:
    """Best-effort wire size of a python payload.

    Priority: explicit (datatype, count) > numpy nbytes > bytes len >
    rough pickle-free structural estimate.
    """
    if datatype is not None and count is not None:
        return datatype.wire_size(count)
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if payload is None:
        return 0
    if isinstance(payload, (int, float, complex, bool)):
        return 8
    if isinstance(payload, str):
        return len(payload)
    if isinstance(payload, (list, tuple, set)):
        return 8 + sum(sizeof_payload(v) for v in payload)
    if isinstance(payload, dict):
        return 8 + sum(sizeof_payload(k) + sizeof_payload(v) for k, v in payload.items())
    return 64

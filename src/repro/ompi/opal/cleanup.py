"""The OPAL cleanup-callback framework (paper §III-B5).

Classic Open MPI initialized everything in ``MPI_Init`` and tore it
down in a carefully ordered ``MPI_Finalize``.  The sessions prototype
replaces that with lazy, reference-counted subsystems: the first user
of a subsystem initializes it and registers a cleanup callback; when
the last MPI Session is finalized the accumulated callbacks run in LIFO
order and the library returns to a truly uninitialized state, ready
for a new init cycle.

:class:`SubsystemRegistry` implements the refcounts;
:class:`CleanupFramework` implements the callback stack.  Both are
per-simulated-process."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple


class CleanupError(RuntimeError):
    """Cleanup misuse (double-run, register after run, ...)."""


class CleanupFramework:
    """LIFO stack of cleanup callbacks for one init epoch."""

    def __init__(self) -> None:
        self._callbacks: List[Tuple[str, Callable[[], None]]] = []
        self.epochs_completed = 0

    def register(self, name: str, fn: Callable[[], None]) -> None:
        self._callbacks.append((name, fn))

    @property
    def pending(self) -> int:
        return len(self._callbacks)

    def run_all(self) -> List[str]:
        """Run and clear every callback, newest first; returns the order."""
        order: List[str] = []
        while self._callbacks:
            name, fn = self._callbacks.pop()
            fn()
            order.append(name)
        self.epochs_completed += 1
        return order


class SubsystemRegistry:
    """Reference-counted lazy subsystem initialization.

    ``acquire(name, init_fn, cleanup_fn)``: on first acquisition run
    ``init_fn`` (which may be a sub-generator charging simulated time)
    and register ``cleanup_fn`` with the cleanup framework; subsequent
    acquisitions only bump the refcount.  ``release(name)`` decrements;
    the actual teardown happens when the *framework* runs (i.e. at
    last-session-finalize), mirroring the prototype.
    """

    def __init__(self, cleanup: CleanupFramework) -> None:
        self.cleanup = cleanup
        self._refcounts: Dict[str, int] = {}
        self._initialized: set = set()
        self.init_epochs: Dict[str, int] = {}   # name -> times initialized ever

    def refcount(self, name: str) -> int:
        return self._refcounts.get(name, 0)

    def is_initialized(self, name: str) -> bool:
        return name in self._initialized

    @property
    def live_subsystems(self) -> List[str]:
        return sorted(n for n, c in self._refcounts.items() if c > 0)

    def acquire(self, name: str, init_fn: Optional[Callable] = None,
                cleanup_fn: Optional[Callable[[], None]] = None):
        """Sub-generator: initialize-or-retain subsystem ``name``.

        A subsystem whose refcount dropped to zero but whose cleanup has
        not yet run (the framework only fires at last-session-finalize)
        is still initialized and is *not* re-initialized here.
        """
        if name not in self._initialized:
            if init_fn is not None:
                result = init_fn()
                if result is not None and hasattr(result, "__next__"):
                    yield from result
            self.mark_initialized(name, cleanup_fn)
        self.retain(name)
        return
        yield  # pragma: no cover - makes this a generator even on fast path

    def mark_initialized(self, name: str,
                         cleanup_fn: Optional[Callable[[], None]] = None) -> None:
        """Bookkeeping half of :meth:`acquire`, for callers that already
        ran the init work themselves (the fused-sleep fast path in
        :mod:`repro.ompi.instance`): record the init epoch and register
        the teardown callback."""
        self._initialized.add(name)
        self.init_epochs[name] = self.init_epochs.get(name, 0) + 1

        def _teardown() -> None:
            self._refcounts.pop(name, None)
            self._initialized.discard(name)
            if cleanup_fn is not None:
                cleanup_fn()

        self.cleanup.register(name, _teardown)

    def retain(self, name: str) -> None:
        """Bump the refcount of an already-initialized subsystem."""
        self._refcounts[name] = self._refcounts.get(name, 0) + 1

    def release(self, name: str) -> None:
        count = self._refcounts.get(name, 0)
        if count <= 0:
            raise CleanupError(f"release of unacquired subsystem {name!r}")
        self._refcounts[name] = count - 1

    def all_released(self) -> bool:
        return all(c == 0 for c in self._refcounts.values())

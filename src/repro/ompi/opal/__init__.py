"""Simulated OPAL: Open Platform Abstraction Layer.

The slice of OPAL the paper's prototype leaned on: a reference-counted
object system, the *cleanup-callback framework* that replaced Open
MPI's carefully-ordered teardown (enabling repeated init/finalize
cycles, §III-B5), and the Modular Component Architecture registry.
"""

from repro.ompi.opal.object import OpalObject
from repro.ompi.opal.cleanup import CleanupFramework, SubsystemRegistry
from repro.ompi.opal.mca import MCARegistry, MCAFramework, MCAComponent

__all__ = [
    "OpalObject",
    "CleanupFramework",
    "SubsystemRegistry",
    "MCARegistry",
    "MCAFramework",
    "MCAComponent",
]

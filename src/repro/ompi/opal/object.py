"""Reference-counted object system (OBJ_NEW / OBJ_RETAIN / OBJ_RELEASE).

Python has its own garbage collector, but Open MPI's object lifetimes
are *explicit*: the last release triggers the destructor, and releasing
an already-destroyed object is a bug the real code base guards with
assertions.  The sessions prototype depends on exact destructor timing
(subsystems tear down when their refcount hits zero), so we model the
discipline rather than leaning on ``__del__``.
"""

from __future__ import annotations


class OpalObjectError(RuntimeError):
    """Refcounting misuse (release after destruction, negative count)."""


class OpalObject:
    """Base class for explicitly refcounted objects.

    Subclasses override :meth:`_destruct` for cleanup logic; it runs
    exactly once, when the refcount falls to zero.
    """

    def __init__(self) -> None:
        self._refcount = 1
        self._destructed = False

    @property
    def refcount(self) -> int:
        return self._refcount

    @property
    def destructed(self) -> bool:
        return self._destructed

    def retain(self) -> "OpalObject":
        if self._destructed:
            raise OpalObjectError(f"retain of destructed {type(self).__name__}")
        self._refcount += 1
        return self

    def release(self) -> bool:
        """Drop one reference; returns True if the object was destroyed."""
        if self._destructed:
            raise OpalObjectError(f"release of destructed {type(self).__name__}")
        if self._refcount <= 0:
            raise OpalObjectError(f"negative refcount on {type(self).__name__}")
        self._refcount -= 1
        if self._refcount == 0:
            self._destructed = True
            self._destruct()
            return True
        return False

    def _destruct(self) -> None:
        """Subclass hook; runs exactly once."""

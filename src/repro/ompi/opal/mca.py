"""Modular Component Architecture (MCA).

Open MPI assembles itself from frameworks (pml, btl, coll, ...) each
holding selectable components.  The sessions prototype's
``MPI_Session_init`` opens only the frameworks the session needs, so
the registry here tracks open/close cycles and selection and charges a
component-load cost on first open (component shared objects come off
the filesystem — part of the NFS story in the paper's init numbers).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional


class MCAError(RuntimeError):
    pass


class MCAComponent:
    """One selectable component (e.g. pml/ob1, btl/sm)."""

    def __init__(self, name: str, priority: int = 0, factory: Optional[Callable] = None) -> None:
        self.name = name
        self.priority = priority
        self.factory = factory or (lambda: None)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MCAComponent {self.name} prio={self.priority}>"


class MCAFramework:
    """A named framework holding components; selection picks by priority."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._components: Dict[str, MCAComponent] = {}
        self.open_count = 0
        self.is_open = False
        self.selected: Optional[MCAComponent] = None

    def register(self, component: MCAComponent) -> None:
        if component.name in self._components:
            raise MCAError(f"{self.name}/{component.name} registered twice")
        self._components[component.name] = component

    def components(self) -> List[MCAComponent]:
        return sorted(self._components.values(), key=lambda c: (-c.priority, c.name))

    def open(self) -> None:
        self.is_open = True
        self.open_count += 1

    def select(self, prefer: Optional[str] = None) -> MCAComponent:
        if not self.is_open:
            raise MCAError(f"select on closed framework {self.name}")
        if prefer is not None:
            comp = self._components.get(prefer)
            if comp is None:
                raise MCAError(f"no component {self.name}/{prefer}")
            self.selected = comp
            return comp
        comps = self.components()
        if not comps:
            raise MCAError(f"framework {self.name} has no components")
        self.selected = comps[0]
        return comps[0]

    def close(self) -> None:
        if not self.is_open:
            raise MCAError(f"close on closed framework {self.name}")
        self.is_open = False
        self.selected = None


class MCARegistry:
    """Per-process registry of frameworks and MCA parameters."""

    def __init__(self) -> None:
        self._frameworks: Dict[str, MCAFramework] = {}
        self._params: Dict[str, Any] = {}

    def framework(self, name: str) -> MCAFramework:
        fw = self._frameworks.get(name)
        if fw is None:
            fw = MCAFramework(name)
            self._frameworks[name] = fw
        return fw

    def open_frameworks(self) -> List[str]:
        return sorted(n for n, f in self._frameworks.items() if f.is_open)

    # -- parameter system (mca_base_var) -------------------------------------
    def set_param(self, name: str, value: Any) -> None:
        self._params[name] = value

    def get_param(self, name: str, default: Any = None) -> Any:
        return self._params.get(name, default)

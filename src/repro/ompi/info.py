"""MPI_Info objects.

Usable *before* MPI (or any session) is initialized — paper §III-B5:
"calls related to MPI_Info objects including object creation,
duplication, destruction, and the insertion and deletion of key/value
pairs" must work pre-init and be thread-safe.  In the prototype this
meant always-enabled locks; here the lock is a no-op placeholder kept to
mirror the structure (simulated processes are cooperatively scheduled),
but the *lifecycle* rules (use-after-free detection, key limits) are
enforced.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.ompi.errors import MPIErrArg

MAX_INFO_KEY = 255
MAX_INFO_VAL = 1024


class Info:
    """Ordered string key/value dictionary with MPI semantics."""

    def __init__(self, initial: Optional[Dict[str, str]] = None) -> None:
        self._data: Dict[str, str] = {}
        self.freed = False
        if initial:
            for key, value in initial.items():
                self.set(key, value)

    # -- helpers ---------------------------------------------------------
    def _check(self) -> None:
        if self.freed:
            raise MPIErrArg("MPI_Info used after MPI_Info_free")

    @staticmethod
    def _check_key(key: str) -> None:
        if not isinstance(key, str) or not key:
            raise MPIErrArg("info key must be a non-empty string")
        if len(key) > MAX_INFO_KEY:
            raise MPIErrArg(f"info key longer than MPI_MAX_INFO_KEY ({MAX_INFO_KEY})")

    # -- MPI operations -----------------------------------------------------
    def set(self, key: str, value: str) -> None:
        self._check()
        self._check_key(key)
        if not isinstance(value, str):
            raise MPIErrArg("info value must be a string")
        if len(value) > MAX_INFO_VAL:
            raise MPIErrArg(f"info value longer than MPI_MAX_INFO_VAL ({MAX_INFO_VAL})")
        self._data[key] = value

    def get(self, key: str) -> Optional[str]:
        self._check()
        self._check_key(key)
        return self._data.get(key)

    def delete(self, key: str) -> None:
        self._check()
        self._check_key(key)
        if key not in self._data:
            raise MPIErrArg(f"info key {key!r} not present")
        del self._data[key]

    def get_nkeys(self) -> int:
        self._check()
        return len(self._data)

    def get_nthkey(self, n: int) -> str:
        self._check()
        keys = list(self._data)
        if not 0 <= n < len(keys):
            raise MPIErrArg(f"info key index {n} out of range")
        return keys[n]

    def dup(self) -> "Info":
        self._check()
        return Info(dict(self._data))

    def free(self) -> None:
        self._check()
        self.freed = True
        self._data.clear()

    # -- conveniences ----------------------------------------------------------
    def keys(self) -> List[str]:
        self._check()
        return list(self._data)

    def items(self) -> Iterator:
        self._check()
        return iter(self._data.items())

    def __contains__(self, key: str) -> bool:
        self._check()
        return key in self._data

    def __len__(self) -> int:
        self._check()
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover
        state = "freed" if self.freed else repr(self._data)
        return f"<Info {state}>"


INFO_NULL = None

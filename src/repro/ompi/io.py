"""MPI-IO over a simulated shared (NFS-like) filesystem.

Completes the paper's §III-B6 object set: files, like windows, can be
created from groups through the intermediate-communicator path
(:meth:`File.open_from_group`).  The filesystem is one shared byte
store per cluster with latency/bandwidth costs; collective writes model
two-phase I/O by aggregating the per-rank requests at a barrier before
touching the (slow) filesystem once.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.ompi.errors import MPIErrArg
from repro.simtime.process import Sleep

# NFS-like shared-filesystem costs (per operation).
FS_LATENCY = 40.0e-6        # metadata/RPC round trip
FS_BANDWIDTH = 600.0e6      # bytes/s sustained

# Open modes (subset of MPI constants).
MODE_RDONLY = 1
MODE_WRONLY = 2
MODE_RDWR = 4
MODE_CREATE = 8
MODE_EXCL = 16
MODE_APPEND = 32


class SimFilesystem:
    """The cluster-wide shared byte store (one per Cluster, lazily).

    Accesses to one file serialize (``reserve``): concurrent independent
    writers queue behind each other as they would on an NFS server —
    which is exactly the cost collective (two-phase) I/O avoids."""

    def __init__(self) -> None:
        self.files: Dict[str, bytearray] = {}
        self._busy: Dict[str, float] = {}

    @classmethod
    def of(cls, cluster) -> "SimFilesystem":
        fs = getattr(cluster, "_simfs", None)
        if fs is None:
            fs = cls()
            cluster._simfs = fs
        return fs

    def reserve(self, path: str, now: float, cost: float) -> float:
        """Book one serialized access; returns its completion time."""
        start = max(now, self._busy.get(path, 0.0))
        done = start + cost
        self._busy[path] = done
        return done


class File:
    """One rank's handle on a collectively opened file."""

    _ids = itertools.count()

    def __init__(self, comm, fs: SimFilesystem, path: str, mode: int) -> None:
        self._comm = comm            # internal dup, owned by the file
        self._fs = fs
        self.path = path
        self.mode = mode
        self.offset = 0              # individual file pointer
        self.closed = False
        self.fh_id = next(self._ids)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, comm, path: str, mode: int = MODE_RDWR | MODE_CREATE):
        """Sub-generator: MPI_File_open — collective over ``comm``."""
        if not path:
            raise MPIErrArg("empty file name")
        fs = SimFilesystem.of(comm.runtime.cluster)
        exists = path in fs.files
        if not exists and not mode & MODE_CREATE:
            raise MPIErrArg(f"file {path!r} does not exist (no MPI_MODE_CREATE)")
        if exists and mode & MODE_EXCL:
            raise MPIErrArg(f"file {path!r} exists (MPI_MODE_EXCL)")
        internal = yield from comm.dup()
        if not exists:
            fs.files.setdefault(path, bytearray())
        yield Sleep(FS_LATENCY)      # open RPC
        yield from internal.barrier()
        return cls(internal, fs, path, mode)

    @classmethod
    def open_from_group(cls, runtime, group, stringtag: str, path: str,
                        mode: int = MODE_RDWR | MODE_CREATE):
        """Sub-generator: file-from-group via the intermediate
        communicator (paper §III-B6)."""
        intermediate = yield from runtime.comm_create_from_group(
            group, f"file:{stringtag}"
        )
        fh = yield from cls.open(intermediate, path, mode)
        intermediate.free()
        return fh

    # ------------------------------------------------------------------
    def _check(self, writing: bool = False) -> None:
        if self.closed:
            raise MPIErrArg("file used after close")
        if writing and not self.mode & (MODE_WRONLY | MODE_RDWR):
            raise MPIErrArg("file not opened for writing")
        if not writing and not self.mode & (MODE_RDONLY | MODE_RDWR):
            raise MPIErrArg("file not opened for reading")

    def _data(self) -> bytearray:
        return self._fs.files[self.path]

    def _io_cost(self, nbytes: int) -> float:
        return FS_LATENCY + nbytes / FS_BANDWIDTH

    def _serialized_io(self, nbytes: int):
        """Sub-generator: one independent access — queues at the FS."""
        engine = self._comm.runtime.engine
        done = self._fs.reserve(self.path, engine.now, self._io_cost(nbytes))
        yield Sleep(done - engine.now)

    # ------------------------------------------------------------------
    # explicit-offset operations
    # ------------------------------------------------------------------
    def write_at(self, offset: int, data: bytes):
        """Sub-generator: MPI_File_write_at."""
        self._check(writing=True)
        if offset < 0:
            raise MPIErrArg("negative file offset")
        data = bytes(data)
        yield from self._serialized_io(len(data))
        buf = self._data()
        end = offset + len(data)
        if len(buf) < end:
            buf.extend(b"\x00" * (end - len(buf)))
        buf[offset:end] = data
        return len(data)

    def read_at(self, offset: int, count: int):
        """Sub-generator: MPI_File_read_at; returns the bytes read."""
        self._check()
        if offset < 0 or count < 0:
            raise MPIErrArg("negative offset/count")
        yield from self._serialized_io(count)
        buf = self._data()
        return bytes(buf[offset:offset + count])

    # ------------------------------------------------------------------
    # individual-file-pointer operations
    # ------------------------------------------------------------------
    def write(self, data: bytes):
        """Sub-generator: MPI_File_write (advances the local pointer)."""
        n = yield from self.write_at(self.offset, data)
        self.offset += n
        return n

    def read(self, count: int):
        """Sub-generator: MPI_File_read (advances the local pointer)."""
        out = yield from self.read_at(self.offset, count)
        self.offset += len(out)
        return out

    def seek(self, offset: int) -> None:
        if offset < 0:
            raise MPIErrArg("negative seek")
        self.offset = offset

    # ------------------------------------------------------------------
    # collective operations (two-phase aggregation)
    # ------------------------------------------------------------------
    def write_at_all(self, offset: int, data: bytes):
        """Sub-generator: MPI_File_write_at_all.

        The aggregation barrier lets one "aggregator" (rank 0's cost
        account) stream everyone's data in a single sequential pass —
        cheaper per byte than independent writes."""
        self._check(writing=True)
        data = bytes(data)
        sizes = yield from self._comm.allgather(len(data), nbytes=8)
        total = sum(sizes)
        # Two-phase I/O: one aggregator makes a single sequential pass
        # over everyone's data (one latency, one bandwidth term, one
        # reservation) instead of size() queued independent accesses.
        engine = self._comm.runtime.engine
        if self._comm.rank == 0:
            done = self._fs.reserve(self.path, engine.now, self._io_cost(total))
            yield Sleep(done - engine.now)
        buf = self._data()
        end = offset + len(data)
        if len(buf) < end:
            buf.extend(b"\x00" * (end - len(buf)))
        buf[offset:end] = data
        yield from self._comm.barrier()
        return len(data)

    def read_at_all(self, offset: int, count: int):
        """Sub-generator: MPI_File_read_at_all."""
        self._check()
        counts = yield from self._comm.allgather(count, nbytes=8)
        engine = self._comm.runtime.engine
        if self._comm.rank == 0:
            done = self._fs.reserve(self.path, engine.now, self._io_cost(sum(counts)))
            yield Sleep(done - engine.now)
        buf = self._data()
        out = bytes(buf[offset:offset + count])
        yield from self._comm.barrier()
        return out

    # ------------------------------------------------------------------
    def get_size(self):
        """Sub-generator: MPI_File_get_size."""
        if self.closed:
            raise MPIErrArg("file used after close")
        yield Sleep(FS_LATENCY)
        return len(self._data())

    def close(self):
        """Sub-generator: MPI_File_close — collective."""
        if self.closed:
            raise MPIErrArg("file closed twice")
        yield Sleep(FS_LATENCY)
        yield from self._comm.barrier()
        self._comm.free()
        self.closed = True

    @staticmethod
    def delete(cluster, path: str) -> None:
        """MPI_File_delete (local bookkeeping)."""
        SimFilesystem.of(cluster).files.pop(path, None)

"""Dynamic process connection: MPI_Open_port / Comm_accept / Comm_connect.

Paper §II-C's client/server discussion assumes connected communicators;
this module provides them on top of two substrates already in the
stack: the PMIx publish/lookup board (port rendezvous) and the
intercommunicator machinery (the connected pair).

Flow (matching the MPI model):

* the server's root calls :func:`open_port` and publishes the name
  (``publish_name``);
* the server side collectively calls :func:`comm_accept`;
* the client side looks the port up (``lookup_name``) and collectively
  calls :func:`comm_connect`;
* both get an :class:`~repro.ompi.intercomm.Intercomm` whose remote
  group is the other side.

The rendezvous itself exchanges the two groups through the port's
published mailbox slots — no pre-existing common communicator needed,
exactly the property MPI_Comm_connect has over MPI_Intercomm_create.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.ompi.errors import MPIErrArg
from repro.ompi.group import Group
from repro.ompi.intercomm import Intercomm, build_bridge
from repro.simtime.process import Sleep

_port_serial = itertools.count()


def open_port(runtime) -> str:
    """MPI_Open_port: mint a unique port name (local)."""
    return f"port://{runtime.proc.nspace}/{runtime.proc.rank}/{next(_port_serial)}"


def publish_name(runtime, service: str, port: str):
    """Sub-generator: MPI_Publish_name via the PMIx data board."""
    yield from runtime.pmix.publish(f"mpi.svc.{service}", port)


def lookup_name(runtime, service: str, timeout: Optional[float] = None):
    """Sub-generator: MPI_Lookup_name; waits for the service to appear."""
    found, port = yield from runtime.pmix.lookup(
        f"mpi.svc.{service}", wait=True, timeout=timeout
    )
    if not found:  # pragma: no cover - wait=True only returns on found
        raise MPIErrArg(f"service {service!r} not published")
    return port


def unpublish_name(runtime, service: str):
    """Sub-generator: MPI_Unpublish_name."""
    yield from runtime.pmix.unpublish(f"mpi.svc.{service}")


def comm_accept(local_comm, port: str, root: int = 0, timeout: Optional[float] = None):
    """Sub-generator: MPI_Comm_accept — collective over ``local_comm``.

    Blocks until a connector arrives on ``port``.
    """
    return (yield from _rendezvous(local_comm, port, root, accept=True, timeout=timeout))


def comm_connect(local_comm, port: str, root: int = 0, timeout: Optional[float] = None):
    """Sub-generator: MPI_Comm_connect — collective over ``local_comm``.

    One connector per accept: a port pairs exactly one client side with
    one server side at a time (concurrent connects to the same port
    would overwrite each other's rendezvous slot — serialize them, as
    real servers do by looping accept).
    """
    return (yield from _rendezvous(local_comm, port, root, accept=False, timeout=timeout))


def _rendezvous(local_comm, port: str, root: int, accept: bool, timeout: Optional[float]):
    runtime = local_comm.runtime
    my_members = list(local_comm.group.members())
    side = "server" if accept else "client"
    other = "client" if accept else "server"
    if local_comm.rank == root:
        # Post my group, then wait for the other side's.
        yield from runtime.pmix.publish(f"{port}/{side}", my_members)
        _found, remote_members = yield from runtime.pmix.lookup(
            f"{port}/{other}", wait=True, timeout=timeout
        )
        # Consume the slots so the port can be reused for the next pair.
        if accept:
            yield Sleep(runtime.machine.local_rpc_cost)
            yield from runtime.pmix.unpublish(f"{port}/{side}")
            yield from runtime.pmix.unpublish(f"{port}/{other}")
    else:
        remote_members = None
    remote_members = yield from local_comm.bcast(remote_members, root=root)
    remote_group = Group(remote_members)

    bridge = yield from build_bridge(
        runtime, local_comm.session, my_members, remote_members,
        f"connect:{port}", 7001,
    )
    return Intercomm(bridge, Group(my_members), remote_group)

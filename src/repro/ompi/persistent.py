"""Persistent communication requests (MPI_Send_init / MPI_Recv_init).

A persistent request freezes the argument list of a point-to-point
operation; ``start`` launches one instance, ``wait`` completes it, and
the request can be started again — the classic fixed-pattern
optimization (halo exchanges start the same requests every timestep).
"""

from __future__ import annotations

from typing import Optional

from repro.ompi.constants import ANY_SOURCE, ANY_TAG
from repro.ompi.errors import MPIErrRequest
from repro.ompi.request import Request
from repro.ompi.status import Status


class PersistentRequest:
    """Base: holds frozen arguments + the currently active Request."""

    def __init__(self, comm) -> None:
        self.comm = comm
        self._active: Optional[Request] = None
        self.freed = False
        self.starts = 0

    def _check(self) -> None:
        if self.freed:
            raise MPIErrRequest("persistent request used after free")

    @property
    def active(self) -> bool:
        return self._active is not None and not self._active.completed

    def start(self):
        """Sub-generator: launch one instance of the operation."""
        self._check()
        if self.active:
            raise MPIErrRequest("persistent request started while active")
        self.starts += 1
        self._active = yield from self._launch()
        return self

    def wait(self):
        """Sub-generator: complete the active instance; returns Status."""
        self._check()
        if self._active is None:
            raise MPIErrRequest("wait on a never-started persistent request")
        status = yield from self._active.wait()
        return status

    def test(self):
        self._check()
        if self._active is None:
            return False, None
        return self._active.test()

    @property
    def payload(self):
        return self._active.payload if self._active is not None else None

    def free(self) -> None:
        self._check()
        if self.active:
            raise MPIErrRequest("persistent request freed while active")
        self.freed = True

    def _launch(self):
        raise NotImplementedError
        yield  # pragma: no cover


class PersistentSend(PersistentRequest):
    def __init__(self, comm, obj, dest: int, tag: int, nbytes: Optional[int]) -> None:
        super().__init__(comm)
        self.obj = obj
        self.dest = dest
        self.tag = tag
        self.nbytes = nbytes

    def _launch(self):
        return (yield from self.comm.isend(self.obj, self.dest, self.tag, self.nbytes))


class PersistentRecv(PersistentRequest):
    def __init__(self, comm, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> None:
        super().__init__(comm)
        self.source = source
        self.tag = tag

    def _launch(self):
        return self.comm.irecv(self.source, self.tag)
        yield  # pragma: no cover - irecv is instantaneous


def startall(prequests):
    """Sub-generator: MPI_Startall."""
    for pr in prequests:
        yield from pr.start()


def waitall(prequests):
    """Sub-generator: wait for every started persistent request."""
    statuses = []
    for pr in prequests:
        statuses.append((yield from pr.wait()))
    return statuses

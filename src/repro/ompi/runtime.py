"""Per-process MPI library state and the two initialization models.

One :class:`MpiRuntime` per simulated process — the analogue of the
Open MPI library linked into an application.  It owns the communicator
tables, the OPAL cleanup/subsystem machinery, the PML endpoint, and
implements:

* the World Process Model: :meth:`mpi_init` / :meth:`mpi_finalize`
  (restructured, as in the prototype, to wrap an internal session);
* the Sessions Process Model: :meth:`session_init` and
  :meth:`comm_create_from_group`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.ompi.attributes import AttributeCache, KeyvalRegistry
from repro.ompi.cid import CidTable
from repro.ompi.comm import Communicator
from repro.ompi.config import MpiConfig
from repro.ompi.constants import THREAD_SINGLE
from repro.ompi.errors import (
    ERRORS_ARE_FATAL,
    Errhandler,
    MPIErrArg,
    MPIErrComm,
    MPIErrIntern,
    MPIErrProcFailed,
    MPIErrSession,
)
from repro.ompi.excid import ExcidState
from repro.ompi.group import Group
from repro.ompi.instance import instance_acquire, instance_release
from repro.ompi.opal.cleanup import CleanupFramework, SubsystemRegistry
from repro.ompi.opal.mca import MCARegistry
from repro.ompi.session import Session
from repro.pmix.types import PMIX_ERR_PROC_ABORTED, PMIX_ERR_TIMEOUT, PmixError
from repro.simtime.process import Sleep
from repro.simtime.trace import track_for_proc


class MpiRuntime:
    """The MPI library state of one simulated process."""

    # Reserved local CIDs for the built-in World Process Model comms.
    CID_WORLD = 0
    CID_SELF = 1

    def __init__(self, cluster, job, fabric, rank: int, config: Optional[MpiConfig] = None) -> None:
        self.cluster = cluster
        self.engine = cluster.engine
        self.machine = cluster.machine
        self.job = job
        self.fabric = fabric
        self.config = config or MpiConfig.baseline()
        self.rank_in_job = rank
        self.proc = job.proc(rank)
        self.node = job.topology.node_of(rank)
        self.pmix = job.client(rank)
        self.obs_track = track_for_proc(self.proc)

        # Pre-init-usable state (paper §III-B5).
        self.keyvals = KeyvalRegistry()
        self.cleanup = CleanupFramework()
        self.subsystems = SubsystemRegistry(self.cleanup)
        self.mca = MCARegistry()

        # Messaging state (populated by the pml subsystem).
        self.endpoint = None
        self.cid_table = CidTable()
        self._excid_index: Dict[Tuple, Communicator] = {}
        self._early_excid_pkts: Dict[Tuple, List] = {}
        self._early_cid_pkts: Dict[int, List] = {}

        # Lifecycle.
        self.instance_refcount = 0
        self.sessions: List[Session] = []
        self.world_session: Optional[Session] = None
        self.world_finalized = False
        self.thread_level: Optional[int] = None
        self.COMM_WORLD: Optional[Communicator] = None
        self.COMM_SELF: Optional[Communicator] = None
        self._binary_loaded = False
        self.live_comms: List[Communicator] = []

        # Fault state: peers this runtime has been told are dead (fed by
        # the cluster's FaultManager, docs/faults.md).  Communicators
        # created after a failure inherit it via their constructor.
        self.failed_procs: set = set()
        # Revocations that arrived before the matching communicator was
        # registered here (a same-node peer's revoke can beat the tail
        # of our own mpi_init) — applied, then discarded, at
        # register_comm time.
        self._pending_revokes: set = set()

    # ------------------------------------------------------------------
    # small helpers used across the library
    # ------------------------------------------------------------------
    def new_attr_cache(self) -> AttributeCache:
        return AttributeCache(self.keyvals)

    def reset_cid_state(self) -> None:
        """Called by pml cleanup: forget every communicator mapping."""
        self.cid_table = CidTable()
        self._excid_index.clear()
        self._early_excid_pkts.clear()
        self._early_cid_pkts.clear()
        self.live_comms.clear()

    @property
    def excid_enabled(self) -> bool:
        """Paper §III-B3: "The exCID generator is used exclusively when
        using a version of PMIx that supports group creation and the ob1
        PML is in use.  In all other cases, the prototype falls back to
        the original consensus algorithm." """
        return self.config.cid_mode == "excid" and self.config.pml == "ob1"

    def wtime(self) -> float:
        """MPI_Wtime: the simulated clock in seconds."""
        return self.engine.now

    # -- communicator registry -------------------------------------------------
    def register_comm(self, comm: Communicator) -> None:
        self.cid_table.reserve(comm.local_cid, comm)
        self.live_comms.append(comm)
        if comm.identity() in self._pending_revokes:
            self._pending_revokes.discard(comm.identity())
            comm._apply_revoke()
        if comm.excid is not None:
            key = comm.excid.key()
            if key in self._excid_index:
                raise MPIErrIntern(f"exCID collision on {comm.excid}")
            self._excid_index[key] = comm
            for pkt in self._early_excid_pkts.pop(key, []):
                self.endpoint.deliver(pkt)
        for pkt in self._early_cid_pkts.pop(comm.local_cid, []):
            self.endpoint.deliver(pkt)

    def deregister_comm(self, comm: Communicator) -> None:
        if self.endpoint is not None:
            self.endpoint.matching.drop_comm(comm.local_cid)
        self.cid_table.release(comm.local_cid)
        if comm.excid is not None:
            self._excid_index.pop(comm.excid.key(), None)
            self._early_excid_pkts.pop(comm.excid.key(), None)
        # Drop any packets stashed under this local CID: replaying them
        # into a future communicator that reuses the index would be a
        # silent wrong-communicator delivery.
        self._early_cid_pkts.pop(comm.local_cid, None)
        self.live_comms = [c for c in self.live_comms if c is not comm]

    # -- fault notification ----------------------------------------------------
    def peer_failed(self, proc) -> None:
        """A peer process died: damage every communicator containing it.

        Called by the FaultManager once the failure-detection delay has
        elapsed (mirrors the PMIx PROC_ABORTED event reaching the RTE
        thread in real Open MPI).
        """
        if proc == self.proc or proc in self.failed_procs:
            return
        self.failed_procs.add(proc)
        if self.endpoint is not None:
            self.endpoint.peer_failed(proc)
        for comm in list(self.live_comms):
            rank = comm.group.rank_of(proc)
            if rank >= 0:
                comm.peer_failed(rank, proc)

    def remote_revoke(self, identity: str) -> None:
        """A peer revoked a communicator: apply the revocation to the
        matching live communicator here (docs/recovery.md).  ``identity``
        is the globally consistent comm identity, so this is safe even
        when local CIDs differ across ranks."""
        for comm in list(self.live_comms):
            if not comm.freed and comm.identity() == identity:
                comm._apply_revoke()
                return
        # Not registered yet (we may still be in the tail of mpi_init):
        # park the revocation for register_comm to apply.
        self._pending_revokes.add(identity)

    def comm_by_cid(self, cid: int) -> Optional[Communicator]:
        return self.cid_table.get(cid)

    def comm_by_excid(self, key: Tuple) -> Optional[Communicator]:
        return self._excid_index.get(key)

    def stash_early_packet(self, key: Tuple, pkt) -> None:
        self._early_excid_pkts.setdefault(key, []).append(pkt)

    def stash_early_cid_packet(self, cid: int, pkt) -> None:
        self._early_cid_pkts.setdefault(cid, []).append(pkt)

    # ------------------------------------------------------------------
    # shared startup pieces
    # ------------------------------------------------------------------
    def _load_binary(self):
        """Sub-generator: one-time library load from the (NFS) filesystem."""
        if self._binary_loaded:
            return
        self._binary_loaded = True
        tr = self.engine.tracer
        sid = tr.begin(self.engine.now, self.obs_track, "ompi.init.load_binary")
        yield Sleep(self.machine.nfs_load_time(self.job.num_ranks))
        tr.end(self.engine.now, sid)

    def _pmix_up(self):
        if not self.pmix.initialized:
            yield from self.pmix.init()

    # ------------------------------------------------------------------
    # World Process Model
    # ------------------------------------------------------------------
    @property
    def wpm_initialized(self) -> bool:
        return self.world_session is not None

    def mpi_init(self, thread_level: int = THREAD_SINGLE):
        """Sub-generator: MPI_Init / MPI_Init_thread.

        Returns MPI_COMM_WORLD.  Per MPI-3 rules this cannot be called
        twice nor after MPI_Finalize — the very restriction sessions
        remove (§II-A); enforced here to keep the baseline honest.
        """
        if self.wpm_initialized:
            raise MPIErrArg("MPI_Init called twice")
        if self.world_finalized:
            raise MPIErrArg("MPI cannot be re-initialized after MPI_Finalize")
        tr = self.engine.tracer
        sid = tr.begin(self.engine.now, self.obs_track, "ompi.mpi.init")
        yield from self._load_binary()
        yield from self._pmix_up()
        yield Sleep(self.machine.proc_local_init)
        yield from instance_acquire(self)
        self.thread_level = thread_level

        # add_procs for node-local peers only (lazy discovery elsewhere).
        local = self.job.topology.ranks_on_node(self.node)
        sid_ap = tr.begin(self.engine.now, self.obs_track,
                          "ompi.pml.add_procs_local", nlocal=len(local))
        yield Sleep(self.machine.add_procs_local_cost * len(local))
        tr.end(self.engine.now, sid_ap)
        for r in local:
            self.endpoint._known_peers.add(self.job.proc(r))

        # Business-card exchange (modex) over the whole job.
        yield from self.pmix.fence(collect=self.config.modex_collect)

        self.world_session = Session(self, thread_level, internal=True)
        self.sessions.append(self.world_session)

        world_group = Group(self.job.all_procs)
        self.COMM_WORLD = Communicator(
            self, world_group, self.CID_WORLD, name="MPI_COMM_WORLD",
            session=self.world_session,
        )
        self.register_comm(self.COMM_WORLD)
        self.COMM_SELF = Communicator(
            self, Group([self.proc]), self.CID_SELF, name="MPI_COMM_SELF",
            session=self.world_session,
        )
        self.register_comm(self.COMM_SELF)
        tr.end(self.engine.now, sid)
        return self.COMM_WORLD

    def mpi_finalize(self):
        """Sub-generator: MPI_Finalize."""
        if not self.wpm_initialized:
            raise MPIErrArg("MPI_Finalize without MPI_Init")
        tr = self.engine.tracer
        sid = tr.begin(self.engine.now, self.obs_track, "ompi.mpi.finalize")
        # Implicit synchronization (ompi fences in finalize).
        yield from self.pmix.fence(collect=False)
        for comm in (self.COMM_SELF, self.COMM_WORLD):
            if comm is not None and not comm.freed:
                comm.free()
        self.COMM_WORLD = None
        self.COMM_SELF = None
        world = self.world_session
        self.sessions.remove(world)
        self.world_session = None
        self.world_finalized = True
        world.mark_finalized()
        yield from instance_release(self)
        yield from self._maybe_pmix_down()
        tr.end(self.engine.now, sid)

    def _maybe_pmix_down(self):
        if not self.sessions and self.pmix.initialized:
            yield from self.pmix.finalize()

    # ------------------------------------------------------------------
    # Sessions Process Model
    # ------------------------------------------------------------------
    def session_init(
        self,
        thread_level: int = THREAD_SINGLE,
        info=None,
        errhandler: Errhandler = ERRORS_ARE_FATAL,
    ):
        """Sub-generator: MPI_Session_init — local-only, repeatable.

        The first session of an epoch pays the MPI-resource
        initialization the paper measures as ~30% of the sessions
        startup path at 28 ppn (session_handle_init_cost); later
        sessions reuse live subsystems.
        """
        tr = self.engine.tracer
        sid = tr.begin(self.engine.now, self.obs_track, "ompi.session.init")
        yield from self._load_binary()
        yield from self._pmix_up()
        first_of_epoch = self.instance_refcount == 0 and not self.subsystems.is_initialized("pml_ob1")
        if first_of_epoch:
            yield Sleep(self.machine.proc_local_init)
            yield Sleep(self.machine.session_handle_init_cost)
        yield from instance_acquire(self)
        if self.thread_level is None or thread_level > self.thread_level:
            self.thread_level = thread_level
        session = Session(self, thread_level, info=info, errhandler=errhandler)
        self.sessions.append(session)
        m = self.engine.metrics
        if m is not None and m.enabled:
            m.inc("ompi.session.inits", node=self.node)
        tr.end(self.engine.now, sid)
        return session

    def session_finalize(self, session: Session):
        """Sub-generator: MPI_Session_finalize (called via session)."""
        if session not in self.sessions:
            raise MPIErrSession("session already finalized (or foreign)")
        leaked = [c for c in self.live_comms if c.session is session and not c.freed]
        if leaked:
            raise MPIErrPendingComms(leaked)
        tr = self.engine.tracer
        sid = tr.begin(self.engine.now, self.obs_track, "ompi.session.finalize")
        self.sessions.remove(session)
        session.mark_finalized()
        yield from instance_release(self)
        yield from self._maybe_pmix_down()
        tr.end(self.engine.now, sid)

    def comm_create_from_group(
        self,
        group: Group,
        stringtag: str,
        info=None,
        errhandler: Errhandler = ERRORS_ARE_FATAL,
    ):
        """Sub-generator: MPI_Comm_create_from_group (paper Fig 1, step 3).

        Collective over the group's processes; all participants must
        pass the same ``stringtag``.  Requires the exCID generator (the
        constructor has no parent communicator — §III-B3).
        """
        if not self.excid_enabled:
            raise MPIErrComm(
                "MPI_Comm_create_from_group requires the exCID generator, "
                "which needs PMIx group support and the ob1 PML "
                f"(cid_mode={self.config.cid_mode!r}, pml={self.config.pml!r}); "
                "the legacy consensus algorithm needs a parent communicator"
            )
        if self.instance_refcount == 0:
            raise MPIErrSession("no active session")
        if group.rank_of(self.proc) < 0:
            raise MPIErrArg("caller must be a member of the group")
        gid = f"cfg:{stringtag}"
        tr = self.engine.tracer
        sid = tr.begin(self.engine.now, self.obs_track,
                       "ompi.comm.create_from_group", stringtag=stringtag,
                       nprocs=group.size)
        try:
            pgcid = yield from self.pmix.group_construct(gid, list(group.members()))
        except PmixError as err:
            tr.end(self.engine.now, sid)
            if err.status in (PMIX_ERR_PROC_ABORTED, PMIX_ERR_TIMEOUT):
                mpi_err = MPIErrProcFailed(
                    f"comm_create_from_group({stringtag!r}) aborted: "
                    f"a group member failed ({err})"
                )
                (errhandler or ERRORS_ARE_FATAL).invoke(self, mpi_err)
            raise
        m = self.engine.metrics
        if m is not None and m.enabled:
            m.inc("ompi.comm.creates", node=self.node)
        comm = Communicator(
            self,
            group,
            self.cid_table.lowest_free(),
            excid_state=ExcidState.from_pgcid(pgcid),
            name=f"comm({stringtag})",
            session=getattr(group, "session", None),
        )
        if errhandler is not None:
            comm.errhandler = errhandler
        self.register_comm(comm)
        tr.end(self.engine.now, sid)
        return comm


class MPIErrPendingComms(MPIErrSession):
    """Session finalized while communicators derived from it are alive."""

    def __init__(self, comms) -> None:
        names = ", ".join(c.name for c in comms)
        super().__init__(f"session has live communicators: {names}")
        self.comms = comms

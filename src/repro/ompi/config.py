"""Per-runtime configuration knobs.

The benchmarks instantiate two configurations side by side:

* ``MpiConfig.baseline()`` — models the unmodified Open MPI master
  branch the paper benchmarks against: CID agreement via the legacy
  multi-round consensus algorithm; no extended headers ever.
* ``MpiConfig.sessions_prototype()`` — models the sessions-enabled
  prototype: the exCID generator is used (PMIx supports groups and ob1
  is the PML), communicators created from groups carry exCIDs, and
  first messages run the exCID handshake.

``excid_dup_policy`` selects how ``MPI_Comm_dup`` derives ids in exCID
mode; see DESIGN.md §4.1 and the Fig 4 bench.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class MpiConfig:
    # "consensus": legacy allreduce-based CID agreement (needs a parent comm).
    # "excid": the prototype's 128-bit extended-CID generator.
    cid_mode: str = "consensus"

    # Only meaningful with cid_mode="excid":
    #  "pgcid-per-dup": every dup acquires a fresh PGCID (what the measured
    #                   prototype did; reproduces Fig 4's gap).
    #  "subfield":      derive from the parent's active subfield, acquiring a
    #                   PGCID only on exhaustion (the paper's §III-B3 design;
    #                   exercised by the ablation bench).
    excid_dup_policy: str = "pgcid-per-dup"

    # PML component name (only ob1 supports exCIDs, as in the prototype).
    pml: str = "ob1"

    # Collect endpoint blobs in the init-time fence (WPM only).
    modex_collect: bool = True

    # Linear fan-in/fan-out barrier below this communicator size (models
    # coll/sm and tuned's small-comm algorithms); tree above.
    barrier_linear_max: int = 32

    # Ablation: never switch to receiver-local CIDs — every message on an
    # exCID communicator carries the extended header (DESIGN.md §4.2).
    excid_always_extended: bool = False

    def __post_init__(self) -> None:
        if self.cid_mode not in ("consensus", "excid"):
            raise ValueError(f"unknown cid_mode {self.cid_mode!r}")
        if self.excid_dup_policy not in ("pgcid-per-dup", "subfield"):
            raise ValueError(f"unknown excid_dup_policy {self.excid_dup_policy!r}")

    @classmethod
    def baseline(cls) -> "MpiConfig":
        """Unmodified Open MPI master (the paper's comparison baseline)."""
        return cls(cid_mode="consensus")

    @classmethod
    def sessions_prototype(cls, dup_policy: str = "pgcid-per-dup") -> "MpiConfig":
        """The sessions-enabled prototype branch."""
        return cls(cid_mode="excid", excid_dup_policy=dup_policy)

"""Point-to-point Messaging Layer.

``ob1`` is the PML the paper modified: it performs matching inside Open
MPI using a 14-byte match header, which is why it was the component
chosen to host the exCID extension (§III-B4).  This package implements
the header formats, the matching engine (posted-receive + unexpected
queues), and the ob1 protocol including the first-message exCID
handshake and the eager/rendezvous split.
"""

from repro.ompi.pml.headers import MatchHeader, ExtendedHeader, MATCH_HEADER_BYTES
from repro.ompi.pml.matching import MatchingEngine
from repro.ompi.pml.ob1 import Ob1Endpoint, Fabric

__all__ = [
    "MatchHeader",
    "ExtendedHeader",
    "MATCH_HEADER_BYTES",
    "MatchingEngine",
    "Ob1Endpoint",
    "Fabric",
]

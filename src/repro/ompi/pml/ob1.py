"""The ob1 PML: eager/rendezvous point-to-point with exCID support.

Protocol summary (paper §III-B4):

* Every user message carries the 14-byte match header.  On a
  communicator with an exCID, the sender does not initially know the
  receiver's local CID, so it prepends a ~20-byte extended header
  carrying the full exCID and the sender's local CID.
* The receiver resolves the exCID to its local communicator (hash
  lookup — costed separately from the fast array-index match), stores
  the sender's CID, and sends back an ACK with its own local CID.
* Once the ACK arrives, the sender switches to the compact header whose
  ctx field is the *receiver's* CID: matching is again a constant-time
  array index.  Messages already in flight keep the extended header.
* Messages above the eager limit use rendezvous: an RTS header travels
  first; the receiver answers CTS when matched; the bulk data follows.

Cost accounting:

* the sender's NIC serializes injections (``nic_free`` timestamp) —
  this bounds message rate;
* the receiver's matching path serializes completions
  (``match_busy`` timestamp) — extended-header messages pay an extra
  exCID-resolution cost, which is what Fig 5c measures.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.ompi.btl.net import NetworkBTL
from repro.ompi.btl.sm import SharedMemoryBTL
from repro.ompi.errors import MPIErrIntern, MPIErrProcFailed
from repro.ompi.pml.headers import (
    EXTENDED_HEADER_BYTES,
    MATCH_HEADER_BYTES,
    ExtendedHeader,
    MatchHeader,
    header_bytes,
    pack_match,
    unpack_match,
)
from repro.ompi.pml.matching import IncomingMsg, MatchingEngine, PostedRecv
from repro.ompi.status import Status
from repro.pmix.types import PmixProc
from repro.simtime.process import Sleep

ENDPOINT_KEY = "ompi.ep"          # modex key holding a rank's endpoint blob
FIRST_PEER_SETUP = 1.0e-6         # one-time add_procs cost per new peer


class Packet:
    """One fabric packet.

    ``hdr``/``ext`` come in two equivalent wire forms: the compat
    reference carries the :class:`MatchHeader`/:class:`ExtendedHeader`
    dataclasses, the fast send path carries the packed int from
    :func:`pack_match` and an ``(excid_key, sender_cid)`` tuple.
    Consumers branch on the concrete type; the stack-parity suite proves
    both forms produce identical behavior.
    """

    __slots__ = ("kind", "src_proc", "hdr", "ext", "payload", "nbytes",
                 "protocol", "sender_req", "recv_req", "ack_excid",
                 "ack_cid", "fid", "_rts_payload", "_wire")

    def __init__(self, kind: str, src_proc: PmixProc, hdr: Any = None,
                 ext: Any = None, payload: Any = None, nbytes: int = 0,
                 protocol: str = "eager", sender_req: Any = None,
                 recv_req: Any = None, ack_excid: Any = None,
                 ack_cid: int = 0, fid: int = 0) -> None:
        self.kind = kind              # "user" | "ack" | "cts" | "data"
        self.src_proc = src_proc
        self.hdr = hdr
        self.ext = ext
        self.payload = payload
        self.nbytes = nbytes          # user payload bytes
        self.protocol = protocol      # for kind="user": "eager" | "rts"
        self.sender_req = sender_req
        self.recv_req = recv_req
        self.ack_excid = ack_excid
        self.ack_cid = ack_cid
        self.fid = fid                # observability flow id (send -> recv)
        self._rts_payload = None      # rendezvous payload (off-wire stash)
        self._wire = -1               # cached wire_bytes()

    def wire_bytes(self) -> int:
        size = self._wire
        if size < 0:
            if self.kind == "user":
                size = MATCH_HEADER_BYTES
                if self.ext is not None:
                    size += EXTENDED_HEADER_BYTES
                if self.protocol == "eager":
                    size += self.nbytes
            elif self.kind == "data":
                size = 8 + self.nbytes
            else:
                size = 18  # control packets: ACK / CTS
            self._wire = size
        return size


class Fabric:
    """Routes packets between endpoints with modeled delays."""

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self.engine = cluster.engine
        self.machine = cluster.machine
        self.faults = getattr(cluster, "faults", None)
        self._endpoints: Dict[PmixProc, "Ob1Endpoint"] = {}
        self.packets = 0
        self.bytes = 0
        # Cross-partition boundary (repro.dsim); None = single-process.
        # When set, packets whose destination rank lives in another
        # partition are shipped as serialized envelopes instead of being
        # scheduled locally — every sender-side effect above the
        # scheduling point (fault checks, counters, NIC booking) has
        # already happened by then, so counter sums across partitions
        # equal the single-process values.
        self.boundary = None
        # FIFO floor per (src, dst): delay/dup faults must not reorder a
        # pair's packets (the seq check would flag it as corruption).
        self._pair_floor: Dict[tuple, float] = {}

    def register(self, proc: PmixProc, endpoint: "Ob1Endpoint") -> None:
        self._endpoints[proc] = endpoint

    def deregister(self, proc: PmixProc) -> None:
        self._endpoints.pop(proc, None)

    def endpoint(self, proc: PmixProc) -> "Ob1Endpoint":
        ep = self._endpoints.get(proc)
        if ep is None:
            raise MPIErrIntern(f"no endpoint registered for {proc}")
        return ep

    def same_node(self, a: PmixProc, b: PmixProc) -> bool:
        return self.endpoint(a).node == self.endpoint(b).node

    def deliver_at(self, when: float, dst: PmixProc, pkt: Packet) -> None:
        copies = 1
        faults = self.faults
        if faults is not None and faults.active:
            dead = faults.dead_procs
            if dst in dead or pkt.src_proc in dead:
                faults.dead_drop("pml", pkt.src_proc, dst, fid=pkt.fid)
                return
            hdr = pkt.hdr
            if hdr is None:
                tag = pkt.kind
            elif hdr.__class__ is int:
                tag = unpack_match(hdr)[2]
            else:
                tag = hdr.tag
            disp = faults.on_message("pml", pkt.src_proc, dst, tag, fid=pkt.fid)
            if disp is not None:
                if disp.drop:
                    return
                when += disp.extra_delay
                copies += disp.duplicates
            key = (pkt.src_proc, dst)
            when = max(when, self._pair_floor.get(key, 0.0))
            self._pair_floor[key] = when
        self.packets += 1
        self.bytes += pkt.wire_bytes()
        boundary = self.boundary
        if boundary is not None and not boundary.owns_proc(dst):
            boundary.ship_pml(when, dst, pkt, copies)
            return
        ep = self.endpoint(dst)
        for _ in range(copies):
            self.engine.call_at(when, lambda: self._deliver_checked(ep, pkt))

    def _deliver_checked(self, ep: "Ob1Endpoint", pkt: Packet) -> None:
        # Liveness is re-checked at delivery time: the destination (or
        # the sender) may have died while the packet was in flight.
        faults = self.faults
        if faults is not None and faults.active and (
            ep.proc in faults.dead_procs or pkt.src_proc in faults.dead_procs
        ):
            faults.dead_drop("pml", pkt.src_proc, ep.proc, fid=pkt.fid)
            return
        if pkt.fid:
            # Duplicated packets share one flow id; first arrival binds it.
            self.engine.tracer.flow_end(self.engine.now, ep.obs_track, pkt.fid)
        ep.deliver(pkt)


class Ob1Endpoint:
    """Per-process PML state."""

    def __init__(self, runtime) -> None:
        self.runtime = runtime
        self.proc: PmixProc = runtime.proc
        self.node: int = runtime.node
        self.engine = runtime.engine
        self.machine = runtime.machine
        self.fabric: Fabric = runtime.fabric
        self.matching = MatchingEngine()
        self.btl_sm = SharedMemoryBTL(self.machine)
        self.btl_net = NetworkBTL(self.machine)
        self.nic_free = 0.0
        self.match_busy = 0.0
        self._send_seq: Dict[PmixProc, int] = {}
        self._recv_seq: Dict[PmixProc, int] = {}
        self._known_peers: set = set()
        self._btl_cache: Dict[PmixProc, Any] = {}   # peer -> chosen BTL
        # In-flight requests whose completion depends on a peer: rendezvous
        # sends awaiting CTS, and matched rendezvous receives awaiting data.
        # Entries are (comm_identity, peer, request); peer_failed()/
        # comm_failed() fail them with MPI_ERR_PROC_FAILED instead of
        # letting the rank hang forever.
        self._pending: List[Tuple[Any, PmixProc, Any]] = []
        self.stats = {"sent": 0, "recv": 0, "ext_sent": 0, "ext_recv": 0,
                      "acks": 0, "dup_dropped": 0}
        from repro.simtime.trace import track_for_proc

        self.obs_track = track_for_proc(self.proc)
        self.fabric.register(self.proc, self)

    def harvest_metrics(self, m, force: bool = False) -> None:
        """Fold this endpoint's counters into a metrics registry.

        Called on PML teardown (the endpoint object is dropped at
        finalize) and by end-of-run snapshots for still-live endpoints.
        """
        for stat, v in sorted(self.stats.items()):
            if v:
                m.inc(f"pml.{stat}", v, force=force, node=self.node)
        if self.matching.matches:
            m.inc("pml.matches", self.matching.matches, force=force,
                  node=self.node)
        if self.matching.unexpected_hits:
            m.inc("pml.unexpected_hits", self.matching.unexpected_hits,
                  force=force, node=self.node)

    # ------------------------------------------------------------------
    # peer discovery (lazy add_procs, paper §III-B1)
    # ------------------------------------------------------------------
    def _discover_peer(self, peer: PmixProc):
        """Sub-generator: one-time endpoint setup for a new peer."""
        if peer in self._known_peers:
            return
        yield Sleep(FIRST_PEER_SETUP)
        server = self.runtime.pmix.server
        found, _ = server.datastore.get(peer, ENDPOINT_KEY)
        if not found and server.node_of(peer) != self.node:
            # Sessions path: endpoint info was never fenced; direct modex.
            from repro.simtime.process import Wait

            yield Sleep(self.machine.local_rpc_cost)
            ev = server.request_remote(peer, ENDPOINT_KEY)
            yield Wait(ev)
        self._known_peers.add(peer)

    # ------------------------------------------------------------------
    # injection helpers
    # ------------------------------------------------------------------
    def _btl_for(self, peer: PmixProc) -> Any:
        btl = self._btl_cache.get(peer)
        if btl is None:
            peer_node = self.runtime.pmix.server.node_of(peer)
            btl = self.btl_sm if peer_node == self.node else self.btl_net
            self._btl_cache[peer] = btl
        return btl

    def _inject(self, peer: PmixProc, pkt: Packet) -> Tuple[float, float]:
        """Reserve the NIC; returns (injection_done, delivery_time)."""
        btl = self._btl_for(peer)
        engine = self.engine
        now = engine._now
        tr = engine.tracer
        if tr.enabled:
            pkt.fid = tr.flow_begin(now, self.obs_track, f"pml.{pkt.kind}",
                                    nbytes=pkt.nbytes)
        wire = pkt.wire_bytes()
        nic_free = self.nic_free
        start = now if now > nic_free else nic_free
        done = start + btl.injection_time(wire)
        self.nic_free = done
        delivery = done + btl.wire_time(wire)
        self.fabric.deliver_at(delivery, peer, pkt)
        return done, delivery

    def _next_seq(self, peer: PmixProc, comm) -> int:
        """Per (peer, communicator) ordering sequence.

        Keyed on the communicator's global identity (not the local CID)
        so both ends agree; early-packet stash/replay preserves order
        within a communicator, which is exactly MPI's guarantee."""
        key = (peer, comm.identity())
        seq = self._send_seq.get(key, 0)
        self._send_seq[key] = seq + 1
        return seq

    # ------------------------------------------------------------------
    # fault handling
    # ------------------------------------------------------------------
    def _track_pending(self, comm, peer: PmixProc, request) -> None:
        if len(self._pending) > 64:
            self._pending = [e for e in self._pending if not e[2].completed]
        self._pending.append((comm.identity(), peer, request))

    def peer_failed(self, peer: PmixProc) -> None:
        """Fail in-flight requests that can only complete via ``peer``."""
        keep = []
        for ident, p, req in self._pending:
            if req.completed:
                continue
            if p == peer:
                req.fail(MPIErrProcFailed(f"peer {peer} failed"))
            else:
                keep.append((ident, p, req))
        self._pending = keep

    def comm_failed(self, comm) -> None:
        """Fail in-flight requests on a damaged communicator."""
        ident = comm.identity()
        keep = []
        for cid, p, req in self._pending:
            if req.completed:
                continue
            if cid == ident:
                req.fail(MPIErrProcFailed(f"{comm.name}: peer failure on communicator"))
            else:
                keep.append((cid, p, req))
        self._pending = keep

    def _peer_dead(self, peer: PmixProc) -> bool:
        faults = self.fabric.faults
        return faults is not None and peer in faults.dead_procs

    # ------------------------------------------------------------------
    # send path
    # ------------------------------------------------------------------
    def isend(self, comm, payload, dest_rank: int, tag: int, nbytes: int, request):
        """Sub-generator: start a send; the caller's process is occupied
        for the injection time (MPI_Isend CPU cost)."""
        peer = comm.group.proc(dest_rank)
        if self._peer_dead(peer):
            raise MPIErrProcFailed(f"{comm.name}: send to failed peer rank {dest_rank}")
        if peer not in self._known_peers:
            yield from self._discover_peer(peer)

        ext = None
        ctx = comm.local_cid
        if comm.excid is not None:
            peer_cid = comm.peer_cids.get(dest_rank)
            if peer_cid is not None and not self.runtime.config.excid_always_extended:
                ctx = peer_cid
            else:
                ext = ExtendedHeader(excid=comm.excid.key(), sender_cid=comm.local_cid)

        hdr = MatchHeader(ctx=ctx, src=comm.rank, tag=tag, seq=self._next_seq(peer, comm))
        protocol = "eager" if nbytes <= self.machine.eager_limit else "rts"
        pkt = Packet(
            kind="user",
            src_proc=self.proc,
            hdr=hdr,
            ext=ext,
            payload=payload if protocol == "eager" else None,
            nbytes=nbytes,
            protocol=protocol,
            sender_req=request if protocol == "rts" else None,
        )
        if protocol == "rts":
            # RTS: only headers travel now; the payload is handed over in
            # the data phase after CTS (stashed on the packet object — the
            # wire cost in wire_bytes() deliberately excludes it).
            pkt._rts_payload = payload
            self._track_pending(comm, peer, request)
        self.stats["sent"] += 1
        if ext is not None:
            self.stats["ext_sent"] += 1
            self.runtime.cluster.trace("pml", "ext_send", dst=str(peer), tag=tag)

        injection_done, _delivery = self._inject(peer, pkt)
        busy = injection_done - self.engine.now
        if busy > 0:
            yield Sleep(busy)
        if protocol == "eager":
            # Eager sends complete locally once the data is buffered/injected.
            request.complete(Status(source=comm.rank, tag=tag, count=nbytes))
        return request

    def eager_send_start(self, comm, payload, dest_rank: int, tag: int,
                         nbytes: int) -> Optional[float]:
        """Fast-path half of an eager :meth:`isend` (docs/performance.md).

        Performs every observable side effect of an eager-protocol send
        to an already-discovered peer — dead-peer check, extended-header
        decision, sequence allocation, stats/trace updates, NIC
        reservation and fabric handoff — without the Request/SimEvent/
        Status machinery the reference path allocates.  The header goes
        out in packed-int form (:func:`repro.ompi.pml.headers.pack_match`)
        and the extension as an ``(excid_key, sender_cid)`` tuple.

        Returns the sender-side busy time (injection_done - now), which
        the caller must charge with the same ``Sleep(busy)`` /
        zero-sleep pair the reference path produces; returns None when
        this send needs the reference path (peer not yet discovered).
        Raises :class:`MPIErrProcFailed` exactly like the reference for
        a dead peer.  Only called when ``engine.compat`` is false.
        """
        peer = comm.group.proc(dest_rank)
        if self._peer_dead(peer):
            raise MPIErrProcFailed(
                f"{comm.name}: send to failed peer rank {dest_rank}")
        if peer not in self._known_peers:
            return None

        ext = None
        ctx = comm.local_cid
        if comm.excid is not None:
            peer_cid = comm.peer_cids.get(dest_rank)
            if peer_cid is not None and not self.runtime.config.excid_always_extended:
                ctx = peer_cid
            else:
                ext = (comm.excid.key(), comm.local_cid)

        hdr = pack_match(ctx, comm.rank, tag, self._next_seq(peer, comm))
        pkt = Packet(kind="user", src_proc=self.proc, hdr=hdr, ext=ext,
                     payload=payload, nbytes=nbytes)
        self.stats["sent"] += 1
        if ext is not None:
            self.stats["ext_sent"] += 1
            self.runtime.cluster.trace("pml", "ext_send", dst=str(peer), tag=tag)
        injection_done, _delivery = self._inject(peer, pkt)
        return injection_done - self.engine._now

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def irecv(self, comm, src_rank: int, tag: int, request) -> bool:
        """Post a receive (instantaneous bookkeeping).

        Returns True when the receive matched an already-arrived message
        (its completion is in flight and no longer cancellable)."""
        posted = PostedRecv(src=src_rank, tag=tag, request=request)
        msg = self.matching.post_recv(comm.local_cid, posted)
        m = self.engine.metrics
        if m is not None and m.enabled:
            q = self.matching._queues(comm.local_cid)
            m.observe("pml.match.posted_depth", len(q.posted), node=self.node)
            m.observe("pml.match.unexpected_depth", len(q.unexpected),
                      node=self.node)
        if msg is not None:
            self._consume_match(comm, posted, msg)
            return True
        return False

    def probe(self, comm, src_rank: int, tag: int) -> Optional[Status]:
        msg = self.matching.probe(comm.local_cid, src_rank, tag)
        if msg is None:
            return None
        return Status(source=msg.src, tag=msg.tag, count=msg.nbytes)

    # ------------------------------------------------------------------
    # delivery (engine callback context — not a simulated process)
    # ------------------------------------------------------------------
    def deliver(self, pkt: Packet) -> None:
        if pkt.kind == "user":
            self._deliver_user(pkt)
        elif pkt.kind == "ack":
            self._deliver_ack(pkt)
        elif pkt.kind == "cts":
            self._deliver_cts(pkt)
        elif pkt.kind == "data":
            self._deliver_data(pkt)
        else:  # pragma: no cover
            raise MPIErrIntern(f"unknown packet kind {pkt.kind}")

    def _deliver_user(self, pkt: Packet) -> None:
        # The header arrives either packed (fast send path) or as the
        # compat dataclass; unpack once into locals either way.
        hdr = pkt.hdr
        if hdr.__class__ is int:
            ctx, src, tag, seq = unpack_match(hdr)
        else:
            ctx, src, tag, seq = hdr.ctx, hdr.src, hdr.tag, hdr.seq
        ext = pkt.ext
        # Resolve the target communicator first: a packet may arrive
        # before this process finished registering the communicator
        # (constructor collectives release ranks at different times).
        # Stash such packets with NO state mutation — they are replayed
        # verbatim at registration.
        if ext is not None:
            if ext.__class__ is tuple:
                excid_key, sender_cid = ext
            else:
                excid_key, sender_cid = ext.excid, ext.sender_cid
            comm = self.runtime.comm_by_excid(excid_key)
            if comm is None:
                self.runtime.stash_early_packet(excid_key, pkt)
                return
        else:
            comm = self.runtime.comm_by_cid(ctx)
            if comm is None:
                self.runtime.stash_early_cid_packet(ctx, pkt)
                return

        self.stats["recv"] += 1
        seq_key = (pkt.src_proc, comm._identity)
        expected = self._recv_seq.get(seq_key, 0)
        if seq < expected:
            # Duplicate delivery (dup_msg fault): already consumed.
            self.stats["dup_dropped"] += 1
            return
        if seq != expected:
            raise MPIErrIntern(
                f"out-of-order delivery from {pkt.src_proc} on {comm.identity()}: "
                f"seq {seq} != expected {expected}"
            )
        self._recv_seq[seq_key] = expected + 1

        match_cost = self.machine.match_overhead
        if ext is not None:
            self.stats["ext_recv"] += 1
            match_cost += self.machine.extended_match_overhead
            # Learn the sender's CID; reply with ours exactly once.
            if src not in comm.peer_cids:
                comm.peer_cids[src] = sender_cid
            if src not in comm.acks_sent:
                comm.acks_sent.add(src)
                self._send_ack(comm, src)
            cid = comm.local_cid
        else:
            if comm.excid is not None:
                # Fast path: receiver-local CID arrived in the ctx field —
                # constant-time array lookup, marginally cheaper than the
                # baseline's hash+validate (paper: "in some cases showing
                # an improvement").
                match_cost *= 0.97
            cid = ctx

        now = self.engine._now
        msg = IncomingMsg(
            src=src,
            tag=tag,
            seq=seq,
            nbytes=pkt.nbytes,
            payload=pkt.payload if pkt.protocol == "eager" else pkt._rts_payload,
            protocol=pkt.protocol,
            sender=pkt.src_proc,
            sender_req=pkt.sender_req,
            extended=ext is not None,
            arrival=now,
        )

        match_busy = self.match_busy
        start = now if now > match_busy else match_busy
        complete_at = start + match_cost
        self.match_busy = complete_at

        posted = self.matching.incoming(cid, msg)
        if posted is not None:
            comm_obj = comm
            self.engine.call_at(
                complete_at, lambda: self._match_complete(comm_obj, posted, msg)
            )

    def _consume_match(self, comm, posted: PostedRecv, msg: IncomingMsg) -> None:
        """A freshly posted receive matched an unexpected message."""
        now = self.engine._now
        match_busy = self.match_busy
        start = now if now > match_busy else match_busy
        complete_at = start + self.machine.match_overhead
        self.match_busy = complete_at
        self.engine.call_at(complete_at, lambda: self._match_complete(comm, posted, msg))

    def _match_complete(self, comm, posted: PostedRecv, msg: IncomingMsg) -> None:
        if posted.request.completed:
            return  # already failed (peer/communicator failure raced the match)
        if msg.protocol == "eager":
            posted.request.complete(
                Status(source=msg.src, tag=msg.tag, count=msg.nbytes), payload=msg.payload
            )
        else:
            # Rendezvous: ask the sender for the bulk data.  A dead
            # sender can never answer the CTS — fail the receive now.
            if self._peer_dead(msg.sender):
                posted.request.fail(
                    MPIErrProcFailed(f"{comm.name}: rendezvous sender {msg.sender} failed")
                )
                return
            self._track_pending(comm, msg.sender, posted.request)
            cts = Packet(
                kind="cts",
                src_proc=self.proc,
                sender_req=msg.sender_req,
                recv_req=posted.request,
                payload=(msg.payload, msg.src, msg.tag, msg.nbytes),
            )
            self._inject(msg.sender, cts)

    def _send_ack(self, comm, peer_rank: int) -> None:
        self.stats["acks"] += 1
        peer = comm.group.proc(peer_rank)
        ack = Packet(
            kind="ack",
            src_proc=self.proc,
            ack_excid=comm.excid.key(),
            ack_cid=comm.local_cid,
        )
        self.runtime.cluster.trace("pml", "cid_ack", dst=str(peer))
        self._inject(peer, ack)

    def _deliver_ack(self, pkt: Packet) -> None:
        comm = self.runtime.comm_by_excid(pkt.ack_excid)
        if comm is None:
            return  # communicator freed while the ACK was in flight
        rank = comm.group.rank_of(pkt.src_proc)
        if rank >= 0 and rank not in comm.peer_cids:
            comm.peer_cids[rank] = pkt.ack_cid
            self.runtime.cluster.trace("pml", "cid_switch", peer=rank)

    def _deliver_cts(self, pkt: Packet) -> None:
        if pkt.sender_req.completed:
            return  # duplicate CTS, or the send was already failed
        payload, src, tag, nbytes = pkt.payload
        data = Packet(
            kind="data",
            src_proc=self.proc,
            payload=(payload, src, tag, nbytes),
            nbytes=nbytes,
            recv_req=pkt.recv_req,
            sender_req=pkt.sender_req,
        )
        injection_done, _ = self._inject(pkt.src_proc, data)
        sender_req = pkt.sender_req
        self.engine.call_at(
            injection_done,
            lambda: sender_req.completed
            or sender_req.complete(Status(source=0, tag=tag, count=nbytes)),
        )

    def _deliver_data(self, pkt: Packet) -> None:
        if pkt.recv_req.completed:
            return  # duplicate data packet, or the receive was already failed
        payload, src, tag, nbytes = pkt.payload
        pkt.recv_req.complete(Status(source=src, tag=tag, count=nbytes), payload=payload)

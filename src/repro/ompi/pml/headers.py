"""ob1 wire headers.

The classic ob1 match header is 14 bytes (paper §III-B2): context id
(the communicator's CID), source rank, tag, and a per-peer sequence
number, packed tight to keep short-message overhead low.  The sessions
prototype *prepends* an extended header on the first message(s) of a
communicator with an exCID: the full 128-bit exCID plus the sender's
local CID (§III-B4), ~20 bytes — both are modeled here as sized
dataclasses so the cost model charges exactly the extra bytes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

MATCH_HEADER_BYTES = 14
# 16 bytes of exCID + 2 bytes sender CID + 2 bytes flags/padding.
EXTENDED_HEADER_BYTES = 20


@dataclass(frozen=True)
class MatchHeader:
    """The compact matching header on every user message."""

    ctx: int        # 16-bit communicator id (receiver-local in exCID mode)
    src: int        # sender's rank within the communicator
    tag: int
    seq: int        # per (sender, receiver) ordering sequence

    @property
    def nbytes(self) -> int:
        return MATCH_HEADER_BYTES


@dataclass(frozen=True)
class ExtendedHeader:
    """Prepended while the sender does not yet know the receiver's CID."""

    excid: Tuple[int, Tuple[int, ...]]   # (pgcid, 8 subfield bytes)
    sender_cid: int                      # sender's local CID for the comm

    @property
    def nbytes(self) -> int:
        return EXTENDED_HEADER_BYTES


def header_bytes(ext: Optional[ExtendedHeader]) -> int:
    """Total header bytes for a message with/without the extension."""
    return MATCH_HEADER_BYTES + (ext.nbytes if ext is not None else 0)

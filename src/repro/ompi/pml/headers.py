"""ob1 wire headers.

The classic ob1 match header is 14 bytes (paper §III-B2): context id
(the communicator's CID), source rank, tag, and a per-peer sequence
number, packed tight to keep short-message overhead low.  The sessions
prototype *prepends* an extended header on the first message(s) of a
communicator with an exCID: the full 128-bit exCID plus the sender's
local CID (§III-B4), ~20 bytes — both are modeled here as sized
dataclasses so the cost model charges exactly the extra bytes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

MATCH_HEADER_BYTES = 14
# 16 bytes of exCID + 2 bytes sender CID + 2 bytes flags/padding.
EXTENDED_HEADER_BYTES = 20


@dataclass(frozen=True)
class MatchHeader:
    """The compact matching header on every user message."""

    ctx: int        # 16-bit communicator id (receiver-local in exCID mode)
    src: int        # sender's rank within the communicator
    tag: int
    seq: int        # per (sender, receiver) ordering sequence

    @property
    def nbytes(self) -> int:
        return MATCH_HEADER_BYTES


@dataclass(frozen=True)
class ExtendedHeader:
    """Prepended while the sender does not yet know the receiver's CID."""

    excid: Tuple[int, Tuple[int, ...]]   # (pgcid, 8 subfield bytes)
    sender_cid: int                      # sender's local CID for the comm

    @property
    def nbytes(self) -> int:
        return EXTENDED_HEADER_BYTES


def header_bytes(ext: Optional[ExtendedHeader]) -> int:
    """Total header bytes for a message with/without the extension."""
    return MATCH_HEADER_BYTES + (ext.nbytes if ext is not None else 0)


# ---------------------------------------------------------------------------
# Packed wire form (fast path).
#
# The fast engine mode carries the match header as a single packed int
# instead of a frozen dataclass — one allocation-free value per message
# on the hot delivery path, unpacked once at the receiver.  The compat
# reference keeps the dataclass form; the differential stack-parity
# suite and the Hypothesis round-trip tests prove the two encodings
# carry identical fields.
#
# Field layout (LSB first).  ``tag`` is signed — internal collective
# tags are negative — so it is stored biased; ``seq`` is unbounded (a
# per-peer message counter) and lives in the top, arbitrarily wide
# position Python ints give us for free.
# ---------------------------------------------------------------------------

_CTX_BITS = 16                      # matches the modeled 16-bit CID field
_SRC_BITS = 24                      # rank within the communicator
_TAG_BITS = 33                      # signed 32-bit tag, biased
_TAG_BIAS = 1 << 32
_SRC_SHIFT = _CTX_BITS
_TAG_SHIFT = _CTX_BITS + _SRC_BITS
_SEQ_SHIFT = _CTX_BITS + _SRC_BITS + _TAG_BITS
_CTX_MASK = (1 << _CTX_BITS) - 1
_SRC_MASK = (1 << _SRC_BITS) - 1
_TAG_MASK = (1 << _TAG_BITS) - 1


def pack_match(ctx: int, src: int, tag: int, seq: int) -> int:
    """Pack match-header fields into one int (fast-path wire form)."""
    return (ctx
            | (src << _SRC_SHIFT)
            | ((tag + _TAG_BIAS) << _TAG_SHIFT)
            | (seq << _SEQ_SHIFT))


def unpack_match(word: int) -> Tuple[int, int, int, int]:
    """Inverse of :func:`pack_match`: returns (ctx, src, tag, seq)."""
    return (word & _CTX_MASK,
            (word >> _SRC_SHIFT) & _SRC_MASK,
            ((word >> _TAG_SHIFT) & _TAG_MASK) - _TAG_BIAS,
            word >> _SEQ_SHIFT)


def pack_from_header(hdr: MatchHeader) -> int:
    """Pack a :class:`MatchHeader` (compat form) into the wire int."""
    return pack_match(hdr.ctx, hdr.src, hdr.tag, hdr.seq)


def header_from_packed(word: int) -> MatchHeader:
    """Expand the wire int back into the compat dataclass form."""
    ctx, src, tag, seq = unpack_match(word)
    return MatchHeader(ctx=ctx, src=src, tag=tag, seq=seq)

"""Tag-matching engine: posted-receive and unexpected-message queues.

One engine per process; queues are segregated by the *receiver-local*
communicator id (the ctx field of the match header — constant-time
array-index semantics, like Open MPI's communicator array).

MPI matching rules implemented here:

* a receive matches the earliest compatible unexpected message
  (arrival order), and an arriving message matches the earliest
  compatible posted receive (post order) — non-overtaking;
* ``ANY_SOURCE`` matches any source, ``ANY_TAG`` matches any
  *user* tag (>= 0) but never the negative internal collective tags.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from repro.ompi.constants import ANY_SOURCE, ANY_TAG


@dataclass
class PostedRecv:
    """A receive waiting for a message."""

    src: int
    tag: int
    request: Any                       # ompi Request
    cb: Any = None                     # protocol callback on match


@dataclass
class IncomingMsg:
    """An arrived message (or rendezvous RTS) awaiting a receive."""

    src: int
    tag: int
    seq: int
    nbytes: int                        # user payload bytes
    payload: Any = None
    protocol: str = "eager"            # "eager" | "rts"
    sender: Any = None                 # sender proc id (for CTS routing)
    sender_req: Any = None             # sender-side request (rendezvous)
    extended: bool = False             # carried an extended header
    arrival: float = 0.0


def _compatible(posted: PostedRecv, msg: IncomingMsg) -> bool:
    if posted.src != ANY_SOURCE and posted.src != msg.src:
        return False
    if posted.tag == ANY_TAG:
        return msg.tag >= 0
    return posted.tag == msg.tag


@dataclass
class _CommQueues:
    posted: Deque[PostedRecv] = field(default_factory=deque)
    unexpected: Deque[IncomingMsg] = field(default_factory=deque)


class MatchingEngine:
    """All matching state for one process."""

    def __init__(self) -> None:
        self._by_cid: Dict[int, _CommQueues] = {}
        self.matches = 0
        self.unexpected_hits = 0

    def _queues(self, cid: int) -> _CommQueues:
        q = self._by_cid.get(cid)
        if q is None:
            q = _CommQueues()
            self._by_cid[cid] = q
        return q

    def post_recv(self, cid: int, posted: PostedRecv) -> Optional[IncomingMsg]:
        """Post a receive; returns the matched unexpected message if any
        (already removed from the queue), else enqueues the receive."""
        q = self._queues(cid)
        for i, msg in enumerate(q.unexpected):
            if _compatible(posted, msg):
                del q.unexpected[i]
                self.matches += 1
                self.unexpected_hits += 1
                return msg
        q.posted.append(posted)
        return None

    def incoming(self, cid: int, msg: IncomingMsg) -> Optional[PostedRecv]:
        """An arriving message; returns the matched posted receive if any
        (already removed), else enqueues as unexpected."""
        q = self._queues(cid)
        for i, posted in enumerate(q.posted):
            if _compatible(posted, msg):
                del q.posted[i]
                self.matches += 1
                return posted
        q.unexpected.append(msg)
        return None

    def probe(self, cid: int, src: int, tag: int) -> Optional[IncomingMsg]:
        """Non-destructive search of the unexpected queue (MPI_Iprobe)."""
        fake = PostedRecv(src=src, tag=tag, request=None)
        for msg in self._queues(cid).unexpected:
            if _compatible(fake, msg):
                return msg
        return None

    def mprobe(self, cid: int, src: int, tag: int) -> Optional[IncomingMsg]:
        """Matched probe (MPI_Improbe): REMOVE and return the earliest
        compatible unexpected message.  Once removed, no other receive
        can steal it — the thread-safe claim MPI-3 added mprobe for."""
        q = self._queues(cid)
        fake = PostedRecv(src=src, tag=tag, request=None)
        for i, msg in enumerate(q.unexpected):
            if _compatible(fake, msg):
                del q.unexpected[i]
                self.matches += 1
                self.unexpected_hits += 1
                return msg
        return None

    def cancel_posted(self, cid: int) -> List[PostedRecv]:
        """Remove and return every posted receive for ``cid`` (peer
        failure: the communicator fails them with MPI_ERR_PROC_FAILED)."""
        q = self._by_cid.get(cid)
        if q is None:
            return []
        cancelled = list(q.posted)
        q.posted.clear()
        return cancelled

    def remove_posted(self, cid: int, posted: PostedRecv) -> bool:
        """Un-post one receive (it is being failed instead of matched)."""
        q = self._by_cid.get(cid)
        if q is None:
            return False
        try:
            q.posted.remove(posted)
            return True
        except ValueError:
            return False

    def pending_posted(self, cid: int) -> int:
        return len(self._queues(cid).posted)

    def pending_unexpected(self, cid: int) -> int:
        return len(self._queues(cid).unexpected)

    def drop_comm(self, cid: int) -> None:
        """Forget queues for a freed communicator (must be empty)."""
        q = self._by_cid.pop(cid, None)
        if q and (q.posted or q.unexpected):
            from repro.ompi.errors import MPIErrPending

            raise MPIErrPending(
                f"communicator freed with {len(q.posted)} posted / "
                f"{len(q.unexpected)} unexpected messages (cid {cid})"
            )

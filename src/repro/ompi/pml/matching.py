"""Tag-matching engine: posted-receive and unexpected-message queues.

One engine per process; queues are segregated by the *receiver-local*
communicator id (the ctx field of the match header — constant-time
array-index semantics, like Open MPI's communicator array).

MPI matching rules implemented here:

* a receive matches the earliest compatible unexpected message
  (arrival order), and an arriving message matches the earliest
  compatible posted receive (post order) — non-overtaking;
* ``ANY_SOURCE`` matches any source, ``ANY_TAG`` matches any
  *user* tag (>= 0) but never the negative internal collective tags.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.ompi.constants import ANY_SOURCE, ANY_TAG


class PostedRecv:
    """A receive waiting for a message."""

    __slots__ = ("src", "tag", "request", "cb")

    def __init__(self, src: int, tag: int, request: Any, cb: Any = None) -> None:
        self.src = src
        self.tag = tag
        self.request = request         # ompi Request
        self.cb = cb                   # protocol callback on match


class IncomingMsg:
    """An arrived message (or rendezvous RTS) awaiting a receive."""

    __slots__ = ("src", "tag", "seq", "nbytes", "payload", "protocol",
                 "sender", "sender_req", "extended", "arrival")

    def __init__(self, src: int, tag: int, seq: int, nbytes: int,
                 payload: Any = None, protocol: str = "eager",
                 sender: Any = None, sender_req: Any = None,
                 extended: bool = False, arrival: float = 0.0) -> None:
        self.src = src
        self.tag = tag
        self.seq = seq
        self.nbytes = nbytes           # user payload bytes
        self.payload = payload
        self.protocol = protocol       # "eager" | "rts"
        self.sender = sender           # sender proc id (for CTS routing)
        self.sender_req = sender_req   # sender-side request (rendezvous)
        self.extended = extended       # carried an extended header
        self.arrival = arrival


def _compatible(posted: PostedRecv, msg: IncomingMsg) -> bool:
    if posted.src != ANY_SOURCE and posted.src != msg.src:
        return False
    if posted.tag == ANY_TAG:
        return msg.tag >= 0
    return posted.tag == msg.tag


class _CommQueues:
    __slots__ = ("posted", "unexpected")

    def __init__(self) -> None:
        self.posted: Deque[PostedRecv] = deque()
        self.unexpected: Deque[IncomingMsg] = deque()


class MatchingEngine:
    """All matching state for one process."""

    def __init__(self) -> None:
        self._by_cid: Dict[int, _CommQueues] = {}
        self.matches = 0
        self.unexpected_hits = 0

    def _queues(self, cid: int) -> _CommQueues:
        q = self._by_cid.get(cid)
        if q is None:
            q = _CommQueues()
            self._by_cid[cid] = q
        return q

    def post_recv(self, cid: int, posted: PostedRecv) -> Optional[IncomingMsg]:
        """Post a receive; returns the matched unexpected message if any
        (already removed from the queue), else enqueues the receive."""
        q = self._queues(cid)
        for i, msg in enumerate(q.unexpected):
            if _compatible(posted, msg):
                del q.unexpected[i]
                self.matches += 1
                self.unexpected_hits += 1
                return msg
        q.posted.append(posted)
        return None

    def incoming(self, cid: int, msg: IncomingMsg) -> Optional[PostedRecv]:
        """An arriving message; returns the matched posted receive if any
        (already removed), else enqueues as unexpected."""
        q = self._queues(cid)
        for i, posted in enumerate(q.posted):
            if _compatible(posted, msg):
                del q.posted[i]
                self.matches += 1
                return posted
        q.unexpected.append(msg)
        return None

    def probe(self, cid: int, src: int, tag: int) -> Optional[IncomingMsg]:
        """Non-destructive search of the unexpected queue (MPI_Iprobe)."""
        fake = PostedRecv(src=src, tag=tag, request=None)
        for msg in self._queues(cid).unexpected:
            if _compatible(fake, msg):
                return msg
        return None

    def mprobe(self, cid: int, src: int, tag: int) -> Optional[IncomingMsg]:
        """Matched probe (MPI_Improbe): REMOVE and return the earliest
        compatible unexpected message.  Once removed, no other receive
        can steal it — the thread-safe claim MPI-3 added mprobe for."""
        q = self._queues(cid)
        fake = PostedRecv(src=src, tag=tag, request=None)
        for i, msg in enumerate(q.unexpected):
            if _compatible(fake, msg):
                del q.unexpected[i]
                self.matches += 1
                self.unexpected_hits += 1
                return msg
        return None

    def cancel_posted(self, cid: int) -> List[PostedRecv]:
        """Remove and return every posted receive for ``cid`` (peer
        failure: the communicator fails them with MPI_ERR_PROC_FAILED)."""
        q = self._by_cid.get(cid)
        if q is None:
            return []
        cancelled = list(q.posted)
        q.posted.clear()
        return cancelled

    def remove_posted(self, cid: int, posted: PostedRecv) -> bool:
        """Un-post one receive (it is being failed instead of matched)."""
        q = self._by_cid.get(cid)
        if q is None:
            return False
        try:
            q.posted.remove(posted)
            return True
        except ValueError:
            return False

    def pending_posted(self, cid: int) -> int:
        return len(self._queues(cid).posted)

    def pending_unexpected(self, cid: int) -> int:
        return len(self._queues(cid).unexpected)

    def drop_comm(self, cid: int) -> None:
        """Forget queues for a freed communicator (must be empty)."""
        q = self._by_cid.pop(cid, None)
        if q and (q.posted or q.unexpected):
            from repro.ompi.errors import MPIErrPending

            raise MPIErrPending(
                f"communicator freed with {len(q.posted)} posted / "
                f"{len(q.unexpected)} unexpected messages (cid {cid})"
            )

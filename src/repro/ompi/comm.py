"""MPI Communicators.

The user-facing object: point-to-point (mpi4py-style lowercase
methods, all blocking calls are sub-generators), collectives, and the
constructors whose CID machinery is the heart of the paper:

* ``dup`` / ``split`` / ``create`` / ``create_group`` — in consensus
  mode they agree on a CID with the legacy allreduce loop over the
  parent; in exCID mode they derive ids per the configured policy;
* ``comm_create_from_group`` (module function; also exposed via
  :meth:`repro.ompi.runtime.MpiRuntime.comm_create_from_group`) — the
  new Sessions constructor with *no parent*, which is exactly why the
  exCID generator exists.
"""

from __future__ import annotations

import itertools
from typing import Any, List, Optional, Tuple

from repro.ompi import coll
from repro.ompi.cid import allocate_consensus_cid
from repro.ompi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    _TAG_SENDRECV,
    UNDEFINED,
    Op,
)
from repro.ompi.datatype import sizeof_payload
from repro.ompi.errors import (
    ERRORS_ARE_FATAL,
    Errhandler,
    MPIErrArg,
    MPIErrComm,
    MPIErrGroup,
    MPIErrProcFailed,
    MPIErrRank,
    MPIErrRevoked,
    MPIErrTag,
)
from repro.ompi.excid import ExcidState
from repro.ompi.group import Group
from repro.ompi.request import Request
from repro.ompi.status import Status
from repro.simtime.process import SLEEP0, Sleep, Spawn


class Communicator:
    """A communication context over an ordered group of processes."""

    _ids = itertools.count()

    def __init__(
        self,
        runtime,
        group: Group,
        local_cid: int,
        excid_state: Optional[ExcidState] = None,
        name: str = "",
        session=None,
    ) -> None:
        self.runtime = runtime
        self.group = group
        self.local_cid = local_cid
        self.excid_state = excid_state
        self.session = session
        self.name = name or f"comm-{next(self._ids)}"
        self.rank = group.rank_of(runtime.proc)
        if self.rank == UNDEFINED:
            raise MPIErrGroup(f"{runtime.proc} is not a member of {self.name}")
        self.size = group.size
        self.errhandler: Errhandler = ERRORS_ARE_FATAL
        self.attrs = runtime.new_attr_cache()
        self.freed = False
        # Fault state (ULFM-lite, docs/faults.md): ranks known to have
        # failed.  A communicator with failed peers is *damaged* — every
        # new operation on it raises MPI_ERR_PROC_FAILED rather than
        # risking a hang on a peer that will never answer.
        self.failed_peers: set = set()
        for p in getattr(runtime, "failed_procs", ()):
            r = group.rank_of(p)
            if r >= 0:
                self.failed_peers.add(r)
        # ULFM-lite recovery state (docs/recovery.md): a revoked comm
        # fails every operation with MPI_ERR_REVOKED; _ft_mode lets the
        # recovery collectives (agree/shrink) run on a damaged comm.
        self.revoked = False
        self._ft_mode = False
        self._ulfm_serial = itertools.count()
        # exCID handshake state (paper §III-B4).
        self.peer_cids: dict = {}      # peer rank -> peer's local CID
        self.acks_sent: set = set()    # peer ranks we already ACKed
        self._dup_serial = itertools.count()
        # Globally consistent identity (cached: used per-message for the
        # per-(pair, communicator) ordering key).
        if self.excid_state is not None:
            self._identity = str(self.excid_state.excid)
        else:
            self._identity = f"builtin-cid{local_cid}"

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    @property
    def excid(self):
        return self.excid_state.excid if self.excid_state is not None else None

    def _check(self) -> None:
        if self.freed:
            raise MPIErrComm(f"{self.name} used after free")

    # ------------------------------------------------------------------
    # fault state
    # ------------------------------------------------------------------
    def _damage_error(self) -> MPIErrProcFailed:
        return MPIErrProcFailed(
            f"{self.name}: peer rank(s) {sorted(self.failed_peers)} failed"
        )

    def _revoked_error(self) -> MPIErrRevoked:
        return MPIErrRevoked(f"{self.name} has been revoked")

    def _check_damage(self) -> None:
        """Raise (raw) if this communicator is revoked or has failed
        peers — unless a recovery collective is running (_ft_mode)."""
        if self._ft_mode:
            return
        if self.revoked:
            raise self._revoked_error()
        if self.failed_peers:
            raise self._damage_error()

    def _pre_coll(self) -> None:
        """Entry check for collectives: free state + damage, routed
        through the communicator's error handler."""
        self._check()
        if self._ft_mode:
            return
        if self.revoked:
            self.errhandler.invoke(self, self._revoked_error())
        if self.failed_peers:
            self.errhandler.invoke(self, self._damage_error())

    def peer_failed(self, rank: int, proc) -> None:
        """A member process died: damage this communicator.

        Pending receives are failed with MPI_ERR_PROC_FAILED (they were
        posted against a context that can no longer complete collectively)
        and in-flight rendezvous requests are failed at the endpoint.
        """
        if self.freed or rank in self.failed_peers:
            return
        self.failed_peers.add(rank)
        self.runtime.cluster.trace(
            "faults", "comm_damaged", comm=self.name, rank=self.rank, failed=rank
        )
        endpoint = self.runtime.endpoint
        if endpoint is not None:
            err = MPIErrProcFailed(f"{self.name}: peer rank {rank} ({proc}) failed")
            for posted in endpoint.matching.cancel_posted(self.local_cid):
                if posted.request is not None and not posted.request.completed:
                    posted.request.fail(err)
            endpoint.comm_failed(self)

    # ------------------------------------------------------------------
    # observability helpers (no-ops when tracing is disabled: begin()
    # returns 0 and end() ignores sid 0)
    # ------------------------------------------------------------------
    def _obs_begin(self, name: str, **attrs) -> int:
        rt = self.runtime
        return rt.engine.tracer.begin(rt.engine.now, rt.obs_track, name,
                                      comm=self.name, **attrs)

    def _obs_end(self, sid: int) -> None:
        rt = self.runtime
        rt.engine.tracer.end(rt.engine.now, sid)

    def get_rank(self) -> int:
        self._check()
        return self.rank

    def get_size(self) -> int:
        self._check()
        return self.size

    def get_group(self) -> Group:
        self._check()
        return self.group

    def set_errhandler(self, handler: Errhandler) -> None:
        self._check()
        self.errhandler = handler

    def identity(self) -> str:
        """Globally consistent name for runtime-side disambiguation."""
        return self._identity

    # ------------------------------------------------------------------
    # attribute caching
    # ------------------------------------------------------------------
    def set_attr(self, keyval: int, value: Any) -> None:
        self._check()
        self.attrs.set(keyval, value)

    def get_attr(self, keyval: int) -> Tuple[bool, Any]:
        self._check()
        return self.attrs.get(keyval)

    def delete_attr(self, keyval: int) -> None:
        self._check()
        self.attrs.delete(keyval)

    # ------------------------------------------------------------------
    # point-to-point (user tags must be >= 0)
    # ------------------------------------------------------------------
    def _check_user_tag(self, tag: int, recv: bool = False) -> None:
        if recv and tag == ANY_TAG:
            return
        if tag < 0:
            raise MPIErrTag(f"user tag must be >= 0 (got {tag})")

    def _check_peer(self, rank: int, recv: bool = False) -> None:
        if recv and rank == ANY_SOURCE:
            return
        if not 0 <= rank < self.size:
            raise MPIErrRank(f"peer rank {rank} out of range for size {self.size}")

    def isend(self, obj, dest: int, tag: int = 0, nbytes: Optional[int] = None):
        """Sub-generator: start a nonblocking send; returns a Request."""
        self._check()
        self._check_user_tag(tag)
        self._check_peer(dest)
        try:
            return (yield from self._isend_internal(obj, dest, tag, nbytes))
        except MPIErrProcFailed as err:
            self.errhandler.invoke(self, err)

    def _isend_internal(self, obj, dest: int, tag: int, nbytes: Optional[int] = None):
        self._check_damage()
        size = nbytes if nbytes is not None else sizeof_payload(obj)
        req = Request("send")
        yield from self.runtime.endpoint.isend(self, obj, dest, tag, size, req)
        return req

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Post a nonblocking receive (instantaneous); returns a Request."""
        self._check()
        self._check_user_tag(tag, recv=True)
        self._check_peer(source, recv=True)
        try:
            return self._irecv_internal(source, tag)
        except MPIErrProcFailed as err:
            self.errhandler.invoke(self, err)

    def _irecv_internal(self, source: int, tag: int) -> Request:
        self._check_damage()
        req = Request("recv")
        self.runtime.endpoint.irecv(self, source, tag, req)
        return req

    def send(self, obj, dest: int, tag: int = 0, nbytes: Optional[int] = None):
        """Sub-generator: blocking send."""
        sid = self._obs_begin("ompi.pml.send", dest=dest, tag=tag)
        try:
            req = yield from self.isend(obj, dest, tag, nbytes)
            yield from req.wait()
        finally:
            self._obs_end(sid)

    def _send_internal(self, obj, dest: int, tag: int, nbytes: Optional[int] = None):
        rt = self.runtime
        if not rt.engine.compat:
            # Fast path (docs/performance.md): an eager send to a known
            # peer runs its observable work inline via eager_send_start
            # and replays the reference's exact two-suspension shape —
            # Sleep(busy) for the injection, then a zero-sleep standing
            # in for the wait on the already-completed request — without
            # allocating the Request/SimEvent/Status machinery.
            self._check_damage()
            size = nbytes if nbytes is not None else sizeof_payload(obj)
            ep = rt.endpoint
            if size <= ep.machine.eager_limit:
                busy = ep.eager_send_start(self, obj, dest, tag, size)
                if busy is not None:
                    if busy > 0:
                        yield Sleep(busy)
                    yield SLEEP0
                    return
            req = Request("send")
            yield from ep.isend(self, obj, dest, tag, size, req)
            yield from req.wait()
            return
        req = yield from self._isend_internal(obj, dest, tag, nbytes)
        yield from req.wait()

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG, status: Optional[Status] = None):
        """Sub-generator: blocking receive; returns the payload."""
        sid = self._obs_begin("ompi.pml.recv", source=source, tag=tag)
        try:
            req = self.irecv(source, tag)
            st = yield from req.wait()
        finally:
            self._obs_end(sid)
        if status is not None:
            status.source, status.tag, status.count = st.source, st.tag, st.count
        return req.payload

    def _recv_internal(self, source: int, tag: int):
        req = self._irecv_internal(source, tag)
        yield from req.wait()
        return req.payload

    def sendrecv(
        self,
        sendobj,
        dest: int,
        recvsource: int,
        sendtag: int = _TAG_SENDRECV & 0x7FFFFFFF,
        recvtag: int = ANY_TAG,
        nbytes: Optional[int] = None,
    ):
        """Sub-generator: simultaneous send + receive (deadlock-free)."""
        self._check()
        self._check_peer(dest)
        self._check_peer(recvsource, recv=True)
        try:
            rreq = self._irecv_internal(recvsource, recvtag)
            sreq = yield from self._isend_internal(sendobj, dest, sendtag, nbytes)
            yield from sreq.wait()
            yield from rreq.wait()
        except MPIErrProcFailed as err:
            self.errhandler.invoke(self, err)
        return rreq.payload

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Status]:
        """Instantaneous probe of the unexpected queue."""
        self._check()
        return self.runtime.endpoint.probe(self, source, tag)

    def improbe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """MPI_Improbe: claim a matched message, or None.

        The returned :class:`MatchedMessage` is removed from the
        matching queues — no other receive can take it — and is
        consumed with its :meth:`MatchedMessage.mrecv`."""
        self._check()
        msg = self.runtime.endpoint.matching.mprobe(self.local_cid, source, tag)
        if msg is None:
            return None
        return MatchedMessage(self, msg)

    def mprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
               timeout: Optional[float] = None):
        """Sub-generator: blocking MPI_Mprobe (polls the unexpected queue).

        Being a poll, a probe nobody ever satisfies evades the engine's
        deadlock detector (simulated time keeps advancing); pass
        ``timeout`` (simulated seconds) to fail loudly instead —
        raises :class:`~repro.simtime.process.SimTimeout`.
        """
        from repro.simtime.process import Sleep, SimTimeout

        deadline = None if timeout is None else self.runtime.engine.now + timeout
        while True:
            matched = self.improbe(source, tag)
            if matched is not None:
                return matched
            if deadline is not None and self.runtime.engine.now >= deadline:
                raise SimTimeout(
                    f"mprobe(source={source}, tag={tag}) timed out after {timeout}s"
                )
            yield Sleep(self.runtime.machine.match_overhead * 4)

    # -- persistent requests -------------------------------------------------
    def send_init(self, obj, dest: int, tag: int = 0, nbytes: Optional[int] = None):
        """MPI_Send_init: freeze send arguments (local, instantaneous)."""
        self._check()
        self._check_user_tag(tag)
        self._check_peer(dest)
        from repro.ompi.persistent import PersistentSend

        return PersistentSend(self, obj, dest, tag, nbytes)

    def recv_init(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """MPI_Recv_init: freeze receive arguments (local, instantaneous)."""
        self._check()
        self._check_user_tag(tag, recv=True)
        self._check_peer(source, recv=True)
        from repro.ompi.persistent import PersistentRecv

        return PersistentRecv(self, source, tag)

    # -- topology --------------------------------------------------------------
    def create_cart(self, dims=None, periods=True, ndims: int = 2):
        """Sub-generator: MPI_Cart_create; returns a comm with ``.cart``."""
        from repro.ompi.topo import cart_create

        return (yield from cart_create(self, dims, periods, ndims))

    # -- error handler dispatch ---------------------------------------------------
    def call_errhandler(self, error) -> None:
        """MPI_Comm_call_errhandler: route ``error`` through this
        communicator's handler (ERRORS_ARE_FATAL aborts the rank)."""
        self._check()
        self.errhandler.invoke(self, error)

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def barrier(self):
        self._pre_coll()
        sid = self._obs_begin("ompi.coll.barrier")
        try:
            yield from coll.barrier(self)
        finally:
            self._obs_end(sid)

    def ibarrier(self):
        """Sub-generator: returns a Request completed when all arrive."""
        self._pre_coll()
        req = Request("ibarrier")
        yield Spawn(coll.ibarrier_runner(self, req), name=f"ibarrier-{self.name}-r{self.rank}")
        return req

    def bcast(self, obj, root: int = 0, nbytes: Optional[int] = None):
        self._pre_coll()
        sid = self._obs_begin("ompi.coll.bcast", root=root)
        try:
            return (yield from coll.bcast(self, obj, root, nbytes))
        finally:
            self._obs_end(sid)

    def reduce(self, value, op: Op, root: int = 0, nbytes: Optional[int] = None):
        self._pre_coll()
        return (yield from coll.reduce(self, value, op, root, nbytes))

    def allreduce(self, value, op: Op, nbytes: Optional[int] = None):
        self._pre_coll()
        sid = self._obs_begin("ompi.coll.allreduce")
        try:
            return (yield from coll.allreduce(self, value, op, nbytes))
        finally:
            self._obs_end(sid)

    def _internal_allreduce(self, value, op: Op, tag: int):
        return (yield from coll.allreduce(self, value, op, nbytes=8, tag=tag))

    def gather(self, value, root: int = 0, nbytes: Optional[int] = None):
        self._pre_coll()
        return (yield from coll.gather(self, value, root, nbytes))

    def scatter(self, values, root: int = 0, nbytes: Optional[int] = None):
        self._pre_coll()
        return (yield from coll.scatter(self, values, root, nbytes))

    def allgather(self, value, nbytes: Optional[int] = None):
        self._pre_coll()
        return (yield from coll.allgather(self, value, nbytes))

    def alltoall(self, values, nbytes: Optional[int] = None):
        self._pre_coll()
        return (yield from coll.alltoall(self, values, nbytes))

    def scan(self, value, op: Op, nbytes: Optional[int] = None):
        self._pre_coll()
        return (yield from coll.scan(self, value, op, nbytes))

    def exscan(self, value, op: Op, nbytes: Optional[int] = None):
        self._pre_coll()
        return (yield from coll.exscan(self, value, op, nbytes))

    # -- v-variants and reduce_scatter ----------------------------------
    def gatherv(self, value, root: int = 0, nbytes: Optional[int] = None):
        self._pre_coll()
        from repro.ompi.coll.vcolls import gatherv

        return (yield from gatherv(self, value, root, nbytes))

    def scatterv(self, values, root: int = 0):
        self._pre_coll()
        from repro.ompi.coll.vcolls import scatterv

        return (yield from scatterv(self, values, root))

    def allgatherv(self, value, nbytes: Optional[int] = None):
        self._pre_coll()
        from repro.ompi.coll.vcolls import allgatherv

        return (yield from allgatherv(self, value, nbytes))

    def reduce_scatter_block(self, values, op: Op, nbytes: Optional[int] = None):
        self._pre_coll()
        from repro.ompi.coll.vcolls import reduce_scatter_block

        return (yield from reduce_scatter_block(self, values, op, nbytes))

    # -- nonblocking collectives ------------------------------------------
    def ibcast(self, obj, root: int = 0, nbytes: Optional[int] = None):
        self._pre_coll()
        from repro.ompi.coll.nonblocking import ibcast

        return (yield from ibcast(self, obj, root, nbytes))

    def iallreduce(self, value, op: Op, nbytes: Optional[int] = None):
        self._pre_coll()
        from repro.ompi.coll.nonblocking import iallreduce

        return (yield from iallreduce(self, value, op, nbytes))

    def igather(self, value, root: int = 0, nbytes: Optional[int] = None):
        self._pre_coll()
        from repro.ompi.coll.nonblocking import igather

        return (yield from igather(self, value, root, nbytes))

    def iallgather(self, value, nbytes: Optional[int] = None):
        self._pre_coll()
        from repro.ompi.coll.nonblocking import iallgather

        return (yield from iallgather(self, value, nbytes))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    def dup(self):
        """Sub-generator: MPI_Comm_dup (collective over the communicator)."""
        self._check()
        sid = self._obs_begin("ompi.comm.dup")
        try:
            return (yield from self._dup_internal())
        finally:
            self._obs_end(sid)

    def _dup_internal(self):
        runtime = self.runtime
        if not runtime.excid_enabled:
            cid = yield from allocate_consensus_cid(self)
            new = Communicator(
                runtime, self.group, cid, name=f"{self.name}.dup", session=self.session
            )
        else:
            excid_state = yield from self._derive_excid_for_dup()
            cid = runtime.cid_table.lowest_free()
            new = Communicator(
                runtime,
                self.group,
                cid,
                excid_state=excid_state,
                name=f"{self.name}.dup",
                session=self.session,
            )
        new.errhandler = self.errhandler
        new.attrs = self.attrs.copy_for_dup()
        runtime.register_comm(new)
        return new

    def _derive_excid_for_dup(self):
        """Sub-generator: obtain the child's exCID state per the policy."""
        runtime = self.runtime
        policy = runtime.config.excid_dup_policy
        if (
            policy == "subfield"
            and self.excid_state is not None
            and self.excid_state.can_derive()
        ):
            # Purely local derivation; a barrier stands in for Open MPI's
            # communicator-activation collective.
            child = self.excid_state.derive()
            yield from coll.barrier(self)
            return child
        # Acquire a fresh PGCID via PMIx group construction (what the
        # measured prototype did on every dup — Fig 4).
        serial = next(self._dup_serial)
        gid = f"dup:{self.identity()}:{serial}"
        pgcid = yield from runtime.pmix.group_construct(gid, list(self.group.members()))
        return ExcidState.from_pgcid(pgcid)

    def split(self, color: int, key: int = 0):
        """Sub-generator: MPI_Comm_split.  color=UNDEFINED -> None."""
        self._check()
        triples = yield from coll.allgather(self, (color, key, self.rank), nbytes=24)
        if color == UNDEFINED:
            # Open MPI's split derives subgroup ids from the gathered
            # data; excluded ranks are done after the allgather.
            return None
        mine = sorted(
            [(k, r) for (c, k, r) in triples if c == color],
        )
        members = [self.group.proc(r) for _k, r in mine]
        new_group = Group(members)
        name = f"{self.name}.split{color}"
        comm = yield from self._make_subset_comm(new_group, f"split:{self.identity()}:{color}", name)
        return comm

    def split_type(self, split_type: str = "shared", key: int = 0):
        """Sub-generator: MPI_Comm_split_type.

        ``"shared"`` (MPI_COMM_TYPE_SHARED) groups ranks by node — the
        communicator the ``mpi://shared`` pset also describes.
        """
        self._check()
        if split_type != "shared":
            raise MPIErrArg(f"unsupported split type {split_type!r}")
        server = self.runtime.pmix.server
        color = server.node_of(self.runtime.proc)
        return (yield from self.split(color=color, key=key if key else self.rank))

    def create(self, group: Group):
        """Sub-generator: MPI_Comm_create (all ranks of self call).

        Ranks outside ``group`` get None.
        """
        self._check()
        if self.runtime.proc not in group:
            if not self.runtime.excid_enabled:
                # Everyone participates in the agreement on the parent.
                yield from allocate_consensus_cid(self)
            return None
        return (yield from self._comm_create_common(group, "create"))

    def create_group(self, group: Group, tag: int = 0):
        """Sub-generator: MPI_Comm_create_group (only group members call)."""
        self._check()
        if self.runtime.proc not in group:
            raise MPIErrGroup("create_group caller must be a group member")
        return (yield from self._comm_create_common(group, f"cgrp{tag}"))

    def _comm_create_common(self, group: Group, what: str):
        runtime = self.runtime
        if not runtime.excid_enabled:
            if what == "create":
                cid = yield from allocate_consensus_cid(self)
            else:
                cid = yield from self._subset_consensus_cid(group)
            new = Communicator(
                runtime, group, cid, name=f"{self.name}.{what}", session=self.session
            )
        else:
            # "not all processes are participating in the communicator
            # creation" -> always a new PGCID (paper §III-B3).
            gid = f"{what}:{self.identity()}"
            pgcid = yield from runtime.pmix.group_construct(gid, list(group.members()))
            new = Communicator(
                runtime,
                group,
                runtime.cid_table.lowest_free(),
                excid_state=ExcidState.from_pgcid(pgcid),
                name=f"{self.name}.{what}",
                session=self.session,
            )
        runtime.register_comm(new)
        return new

    def _subset_consensus_cid(self, group: Group):
        """Consensus among a subgroup, communicating over the parent.

        Models Open MPI's create_group path: the agreement allreduce runs
        on parent point-to-point among group members only.
        """
        from repro.ompi import constants
        from repro.ompi.cid import MAX_CID

        table = self.runtime.cid_table
        members = [self.group.rank_of(p) for p in group.members()]
        my_idx = members.index(self.rank)
        floor = 0
        while True:
            proposed = table.lowest_free(at_least=floor)
            agreed = yield from self._subset_allreduce(members, my_idx, proposed, constants.MAX)
            unanimous = proposed == agreed and table.is_free(agreed)
            all_ok = yield from self._subset_allreduce(
                members, my_idx, 1 if unanimous else 0, constants.MIN
            )
            if all_ok:
                return agreed
            floor = agreed
            if floor >= MAX_CID:  # pragma: no cover - defensive
                raise MPIErrArg("CID space exhausted in subset consensus")

    def _subset_allreduce(self, members: List[int], my_idx: int, value, op: Op):
        """Allreduce among a rank subset of self (consensus-CID agreement)."""
        from repro.ompi.coll.reduce import allreduce_indexed
        from repro.ompi.constants import _TAG_CID

        return (
            yield from allreduce_indexed(
                self, members, my_idx, value, op, nbytes=8, tag=_TAG_CID
            )
        )

    def _make_subset_comm(self, group: Group, gid: str, name: str):
        """Shared by split: build a communicator over ``group``."""
        runtime = self.runtime
        if not runtime.excid_enabled:
            cid = yield from self._subset_consensus_cid(group)
            new = Communicator(runtime, group, cid, name=name, session=self.session)
        else:
            pgcid = yield from runtime.pmix.group_construct(gid, list(group.members()))
            new = Communicator(
                runtime,
                group,
                runtime.cid_table.lowest_free(),
                excid_state=ExcidState.from_pgcid(pgcid),
                name=name,
                session=self.session,
            )
        runtime.register_comm(new)
        return new

    # ------------------------------------------------------------------
    # ULFM-lite recovery (docs/recovery.md)
    # ------------------------------------------------------------------
    def revoke(self) -> None:
        """MPI_Comm_revoke: invalidate this communicator everywhere.

        Not collective — any member may call it.  Locally it fails every
        pending operation with MPI_ERR_REVOKED; remotely the revocation
        propagates asynchronously to every surviving member, unblocking
        ranks stuck in operations that can no longer complete.  After a
        revoke only ``agree`` and ``shrink`` are useful on this comm.
        """
        self._check()
        if self.revoked:
            return
        rt = self.runtime
        tr = rt.engine.tracer
        if tr.enabled:
            tr.event(rt.engine.now, rt.obs_track, "recovery.comm.revoke",
                     comm=self.name, rank=self.rank)
        self._apply_revoke()
        rt.cluster.recovery_stats["revoke"] += 1
        ident = self.identity()
        failed = getattr(rt, "failed_procs", set())
        boundary = rt.fabric.boundary
        for proc in self.group.members():
            if proc == rt.proc or proc in failed:
                continue
            if boundary is not None and not boundary.owns_proc(proc):
                # Partitioned run: the member's live runtime is in
                # another partition (its local replica never spawned, so
                # it has no endpoint here).  Ship the revoke to the
                # owner; dead peers are skipped like the ``ep is None``
                # case below — death deregisters the endpoint.
                if proc in rt.cluster.faults.dead_procs:
                    continue
                delay = rt.machine.wire_time(False, 64)
                boundary.ship_ctl(rt.engine.now + delay, proc,
                                  ("revoke", ident))
                continue
            ep = rt.fabric._endpoints.get(proc)
            if ep is None:
                continue
            delay = rt.machine.wire_time(ep.node == rt.node, 64)
            rt.engine.call_later(
                delay, lambda e=ep: e.runtime.remote_revoke(ident)
            )

    def _apply_revoke(self) -> None:
        """Local half of a revocation (direct or from a remote member)."""
        if self.revoked or self.freed:
            return
        self.revoked = True
        err = self._revoked_error()
        endpoint = self.runtime.endpoint
        if endpoint is not None:
            for posted in endpoint.matching.cancel_posted(self.local_cid):
                if posted.request is not None and not posted.request.completed:
                    posted.request.fail(err)
            endpoint.comm_failed(self)

    def agree(self, flag: bool):
        """Sub-generator: MPI_Comm_agree — fault-tolerant AND.

        Returns the logical AND of every surviving member's ``flag``;
        members that died (before or during the agreement) are added to
        ``failed_peers`` and excluded.  Works on revoked and damaged
        communicators — it is the rendezvous that gets all survivors to
        a consistent view.  Every surviving member must call it.
        """
        self._check()
        rt = self.runtime
        sid = self._obs_begin("recovery.comm.agree", flag=bool(flag))
        serial = next(self._ulfm_serial)
        key = f"ulfm.agree.{self.identity()}.{serial}"
        rt.pmix.put(key, bool(flag))
        yield from rt.pmix.commit()
        members = sorted(self.group.members())
        try:
            result = yield from rt.pmix.fence_retry(members, collect=True)
        finally:
            self._obs_end(sid)
        out = bool(flag)
        for proc in members:
            if proc == rt.proc:
                continue
            blob = result.data.get(proc)
            if not isinstance(blob, dict) or key not in blob:
                # Dead (absent or marker) — record and exclude.
                r = self.group.rank_of(proc)
                if r >= 0:
                    self.failed_peers.add(r)
                continue
            out = out and bool(blob[key])
        rt.cluster.recovery_stats["agree"] += 1
        return out

    def shrink(self):
        """Sub-generator: MPI_Comm_shrink — a new communicator over the
        survivors, with a *fresh* CID.

        The survivor set is agreed via a survivor-reissued PMIx fence;
        the CID comes from the existing machinery (consensus allreduce
        over the survivors in consensus mode, a fresh PGCID via PMIx
        group construction in exCID mode), run with the damage checks
        suspended.  Every surviving member must call it.
        """
        self._check()
        from repro.pmix.types import ABORTED_MARKER, PMIX_ERR_PROC_ABORTED, PmixError

        rt = self.runtime
        sid = self._obs_begin("recovery.comm.shrink")
        serial = next(self._ulfm_serial)
        members = sorted(self.group.members())
        try:
            result = yield from rt.pmix.fence_retry(members, collect=False)
            survivors = sorted(
                p for p, v in result.data.items() if v != ABORTED_MARKER
            )
            for proc in members:
                if proc not in result.data:
                    r = self.group.rank_of(proc)
                    if r >= 0:
                        self.failed_peers.add(r)
            new_group = Group(survivors)
            name = f"{self.name}.shrink"
            if not rt.excid_enabled:
                self._ft_mode = True
                try:
                    cid = yield from self._subset_consensus_cid(new_group)
                finally:
                    self._ft_mode = False
                new = Communicator(rt, new_group, cid, name=name,
                                   session=self.session)
            else:
                procs = list(survivors)
                pgcid = None
                for _attempt in range(4):
                    gid = f"shrink:{self.identity()}:{serial}:{_attempt}"
                    try:
                        pgcid = yield from rt.pmix.group_construct(gid, procs)
                        break
                    except PmixError as err:
                        if err.status == PMIX_ERR_PROC_ABORTED and err.failed_procs:
                            dead = set(err.failed_procs)
                            procs = [p for p in procs if p not in dead]
                            continue
                        raise
                if pgcid is None:
                    raise MPIErrProcFailed(
                        f"{self.name}: shrink group construction kept failing"
                    )
                new_group = Group(procs)
                new = Communicator(
                    rt, new_group, rt.cid_table.lowest_free(),
                    excid_state=ExcidState.from_pgcid(pgcid), name=name,
                    session=self.session,
                )
        finally:
            self._obs_end(sid)
        new.errhandler = self.errhandler
        rt.register_comm(new)
        rt.cluster.recovery_stats["shrink"] += 1
        return new

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def free(self) -> None:
        """Release this communicator (local bookkeeping; the prototype's
        sessions comms do not run a collective destructor — see DESIGN)."""
        self._check()
        self.attrs.clear()
        self.runtime.deregister_comm(self)
        self.freed = True

    def __repr__(self) -> str:  # pragma: no cover
        ex = f" {self.excid}" if self.excid is not None else ""
        return f"<Communicator {self.name} rank={self.rank}/{self.size} cid={self.local_cid}{ex}>"


class MatchedMessage:
    """A message claimed by improbe/mprobe, consumed by :meth:`mrecv`."""

    __slots__ = ("comm", "_msg", "consumed")

    def __init__(self, comm: Communicator, msg) -> None:
        self.comm = comm
        self._msg = msg
        self.consumed = False

    @property
    def source(self) -> int:
        return self._msg.src

    @property
    def tag(self) -> int:
        return self._msg.tag

    @property
    def count(self) -> int:
        return self._msg.nbytes

    def mrecv(self, status: Optional[Status] = None):
        """Sub-generator: MPI_Mrecv — receive exactly this message."""
        if self.consumed:
            raise MPIErrArg("matched message received twice")
        self.consumed = True
        from repro.ompi.pml.matching import PostedRecv

        req = Request("recv")
        endpoint = self.comm.runtime.endpoint
        posted = PostedRecv(src=self._msg.src, tag=self._msg.tag, request=req)
        endpoint._consume_match(self.comm, posted, self._msg)
        st = yield from req.wait()
        if status is not None:
            status.source, status.tag, status.count = st.source, st.tag, st.count
        return req.payload

"""MPI error classes and error handlers.

Error handlers can be created *before* any initialization call (one of
the paper's §III-B5 requirements); they are plain objects with no
dependency on library state.  ``ERRORS_ARE_FATAL`` aborts the simulated
job (raises through the process); ``ERRORS_RETURN`` converts errors to
raised :class:`MPIError` that user code may catch; custom handlers run a
callback first.
"""

from __future__ import annotations

from typing import Callable, Optional

# MPI error classes (subset)
ERR_ARG = 12
ERR_COMM = 5
ERR_COUNT = 2
ERR_GROUP = 8
ERR_INTERN = 16
ERR_OTHER = 15
ERR_PENDING = 18
ERR_RANK = 6
ERR_REQUEST = 19
ERR_SESSION = 62
ERR_TAG = 4
ERR_TRUNCATE = 14
ERR_UNSUPPORTED_OPERATION = 52
ERR_PROC_FAILED = 75              # MPI_ERR_PROC_FAILED (ULFM / MPI-4 FT)
ERR_REVOKED = 76                  # MPI_ERR_REVOKED (ULFM)

_ERRCLASS_NAMES = {
    ERR_ARG: "MPI_ERR_ARG",
    ERR_COMM: "MPI_ERR_COMM",
    ERR_COUNT: "MPI_ERR_COUNT",
    ERR_GROUP: "MPI_ERR_GROUP",
    ERR_INTERN: "MPI_ERR_INTERN",
    ERR_OTHER: "MPI_ERR_OTHER",
    ERR_PENDING: "MPI_ERR_PENDING",
    ERR_RANK: "MPI_ERR_RANK",
    ERR_REQUEST: "MPI_ERR_REQUEST",
    ERR_SESSION: "MPI_ERR_SESSION",
    ERR_TAG: "MPI_ERR_TAG",
    ERR_TRUNCATE: "MPI_ERR_TRUNCATE",
    ERR_UNSUPPORTED_OPERATION: "MPI_ERR_UNSUPPORTED_OPERATION",
    ERR_PROC_FAILED: "MPI_ERR_PROC_FAILED",
    ERR_REVOKED: "MPI_ERR_REVOKED",
}


class MPIError(Exception):
    """Base MPI error; carries the MPI error class."""

    errclass = ERR_OTHER

    def __init__(self, message: str = "") -> None:
        name = _ERRCLASS_NAMES.get(self.errclass, f"MPI_ERR({self.errclass})")
        super().__init__(f"{name}: {message}" if message else name)
        self.message = message


class MPIErrArg(MPIError):
    errclass = ERR_ARG


class MPIErrComm(MPIError):
    errclass = ERR_COMM


class MPIErrRank(MPIError):
    errclass = ERR_RANK


class MPIErrTag(MPIError):
    errclass = ERR_TAG


class MPIErrGroup(MPIError):
    errclass = ERR_GROUP


class MPIErrTruncate(MPIError):
    errclass = ERR_TRUNCATE


class MPIErrRequest(MPIError):
    errclass = ERR_REQUEST


class MPIErrSession(MPIError):
    errclass = ERR_SESSION


class MPIErrPending(MPIError):
    errclass = ERR_PENDING


class MPIErrIntern(MPIError):
    errclass = ERR_INTERN


class MPIErrProcFailed(MPIError):
    """A peer process (or its node) died — operations touching it fail
    with this class instead of deadlocking (fault injection, see
    docs/faults.md)."""

    errclass = ERR_PROC_FAILED


# The name the fault-injection docs/tests use.
ProcFailed = MPIErrProcFailed


class MPIErrRevoked(MPIError):
    """The communicator was revoked (``Communicator.revoke``): every
    pending and future operation on it fails with this class so all
    members reach the recovery path together (docs/recovery.md)."""

    errclass = ERR_REVOKED


class MPIAbort(Exception):
    """Raised by ERRORS_ARE_FATAL (and MPI_Abort): terminates the rank."""

    def __init__(self, errclass: int, message: str) -> None:
        super().__init__(f"MPI job aborted ({_ERRCLASS_NAMES.get(errclass, errclass)}): {message}")
        self.errclass = errclass


class Errhandler:
    """An MPI error handler, constructible before initialization."""

    _counter = 0

    def __init__(self, fn: Optional[Callable[[object, MPIError], None]] = None, name: str = "") -> None:
        Errhandler._counter += 1
        self.fn = fn
        self.name = name or f"errhandler-{Errhandler._counter}"
        self.freed = False

    def free(self) -> None:
        self.freed = True

    def invoke(self, origin: object, error: MPIError) -> None:
        """Dispatch ``error`` raised on ``origin`` (a comm/session/...)."""
        if self.freed:
            raise MPIErrArg(f"errhandler {self.name} used after free")
        if self is ERRORS_ARE_FATAL:
            raise MPIAbort(error.errclass, str(error))
        if self.fn is not None:
            self.fn(origin, error)
        raise error

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Errhandler {self.name}>"


ERRORS_ARE_FATAL = Errhandler(name="MPI_ERRORS_ARE_FATAL")
ERRORS_RETURN = Errhandler(name="MPI_ERRORS_RETURN")

"""MPI-level constants: wildcards, thread levels, reduction ops.

Reduction operations are small callable singletons so user code can say
``comm.allreduce(x, op=SUM)`` and tests can verify results against
numpy references.
"""

from __future__ import annotations

from typing import Any, Callable

# -- wildcards / sentinels ----------------------------------------------------
ANY_SOURCE = -1
ANY_TAG = -1
PROC_NULL = -2
ROOT = -3
UNDEFINED = -32766

# -- thread support levels (MPI-2) ---------------------------------------------
THREAD_SINGLE = 0
THREAD_FUNNELED = 1
THREAD_SERIALIZED = 2
THREAD_MULTIPLE = 3

THREAD_LEVEL_NAMES = {
    THREAD_SINGLE: "MPI_THREAD_SINGLE",
    THREAD_FUNNELED: "MPI_THREAD_FUNNELED",
    THREAD_SERIALIZED: "MPI_THREAD_SERIALIZED",
    THREAD_MULTIPLE: "MPI_THREAD_MULTIPLE",
}

# -- reserved tags (internal; user tags must be >= 0) ----------------------------
TAG_UB = 2**22 - 1
_TAG_BARRIER = -10
_TAG_BCAST = -11
_TAG_REDUCE = -12
_TAG_ALLREDUCE = -13
_TAG_GATHER = -14
_TAG_SCATTER = -15
_TAG_ALLGATHER = -16
_TAG_ALLTOALL = -17
_TAG_IBARRIER = -18
_TAG_CID = -19
_TAG_SENDRECV = -20
_TAG_SCAN = -21


class Op:
    """A reduction operation.

    ``fn`` combines two contributions; ``commutative`` is advisory (all
    built-ins are commutative except user ops that declare otherwise).
    """

    __slots__ = ("name", "fn", "commutative")

    def __init__(self, name: str, fn: Callable[[Any, Any], Any], commutative: bool = True) -> None:
        self.name = name
        self.fn = fn
        self.commutative = commutative

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Op {self.name}>"


def _sum(a, b):
    return a + b


def _prod(a, b):
    return a * b


def _max(a, b):
    try:
        import numpy as np

        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return np.maximum(a, b)
    except ImportError:  # pragma: no cover
        pass
    return max(a, b)


def _min(a, b):
    try:
        import numpy as np

        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return np.minimum(a, b)
    except ImportError:  # pragma: no cover
        pass
    return min(a, b)


def _land(a, b):
    return bool(a) and bool(b)


def _lor(a, b):
    return bool(a) or bool(b)


def _band(a, b):
    return a & b


def _bor(a, b):
    return a | b


def _maxloc(a, b):
    """Operands are (value, index) pairs; ties resolve to the lower index."""
    (av, ai), (bv, bi) = a, b
    if av > bv or (av == bv and ai < bi):
        return (av, ai)
    return (bv, bi)


def _minloc(a, b):
    (av, ai), (bv, bi) = a, b
    if av < bv or (av == bv and ai < bi):
        return (av, ai)
    return (bv, bi)


SUM = Op("MPI_SUM", _sum)
PROD = Op("MPI_PROD", _prod)
MAX = Op("MPI_MAX", _max)
MIN = Op("MPI_MIN", _min)
LAND = Op("MPI_LAND", _land)
LOR = Op("MPI_LOR", _lor)
BAND = Op("MPI_BAND", _band)
BOR = Op("MPI_BOR", _bor)
MAXLOC = Op("MPI_MAXLOC", _maxloc)
MINLOC = Op("MPI_MINLOC", _minloc)

"""Intercommunicators: communication between two disjoint groups.

Client/server structures (paper §II-C) are the natural users: each side
keeps its own local group, and point-to-point plainly addresses ranks
of the *remote* group.  ``create`` follows MPI_Intercomm_create (two
local leaders bridge through a peer communicator); ``merge`` flattens
an intercommunicator into a normal intracommunicator.

Implementation: an :class:`Intercomm` owns a hidden intracommunicator
spanning both groups (built with the exCID machinery or consensus,
whichever the config provides) and translates remote-group ranks to
bridge ranks.  This mirrors how collective semantics over
intercommunicators are defined in MPI ("rooted" operations address the
remote group).
"""

from __future__ import annotations

from typing import List, Optional

from repro.ompi.constants import ANY_SOURCE, ANY_TAG
from repro.ompi.errors import MPIErrArg, MPIErrGroup, MPIErrRank
from repro.ompi.group import Group
from repro.ompi.status import Status

_TAG_BRIDGE = 900000  # user-space tag block reserved for intercomm setup


def build_bridge(runtime, session, my_members, remote_members, tag_str: str,
                 consensus_tag: int):
    """Sub-generator: the hidden intracommunicator spanning both sides.

    Shared by :meth:`Intercomm.create`, :meth:`Intercomm.merge`, and
    ``dynamic.comm_connect/accept``.  Both sides order the union
    identically (group with the lowest leader process first) and build
    it with the exCID machinery, or via ``create_group`` on the WPM
    world when the exCID generator is unavailable.
    """
    ours_first = my_members[0] < remote_members[0]
    both = list(my_members) + list(remote_members) if ours_first \
        else list(remote_members) + list(my_members)
    bridge = yield from construct_over(runtime, session, both, tag_str, consensus_tag)
    return bridge


def construct_over(runtime, session, members, tag_str: str, consensus_tag: int):
    """Sub-generator: build an intracomm over an explicit member list,
    via exCID when available, else create_group on the WPM world."""
    group = Group(members)
    group.session = session
    if runtime.excid_enabled:
        comm = yield from runtime.comm_create_from_group(group, tag_str)
    else:
        world = runtime.COMM_WORLD
        if world is None:
            raise MPIErrArg(
                "intercommunicator construction without ob1/exCID needs the "
                "World Process Model (a common parent for the consensus CID)"
            )
        comm = yield from world.create_group(group, tag=consensus_tag)
    return comm


class Intercomm:
    """One rank's handle on an intercommunicator."""

    def __init__(self, bridge, local_group: Group, remote_group: Group) -> None:
        self._bridge = bridge                  # hidden intracomm over both groups
        self.local_group = local_group
        self.remote_group = remote_group
        self.rank = local_group.rank_of(bridge.runtime.proc)
        self.local_size = local_group.size
        self.remote_size = remote_group.size
        self.freed = False

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        local_comm,
        local_leader: int,
        peer_comm,
        remote_leader: int,
        tag: int = 0,
    ):
        """Sub-generator: MPI_Intercomm_create.

        ``local_comm`` is this side's intracommunicator; the two
        leaders exchange group membership over ``peer_comm`` (present
        at the leaders only), then everyone collectively builds the
        bridge communicator.
        """
        runtime = local_comm.runtime
        my_members = list(local_comm.group.members())
        if local_comm.rank == local_leader:
            if peer_comm is None:
                raise MPIErrArg("the local leader needs the peer communicator")
            remote_members = yield from peer_comm.sendrecv(
                my_members, remote_leader, remote_leader,
                sendtag=_TAG_BRIDGE + tag, recvtag=_TAG_BRIDGE + tag,
            )
        else:
            remote_members = None
        remote_members = yield from local_comm.bcast(remote_members, root=local_leader)
        remote_group = Group(remote_members)
        if set(remote_members) & set(my_members):
            raise MPIErrGroup("intercomm groups must be disjoint")

        session = getattr(local_comm.group, "session", None) or local_comm.session
        bridge = yield from build_bridge(
            runtime, session, my_members, remote_members,
            f"intercomm:{tag}", _TAG_BRIDGE + tag,
        )
        return cls(bridge, Group(my_members), remote_group)

    # ------------------------------------------------------------------
    def _check(self) -> None:
        if self.freed:
            raise MPIErrArg("intercommunicator used after free")

    def _bridge_rank(self, remote_rank: int) -> int:
        if not 0 <= remote_rank < self.remote_size:
            raise MPIErrRank(f"remote rank {remote_rank} out of range")
        return self._bridge.group.rank_of(self.remote_group.proc(remote_rank))

    # -- point-to-point addresses the REMOTE group -------------------------
    def send(self, obj, dest: int, tag: int = 0, nbytes: Optional[int] = None):
        self._check()
        yield from self._bridge.send(obj, self._bridge_rank(dest), tag, nbytes)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             status: Optional[Status] = None):
        self._check()
        if source == ANY_SOURCE:
            payload = yield from self._bridge.recv(ANY_SOURCE, tag, status)
        else:
            payload = yield from self._bridge.recv(self._bridge_rank(source), tag, status)
        if status is not None and status.source >= 0:
            proc = self._bridge.group.proc(status.source)
            status.source = self.remote_group.rank_of(proc)
        return payload

    def isend(self, obj, dest: int, tag: int = 0, nbytes: Optional[int] = None):
        self._check()
        return (yield from self._bridge.isend(obj, self._bridge_rank(dest), tag, nbytes))

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        self._check()
        if source == ANY_SOURCE:
            return self._bridge.irecv(ANY_SOURCE, tag)
        return self._bridge.irecv(self._bridge_rank(source), tag)

    # -- collectives ---------------------------------------------------------
    def barrier(self):
        """Barrier across both groups."""
        self._check()
        yield from self._bridge.barrier()

    def merge(self, high: bool = False):
        """Sub-generator: MPI_Intercomm_merge -> plain intracommunicator.

        ``high`` orders this side's ranks after the remote side's.
        """
        self._check()
        me = self._bridge.runtime.proc
        entries = yield from self._bridge.allgather((high, me))
        remote_high = next(h for h, p in entries if p in self.remote_group)
        ours = list(self.local_group.members())
        theirs = list(self.remote_group.members())
        if high == remote_high:
            # Both sides chose the same value: MPI leaves the order
            # implementation-defined; break the tie by lowest member so
            # every rank computes the identical result.
            mine_first = min(ours) < min(theirs)
        else:
            mine_first = not high  # the "low" group comes first
        merged_members = ours + theirs if mine_first else theirs + ours
        merged = yield from construct_over(
            self._bridge.runtime, self._bridge.session, merged_members,
            "icmerge", _TAG_BRIDGE + 1,
        )
        return merged

    def free(self) -> None:
        self._check()
        self._bridge.free()
        self.freed = True

"""MPI one-sided communication (windows).

Paper §III-B6: the prototype creates windows (and files) from groups by
building an *intermediate communicator* with the exCID machinery,
calling the MPI-3 constructor, and freeing the intermediate — that flow
is :meth:`Window.create_from_group`.

Simulation semantics follow MPI's epoch rules: ``put``/``get``/
``accumulate`` are queued during an epoch and take effect at the
closing synchronization (``fence`` for active target, ``unlock`` for
passive target).  Reading a window's memory before the close sees the
pre-epoch values — tests rely on this to catch misuse.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.ompi.errors import MPIErrArg, MPIErrIntern
from repro.simtime.process import Sleep

RMA_ISSUE_OVERHEAD = 0.15e-6    # CPU cost to issue one RMA op


class _PendingOp:
    __slots__ = ("kind", "target", "offset", "data", "op", "box")

    def __init__(self, kind, target, offset, data=None, op=None, box=None):
        self.kind = kind
        self.target = target
        self.offset = offset
        self.data = data
        self.op = op
        self.box = box


class RmaHandle:
    """Returned by :meth:`Window.get`: ``data`` is valid after the epoch
    closes (fence/unlock)."""

    __slots__ = ("data", "complete")

    def __init__(self) -> None:
        self.data: Optional[np.ndarray] = None
        self.complete = False


class Window:
    """One rank's handle on a collectively created RMA window."""

    _ids = itertools.count()

    def __init__(self, comm, memory: np.ndarray, peers: List[np.ndarray]) -> None:
        self._comm = comm              # internal dup, owned by the window
        self.rank = comm.rank
        self.size = comm.size
        self.memory = memory
        self._peers = peers            # rank -> that rank's exposed array
        self._pending: List[_PendingOp] = []
        self._locked: Optional[int] = None
        self.win_id = next(self._ids)
        self.freed = False

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def allocate(cls, comm, count: int, dtype=np.float64):
        """Sub-generator: MPI_Win_allocate — collective over ``comm``."""
        if count < 0:
            raise MPIErrArg("window size must be >= 0")
        internal = yield from comm.dup()
        memory = np.zeros(count, dtype=dtype)
        # Exchange exposure handles (the simulation's "registration").
        peers = yield from internal.allgather(memory, nbytes=64)
        yield Sleep(RMA_ISSUE_OVERHEAD * 4)  # registration cost
        return cls(internal, memory, peers)

    @classmethod
    def create_from_group(cls, runtime, group, stringtag: str, count: int, dtype=np.float64):
        """Sub-generator: MPI_Win_allocate_from_group via the prototype's
        intermediate-communicator path (§III-B6)."""
        intermediate = yield from runtime.comm_create_from_group(
            group, f"win:{stringtag}"
        )
        win = yield from cls.allocate(intermediate, count, dtype)
        intermediate.free()  # the window keeps its own internal dup
        return win

    # ------------------------------------------------------------------
    def _check(self, target: Optional[int] = None) -> None:
        if self.freed:
            raise MPIErrArg("window used after free")
        if target is not None and not 0 <= target < self.size:
            raise MPIErrArg(f"target rank {target} out of range")

    def _transfer_cost(self, target: int, nbytes: int) -> float:
        machine = self._comm.runtime.machine
        server = self._comm.runtime.pmix.server
        peer = self._comm.group.proc(target)
        same = server.node_of(peer) == self._comm.runtime.node
        return RMA_ISSUE_OVERHEAD + machine.wire_time(same, nbytes)

    # ------------------------------------------------------------------
    # RMA operations (queued until the epoch closes)
    # ------------------------------------------------------------------
    def put(self, data, target: int, offset: int = 0):
        """Sub-generator: queue a put; visible at fence/unlock."""
        self._check(target)
        arr = np.asarray(data)
        self._bounds(target, offset, arr.size)
        yield Sleep(self._transfer_cost(target, arr.nbytes))
        self._pending.append(_PendingOp("put", target, offset, data=arr.copy()))

    def get(self, target: int, count: int, offset: int = 0):
        """Sub-generator: queue a get; handle.data valid after the close."""
        self._check(target)
        self._bounds(target, offset, count)
        itemsize = self._peers[target].dtype.itemsize
        yield Sleep(self._transfer_cost(target, count * itemsize))
        box = RmaHandle()
        self._pending.append(_PendingOp("get", target, offset, data=count, box=box))
        return box

    def accumulate(self, data, target: int, op, offset: int = 0):
        """Sub-generator: queue an accumulate (elementwise ``op``)."""
        self._check(target)
        arr = np.asarray(data)
        self._bounds(target, offset, arr.size)
        yield Sleep(self._transfer_cost(target, arr.nbytes))
        self._pending.append(_PendingOp("acc", target, offset, data=arr.copy(), op=op))

    def _bounds(self, target: int, offset: int, count: int) -> None:
        limit = self._peers[target].size
        if offset < 0 or offset + count > limit:
            raise MPIErrArg(
                f"RMA access [{offset}, {offset + count}) exceeds window size {limit}"
            )

    def _apply(self, only_target: Optional[int] = None) -> None:
        rest: List[_PendingOp] = []
        for op in self._pending:
            if only_target is not None and op.target != only_target:
                rest.append(op)
                continue
            mem = self._peers[op.target]
            if op.kind == "put":
                mem[op.offset:op.offset + op.data.size] = op.data
            elif op.kind == "acc":
                window_slice = mem[op.offset:op.offset + op.data.size]
                mem[op.offset:op.offset + op.data.size] = [
                    op.op(a, b) for a, b in zip(window_slice, op.data)
                ]
            elif op.kind == "get":
                op.box.data = mem[op.offset:op.offset + op.data].copy()
                op.box.complete = True
            else:  # pragma: no cover
                raise MPIErrIntern(f"unknown RMA op {op.kind}")
        self._pending = rest

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def fence(self):
        """Sub-generator: MPI_Win_fence — closes/opens an active epoch.

        Two-phase: first barrier guarantees no rank is still computing
        in the old epoch (so pre-fence reads never see new data), then
        ops apply, then the second barrier guarantees every post-fence
        read sees all of them."""
        self._check()
        yield from self._comm.barrier()
        self._apply()
        yield from self._comm.barrier()

    def lock(self, target: int):
        """Sub-generator: MPI_Win_lock (passive target, exclusive)."""
        self._check(target)
        if self._locked is not None:
            raise MPIErrArg("window already holds a lock")
        yield Sleep(self._transfer_cost(target, 0) * 2)  # lock RTT
        self._locked = target

    def unlock(self, target: int):
        """Sub-generator: MPI_Win_unlock — completes ops on ``target``."""
        self._check(target)
        if self._locked != target:
            raise MPIErrArg(f"window not locked on target {target}")
        self._apply(only_target=target)
        yield Sleep(self._transfer_cost(target, 0))
        self._locked = None

    def free(self) -> None:
        """Release the window and its internal communicator (local)."""
        self._check()
        if self._pending:
            raise MPIErrArg("window freed with pending RMA operations")
        self._comm.free()
        self.freed = True

"""MPI_Status objects."""

from __future__ import annotations

from repro.ompi.constants import ANY_SOURCE, ANY_TAG


class Status:
    """Receive status: source, tag, and received byte count."""

    __slots__ = ("source", "tag", "count", "cancelled", "error")

    def __init__(self, source: int = ANY_SOURCE, tag: int = ANY_TAG, count: int = 0) -> None:
        self.source = source
        self.tag = tag
        self.count = count
        self.cancelled = False
        self.error = 0

    def get_source(self) -> int:
        return self.source

    def get_tag(self) -> int:
        return self.tag

    def get_count(self) -> int:
        return self.count

    def is_cancelled(self) -> bool:
        return self.cancelled

    def __repr__(self) -> str:  # pragma: no cover
        return f"Status(source={self.source}, tag={self.tag}, count={self.count})"

"""Attribute keyvals and caching (comm/session attributes).

Paper §III-B5 requires "calls related to session attributes creation,
destruction, and value caching" to work before initialization, so
keyvals live outside any library instance.  Copy/delete callbacks
follow the MPI model: the copy callback decides whether an attribute
propagates through ``dup``.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional, Tuple

from repro.ompi.errors import MPIErrArg

CopyFn = Callable[[int, Any], Tuple[bool, Any]]   # (keyval, value) -> (copy?, newvalue)
DeleteFn = Callable[[int, Any], None]


def _null_copy(keyval: int, value: Any) -> Tuple[bool, Any]:
    """MPI_NULL_COPY_FN: attribute does not propagate on dup."""
    return False, None


def _dup_copy(keyval: int, value: Any) -> Tuple[bool, Any]:
    """MPI_COMM_DUP_FN: attribute propagates by reference."""
    return True, value


class KeyvalRegistry:
    """Process-global registry of attribute keys (pre-init callable)."""

    def __init__(self) -> None:
        self._next = itertools.count(100)
        self._keyvals: Dict[int, Tuple[CopyFn, DeleteFn, Any]] = {}

    def create(
        self,
        copy_fn: Optional[CopyFn] = None,
        delete_fn: Optional[DeleteFn] = None,
        extra_state: Any = None,
    ) -> int:
        keyval = next(self._next)
        self._keyvals[keyval] = (
            copy_fn or _null_copy,
            delete_fn or (lambda kv, v: None),
            extra_state,
        )
        return keyval

    def free(self, keyval: int) -> None:
        if keyval not in self._keyvals:
            raise MPIErrArg(f"unknown keyval {keyval}")
        del self._keyvals[keyval]

    def known(self, keyval: int) -> bool:
        return keyval in self._keyvals

    def callbacks(self, keyval: int) -> Tuple[CopyFn, DeleteFn, Any]:
        if keyval not in self._keyvals:
            raise MPIErrArg(f"unknown keyval {keyval}")
        return self._keyvals[keyval]


class AttributeCache:
    """Per-object attribute storage (hangs off comms and sessions)."""

    def __init__(self, registry: KeyvalRegistry) -> None:
        self._registry = registry
        self._attrs: Dict[int, Any] = {}

    def set(self, keyval: int, value: Any) -> None:
        if not self._registry.known(keyval):
            raise MPIErrArg(f"unknown keyval {keyval}")
        if keyval in self._attrs:
            # Setting over an existing attribute invokes its delete fn.
            _, delete_fn, _ = self._registry.callbacks(keyval)
            delete_fn(keyval, self._attrs[keyval])
        self._attrs[keyval] = value

    def get(self, keyval: int) -> Tuple[bool, Any]:
        if not self._registry.known(keyval):
            raise MPIErrArg(f"unknown keyval {keyval}")
        if keyval in self._attrs:
            return True, self._attrs[keyval]
        return False, None

    def delete(self, keyval: int) -> None:
        if keyval not in self._attrs:
            raise MPIErrArg(f"attribute {keyval} not set")
        _, delete_fn, _ = self._registry.callbacks(keyval)
        delete_fn(keyval, self._attrs.pop(keyval))

    def copy_for_dup(self) -> "AttributeCache":
        """Apply copy callbacks to build the dup'd object's cache."""
        out = AttributeCache(self._registry)
        for keyval, value in self._attrs.items():
            copy_fn, _, _ = self._registry.callbacks(keyval)
            do_copy, new_value = copy_fn(keyval, value)
            if do_copy:
                out._attrs[keyval] = new_value
        return out

    def clear(self) -> None:
        """Run delete callbacks for everything (object free)."""
        for keyval in list(self._attrs):
            _, delete_fn, _ = self._registry.callbacks(keyval)
            delete_fn(keyval, self._attrs.pop(keyval))

    def __len__(self) -> int:
        return len(self._attrs)


NULL_COPY_FN = _null_copy
DUP_FN = _dup_copy

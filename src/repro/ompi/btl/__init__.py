"""Byte Transfer Layers: the transports under the PML.

Each BTL computes injection (sender CPU/NIC serialization) and wire
(latency + in-flight) costs for a transfer.  The PML picks the BTL per
peer: shared memory on-node, the network BTL off-node — mirroring Open
MPI's vader/ugni split on the paper's Cray testbeds.
"""

from repro.ompi.btl.base import BTL
from repro.ompi.btl.sm import SharedMemoryBTL
from repro.ompi.btl.net import NetworkBTL

__all__ = ["BTL", "SharedMemoryBTL", "NetworkBTL"]

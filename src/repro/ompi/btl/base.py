"""BTL interface."""

from __future__ import annotations

from repro.machine.model import MachineModel


class BTL:
    """A transport with an injection cost and a wire cost.

    * ``injection_time``: how long the sending process's CPU/NIC is busy
      pushing the message out (serializes consecutive sends — this is
      what bounds message rate).
    * ``wire_time``: additional in-flight time before the first byte can
      be matched at the receiver (does not occupy the sender).
    """

    name = "base"

    def __init__(self, machine: MachineModel) -> None:
        self.machine = machine

    def injection_time(self, nbytes: int) -> float:
        raise NotImplementedError

    def wire_time(self, nbytes: int) -> float:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"<BTL {self.name}>"

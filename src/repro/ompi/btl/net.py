"""Inter-node network BTL (Aries-like).

Injection serializes at the NIC (bandwidth term); wire time adds the
one-way network latency.  The same class models slower fabrics by
swapping the machine constants (see ``machine.presets.laptop``).
"""

from __future__ import annotations

from repro.ompi.btl.base import BTL


class NetworkBTL(BTL):
    name = "net"

    def injection_time(self, nbytes: int) -> float:
        m = self.machine
        return m.send_overhead + nbytes / m.inter_node_bandwidth

    def wire_time(self, nbytes: int) -> float:
        return self.machine.inter_node_latency

"""Shared-memory BTL (vader-like).

On-node transfers: injection is dominated by the copy into the shared
segment; wire time is the copy-out latency.  Single-copy mechanisms
(CMA/xpmem) are approximated by the bandwidth constant.
"""

from __future__ import annotations

from repro.ompi.btl.base import BTL


class SharedMemoryBTL(BTL):
    name = "sm"

    def injection_time(self, nbytes: int) -> float:
        m = self.machine
        return m.send_overhead + nbytes / m.intra_node_bandwidth

    def wire_time(self, nbytes: int) -> float:
        return self.machine.intra_node_latency

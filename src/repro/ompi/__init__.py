"""Simulated Open MPI.

The MPI library linked into every simulated process.  Mirrors the parts
of Open MPI the paper's prototype touched: the OPAL object/cleanup/MCA
layers, the ob1 point-to-point messaging layer (PML) with its 14-byte
match header and the new extended-CID handshake, the legacy consensus
CID allocator and the new exCID generator, communicators/groups/
collectives, and the two initialization models — the classic World
Process Model (``MPI_Init``/``MPI_COMM_WORLD``) and the Sessions
Process Model (``MPI_Session_init`` → pset → group → communicator).
"""

from repro.ompi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    PROC_NULL,
    THREAD_SINGLE,
    THREAD_FUNNELED,
    THREAD_SERIALIZED,
    THREAD_MULTIPLE,
    SUM,
    PROD,
    MAX,
    MIN,
    LAND,
    LOR,
    BAND,
    BOR,
    MAXLOC,
    MINLOC,
    UNDEFINED,
)
from repro.ompi.errors import (
    MPIError,
    MPIErrTruncate,
    MPIErrComm,
    MPIErrArg,
    MPIErrPending,
    Errhandler,
    ERRORS_ARE_FATAL,
    ERRORS_RETURN,
)
from repro.ompi.info import Info
from repro.ompi.datatype import (
    Datatype,
    BYTE,
    CHAR,
    INT,
    LONG,
    FLOAT,
    DOUBLE,
    COMPLEX,
    BOOL,
)
from repro.ompi.status import Status
from repro.ompi.request import Request
from repro.ompi.group import Group, GROUP_EMPTY
from repro.ompi.config import MpiConfig
from repro.ompi.runtime import MpiRuntime
from repro.ompi.session import Session
from repro.ompi.comm import Communicator
from repro.ompi.win import Window
from repro.ompi.io import File

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "PROC_NULL",
    "THREAD_SINGLE",
    "THREAD_FUNNELED",
    "THREAD_SERIALIZED",
    "THREAD_MULTIPLE",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "LAND",
    "LOR",
    "BAND",
    "BOR",
    "MAXLOC",
    "MINLOC",
    "UNDEFINED",
    "MPIError",
    "MPIErrTruncate",
    "MPIErrComm",
    "MPIErrArg",
    "MPIErrPending",
    "Errhandler",
    "ERRORS_ARE_FATAL",
    "ERRORS_RETURN",
    "Info",
    "Datatype",
    "BYTE",
    "CHAR",
    "INT",
    "LONG",
    "FLOAT",
    "DOUBLE",
    "COMPLEX",
    "BOOL",
    "Status",
    "Request",
    "Group",
    "GROUP_EMPTY",
    "MpiConfig",
    "MpiRuntime",
    "Session",
    "Communicator",
    "Window",
    "File",
]

"""Nonblocking-operation requests.

A :class:`Request` wraps a completion :class:`SimEvent`.  ``wait`` is a
sub-generator (it suspends the simulated process); ``test`` is an
instantaneous poll.  ``waitall``/``waitany``/``testall`` mirror the MPI
operations over collections of requests.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.ompi.errors import MPIErrRequest
from repro.ompi.status import Status
from repro.simtime.primitives import SimEvent
from repro.simtime.process import Wait, WaitAny


class Request:
    """Handle for a pending nonblocking operation."""

    __slots__ = ("event", "kind", "_status", "_freed", "payload_box")

    def __init__(self, kind: str = "generic") -> None:
        self.event = SimEvent()
        self.kind = kind
        self._status: Optional[Status] = None
        self._freed = False
        # Receive requests park the received object here on completion.
        self.payload_box: List = []

    # -- completion plumbing (called by the PML / collectives) -------------
    def complete(self, status: Optional[Status] = None, payload=None) -> None:
        if self.event.triggered:
            raise MPIErrRequest(f"{self.kind} request completed twice")
        self._status = status or Status()
        if payload is not None or self.kind == "recv":
            self.payload_box.append(payload)
        self.event.succeed(self._status)

    def fail(self, exc: BaseException) -> None:
        self.event.fail(exc)

    # -- user API --------------------------------------------------------------
    @property
    def completed(self) -> bool:
        return self.event.triggered

    def get_status(self) -> Optional[Status]:
        return self._status

    @property
    def payload(self):
        """The received object (recv requests, after completion)."""
        if not self.payload_box:
            return None
        return self.payload_box[0]

    def wait(self):
        """Sub-generator: block until complete; returns the Status."""
        self._check()
        status = yield Wait(self.event)
        return status

    def test(self) -> Tuple[bool, Optional[Status]]:
        """Instantaneous poll: (flag, status-or-None)."""
        self._check()
        if self.event.triggered:
            return True, self._status
        return False, None

    def free(self) -> None:
        self._freed = True

    def _check(self) -> None:
        if self._freed:
            raise MPIErrRequest("request used after free")

    def __repr__(self) -> str:  # pragma: no cover
        state = "done" if self.event.triggered else "pending"
        return f"<Request {self.kind} {state}>"


def waitall(requests: Iterable[Request]):
    """Sub-generator: wait for every request; returns list of statuses."""
    statuses = []
    for req in requests:
        status = yield from req.wait()
        statuses.append(status)
    return statuses


def waitany(requests: List[Request]):
    """Sub-generator: wait for the first completion; returns (index, status)."""
    if not requests:
        raise MPIErrRequest("waitany on empty request list")
    idx, status = yield WaitAny([r.event for r in requests])
    return idx, status


def testall(requests: Iterable[Request]) -> Tuple[bool, Optional[List[Status]]]:
    """Instantaneous: (all_done, statuses-or-None)."""
    reqs = list(requests)
    if all(r.completed for r in reqs):
        return True, [r.get_status() for r in reqs]
    return False, None

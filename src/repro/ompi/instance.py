"""The MPI instance: lazy, reference-counted subsystem lifecycle.

Paper §III-B5: instead of initializing the whole library in MPI_Init
and tearing it down in a carefully ordered MPI_Finalize, the prototype
initializes subsystems on demand, counts references, registers cleanup
callbacks with the OPAL framework, and runs them when the *last*
session is finalized — after which a new session can start the cycle
over.  Both the Sessions path and the restructured legacy
MPI_Init/MPI_Finalize path (which wrap an internal session) share this
machinery, "removing the need for any duplicate code".
"""

from __future__ import annotations

from repro.simtime.process import Sleep, SleepUntil

#: Subsystems the instance brings up, in dependency order.  Each costs
#: ``machine.session_subsys_init`` on its first initialization per epoch.
SUBSYSTEMS = (
    "opal_util",
    "mca_base",
    "info",
    "errhandler",
    "attributes",
    "datatype",
    "btl",
    "pml_ob1",
    "coll_base",
    "group",
)


def instance_acquire(runtime):
    """Sub-generator: retain (initializing on first use) every subsystem."""
    if not runtime.engine.compat:
        yield from _instance_acquire_fast(runtime)
        runtime.instance_refcount += 1
        return
    for name in SUBSYSTEMS:
        if name == "pml_ob1":
            init_fn = lambda: _pml_init(runtime)  # noqa: E731
            cleanup_fn = lambda: _pml_cleanup(runtime)  # noqa: E731
        elif name == "mca_base":
            init_fn = lambda: _mca_init(runtime)  # noqa: E731
            cleanup_fn = lambda: _mca_cleanup(runtime)  # noqa: E731
        else:
            init_fn = lambda: _generic_init(runtime)  # noqa: E731
            cleanup_fn = None
        yield from runtime.subsystems.acquire(name, init_fn, cleanup_fn)
    runtime.instance_refcount += 1


def _instance_acquire_fast(runtime):
    """Fast-path acquire: fuse consecutive first-init subsystem sleeps.

    The reference charges one ``session_subsys_init`` sleep per cold
    subsystem, with only process-local bookkeeping between the resumes
    (MCA registration, refcounts, cleanup registration).  Nothing outside
    this rank can observe those intermediate instants, so a run of cold
    subsystems collapses into a single :class:`SleepUntil` at the run's
    final resume time — computed with the reference's exact float-add
    sequence so timestamps stay byte-identical — followed by the same
    bookkeeping in the same order.  A cold ``pml_ob1`` terminates a run:
    its init registers the endpoint with the fabric and commits the modex
    blob (an RPC), and the reference performs both at exactly the fused
    run's end time anyway.  Warm subsystems sleep in neither mode, so
    a warm entry between cold ones does not break fusion.
    """
    reg = runtime.subsystems
    initialized = reg._initialized
    engine = runtime.engine
    d = runtime.machine.session_subsys_init
    names = SUBSYSTEMS
    n = len(names)
    i = 0
    while i < n:
        seg = []                # (name, cold) in subsystem order
        cold_sleeps = 0
        t = engine.now
        while i < n:
            name = names[i]
            cold = name not in initialized
            seg.append((name, cold))
            i += 1
            if cold:
                t = t + d       # replay the reference's exact float adds
                cold_sleeps += 1
                if name == "pml_ob1":
                    break       # observable init work ends this segment
        if cold_sleeps:
            yield SleepUntil(t, cold_sleeps - 1)
        for name, cold in seg:
            if cold:
                if name == "mca_base":
                    _mca_register(runtime)
                    reg.mark_initialized(
                        name, lambda: _mca_cleanup(runtime))
                elif name == "pml_ob1":
                    _pml_setup(runtime)
                    yield from runtime.pmix.commit()
                    reg.mark_initialized(
                        name, lambda: _pml_cleanup(runtime))
                else:
                    reg.mark_initialized(name, None)
            reg.retain(name)


def instance_release(runtime):
    """Sub-generator: drop one instance reference; the last one triggers
    the cleanup framework (LIFO teardown of every subsystem)."""
    if runtime.instance_refcount <= 0:
        from repro.ompi.errors import MPIErrIntern

        raise MPIErrIntern("instance released more times than acquired")
    for name in SUBSYSTEMS:
        runtime.subsystems.release(name)
    runtime.instance_refcount -= 1
    if runtime.instance_refcount == 0:
        yield Sleep(runtime.machine.proc_local_init / 2)  # teardown work
        runtime.cleanup.run_all()
    return
    yield  # pragma: no cover


def _generic_init(runtime):
    yield Sleep(runtime.machine.session_subsys_init)


def _mca_init(runtime):
    """Open MCA frameworks and register the standard components."""
    yield Sleep(runtime.machine.session_subsys_init)
    _mca_register(runtime)


def _mca_register(runtime):
    """The non-sleeping body of :func:`_mca_init` (shared with the fused
    fast path, which performs the time charge separately)."""
    from repro.ompi.opal.mca import MCAComponent

    pml = runtime.mca.framework("pml")
    if not pml.components():
        pml.register(MCAComponent("ob1", priority=20))
        pml.register(MCAComponent("cm", priority=10))
    btl = runtime.mca.framework("btl")
    if not btl.components():
        btl.register(MCAComponent("sm", priority=50))
        btl.register(MCAComponent("net", priority=30))
    coll = runtime.mca.framework("coll")
    if not coll.components():
        coll.register(MCAComponent("tuned", priority=30))
        coll.register(MCAComponent("basic", priority=10))
    for name in ("pml", "btl", "coll"):
        runtime.mca.framework(name).open()
    pml.select(prefer=runtime.config.pml)
    btl.select()
    coll.select()


def _mca_cleanup(runtime):
    for name in ("pml", "btl", "coll"):
        fw = runtime.mca.framework(name)
        if fw.is_open:
            fw.close()


def _pml_init(runtime):
    """Bring up ob1: create the endpoint and publish our modex blob."""
    yield Sleep(runtime.machine.session_subsys_init)
    _pml_setup(runtime)
    yield from runtime.pmix.commit()


def _pml_setup(runtime):
    """The non-sleeping setup of :func:`_pml_init` (shared with the fused
    fast path): create the endpoint and stage our modex blob."""
    from repro.ompi.pml.ob1 import ENDPOINT_KEY, Ob1Endpoint

    runtime.endpoint = Ob1Endpoint(runtime)
    runtime.pmix.put(
        ENDPOINT_KEY, {"node": runtime.node, "addr": f"ob1-{runtime.proc.rank}"}
    )


def _pml_cleanup(runtime):
    if runtime.endpoint is not None:
        m = runtime.engine.metrics
        if m is not None and m.enabled:
            runtime.endpoint.harvest_metrics(m)
        runtime.fabric.deregister(runtime.proc)
        runtime.endpoint = None
    runtime.reset_cid_state()

"""The MPI instance: lazy, reference-counted subsystem lifecycle.

Paper §III-B5: instead of initializing the whole library in MPI_Init
and tearing it down in a carefully ordered MPI_Finalize, the prototype
initializes subsystems on demand, counts references, registers cleanup
callbacks with the OPAL framework, and runs them when the *last*
session is finalized — after which a new session can start the cycle
over.  Both the Sessions path and the restructured legacy
MPI_Init/MPI_Finalize path (which wrap an internal session) share this
machinery, "removing the need for any duplicate code".
"""

from __future__ import annotations

from repro.simtime.process import Sleep

#: Subsystems the instance brings up, in dependency order.  Each costs
#: ``machine.session_subsys_init`` on its first initialization per epoch.
SUBSYSTEMS = (
    "opal_util",
    "mca_base",
    "info",
    "errhandler",
    "attributes",
    "datatype",
    "btl",
    "pml_ob1",
    "coll_base",
    "group",
)


def instance_acquire(runtime):
    """Sub-generator: retain (initializing on first use) every subsystem."""
    machine = runtime.machine
    for name in SUBSYSTEMS:
        if name == "pml_ob1":
            init_fn = lambda: _pml_init(runtime)  # noqa: E731
            cleanup_fn = lambda: _pml_cleanup(runtime)  # noqa: E731
        elif name == "mca_base":
            init_fn = lambda: _mca_init(runtime)  # noqa: E731
            cleanup_fn = lambda: _mca_cleanup(runtime)  # noqa: E731
        else:
            init_fn = lambda: _generic_init(runtime)  # noqa: E731
            cleanup_fn = None
        yield from runtime.subsystems.acquire(name, init_fn, cleanup_fn)
    runtime.instance_refcount += 1


def instance_release(runtime):
    """Sub-generator: drop one instance reference; the last one triggers
    the cleanup framework (LIFO teardown of every subsystem)."""
    if runtime.instance_refcount <= 0:
        from repro.ompi.errors import MPIErrIntern

        raise MPIErrIntern("instance released more times than acquired")
    for name in SUBSYSTEMS:
        runtime.subsystems.release(name)
    runtime.instance_refcount -= 1
    if runtime.instance_refcount == 0:
        yield Sleep(runtime.machine.proc_local_init / 2)  # teardown work
        runtime.cleanup.run_all()
    return
    yield  # pragma: no cover


def _generic_init(runtime):
    yield Sleep(runtime.machine.session_subsys_init)


def _mca_init(runtime):
    """Open MCA frameworks and register the standard components."""
    from repro.ompi.opal.mca import MCAComponent

    yield Sleep(runtime.machine.session_subsys_init)
    pml = runtime.mca.framework("pml")
    if not pml.components():
        pml.register(MCAComponent("ob1", priority=20))
        pml.register(MCAComponent("cm", priority=10))
    btl = runtime.mca.framework("btl")
    if not btl.components():
        btl.register(MCAComponent("sm", priority=50))
        btl.register(MCAComponent("net", priority=30))
    coll = runtime.mca.framework("coll")
    if not coll.components():
        coll.register(MCAComponent("tuned", priority=30))
        coll.register(MCAComponent("basic", priority=10))
    for name in ("pml", "btl", "coll"):
        runtime.mca.framework(name).open()
    pml.select(prefer=runtime.config.pml)
    btl.select()
    coll.select()


def _mca_cleanup(runtime):
    for name in ("pml", "btl", "coll"):
        fw = runtime.mca.framework(name)
        if fw.is_open:
            fw.close()


def _pml_init(runtime):
    """Bring up ob1: create the endpoint and publish our modex blob."""
    from repro.ompi.pml.ob1 import ENDPOINT_KEY, Ob1Endpoint

    yield Sleep(runtime.machine.session_subsys_init)
    runtime.endpoint = Ob1Endpoint(runtime)
    runtime.pmix.put(
        ENDPOINT_KEY, {"node": runtime.node, "addr": f"ob1-{runtime.proc.rank}"}
    )
    yield from runtime.pmix.commit()


def _pml_cleanup(runtime):
    if runtime.endpoint is not None:
        m = runtime.engine.metrics
        if m is not None and m.enabled:
            runtime.endpoint.harvest_metrics(m)
        runtime.fabric.deregister(runtime.proc)
        runtime.endpoint = None
    runtime.reset_cid_state()

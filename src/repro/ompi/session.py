"""MPI Sessions (paper Fig 1 flow).

A :class:`Session` identifies one stream of MPI usage.  It is created
by ``MPI_Session_init`` (:meth:`repro.ompi.runtime.MpiRuntime.session_init`
— local, light-weight, repeatable, thread-safe by construction in the
simulator), queried for *process sets*, turned into MPI Groups with
:meth:`group_from_pset`, and finalized independently of any other
session.

The prototype's three default process sets are implemented here:
``mpi://world`` (every process of the job), ``mpi://self``, and
``mpi://shared`` (the node-local processes).  Additional sets come from
the PMIx/PRRTE registry (:meth:`get_num_psets` queries
``PMIX_QUERY_PSET_NAMES`` under the hood).
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.ompi.attributes import AttributeCache
from repro.ompi.errors import (
    ERRORS_ARE_FATAL,
    Errhandler,
    MPIErrArg,
    MPIErrSession,
)
from repro.ompi.group import Group
from repro.pmix.types import PMIX_QUERY_PSET_NAMES, PmixError

BUILTIN_PSETS = ("mpi://world", "mpi://self", "mpi://shared")


class Session:
    """An MPI Session handle."""

    _ids = itertools.count()

    def __init__(
        self,
        runtime,
        thread_level: int,
        info=None,
        errhandler: Errhandler = ERRORS_ARE_FATAL,
        internal: bool = False,
    ) -> None:
        self.runtime = runtime
        self.thread_level = thread_level
        self.info = info
        self.errhandler = errhandler
        self.internal = internal            # the session backing MPI_Init
        self.handle_id = next(self._ids)
        self.finalized = False
        self.attrs: AttributeCache = runtime.new_attr_cache()
        # After re_query_psets() the session's pset views exclude
        # processes known to have failed (docs/recovery.md), so a
        # comm_create_from_group over a re-queried pset spans only
        # survivors.
        self._failed_excluded = False

    # ------------------------------------------------------------------
    def _check(self) -> None:
        if self.finalized:
            raise MPIErrSession(f"session {self.handle_id} used after finalize")

    def mark_finalized(self) -> None:
        self.attrs.clear()
        self.finalized = True

    def get_info(self):
        self._check()
        return self.info

    def set_errhandler(self, handler: Errhandler) -> None:
        """MPI_Session_set_errhandler."""
        self._check()
        self.errhandler = handler

    def call_errhandler(self, error) -> None:
        """MPI_Session_call_errhandler: route ``error`` (e.g. a
        :class:`~repro.ompi.errors.MPIErrProcFailed` from fault
        injection) through this session's handler."""
        self._check()
        self.errhandler.invoke(self, error)

    # ------------------------------------------------------------------
    # process sets
    # ------------------------------------------------------------------
    def _runtime_pset_names(self):
        """Sub-generator: names from the PMIx registry."""
        out = yield from self.runtime.pmix.query([PMIX_QUERY_PSET_NAMES])
        return list(out[PMIX_QUERY_PSET_NAMES])

    def get_num_psets(self):
        """Sub-generator: MPI_Session_get_num_psets."""
        self._check()
        names = yield from self._runtime_pset_names()
        return len(BUILTIN_PSETS) + len(names)

    def get_nth_pset(self, n: int):
        """Sub-generator: MPI_Session_get_nth_pset."""
        self._check()
        names = list(BUILTIN_PSETS) + (yield from self._runtime_pset_names())
        if not 0 <= n < len(names):
            raise MPIErrArg(f"pset index {n} out of range (have {len(names)})")
        return names[n]

    def get_pset_info(self, name: str):
        """Sub-generator: MPI_Session_get_pset_info -> {'mpi_size': N}."""
        self._check()
        members = yield from self._pset_members(name)
        return {"mpi_size": len(members)}

    def re_query_psets(self):
        """Sub-generator: refresh this session's process-set view after
        failures (docs/recovery.md).

        Re-queries the PMIx registry (whose psets the servers already
        evicted dead procs from) and flips the session into
        failure-excluding mode: from now on every pset resolution —
        including the builtin ``mpi://`` sets, which are otherwise
        static — filters out processes the runtime knows have failed.
        Returns the refreshed pset name list.
        """
        self._check()
        tr = self.runtime.engine.tracer
        sid = tr.begin(self.runtime.engine.now, self.runtime.obs_track,
                       "recovery.session.re_query_psets")
        self._failed_excluded = True
        names = yield from self._runtime_pset_names()
        tr.end(self.runtime.engine.now, sid)
        self.runtime.cluster.recovery_stats["pset_requery"] += 1
        return list(BUILTIN_PSETS) + names

    def _pset_members(self, name: str):
        job = self.runtime.job
        if name == "mpi://world":
            members = list(job.all_procs)
        elif name == "mpi://self":
            members = [self.runtime.proc]
        elif name == "mpi://shared":
            local = job.topology.ranks_on_node(self.runtime.node)
            members = [job.proc(r) for r in local]
        else:
            try:
                members = yield from self.runtime.pmix.pset_membership(name)
            except PmixError:
                raise MPIErrArg(f"unknown process set {name!r}") from None
            members = list(members)
        if self._failed_excluded:
            failed = getattr(self.runtime, "failed_procs", set())
            members = [p for p in members if p not in failed]
        return members

    def group_from_pset(self, name: str):
        """Sub-generator: MPI_Group_from_session_pset — local + light."""
        self._check()
        tr = self.runtime.engine.tracer
        sid = tr.begin(self.runtime.engine.now, self.runtime.obs_track,
                       "ompi.session.group_from_pset", pset=name)
        members = yield from self._pset_members(name)
        tr.end(self.runtime.engine.now, sid)
        group = Group(members)
        group.session = self
        return group

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def finalize(self):
        """Sub-generator: MPI_Session_finalize."""
        self._check()
        if self.internal:
            raise MPIErrSession("the World-Process-Model session is finalized via MPI_Finalize")
        yield from self.runtime.session_finalize(self)

    def __repr__(self) -> str:  # pragma: no cover
        kind = "internal" if self.internal else "user"
        state = "finalized" if self.finalized else "active"
        return f"<Session #{self.handle_id} {kind} {state}>"

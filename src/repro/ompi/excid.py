"""The 128-bit extended communicator identifier (exCID) generator.

Paper §III-B3: the exCID has two 64-bit halves.  The first carries the
PGCID obtained from PMIx group construction (0 is reserved for the
built-in World Process Model communicators, since PMIx guarantees
PGCIDs are non-zero).  The second is divided into eight 8-bit
subfields used to derive identifiers for child communicators without
talking to the runtime:

* a communicator fresh from a PGCID has ``active = 7`` and all
  subfields zero;
* deriving (e.g. ``MPI_Comm_dup``) stamps the parent's next counter
  value into the child's subfield at the parent's active position and
  gives the child ``active = parent.active - 1``;
* derivation requires a *new* PGCID when the parent's active subfield
  index is 0, when its counter passes 255, or when not all processes
  of the parent participate (``MPI_Comm_create_group``).

Because every rank executes the same deterministic derivation sequence
on the same parent, the derived exCIDs agree globally with **zero
communication** — that is the optimization the consensus algorithm
cannot match.  Collision-freedom over arbitrary derivation trees is
checked by a hypothesis property test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.ompi.errors import MPIErrIntern

SUBFIELDS = 8
SUBFIELD_MAX = 255


@dataclass(frozen=True)
class ExCid:
    """Immutable 128-bit identifier: (pgcid, 8 subfield bytes)."""

    pgcid: int
    sub: Tuple[int, ...] = (0,) * SUBFIELDS

    def __post_init__(self) -> None:
        if not 0 <= self.pgcid < 2**64:
            raise MPIErrIntern(f"PGCID {self.pgcid} out of 64-bit range")
        if len(self.sub) != SUBFIELDS or any(not 0 <= s <= SUBFIELD_MAX for s in self.sub):
            raise MPIErrIntern(f"bad subfields {self.sub}")

    def key(self) -> Tuple[int, Tuple[int, ...]]:
        """Hashable form used in wire headers and lookup tables."""
        return (self.pgcid, self.sub)

    def __str__(self) -> str:
        subs = ".".join(str(s) for s in self.sub)
        return f"excid({self.pgcid}:{subs})"


class ExcidState:
    """Mutable per-communicator derivation state.

    ``active`` is the index of this communicator's active subfield;
    ``counter`` is the next value it will stamp there for a child.
    """

    __slots__ = ("excid", "active", "counter")

    def __init__(self, excid: ExCid, active: int) -> None:
        self.excid = excid
        self.active = active
        self.counter = excid.sub[active] + 1 if active >= 0 else SUBFIELD_MAX + 1

    @classmethod
    def from_pgcid(cls, pgcid: int) -> "ExcidState":
        """State for a communicator freshly created from a PMIx group."""
        if pgcid == 0:
            raise MPIErrIntern("PGCID 0 is reserved for built-in communicators")
        return cls(ExCid(pgcid=pgcid), active=SUBFIELDS - 1)

    def can_derive(self) -> bool:
        """True if a child id can be generated without a new PGCID."""
        return self.active > 0 and self.counter <= SUBFIELD_MAX

    def derive(self) -> "ExcidState":
        """Generate the next child's state (collective-deterministic)."""
        if not self.can_derive():
            raise MPIErrIntern(
                f"exCID space exhausted at {self.excid} "
                f"(active={self.active}, counter={self.counter}); "
                "a new PGCID is required"
            )
        sub = list(self.excid.sub)
        sub[self.active] = self.counter
        self.counter += 1
        child = ExCid(pgcid=self.excid.pgcid, sub=tuple(sub))
        return ExcidState(child, active=self.active - 1)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ExcidState {self.excid} active={self.active} next={self.counter}>"

"""Cartesian process topologies (MPI_Cart_create and friends)."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.apps.twomesh.mesh import dims_create
from repro.ompi.constants import PROC_NULL
from repro.ompi.errors import MPIErrArg


class CartTopology:
    """Coordinate bookkeeping for an N-dimensional process grid."""

    def __init__(self, dims: Sequence[int], periods: Sequence[bool]) -> None:
        if not dims:
            raise MPIErrArg("cartesian topology needs at least one dimension")
        if len(periods) != len(dims):
            raise MPIErrArg("periods must match dims")
        if any(d < 1 for d in dims):
            raise MPIErrArg("dimensions must be >= 1")
        self.dims = tuple(dims)
        self.periods = tuple(bool(p) for p in periods)
        self.size = 1
        for d in dims:
            self.size *= d

    @property
    def ndims(self) -> int:
        return len(self.dims)

    def coords(self, rank: int) -> Tuple[int, ...]:
        """MPI_Cart_coords (row-major, like MPI)."""
        if not 0 <= rank < self.size:
            raise MPIErrArg(f"rank {rank} out of range")
        out: List[int] = []
        remaining = rank
        for d in reversed(self.dims):
            out.append(remaining % d)
            remaining //= d
        return tuple(reversed(out))

    def rank(self, coords: Sequence[int]) -> Optional[int]:
        """MPI_Cart_rank; None (MPI_PROC_NULL) if off a non-periodic edge."""
        if len(coords) != self.ndims:
            raise MPIErrArg("coords must match dims")
        normalized: List[int] = []
        for c, d, periodic in zip(coords, self.dims, self.periods):
            if periodic:
                c %= d
            elif not 0 <= c < d:
                return None
            normalized.append(c)
        rank = 0
        for c, d in zip(normalized, self.dims):
            rank = rank * d + c
        return rank

    def shift(self, rank: int, dimension: int, displacement: int) -> Tuple[int, int]:
        """MPI_Cart_shift: (source, dest) ranks (PROC_NULL at open edges)."""
        if not 0 <= dimension < self.ndims:
            raise MPIErrArg(f"dimension {dimension} out of range")
        coords = list(self.coords(rank))
        coords[dimension] += displacement
        dest = self.rank(coords)
        coords[dimension] -= 2 * displacement
        src = self.rank(coords)
        return (
            src if src is not None else PROC_NULL,
            dest if dest is not None else PROC_NULL,
        )

    def neighbors(self, rank: int) -> List[int]:
        """Distinct ±1 neighbors across every dimension."""
        out: List[int] = []
        for dim in range(self.ndims):
            for disp in (-1, 1):
                _src, dest = self.shift(rank, dim, disp)
                if dest not in (PROC_NULL, rank) and dest not in out:
                    out.append(dest)
        return out


def cart_create(comm, dims: Optional[Sequence[int]] = None,
                periods=True, ndims: int = 2):
    """Sub-generator: MPI_Cart_create (collective).

    Returns a new communicator with a ``cart`` attribute carrying the
    topology.  ``dims=None`` balances the factors like MPI_Dims_create.
    """
    if dims is None:
        dims = dims_create(comm.size, ndims)
    total = 1
    for d in dims:
        total *= d
    if total != comm.size:
        raise MPIErrArg(f"grid {tuple(dims)} does not cover {comm.size} ranks")
    if isinstance(periods, bool):
        periods = [periods] * len(dims)
    new = yield from comm.dup()
    new.cart = CartTopology(dims, periods)
    new.name = f"{comm.name}.cart{tuple(dims)}"
    return new

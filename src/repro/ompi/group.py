"""MPI_Group: an ordered set of processes.

Members are :class:`~repro.pmix.types.PmixProc` identifiers.  Two
storage strategies are provided, mirroring Open MPI's sparse-group
support the paper notes its prototype can reuse: dense tuples, and a
strided representation ``(nspace, start, count, stride)`` that stores
regular groups (like ``mpi://world`` or every-other-rank subgroups) in
O(1) space.  All operations produce whichever representation fits.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.ompi.constants import UNDEFINED
from repro.ompi.errors import MPIErrArg, MPIErrGroup, MPIErrRank
from repro.pmix.types import PmixProc

# Comparison results (MPI_Group_compare)
IDENT = 0
SIMILAR = 1
UNEQUAL = 2


class _Strided:
    """Strided member storage: ranks start, start+stride, ... (count of them)."""

    __slots__ = ("nspace", "start", "count", "stride")

    def __init__(self, nspace: str, start: int, count: int, stride: int) -> None:
        self.nspace = nspace
        self.start = start
        self.count = count
        self.stride = stride

    def __len__(self) -> int:
        return self.count

    def __getitem__(self, i: int) -> PmixProc:
        if not 0 <= i < self.count:
            raise IndexError(i)
        return PmixProc(self.nspace, self.start + i * self.stride)

    def __iter__(self):
        for i in range(self.count):
            yield self[i]

    def index(self, proc: PmixProc) -> int:
        if proc.nspace != self.nspace:
            raise ValueError(proc)
        offset = proc.rank - self.start
        if offset < 0 or offset % self.stride != 0:
            raise ValueError(proc)
        i = offset // self.stride
        if i >= self.count:
            raise ValueError(proc)
        return i


def _try_strided(members: Sequence[PmixProc]) -> Optional[_Strided]:
    """Detect a regular pattern worth compressing (>= 4 members)."""
    if len(members) < 4:
        return None
    nspace = members[0].nspace
    if any(m.nspace != nspace for m in members):
        return None
    stride = members[1].rank - members[0].rank
    if stride <= 0:
        return None
    for i in range(1, len(members)):
        if members[i].rank - members[i - 1].rank != stride:
            return None
    return _Strided(nspace, members[0].rank, len(members), stride)


class Group:
    """An immutable, ordered collection of distinct processes."""

    __slots__ = ("_members", "_dense", "freed", "session")

    def __init__(self, members: Iterable[PmixProc]) -> None:
        members = tuple(members)
        if len(set(members)) != len(members):
            raise MPIErrGroup("group members must be distinct")
        strided = _try_strided(members)
        self._members: Union[Tuple[PmixProc, ...], _Strided] = strided or members
        # Dense member cache (the strided form materializes on demand).
        self._dense: Optional[Tuple[PmixProc, ...]] = members
        self.freed = False
        # Session affiliation (set by MPI_Group_from_session_pset).
        self.session = None

    # -- introspection ------------------------------------------------------
    @property
    def is_strided(self) -> bool:
        """True when this group uses the compressed representation."""
        return isinstance(self._members, _Strided)

    def _check(self) -> None:
        if self.freed:
            raise MPIErrGroup("group used after free")

    @property
    def size(self) -> int:
        self._check()
        return len(self._members)

    def members(self) -> Tuple[PmixProc, ...]:
        self._check()
        if self._dense is None:
            self._dense = tuple(self._members)
        return self._dense

    def proc(self, rank: int) -> PmixProc:
        self._check()
        if not 0 <= rank < len(self._members):
            raise MPIErrRank(f"rank {rank} out of range for group of size {self.size}")
        return self._members[rank]

    def rank_of(self, proc: PmixProc) -> int:
        """Rank of ``proc`` in this group, or UNDEFINED if absent."""
        self._check()
        try:
            return self._members.index(proc)
        except ValueError:
            return UNDEFINED

    def __contains__(self, proc: PmixProc) -> bool:
        return self.rank_of(proc) != UNDEFINED

    def __len__(self) -> int:
        return self.size

    def free(self) -> None:
        self._check()
        self.freed = True

    # -- comparison ------------------------------------------------------------
    def compare(self, other: "Group") -> int:
        self._check()
        other._check()
        mine, theirs = self.members(), other.members()
        if mine == theirs:
            return IDENT
        if set(mine) == set(theirs):
            return SIMILAR
        return UNEQUAL

    # -- set operations (MPI ordering rules) --------------------------------------
    def union(self, other: "Group") -> "Group":
        """Members of self, then members of other not in self (MPI order)."""
        self._check()
        other._check()
        seen = set(self.members())
        out = list(self.members())
        for proc in other.members():
            if proc not in seen:
                out.append(proc)
        return Group(out)

    def intersection(self, other: "Group") -> "Group":
        """Members of self that are also in other, in self's order."""
        self._check()
        other._check()
        theirs = set(other.members())
        return Group([p for p in self.members() if p in theirs])

    def difference(self, other: "Group") -> "Group":
        """Members of self not in other, in self's order."""
        self._check()
        other._check()
        theirs = set(other.members())
        return Group([p for p in self.members() if p not in theirs])

    # -- subsetting -------------------------------------------------------------------
    def incl(self, ranks: Sequence[int]) -> "Group":
        self._check()
        if len(set(ranks)) != len(ranks):
            raise MPIErrRank("MPI_Group_incl ranks must be distinct")
        return Group([self.proc(r) for r in ranks])

    def excl(self, ranks: Sequence[int]) -> "Group":
        self._check()
        if len(set(ranks)) != len(ranks):
            raise MPIErrRank("MPI_Group_excl ranks must be distinct")
        drop = set(ranks)
        for r in drop:
            if not 0 <= r < self.size:
                raise MPIErrRank(f"rank {r} out of range")
        return Group([p for i, p in enumerate(self.members()) if i not in drop])

    def range_incl(self, ranges: Sequence[Tuple[int, int, int]]) -> "Group":
        """Each range is (first, last, stride), inclusive, as in MPI."""
        self._check()
        ranks: List[int] = []
        for first, last, stride in ranges:
            if stride == 0:
                raise MPIErrArg("range stride must be nonzero")
            step = stride
            stop = last + (1 if step > 0 else -1)
            ranks.extend(range(first, stop, step))
        return self.incl(ranks)

    def range_excl(self, ranges: Sequence[Tuple[int, int, int]]) -> "Group":
        self._check()
        ranks: List[int] = []
        for first, last, stride in ranges:
            if stride == 0:
                raise MPIErrArg("range stride must be nonzero")
            step = stride
            stop = last + (1 if step > 0 else -1)
            ranks.extend(range(first, stop, step))
        return self.excl(ranks)

    # -- rank translation -----------------------------------------------------------------
    def translate_ranks(self, ranks: Sequence[int], other: "Group") -> List[int]:
        """Map ranks in self to the corresponding ranks in other."""
        self._check()
        other._check()
        out = []
        for r in ranks:
            out.append(other.rank_of(self.proc(r)))
        return out

    def __repr__(self) -> str:  # pragma: no cover
        kind = "strided" if self.is_strided else "dense"
        return f"<Group size={len(self._members)} {kind}>"


GROUP_EMPTY = Group(())

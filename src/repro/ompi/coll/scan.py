"""Inclusive and exclusive prefix reductions (linear chain)."""

from __future__ import annotations

from repro.ompi.constants import _TAG_SCAN, Op
from repro.ompi.datatype import sizeof_payload


def scan(comm, value, op: Op, nbytes=None, tag: int = _TAG_SCAN):
    """Sub-generator: rank r returns op(value_0, ..., value_r)."""
    rank, size = comm.rank, comm.size
    payload_bytes = nbytes if nbytes is not None else sizeof_payload(value)
    acc = value
    if rank > 0:
        upstream = yield from comm._recv_internal(rank - 1, tag)
        acc = op(upstream, acc)
    if rank < size - 1:
        yield from comm._send_internal(acc, rank + 1, tag, nbytes=payload_bytes)
    return acc


def exscan(comm, value, op: Op, nbytes=None, tag: int = _TAG_SCAN):
    """Sub-generator: rank r returns op(value_0, ..., value_{r-1});
    rank 0 returns None (MPI leaves it undefined)."""
    rank, size = comm.rank, comm.size
    payload_bytes = nbytes if nbytes is not None else sizeof_payload(value)
    upstream = None
    if rank > 0:
        upstream = yield from comm._recv_internal(rank - 1, tag)
    if rank < size - 1:
        outgoing = value if upstream is None else op(upstream, value)
        yield from comm._send_internal(outgoing, rank + 1, tag, nbytes=payload_bytes)
    return upstream

"""Ring allgather.

size-1 steps; at step s each rank forwards the block it received at
step s-1 to its right neighbor — bandwidth-optimal for large blocks.
"""

from __future__ import annotations

from typing import List

from repro.ompi.constants import _TAG_ALLGATHER
from repro.ompi.datatype import sizeof_payload


def allgather(comm, value, nbytes=None, tag: int = _TAG_ALLGATHER):
    """Sub-generator: returns the list of every rank's value, by rank."""
    size = comm.size
    rank = comm.rank
    out: List = [None] * size
    out[rank] = value
    if size == 1:
        return out
    block_bytes = nbytes if nbytes is not None else sizeof_payload(value)
    right = (rank + 1) % size
    left = (rank - 1) % size
    send_block = rank
    for _step in range(size - 1):
        sreq = yield from comm._isend_internal(
            (send_block, out[send_block]), right, tag, nbytes=block_bytes + 8
        )
        idx, block = yield from comm._recv_internal(left, tag)
        yield from sreq.wait()
        out[idx] = block
        send_block = idx
    return out

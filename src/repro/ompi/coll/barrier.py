"""Barrier algorithms.

Small communicators use a linear fan-in/fan-out through rank 0
(modeling shared-memory/tuned small-comm barriers); larger ones use a
binomial fan-in + binomial release.  In both, the only pairs that
exchange messages are (rank, tree-parent) — the exCID handshake between
arbitrary rank pairs is *not* completed by a barrier, reproducing the
paper's osu_mbw_mr observation (§IV-C3).
"""

from __future__ import annotations

from repro.ompi.coll._tree import children_vranks, parent_vrank
from repro.ompi.constants import _TAG_BARRIER


def barrier(comm, tag: int = _TAG_BARRIER):
    """Sub-generator: block until all ranks of ``comm`` arrive."""
    size = comm.size
    if size == 1:
        return
    if size <= comm.runtime.config.barrier_linear_max:
        yield from _linear_barrier(comm, tag)
    else:
        yield from _tree_barrier(comm, tag)


def _linear_barrier(comm, tag: int):
    rank, size = comm.rank, comm.size
    if rank == 0:
        for src in range(1, size):
            yield from comm._recv_internal(src, tag)
        for dst in range(1, size):
            yield from comm._send_internal(None, dst, tag, nbytes=0)
    else:
        yield from comm._send_internal(None, 0, tag, nbytes=0)
        yield from comm._recv_internal(0, tag)


def _tree_barrier(comm, tag: int):
    """Binomial fan-in to rank 0, binomial fan-out back (root = 0)."""
    rank, size = comm.rank, comm.size
    children = children_vranks(rank, size)
    parent = parent_vrank(rank)
    # Fan-in: collect children, then report to parent.
    for child in children:
        yield from comm._recv_internal(child, tag)
    if parent is not None:
        yield from comm._send_internal(None, parent, tag, nbytes=0)
        yield from comm._recv_internal(parent, tag)
    # Fan-out: release children.
    for child in children:
        yield from comm._send_internal(None, child, tag, nbytes=0)


def ibarrier_runner(comm, request):
    """Generator run in a helper process to back MPI_Ibarrier."""
    from repro.ompi.constants import _TAG_IBARRIER
    from repro.ompi.status import Status

    yield from barrier(comm, tag=_TAG_IBARRIER)
    request.complete(Status())

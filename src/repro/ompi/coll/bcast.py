"""Broadcast: binomial tree for small payloads, scatter + ring
allgather (Van de Geijn) for large ones — Open MPI tuned's split.

The binomial tree moves the whole payload log2(p) times along the
critical path; the Van de Geijn algorithm moves ~2x the payload total
but pipelines it, which wins once the bandwidth term dominates."""

from __future__ import annotations

from repro.ompi.coll._tree import children_vranks, parent_vrank, rank_of, vrank_of
from repro.ompi.constants import _TAG_BCAST
from repro.ompi.datatype import sizeof_payload
from repro.ompi.errors import MPIErrRank

#: Payloads above this use scatter+allgather (tuned's large-message path).
LARGE_BCAST_THRESHOLD = 128 * 1024


def bcast(comm, obj, root: int = 0, nbytes=None, tag: int = _TAG_BCAST):
    """Sub-generator: broadcast ``obj`` from ``root``; returns the object."""
    size = comm.size
    if not 0 <= root < size:
        raise MPIErrRank(f"bcast root {root} out of range")
    if size == 1:
        return obj
    # Algorithm selection must agree on every rank.  MPI's bcast takes
    # (count, datatype) everywhere, so all ranks know the size; in this
    # object-model API only an explicit ``nbytes`` carries that
    # guarantee — without it, non-roots see None and must not guess.
    if nbytes is not None and nbytes > LARGE_BCAST_THRESHOLD and size > 2:
        return (yield from _bcast_scatter_allgather(comm, obj, root, nbytes, tag))
    return (yield from _bcast_binomial(comm, obj, root, nbytes, tag))


def _bcast_binomial(comm, obj, root: int, nbytes, tag: int):
    size = comm.size
    vrank = vrank_of(comm.rank, root, size)
    parent = parent_vrank(vrank)
    if parent is not None:
        obj = yield from comm._recv_internal(rank_of(parent, root, size), tag)
        # The payload travels with its size; nbytes recomputed below.
    payload_bytes = nbytes if nbytes is not None else sizeof_payload(obj)
    for child in children_vranks(vrank, size):
        yield from comm._send_internal(
            obj, rank_of(child, root, size), tag, nbytes=payload_bytes
        )
    return obj


def _bcast_scatter_allgather(comm, obj, root: int, payload_bytes: int, tag: int):
    """Van de Geijn: binomial-scatter the blocks, ring-allgather them.

    The simulator moves the whole object reference with correctly sized
    block costs: block i's wire charge is ~payload/p per hop.
    """
    size = comm.size
    block = max(1, payload_bytes // size)
    vrank = vrank_of(comm.rank, root, size)

    # Phase 1: binomial scatter — each hop forwards only the subtree's
    # share of the payload.
    parent = parent_vrank(vrank)
    if parent is not None:
        obj = yield from comm._recv_internal(rank_of(parent, root, size), tag)
    for child in children_vranks(vrank, size):
        # Each hop carries only the blocks of the child's subtree.
        subtree = min(_subtree_limit(child), size - child)
        yield from comm._send_internal(
            obj, rank_of(child, root, size), tag, nbytes=block * subtree
        )

    # Phase 2: ring allgather of the p blocks (each step moves one block).
    right = (comm.rank + 1) % size
    left = (comm.rank - 1) % size
    for _step in range(size - 1):
        sreq = yield from comm._isend_internal(obj, right, tag, nbytes=block)
        incoming = yield from comm._recv_internal(left, tag)
        yield from sreq.wait()
        if incoming is not None and obj is None:  # pragma: no cover - defensive
            obj = incoming
    return obj


def _subtree_limit(vrank: int) -> int:
    """Size of the binomial subtree rooted at ``vrank`` (its lowest set bit)."""
    if vrank == 0:
        raise ValueError("root subtree is the whole tree")
    return vrank & -vrank

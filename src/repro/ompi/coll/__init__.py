"""Collective algorithms built on ob1 point-to-point.

Algorithms mirror Open MPI's "tuned" defaults at small/medium scale:
binomial trees for rooted collectives, recursive doubling for
allreduce, ring for allgather, pairwise exchange for alltoall, and a
fan-in/fan-out barrier for small communicators (like coll/sm on-node —
deliberately *not* pairwise, which is why a pre-loop ``MPI_Barrier``
does not complete the exCID handshake between osu_mbw_mr's rank pairs:
paper §IV-C3).
"""

from repro.ompi.coll.barrier import barrier, ibarrier_runner
from repro.ompi.coll.bcast import bcast
from repro.ompi.coll.reduce import reduce, allreduce
from repro.ompi.coll.gather import gather, scatter
from repro.ompi.coll.allgather import allgather
from repro.ompi.coll.alltoall import alltoall
from repro.ompi.coll.scan import scan, exscan

__all__ = [
    "barrier",
    "ibarrier_runner",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "allgather",
    "alltoall",
    "scan",
    "exscan",
]

"""Reduce and allreduce.

``reduce``: binomial fan-in combining contributions toward the root.
``allreduce``: recursive doubling when the size is a power of two;
otherwise the standard pre-fold — extra ranks fold into a power-of-two
core, which runs recursive doubling, then results fan back out.
"""

from __future__ import annotations

from repro.ompi.coll._tree import children_vranks, parent_vrank, rank_of, vrank_of
from repro.ompi.constants import _TAG_ALLREDUCE, _TAG_REDUCE, Op
from repro.ompi.datatype import sizeof_payload
from repro.ompi.errors import MPIErrRank
from repro.simtime.process import SLEEP0, Sleep, Wait


def reduce(comm, value, op: Op, root: int = 0, nbytes=None, tag: int = _TAG_REDUCE):
    """Sub-generator: combine everyone's ``value`` with ``op`` at ``root``.

    Returns the reduced value at the root, None elsewhere.  Combination
    order follows the tree; all built-in ops are commutative+associative
    so the result is deterministic for exact types.
    """
    size = comm.size
    if not 0 <= root < size:
        raise MPIErrRank(f"reduce root {root} out of range")
    if size == 1:
        return value
    payload_bytes = nbytes if nbytes is not None else sizeof_payload(value)
    vrank = vrank_of(comm.rank, root, size)
    acc = value
    # Children are combined in *descending* child order so that the
    # combination parenthesization is rank-order independent of timing.
    for child in sorted(children_vranks(vrank, size)):
        contrib = yield from comm._recv_internal(rank_of(child, root, size), tag)
        acc = op(acc, contrib)
    parent = parent_vrank(vrank)
    if parent is not None:
        yield from comm._send_internal(
            acc, rank_of(parent, root, size), tag, nbytes=payload_bytes
        )
        return None
    return acc


def allreduce(comm, value, op: Op, nbytes=None, tag: int = _TAG_ALLREDUCE):
    """Sub-generator: reduce + make the result available on every rank."""
    return (
        yield from allreduce_indexed(
            comm, list(range(comm.size)), comm.rank, value, op, nbytes, tag
        )
    )


def allreduce_indexed(comm, members, my_idx: int, value, op: Op, nbytes=None,
                      tag: int = _TAG_ALLREDUCE):
    """Recursive-doubling allreduce among ``members`` (comm ranks).

    The general form: the participants are ``members[i]`` and this
    process is ``members[my_idx]``.  With ``members == range(size)``
    this is plain MPI_Allreduce; with a subset it is the agreement
    pattern the consensus-CID allocator runs for ``create_group``
    (Open MPI's subgroup nextcid).
    """
    n = len(members)
    if n == 1:
        return value
    payload_bytes = nbytes if nbytes is not None else sizeof_payload(value)

    # Largest power of two <= n.
    pof2 = 1
    while pof2 * 2 <= n:
        pof2 *= 2
    rem = n - pof2

    acc = value
    # Pre-fold: the top `rem` participants send into the low core.
    if my_idx >= pof2:
        yield from comm._send_internal(acc, members[my_idx - pof2], tag, nbytes=payload_bytes)
        acc = yield from comm._recv_internal(members[my_idx - pof2], tag)
        return acc
    if my_idx < rem:
        contrib = yield from comm._recv_internal(members[my_idx + pof2], tag)
        acc = op(acc, contrib)

    # Recursive doubling among the pof2 core.
    rt = comm.runtime
    fast_ep = None
    if not rt.engine.compat and payload_bytes <= rt.machine.eager_limit:
        # Fast path: the eager exchange skips the send Request — the
        # observable work runs in eager_send_start, the injection busy
        # time is charged here, and the post-recv zero-sleep stands in
        # for the reference's wait on the already-completed send.
        fast_ep = rt.endpoint
    mask = 1
    while mask < pof2:
        partner_idx = my_idx ^ mask
        partner = members[partner_idx]
        # Exchange: send then receive (packets don't deadlock in the sim
        # since isend is buffered/eager for these sizes, and rendezvous
        # RTS/CTS also cannot deadlock — both posts happen eventually).
        busy = None
        if fast_ep is not None:
            comm._check_damage()
            busy = fast_ep.eager_send_start(comm, acc, partner, tag, payload_bytes)
        if busy is not None:
            if busy > 0:
                yield Sleep(busy)
            # Inlined _recv_internal: post, wait on the request event,
            # read the payload — identical suspension points, two fewer
            # generator frames per exchange.
            rreq = comm._irecv_internal(partner, tag)
            yield Wait(rreq.event)
            contrib = rreq.payload
            yield SLEEP0
        else:
            sreq = yield from comm._isend_internal(
                acc, partner, tag, nbytes=payload_bytes
            )
            contrib = yield from comm._recv_internal(partner, tag)
            yield from sreq.wait()
        # Order the combination by index so the parenthesization is
        # identical on both partners (deterministic for exact types).
        acc = op(acc, contrib) if my_idx < partner_idx else op(contrib, acc)
        mask <<= 1

    # Post-fold: return results to the folded-in participants.
    if my_idx < rem:
        yield from comm._send_internal(acc, members[my_idx + pof2], tag, nbytes=payload_bytes)
    return acc

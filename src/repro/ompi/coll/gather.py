"""Linear gather and scatter."""

from __future__ import annotations

from typing import List, Optional

from repro.ompi.constants import _TAG_GATHER, _TAG_SCATTER
from repro.ompi.datatype import sizeof_payload
from repro.ompi.errors import MPIErrArg, MPIErrRank


def gather(comm, value, root: int = 0, nbytes=None, tag: int = _TAG_GATHER):
    """Sub-generator: collect one value per rank at the root.

    Returns the list (indexed by rank) at root, None elsewhere.
    """
    size = comm.size
    if not 0 <= root < size:
        raise MPIErrRank(f"gather root {root} out of range")
    payload_bytes = nbytes if nbytes is not None else sizeof_payload(value)
    if comm.rank == root:
        out: List = [None] * size
        out[root] = value
        for src in range(size):
            if src != root:
                out[src] = yield from comm._recv_internal(src, tag)
        return out
    yield from comm._send_internal(value, root, tag, nbytes=payload_bytes)
    return None


def scatter(comm, values: Optional[List], root: int = 0, nbytes=None, tag: int = _TAG_SCATTER):
    """Sub-generator: root distributes values[i] to rank i; returns own."""
    size = comm.size
    if not 0 <= root < size:
        raise MPIErrRank(f"scatter root {root} out of range")
    if comm.rank == root:
        if values is None or len(values) != size:
            raise MPIErrArg(f"scatter needs exactly {size} values at the root")
        for dst in range(size):
            if dst != root:
                item_bytes = nbytes if nbytes is not None else sizeof_payload(values[dst])
                yield from comm._send_internal(values[dst], dst, tag, nbytes=item_bytes)
        return values[root]
    item = yield from comm._recv_internal(root, tag)
    return item

"""Pairwise-exchange alltoall."""

from __future__ import annotations

from typing import List

from repro.ompi.constants import _TAG_ALLTOALL
from repro.ompi.datatype import sizeof_payload
from repro.ompi.errors import MPIErrArg


def alltoall(comm, values: List, nbytes=None, tag: int = _TAG_ALLTOALL):
    """Sub-generator: rank i's values[j] arrives at rank j's result[i].

    size-1 exchange steps; at step s rank r exchanges with (r+s) mod
    size (sending) and (r-s) mod size (receiving) — the classic
    pairwise pattern that avoids hot spots.
    """
    size = comm.size
    rank = comm.rank
    if values is None or len(values) != size:
        raise MPIErrArg(f"alltoall needs exactly {size} values")
    out: List = [None] * size
    out[rank] = values[rank]
    for step in range(1, size):
        dst = (rank + step) % size
        src = (rank - step) % size
        block_bytes = nbytes if nbytes is not None else sizeof_payload(values[dst])
        sreq = yield from comm._isend_internal(values[dst], dst, tag, nbytes=block_bytes)
        out[src] = yield from comm._recv_internal(src, tag)
        yield from sreq.wait()
    return out

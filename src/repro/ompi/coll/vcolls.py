"""Vector (v-variant) collectives and reduce_scatter.

The v-variants take per-rank payloads of different sizes; wire costs
follow each block's own size (``nbytes_of`` hooks for synthetic runs).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.ompi.constants import _TAG_ALLGATHER, _TAG_GATHER, _TAG_REDUCE, _TAG_SCATTER, Op
from repro.ompi.datatype import sizeof_payload
from repro.ompi.errors import MPIErrArg, MPIErrRank


def gatherv(comm, value, root: int = 0, nbytes: Optional[int] = None, tag: int = _TAG_GATHER):
    """Sub-generator: like gather, but blocks may differ in size."""
    size = comm.size
    if not 0 <= root < size:
        raise MPIErrRank(f"gatherv root {root} out of range")
    if comm.rank == root:
        out: List = [None] * size
        out[root] = value
        for src in range(size):
            if src != root:
                out[src] = yield from comm._recv_internal(src, tag)
        return out
    block = nbytes if nbytes is not None else sizeof_payload(value)
    yield from comm._send_internal(value, root, tag, nbytes=block)
    return None


def scatterv(comm, values: Optional[List], root: int = 0, tag: int = _TAG_SCATTER):
    """Sub-generator: root sends values[i] (any sizes) to rank i."""
    size = comm.size
    if not 0 <= root < size:
        raise MPIErrRank(f"scatterv root {root} out of range")
    if comm.rank == root:
        if values is None or len(values) != size:
            raise MPIErrArg(f"scatterv needs exactly {size} values at the root")
        for dst in range(size):
            if dst != root:
                yield from comm._send_internal(
                    values[dst], dst, tag, nbytes=sizeof_payload(values[dst])
                )
        return values[root]
    return (yield from comm._recv_internal(root, tag))


def allgatherv(comm, value, nbytes: Optional[int] = None, tag: int = _TAG_ALLGATHER):
    """Sub-generator: ring allgather with heterogeneous block sizes."""
    size = comm.size
    rank = comm.rank
    out: List = [None] * size
    out[rank] = value
    if size == 1:
        return out
    right = (rank + 1) % size
    left = (rank - 1) % size
    send_block = rank
    for _step in range(size - 1):
        block = out[send_block]
        sreq = yield from comm._isend_internal(
            (send_block, block), right, tag,
            nbytes=(nbytes if nbytes is not None else sizeof_payload(block)) + 8,
        )
        idx, incoming = yield from comm._recv_internal(left, tag)
        yield from sreq.wait()
        out[idx] = incoming
        send_block = idx
    return out


def reduce_scatter_block(comm, values: List, op: Op, nbytes: Optional[int] = None,
                         tag: int = _TAG_REDUCE):
    """Sub-generator: MPI_Reduce_scatter_block.

    Each rank contributes ``values`` (one block per destination rank);
    rank i returns op-combined values[i] across all ranks.  Implemented
    as reduce-to-root + scatter, the simple tuned fallback.
    """
    size = comm.size
    if values is None or len(values) != size:
        raise MPIErrArg(f"reduce_scatter_block needs exactly {size} blocks")
    from repro.ompi.coll.gather import scatter
    from repro.ompi.coll.reduce import reduce

    combined = yield from reduce(comm, values, _Elementwise(op), root=0, nbytes=nbytes, tag=tag)
    mine = yield from scatter(comm, combined, root=0, nbytes=nbytes, tag=tag)
    return mine


class _Elementwise(Op):
    """Lift a scalar Op to act elementwise over equal-length lists."""

    def __init__(self, op: Op) -> None:
        super().__init__(f"elementwise({op.name})", lambda a, b: [op(x, y) for x, y in zip(a, b)])

"""Binomial-tree helpers shared by rooted collectives.

The tree is defined on *virtual* ranks (vrank = (rank - root) mod size)
so any root works: vrank 0 is the root; the parent of a nonzero vrank
is the vrank with its lowest set bit cleared; its children are
``vrank | m`` for power-of-two ``m`` below its lowest set bit (all
powers for the root), bounded by the communicator size.
"""

from __future__ import annotations

from typing import List, Optional


def vrank_of(rank: int, root: int, size: int) -> int:
    return (rank - root) % size


def rank_of(vrank: int, root: int, size: int) -> int:
    return (vrank + root) % size


def parent_vrank(vrank: int) -> Optional[int]:
    """Parent in the binomial tree, or None for the root."""
    if vrank == 0:
        return None
    return vrank & (vrank - 1)


def children_vranks(vrank: int, size: int) -> List[int]:
    """Children in the binomial tree, largest subtree first."""
    if vrank == 0:
        limit = 1
        while limit < size:
            limit <<= 1
        top = limit >> 1
    else:
        top = (vrank & -vrank) >> 1
    out = []
    m = top
    while m >= 1:
        child = vrank | m
        if child < size:
            out.append(child)
        m >>= 1
    return out

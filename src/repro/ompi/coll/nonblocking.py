"""Nonblocking collectives.

Like :func:`~repro.ompi.coll.barrier.ibarrier_runner`, each nonblocking
collective runs its blocking algorithm in a helper process and
completes a request — Open MPI's libnbc progression collapsed into the
simulator's concurrency.  Results land in ``request.payload``.

All ranks of a communicator must use the matching nonblocking call (the
helper traffic uses dedicated internal tags so it cannot interfere with
blocking collectives issued afterwards).
"""

from __future__ import annotations

from repro.ompi import coll
from repro.ompi.constants import Op
from repro.ompi.status import Status

_TAG_IBCAST = -30
_TAG_IALLREDUCE = -31
_TAG_IGATHER = -32
_TAG_IALLGATHER = -33


def _runner(gen, request):
    def run():
        result = yield from gen
        request.complete(Status(), payload=result)

    return run()


def ibcast(comm, obj, root: int = 0, nbytes=None):
    """Sub-generator: MPI_Ibcast; request.payload is the object."""
    from repro.ompi.request import Request
    from repro.simtime.process import Spawn

    req = Request("ibcast")
    gen = coll.bcast(comm, obj, root, nbytes, tag=_TAG_IBCAST)
    yield Spawn(_runner(gen, req), name=f"ibcast-{comm.name}-r{comm.rank}")
    return req


def iallreduce(comm, value, op: Op, nbytes=None):
    """Sub-generator: MPI_Iallreduce; request.payload is the result."""
    from repro.ompi.request import Request
    from repro.simtime.process import Spawn

    req = Request("iallreduce")
    gen = coll.allreduce(comm, value, op, nbytes, tag=_TAG_IALLREDUCE)
    yield Spawn(_runner(gen, req), name=f"iallreduce-{comm.name}-r{comm.rank}")
    return req


def igather(comm, value, root: int = 0, nbytes=None):
    """Sub-generator: MPI_Igather; request.payload is the list at root."""
    from repro.ompi.request import Request
    from repro.simtime.process import Spawn

    req = Request("igather")
    gen = coll.gather(comm, value, root, nbytes, tag=_TAG_IGATHER)
    yield Spawn(_runner(gen, req), name=f"igather-{comm.name}-r{comm.rank}")
    return req


def iallgather(comm, value, nbytes=None):
    """Sub-generator: MPI_Iallgather; request.payload is the list."""
    from repro.ompi.request import Request
    from repro.simtime.process import Spawn

    req = Request("iallgather")
    gen = coll.allgather(comm, value, nbytes, tag=_TAG_IALLGATHER)
    yield Spawn(_runner(gen, req), name=f"iallgather-{comm.name}-r{comm.rank}")
    return req

"""Applications built on the simulated MPI stack."""

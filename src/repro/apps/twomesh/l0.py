"""L0: the MPI-everywhere physics library.

Every rank owns a tile of an adaptive structured mesh; each timestep is
local compute, a 4-neighbor halo exchange, and a global residual
allreduce — the classic bulk-synchronous stencil shape.
"""

from __future__ import annotations

from repro.apps.twomesh.mesh import CartGrid
from repro.ompi.constants import SUM
from repro.simtime.process import Sleep

_TAG_HALO = 77


def l0_phase(comm, grid: CartGrid, steps: int, compute_time: float, halo_bytes: int):
    """Sub-generator: run ``steps`` of the L0 physics on ``comm``.

    Returns the final (synthetic) residual, identical on all ranks.
    """
    rank = comm.rank
    neighbors = grid.neighbors(rank)
    residual = 0.0
    for step in range(steps):
        yield Sleep(compute_time)
        # Halo exchange: post all receives, then send to each neighbor.
        rreqs = [comm.irecv(source=n, tag=_TAG_HALO) for n in neighbors]
        for n in neighbors:
            yield from comm.send(None, n, tag=_TAG_HALO, nbytes=halo_bytes)
        for req in rreqs:
            yield from req.wait()
        local = 1.0 / (1 + rank + step)
        residual = yield from comm.allreduce(local, op=SUM, nbytes=8)
    return residual

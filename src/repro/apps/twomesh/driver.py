"""2MESH driver: interleave L0 and L1 phases with QUO quiescence.

Per coupling iteration:

1. every rank runs the L0 stencil (MPI-everywhere);
2. non-worker ranks quiesce (QUO_barrier or the sessions barrier);
3. worker ranks (a few per node) run the threaded L1 stencil;
4. workers join the quiescence point, releasing everyone for the
   next coupling.

The paper's three test problems are P1/P2 at 256 processes and P3 at
1,024, fully subscribing Trinity's 32-core nodes (Table I); P1 is
L0-heavy, P2 is L1-heavy, P3 is larger and balanced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.api import SimSpec, make_world
from repro.apps.twomesh.l0 import l0_phase
from repro.apps.twomesh.l1 import l1_phase, poll_interference
from repro.apps.twomesh.mesh import CartGrid
from repro.machine.presets import trinity
from repro.ompi.config import MpiConfig
from repro.ompi.constants import THREAD_MULTIPLE, UNDEFINED
from repro.quo.context import QuoContext


@dataclass(frozen=True)
class TwoMeshProblem:
    name: str
    ranks: int
    ppn: int
    couplings: int            # L0/L1 phase alternations
    l0_steps: int
    l1_steps: int
    l0_compute: float         # per-step per-rank compute (seconds)
    l1_compute: float         # per-step single-thread compute (seconds)
    halo_bytes: int
    workers_per_node: int     # L1 ranks per node


#: The paper's three problems (sizes from §IV-E; phase mixes synthetic).
PROBLEMS: Dict[str, TwoMeshProblem] = {
    "P1": TwoMeshProblem(
        name="P1", ranks=256, ppn=32, couplings=6, l0_steps=6, l1_steps=2,
        l0_compute=170e-6, l1_compute=6.0e-3, halo_bytes=8192, workers_per_node=2,
    ),
    "P2": TwoMeshProblem(
        name="P2", ranks=256, ppn=32, couplings=6, l0_steps=3, l1_steps=5,
        l0_compute=80e-6, l1_compute=9.0e-3, halo_bytes=4096, workers_per_node=2,
    ),
    "P3": TwoMeshProblem(
        name="P3", ranks=1024, ppn=32, couplings=4, l0_steps=4, l1_steps=3,
        l0_compute=100e-6, l1_compute=8.0e-3, halo_bytes=8192, workers_per_node=2,
    ),
}


def twomesh_rank_program(mpi, problem: TwoMeshProblem, use_sessions: bool, out: List[float]):
    """Per-rank generator for one 2MESH run.

    The application itself always initializes via MPI_Init_thread; the
    sessions integration lives entirely inside QUO_create (paper §IV-E).
    """
    world = yield from mpi.mpi_init(THREAD_MULTIPLE)
    quo = yield from QuoContext.create(mpi, use_sessions=use_sessions)

    is_worker = quo.auto_distrib(problem.workers_per_node)
    if is_worker:
        quo.bind_push(2)  # QUO_OBJ_SOCKET: widen affinity for threads

    # Worker sub-communicator for L1 halo exchange.
    color = 0 if is_worker else UNDEFINED
    worker_comm = yield from world.split(color=color, key=world.rank)

    l0_grid = CartGrid(world.size)
    threads = mpi.machine.cores_per_node // problem.workers_per_node
    parked = quo.nqids() - problem.workers_per_node
    interference = poll_interference(mpi.machine, parked) if use_sessions else 0.0

    yield from world.barrier()
    t_start = mpi.engine.now
    for _coupling in range(problem.couplings):
        yield from l0_phase(
            world, l0_grid, problem.l0_steps, problem.l0_compute, problem.halo_bytes
        )
        if is_worker:
            l1_grid = CartGrid(worker_comm.size)
            yield from l1_phase(
                worker_comm,
                l1_grid,
                problem.l1_steps,
                problem.l1_compute,
                threads,
                problem.halo_bytes,
                interference,
            )
        # Quiescence point: parked ranks wait here while L1 runs;
        # workers arrive last and release everyone.
        yield from quo.quiesce()
    yield from world.barrier()
    out.append(mpi.engine.now - t_start)

    if is_worker:
        quo.bind_pop()
    if worker_comm is not None:
        worker_comm.free()
    yield from quo.free()
    yield from mpi.mpi_finalize()
    return "ok"


def run_twomesh(problem: TwoMeshProblem, use_sessions: bool, machine=None) -> float:
    """Run one 2MESH configuration; returns the phase-loop time (s)."""
    nodes = problem.ranks // problem.ppn
    machine = machine or trinity(nodes)
    config = MpiConfig.sessions_prototype() if use_sessions else MpiConfig.baseline()
    world = make_world(spec=SimSpec(nprocs=problem.ranks, machine=machine,
                                    ppn=problem.ppn, config=config))
    times: List[float] = []
    procs = world.spawn_ranks(
        lambda mpi: twomesh_rank_program(mpi, problem, use_sessions, times)
    )
    world.run()
    for p in procs:
        if p.exception is not None:
            raise p.exception
    return max(times)

"""Structured-mesh decomposition helpers."""

from __future__ import annotations

from typing import List, Optional, Tuple


def dims_create(nnodes: int, ndims: int = 2) -> List[int]:
    """Balanced factorization of ``nnodes`` into ``ndims`` factors
    (MPI_Dims_create semantics: factors in non-increasing order)."""
    if nnodes < 1 or ndims < 1:
        raise ValueError("nnodes and ndims must be >= 1")
    dims = [1] * ndims
    remaining = nnodes
    # Repeatedly strip the largest prime factor onto the smallest dim.
    factors: List[int] = []
    f = 2
    while f * f <= remaining:
        while remaining % f == 0:
            factors.append(f)
            remaining //= f
        f += 1
    if remaining > 1:
        factors.append(remaining)
    for factor in sorted(factors, reverse=True):
        dims.sort()
        dims[0] *= factor
    return sorted(dims, reverse=True)


class CartGrid:
    """A 2-D periodic process grid with 4-point halo neighbors."""

    def __init__(self, size: int, dims: Optional[Tuple[int, int]] = None, periodic: bool = True) -> None:
        if dims is None:
            dy, dx = dims_create(size, 2)
        else:
            dy, dx = dims
        if dy * dx != size:
            raise ValueError(f"grid {dy}x{dx} != {size} ranks")
        self.dims = (dy, dx)
        self.size = size
        self.periodic = periodic

    def coords(self, rank: int) -> Tuple[int, int]:
        dy, dx = self.dims
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range")
        return divmod(rank, dx)

    def rank_at(self, y: int, x: int) -> Optional[int]:
        dy, dx = self.dims
        if self.periodic:
            y %= dy
            x %= dx
        elif not (0 <= y < dy and 0 <= x < dx):
            return None
        return y * dx + x

    def neighbors(self, rank: int) -> List[int]:
        """North/South/West/East neighbor ranks, deduplicated.

        On periodic dimensions of extent 2 the wrap-around neighbor
        coincides with the direct one; each distinct peer appears once.
        """
        y, x = self.coords(rank)
        out: List[int] = []
        for ny, nx in ((y - 1, x), (y + 1, x), (y, x - 1), (y, x + 1)):
            n = self.rank_at(ny, nx)
            if n is not None and n != rank and n not in out:
                out.append(n)
        return out

"""2MESH: a mini version of the LANL multi-physics application (§IV-E).

Two coupled libraries share one executable: L0 simulates physics on a
structured mesh with an MPI-everywhere decomposition; L1 simulates a
different physics with MPI+OpenMP (few ranks per node, many threads).
Phases interleave; QUO quiesces the ranks idled by each phase.  The
reproduction measures the same quantity as the paper's Fig 7: total
execution time with QUO_barrier vs the sessions-based quiescence.
"""

from repro.apps.twomesh.mesh import CartGrid, dims_create
from repro.apps.twomesh.driver import (
    TwoMeshProblem,
    PROBLEMS,
    run_twomesh,
    twomesh_rank_program,
)

__all__ = [
    "CartGrid",
    "dims_create",
    "TwoMeshProblem",
    "PROBLEMS",
    "run_twomesh",
    "twomesh_rank_program",
]

"""L1: the MPI+OpenMP physics library.

A few ranks per node ("workers") compute with many threads over the
cores freed by their quiesced node-mates; workers halo-exchange among
themselves on a worker sub-communicator.

The quiescence *mechanism* matters for performance: QUO_barrier parks
processes without waking up (futex wait); the sessions replacement
polls MPI_Ibarrier every nanosleep quantum.  Each polling wakeup steals
cycles from the worker's OpenMP threads, modeled as a compute-time
inflation factor (see :func:`poll_interference`) — the paper's
"sub-optimal process quiescence" overhead.
"""

from __future__ import annotations

from repro.apps.twomesh.mesh import CartGrid
from repro.ompi.constants import MAX
from repro.simtime.process import Sleep

_TAG_L1_HALO = 78
POLL_CPU_COST = 0.5e-6    # CPU time per Ibarrier poll (test + nanosleep syscall)


def poll_interference(machine, parked_procs: int) -> float:
    """Fraction of node compute throughput lost to quiesced-rank polling.

    Each parked process wakes every ``nanosleep_quantum`` and burns
    ``POLL_CPU_COST`` of a core; the loss is spread over the node's
    cores, which the L1 threads otherwise own exclusively.
    """
    if parked_procs <= 0:
        return 0.0
    per_proc = POLL_CPU_COST / machine.nanosleep_quantum
    return (parked_procs * per_proc) / machine.cores_per_node


def l1_phase(
    worker_comm,
    grid: CartGrid,
    steps: int,
    compute_time: float,
    threads: int,
    halo_bytes: int,
    interference: float = 0.0,
):
    """Sub-generator: run ``steps`` of the threaded L1 physics.

    ``compute_time`` is the single-thread cost per step; ``threads``
    divides it; ``interference`` (from polling quiesced ranks) inflates
    it.  Returns the final (synthetic) coupling value.
    """
    step_time = compute_time / max(1, threads) * (1.0 + interference)
    rank = worker_comm.rank
    neighbors = grid.neighbors(rank)
    value = 0.0
    for _step in range(steps):
        yield Sleep(step_time)
        rreqs = [worker_comm.irecv(source=n, tag=_TAG_L1_HALO) for n in neighbors]
        for n in neighbors:
            yield from worker_comm.send(None, n, tag=_TAG_L1_HALO, nbytes=halo_bytes)
        for req in rreqs:
            yield from req.wait()
        value = yield from worker_comm.allreduce(float(rank), op=MAX, nbytes=8)
    return value

"""Scenario registry: the named, cacheable units of serve-able work.

A *scenario* is a module-level function ``fn(**params) -> result`` where
``params`` and ``result`` are JSON-serializable and the function is a
pure, deterministic map from its parameters (the simulator's central
promise).  That contract is exactly :class:`repro.sweep.SweepPoint`'s,
so a serve request shares its cache identity with the batch sweeps:
``cache_key(scenario, params)`` computed here hits the same on-disk
entries ``tools/run_recovery.py --cache-dir`` writes, and vice versa.

Built-ins:

``sim``
    Run a named rank program under a :class:`repro.api.SimSpec` payload
    — the serve-native scenario (``params={"spec": spec.to_payload(),
    "program": "allreduce", "seed": 0}``).
``recovery-soak``
    One chaos-soak run (``repro.recovery.soak_run``); same scenario
    name the recovery sweep CLI uses, so cache entries interchange.
``figure``
    One paper figure (``repro.bench.figures.run_point``).
``sleep`` / ``flaky``
    Deterministic load/fault scenarios for tests and the load
    generator: ``sleep`` holds a worker for a wall-clock duration;
    ``flaky`` kills its worker process a configured number of times
    before succeeding (exercises the retry path).

Workers resolve scenarios by name in their own process, so custom
scenarios must either be registered at import time of this module's
importers (fork start method) or live in an importable module
(spawn/forkserver).
"""

from __future__ import annotations

import dataclasses
import difflib
import hashlib
import json
import os
import time
from typing import Any, Callable, Dict, List

from repro.api import SimSpec, make_world
from repro.ompi.constants import SUM

ScenarioFn = Callable[..., Any]

_SCENARIOS: Dict[str, ScenarioFn] = {}


def register_scenario(name: str, fn: ScenarioFn, *, replace: bool = False) -> None:
    if not replace and name in _SCENARIOS:
        raise ValueError(f"scenario {name!r} already registered")
    _SCENARIOS[name] = fn


def scenario(name: str) -> ScenarioFn:
    try:
        return _SCENARIOS[name]
    except KeyError:
        msg = f"unknown scenario {name!r}"
        close = difflib.get_close_matches(str(name), _SCENARIOS, n=3)
        if close:
            msg += " (did you mean: " + ", ".join(close) + "?)"
        raise KeyError(msg) from None


def scenario_names() -> List[str]:
    return sorted(_SCENARIOS)


# ---------------------------------------------------------------------------
# "sim": run a rank program under a SimSpec
# ---------------------------------------------------------------------------
def _prog_allreduce(mpi, seed: int):
    """World-model flow: MPI_Init, one allreduce seasoned by the seed."""
    world = yield from mpi.mpi_init()
    total = yield from world.allreduce(world.rank + seed, op=SUM)
    yield from mpi.mpi_finalize()
    return total


def _prog_sessions(mpi, seed: int):
    """Sessions flow: pset group -> comm_create_from_group -> allreduce."""
    session = yield from mpi.session_init()
    group = yield from session.group_from_pset("mpi://world")
    comm = yield from mpi.comm_create_from_group(group, f"serve-{seed}")
    total = yield from comm.allreduce(comm.rank + seed, op=SUM)
    comm.free()
    yield from session.finalize()
    return total


PROGRAMS: Dict[str, Callable] = {
    "allreduce": _prog_allreduce,
    "sessions": _prog_sessions,
}


def run_simspec(spec: Any = None, program: str = "allreduce",
                seed: int = 0) -> Dict[str, Any]:
    """Build a world from a :class:`SimSpec` (or its payload; ``None``
    means a default :class:`SimSpec`), run one named rank program, and
    return a deterministic result record.

    The ``digest`` field is a sha256 over the canonical JSON of the
    per-rank results and the final simulated clock — byte-equal across
    serial, parallel and served executions of the same request.
    """
    return _run_simspec(spec, program, seed, tracer=None)


def _run_simspec(spec: Any, program: str, seed: int, tracer: Any) -> Dict[str, Any]:
    if spec is None:
        sp = SimSpec()
    else:
        sp = spec if isinstance(spec, SimSpec) else SimSpec.from_payload(spec)
    if program not in PROGRAMS:
        raise KeyError(f"unknown program {program!r}; "
                       f"have: {', '.join(sorted(PROGRAMS))}")
    if sp.partitions > 1:
        results, t_end = _run_simspec_partitioned(sp, program, seed, tracer)
    else:
        if tracer is not None:
            sp = dataclasses.replace(sp, tracer=tracer)
        world = make_world(spec=sp)
        procs = world.spawn_ranks(PROGRAMS[program], args=(seed,))
        t_end = world.run()
        for p in procs:
            if p.exception is not None:
                raise p.exception
        results = [p.result for p in procs]
    blob = json.dumps({"results": results, "t_end": t_end},
                      sort_keys=True, separators=(",", ":"))
    return {
        "program": program,
        "seed": seed,
        "nprocs": sp.nprocs,
        "results": results,
        "t_end": t_end,
        "digest": hashlib.sha256(blob.encode()).hexdigest(),
    }


def _run_simspec_partitioned(sp: SimSpec, program: str, seed: int, tracer: Any):
    """Partitioned execution of the ``sim`` scenario (``repro.dsim``).

    The record — digest included — is byte-identical to the
    single-process run of the same payload; with a caller tracer, the
    merged per-partition trace is transplanted into it."""
    from repro import dsim
    from repro.dsim.merge import adopt_tracer

    res = dsim.run_partitioned(sp, PROGRAMS[program], args=(seed,),
                               traced=tracer is not None)
    res.raise_first_failure()
    if tracer is not None:
        adopt_tracer(tracer, res.tracer)
    return res.result_list(sp.nprocs), res.t_end


def run_simspec_traced(spec: Any = None, program: str = "allreduce",
                       seed: int = 0, trace_path: str = "") -> Dict[str, Any]:
    """:func:`run_simspec` with a simulated-time tracer attached.

    The tracer observes but never steers the engine, so the returned
    record — digest included — is byte-identical to the untraced run;
    only the side effect differs: the sim-time Chrome trace is written
    to ``trace_path``.  The live wall-clock trace links here via the
    ``sim_trace`` span attribute (docs/observability.md).
    """
    from repro.obs.export import chrome_trace, dumps
    from repro.simtime.trace import Tracer

    tracer = Tracer()
    result = _run_simspec(spec, program, seed, tracer=tracer)
    if trace_path:
        os.makedirs(os.path.dirname(trace_path) or ".", exist_ok=True)
        with open(trace_path, "w") as fh:
            fh.write(dumps(chrome_trace(tracer)))
    return result


_TRACEABLE = {"sim"}


def traceable(name: str) -> bool:
    """Can this scenario export a simulated-time trace of itself?"""
    return name in _TRACEABLE


def run_traced(name: str, params: Dict[str, Any], trace_path: str) -> Any:
    """Run a :func:`traceable` scenario with sim-trace export.

    Result (and therefore cache identity) is identical to the plain
    ``scenario(name)(**params)`` call — tracing is a pure side channel.
    """
    if name == "sim":
        return run_simspec_traced(trace_path=trace_path, **params)
    raise KeyError(f"scenario {name!r} is not traceable")


# ---------------------------------------------------------------------------
# load/fault scenarios
# ---------------------------------------------------------------------------
def serve_sleep(seconds: float = 0.05, tag: Any = None) -> Dict[str, Any]:
    """Hold a worker for ``seconds`` of wall-clock time (load filler)."""
    time.sleep(seconds)
    return {"slept": seconds, "tag": tag}


def serve_flaky(state_dir: str, key: str = "default", crashes: int = 1,
                value: Any = 0) -> Dict[str, Any]:
    """Kill the worker process ``crashes`` times, then succeed.

    Attempt counts persist in ``state_dir`` (one file per ``key``), so
    each retried delivery sees one more prior attempt — a deterministic
    stand-in for a transiently dying worker.
    """
    os.makedirs(state_dir, exist_ok=True)
    path = os.path.join(state_dir, f"flaky-{key}.attempts")
    try:
        with open(path) as fh:
            attempts = int(fh.read().strip() or 0)
    except OSError:
        attempts = 0
    with open(path, "w") as fh:
        fh.write(str(attempts + 1))
    if attempts < crashes:
        os._exit(41)        # hard death: no exception, no cleanup
    return {"attempts": attempts + 1, "value": value}


def _register_builtins() -> None:
    from repro.bench.figures import run_point
    from repro.recovery import soak_run

    register_scenario("sim", run_simspec)
    register_scenario("recovery-soak", soak_run)
    register_scenario("figure", run_point)
    register_scenario("sleep", serve_sleep)
    register_scenario("flaky", serve_flaky)


_register_builtins()

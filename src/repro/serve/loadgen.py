"""Closed-loop load generator for ``repro.serve`` (BENCH_PR5.json).

Drives N concurrent synchronous clients against a server — each client
submits its next request the moment the previous one completes (closed
loop), so offered load tracks service capacity and the latency numbers
are honest queueing numbers, not coordinated-omission artifacts.

:func:`bench_report` is the committed-benchmark entry point
(``tools/bench.py --serve`` / ``tools/serve.py loadgen``).  It
self-hosts an in-process server and produces the three sections of
``BENCH_PR5.json``:

``loadgen``
    Closed-loop throughput (requests/s) and the client-observed
    latency histogram (p50/p90/p99) over a seeded ``sim`` workload.
``backpressure``
    A 4x-oversubscription burst against a tiny queue: proves admission
    control rejects the overflow while the queue depth never exceeds
    its bound.
``determinism``
    The same chaos-soak seeds submitted concurrently through the
    server and run serially through ``repro.sweep`` — the two result
    sets must be byte-identical (canonical JSON).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.api import SimSpec
from repro.obs.metrics import Histogram
from repro.recovery import soak_run
from repro.serve.client import ServeClient
from repro.serve.protocol import ServeAddress, as_address
from repro.serve.server import ServerThread
from repro.sweep import SweepPoint, run_sweep

Workload = List[Tuple[str, Dict[str, Any]]]


def sim_workload(requests: int, *, seed: int = 0, nprocs: int = 4,
                 repeat_every: int = 4) -> Workload:
    """A seeded ``sim`` workload: mostly unique points, with every
    ``repeat_every``-th request repeating an earlier one (so a cache-
    backed server shows a non-zero hit rate under load)."""
    spec = SimSpec(nprocs=nprocs).to_payload()
    out: Workload = []
    for i in range(requests):
        repeats = bool(repeat_every) and i and i % repeat_every == 0
        out.append(("sim", {"spec": spec, "program": "allreduce",
                            "seed": seed if repeats else seed + i}))
    return out


def run_loadgen(address: Union[ServeAddress, str],
                port: Optional[Any] = None,
                workload: Optional[Workload] = None, *,
                clients: int = 4,
                deadline_s: Optional[float] = None) -> Dict[str, Any]:
    """Drive ``workload`` through ``clients`` closed-loop clients.

    ``address`` is a :class:`ServeAddress` (a fleet router counts — the
    loadgen cannot tell it from a single server); the legacy
    ``run_loadgen(host, port, workload)`` spelling still works behind
    the deprecation shim.  Requests are dealt round-robin to the
    clients; each client issues its share back-to-back.  Returns
    throughput + latency aggregates and the per-status counts.
    """
    if workload is None and not isinstance(port, int):
        workload = port          # new spelling: run_loadgen(address, workload)
        port = None
    addr = as_address(address, port, caller="run_loadgen")
    if workload is None:
        raise TypeError("run_loadgen needs a workload")
    shares: List[Workload] = [workload[i::clients] for i in range(clients)]
    records: List[List[Dict[str, Any]]] = [[] for _ in range(clients)]
    errors: List[str] = []

    def actor(idx: int) -> None:
        try:
            with ServeClient(addr) as client:
                for scenario, params in shares[idx]:
                    t0 = time.monotonic()
                    response = client.submit(scenario, params,
                                             deadline_s=deadline_s)
                    records[idx].append({
                        "status": response.get("status"),
                        "cached": bool(response.get("cached")),
                        "latency_s": time.monotonic() - t0,
                    })
        except Exception as err:    # noqa: BLE001 — surfaced in the report
            errors.append(f"client {idx}: {type(err).__name__}: {err}")

    threads = [threading.Thread(target=actor, args=(i,), daemon=True)
               for i in range(clients)]
    t_start = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = max(time.monotonic() - t_start, 1e-9)

    flat = [r for recs in records for r in recs]
    lat = Histogram()
    by_status: Dict[str, int] = {}
    cached = 0
    for r in flat:
        by_status[r["status"]] = by_status.get(r["status"], 0) + 1
        if r["status"] == "ok":
            lat.observe(r["latency_s"])
            cached += r["cached"]
    return {
        "clients": clients,
        "requests": len(workload),
        "completed": len(flat),
        "by_status": dict(sorted(by_status.items())),
        "cached_responses": cached,
        "wall_s": wall,
        "throughput_rps": by_status.get("ok", 0) / wall,
        "latency_s": lat.summary(),
        "client_errors": errors,
    }


def backpressure_probe(*, capacity: int = 4, oversubscription: int = 4,
                       hold_s: float = 0.2,
                       mp_context: Optional[str] = None) -> Dict[str, Any]:
    """Burst ``oversubscription * capacity`` concurrent one-shot submits
    at a single-worker server whose queue holds ``capacity``.

    The worker is pinned by a ``sleep`` scenario, so the burst lands on
    a full queue: admission must reject the overflow and the queue
    depth must never exceed ``capacity`` (it cannot — the queue is
    bounded by construction — but the report carries the measured
    maximum as proof).
    """
    burst = oversubscription * capacity
    with ServerThread(workers=1, capacity=capacity,
                      mp_context=mp_context) as srv:
        with ServeClient(srv.address) as warm:
            # Pin the worker so every burst submit meets a busy server.
            pin = threading.Thread(
                target=lambda: warm.submit("sleep", {"seconds": hold_s}),
                daemon=True)
            pin.start()
            time.sleep(hold_s / 4)     # let the pin reach the worker

            statuses: List[str] = [""] * burst

            def one(i: int) -> None:
                try:
                    with ServeClient(srv.address) as c:
                        r = c.submit("sleep", {"seconds": hold_s / 10,
                                               "tag": i})
                        statuses[i] = r.get("status", "error")
                except Exception:   # noqa: BLE001
                    statuses[i] = "error"

            threads = [threading.Thread(target=one, args=(i,), daemon=True)
                       for i in range(burst)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            pin.join()
            stats = warm.stats()["stats"]

    rejected = sum(1 for s in statuses if s == "rejected")
    completed = sum(1 for s in statuses if s == "ok")
    return {
        "capacity": capacity,
        "oversubscription": oversubscription,
        "burst": burst,
        "ok": completed,
        "rejected": rejected,
        "max_queue_depth": stats["max_queue_depth"],
        "bounded": stats["max_queue_depth"] <= capacity,
        "rejections_observed": rejected > 0,
    }


def determinism_check(seeds: Sequence[int], *, workers: int = 2,
                      clients: int = 2, num_nodes: int = 2,
                      num_ranks: int = 4,
                      mp_context: Optional[str] = None) -> Dict[str, Any]:
    """Serve the chaos-soak seeds concurrently; rerun them serially via
    ``repro.sweep``; compare canonical JSON byte-for-byte."""
    params = [{"seed": s, "num_nodes": num_nodes, "num_ranks": num_ranks}
              for s in seeds]
    workload: Workload = [("recovery-soak", p) for p in params]
    with ServerThread(workers=workers, capacity=max(len(seeds), 1),
                      mp_context=mp_context) as srv:
        served: Dict[int, Any] = {}
        errors: List[str] = []

        def actor(idx: int) -> None:
            try:
                with ServeClient(srv.address) as client:
                    for j in range(idx, len(workload), clients):
                        scenario, p = workload[j]
                        r = client.submit(scenario, p)
                        if r.get("status") != "ok":
                            errors.append(f"seed {p['seed']}: {r}")
                        served[j] = r.get("result")
            except Exception as err:    # noqa: BLE001
                errors.append(f"client {idx}: {type(err).__name__}: {err}")

        threads = [threading.Thread(target=actor, args=(i,), daemon=True)
                   for i in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    serial = run_sweep([SweepPoint("recovery-soak", soak_run, p)
                        for p in params])
    canon = lambda obj: json.dumps(obj, sort_keys=True, separators=(",", ":"))
    matches = [canon(served.get(i)) == canon(serial[i])
               for i in range(len(params))]
    return {
        "seeds": list(seeds),
        "num_nodes": num_nodes,
        "num_ranks": num_ranks,
        "clients": clients,
        "workers": workers,
        "digests": [rec["digest"] for rec in serial],
        "serve_matches_serial_sweep": all(matches) and not errors,
        "mismatched_seeds": [s for s, m in zip(seeds, matches) if not m],
        "errors": errors,
    }


def bench_report(*, clients: int = 4, requests: int = 32, workers: int = 2,
                 capacity: int = 16, nprocs: int = 4, seed: int = 0,
                 soak_seeds: int = 3, cache_dir: Optional[str] = None,
                 mp_context: Optional[str] = None) -> Dict[str, Any]:
    """The full BENCH_PR5 run: loadgen + backpressure + determinism."""
    workload = sim_workload(requests, seed=seed, nprocs=nprocs)
    with ServerThread(workers=workers, capacity=capacity,
                      cache_dir=cache_dir, mp_context=mp_context) as srv:
        loadgen = run_loadgen(srv.address, workload, clients=clients)
        with ServeClient(srv.address) as client:
            server_stats = client.stats()["stats"]

    return {
        "bench": "serve-loadgen",
        "workers": workers,
        "capacity": capacity,
        "scenario": "sim",
        "nprocs": nprocs,
        "seed": seed,
        "loadgen": loadgen,
        "server_stats": server_stats,
        "backpressure": backpressure_probe(mp_context=mp_context),
        "determinism": determinism_check(list(range(soak_seeds)),
                                         mp_context=mp_context),
    }


# ---------------------------------------------------------------------------
# fleet cases (BENCH_PR10.json)
# ---------------------------------------------------------------------------
def run_fleet_case(shards: int, *, requests: int = 48, clients: int = 4,
                   workers: int = 1, capacity: int = 32, nprocs: int = 2,
                   seed: int = 0, repeat_every: int = 4,
                   hot_capacity: int = 256,
                   min_speedup: Optional[float] = None,
                   mp_context: Optional[str] = None) -> Dict[str, Any]:
    """One fleet bench point: the same seeded ``sim`` workload through a
    single server and an ``shards``-shard fleet, both memoizing through
    a fresh two-tier :class:`~repro.serve.store.ResultStore`.

    The record carries the three fleet health numbers the ISSUE asks
    for — per-shard balance, fleet-wide dedup (coalesced) hit rate, and
    the hot-tier hit rate — plus ``speedup`` (single wall over fleet
    wall).  Like the partitioned cases, a scaling claim is a property
    of the host: ``enforced`` is only true when ``cores >= shards``
    (docs/performance.md precedent), so a 1-core CI box records the
    trajectory honestly without gating on parallelism it cannot have.
    """
    from repro.serve.fleet import FleetThread
    from repro.serve.store import ResultStore

    workload = sim_workload(requests, seed=seed, nprocs=nprocs,
                            repeat_every=repeat_every)

    single_store = ResultStore(None, hot_capacity=hot_capacity)
    with ServerThread(workers=workers, capacity=capacity, store=single_store,
                      mp_context=mp_context) as srv:
        t0 = time.monotonic()
        single = run_loadgen(srv.address, workload, clients=clients)
        single_s = max(time.monotonic() - t0, 1e-9)

    with FleetThread(shards=shards, workers=workers, capacity=capacity,
                     hot_capacity=hot_capacity, mp_context=mp_context) as fl:
        t0 = time.monotonic()
        fleet = run_loadgen(fl.address, workload, clients=clients)
        fleet_s = max(time.monotonic() - t0, 1e-9)
        snap = fl.call(_snapshot_async)

    ok_single = single["by_status"].get("ok", 0)
    ok_fleet = fleet["by_status"].get("ok", 0)
    if ok_single != ok_fleet:
        raise RuntimeError(
            f"fleet-{shards}: ok counts diverge single={ok_single} "
            f"fleet={ok_fleet} — routing must not change outcomes")
    routed = {str(k): v for k, v in sorted(snap["routed"].items())}
    counts = list(routed.values()) or [0]
    mean = sum(counts) / len(counts)
    hot = snap["store"]["hot"]
    cores = os.cpu_count() or 1
    return {
        "kind": "fleet",
        "params": {"shards": shards, "requests": requests,
                   "clients": clients, "workers": workers,
                   "nprocs": nprocs, "seed": seed,
                   "repeat_every": repeat_every},
        "shards": shards,
        "cores": cores,
        "events": ok_fleet,
        "single_s": single_s,
        "fleet_s": fleet_s,
        "speedup": single_s / fleet_s,
        "balance": {
            "routed": routed,
            "max_over_mean": (max(counts) / mean) if mean else 0.0,
        },
        "dedup": {
            "coalesced": snap["coalesced"],
            "hit_rate": snap["coalesced"] / requests if requests else 0.0,
        },
        "hot": {
            "hits": hot["hits"],
            "misses": hot["misses"],
            "hit_rate": hot["hit_rate"],
            "evictions": hot["evictions"],
        },
        "throughput_rps": fleet["throughput_rps"],
        "min_speedup": min_speedup,
        "enforced": min_speedup is not None and cores >= shards,
    }


async def _snapshot_async(fleet: Any) -> Dict[str, Any]:
    return fleet.snapshot()


#: The committed fleet trajectory: shards -> acceptance bar (None =
#: tracked only; the 4-shard scaling bar is enforced only on hosts with
#: at least 4 cores, mirroring the partitioned-case precedent).
FLEET_CASES: List[Tuple[int, Optional[float]]] = [
    (1, None),
    (2, None),
    (4, 1.5),
]


def fleet_report(*, quick: bool = False,
                 shards_list: Optional[Sequence[int]] = None,
                 mp_context: Optional[str] = None) -> Dict[str, Any]:
    """The BENCH_PR10 payload: fleet records at 1/2/4 shards, shaped so
    :func:`repro.bench.perf.check_regression` gates them directly."""
    import sys as _sys

    bars = dict(FLEET_CASES)
    chosen = list(shards_list) if shards_list is not None else sorted(bars)
    kwargs = dict(requests=16, clients=2, nprocs=2) if quick else {}
    cases = {
        f"fleet-{n}": run_fleet_case(n, min_speedup=bars.get(n),
                                     mp_context=mp_context, **kwargs)
        for n in chosen
    }
    return {
        "bench": "serve-fleet",
        "mode": "quick" if quick else "full",
        "python": _sys.version.split()[0],
        "cases": cases,
    }

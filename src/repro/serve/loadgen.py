"""Closed-loop load generator for ``repro.serve`` (BENCH_PR5.json).

Drives N concurrent synchronous clients against a server — each client
submits its next request the moment the previous one completes (closed
loop), so offered load tracks service capacity and the latency numbers
are honest queueing numbers, not coordinated-omission artifacts.

:func:`bench_report` is the committed-benchmark entry point
(``tools/bench.py --serve`` / ``tools/serve.py loadgen``).  It
self-hosts an in-process server and produces the three sections of
``BENCH_PR5.json``:

``loadgen``
    Closed-loop throughput (requests/s) and the client-observed
    latency histogram (p50/p90/p99) over a seeded ``sim`` workload.
``backpressure``
    A 4x-oversubscription burst against a tiny queue: proves admission
    control rejects the overflow while the queue depth never exceeds
    its bound.
``determinism``
    The same chaos-soak seeds submitted concurrently through the
    server and run serially through ``repro.sweep`` — the two result
    sets must be byte-identical (canonical JSON).
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api import SimSpec
from repro.obs.metrics import Histogram
from repro.recovery import soak_run
from repro.serve.client import ServeClient
from repro.serve.server import ServerThread
from repro.sweep import SweepPoint, run_sweep

Workload = List[Tuple[str, Dict[str, Any]]]


def sim_workload(requests: int, *, seed: int = 0, nprocs: int = 4,
                 repeat_every: int = 4) -> Workload:
    """A seeded ``sim`` workload: mostly unique points, with every
    ``repeat_every``-th request repeating an earlier one (so a cache-
    backed server shows a non-zero hit rate under load)."""
    spec = SimSpec(nprocs=nprocs).to_payload()
    out: Workload = []
    for i in range(requests):
        repeats = bool(repeat_every) and i and i % repeat_every == 0
        out.append(("sim", {"spec": spec, "program": "allreduce",
                            "seed": seed if repeats else seed + i}))
    return out


def run_loadgen(host: str, port: int, workload: Workload, *,
                clients: int = 4,
                deadline_s: Optional[float] = None) -> Dict[str, Any]:
    """Drive ``workload`` through ``clients`` closed-loop clients.

    Requests are dealt round-robin to the clients; each client issues
    its share back-to-back.  Returns throughput + latency aggregates
    and the per-status counts.
    """
    shares: List[Workload] = [workload[i::clients] for i in range(clients)]
    records: List[List[Dict[str, Any]]] = [[] for _ in range(clients)]
    errors: List[str] = []

    def actor(idx: int) -> None:
        try:
            with ServeClient(host, port) as client:
                for scenario, params in shares[idx]:
                    t0 = time.monotonic()
                    response = client.submit(scenario, params,
                                             deadline_s=deadline_s)
                    records[idx].append({
                        "status": response.get("status"),
                        "cached": bool(response.get("cached")),
                        "latency_s": time.monotonic() - t0,
                    })
        except Exception as err:    # noqa: BLE001 — surfaced in the report
            errors.append(f"client {idx}: {type(err).__name__}: {err}")

    threads = [threading.Thread(target=actor, args=(i,), daemon=True)
               for i in range(clients)]
    t_start = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = max(time.monotonic() - t_start, 1e-9)

    flat = [r for recs in records for r in recs]
    lat = Histogram()
    by_status: Dict[str, int] = {}
    cached = 0
    for r in flat:
        by_status[r["status"]] = by_status.get(r["status"], 0) + 1
        if r["status"] == "ok":
            lat.observe(r["latency_s"])
            cached += r["cached"]
    return {
        "clients": clients,
        "requests": len(workload),
        "completed": len(flat),
        "by_status": dict(sorted(by_status.items())),
        "cached_responses": cached,
        "wall_s": wall,
        "throughput_rps": by_status.get("ok", 0) / wall,
        "latency_s": lat.summary(),
        "client_errors": errors,
    }


def backpressure_probe(*, capacity: int = 4, oversubscription: int = 4,
                       hold_s: float = 0.2,
                       mp_context: Optional[str] = None) -> Dict[str, Any]:
    """Burst ``oversubscription * capacity`` concurrent one-shot submits
    at a single-worker server whose queue holds ``capacity``.

    The worker is pinned by a ``sleep`` scenario, so the burst lands on
    a full queue: admission must reject the overflow and the queue
    depth must never exceed ``capacity`` (it cannot — the queue is
    bounded by construction — but the report carries the measured
    maximum as proof).
    """
    burst = oversubscription * capacity
    with ServerThread(workers=1, capacity=capacity,
                      mp_context=mp_context) as srv:
        with ServeClient(srv.host, srv.port) as warm:
            # Pin the worker so every burst submit meets a busy server.
            pin = threading.Thread(
                target=lambda: warm.submit("sleep", {"seconds": hold_s}),
                daemon=True)
            pin.start()
            time.sleep(hold_s / 4)     # let the pin reach the worker

            statuses: List[str] = [""] * burst

            def one(i: int) -> None:
                try:
                    with ServeClient(srv.host, srv.port) as c:
                        r = c.submit("sleep", {"seconds": hold_s / 10,
                                               "tag": i})
                        statuses[i] = r.get("status", "error")
                except Exception:   # noqa: BLE001
                    statuses[i] = "error"

            threads = [threading.Thread(target=one, args=(i,), daemon=True)
                       for i in range(burst)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            pin.join()
            stats = warm.stats()["stats"]

    rejected = sum(1 for s in statuses if s == "rejected")
    completed = sum(1 for s in statuses if s == "ok")
    return {
        "capacity": capacity,
        "oversubscription": oversubscription,
        "burst": burst,
        "ok": completed,
        "rejected": rejected,
        "max_queue_depth": stats["max_queue_depth"],
        "bounded": stats["max_queue_depth"] <= capacity,
        "rejections_observed": rejected > 0,
    }


def determinism_check(seeds: Sequence[int], *, workers: int = 2,
                      clients: int = 2, num_nodes: int = 2,
                      num_ranks: int = 4,
                      mp_context: Optional[str] = None) -> Dict[str, Any]:
    """Serve the chaos-soak seeds concurrently; rerun them serially via
    ``repro.sweep``; compare canonical JSON byte-for-byte."""
    params = [{"seed": s, "num_nodes": num_nodes, "num_ranks": num_ranks}
              for s in seeds]
    workload: Workload = [("recovery-soak", p) for p in params]
    with ServerThread(workers=workers, capacity=max(len(seeds), 1),
                      mp_context=mp_context) as srv:
        served: Dict[int, Any] = {}
        errors: List[str] = []

        def actor(idx: int) -> None:
            try:
                with ServeClient(srv.host, srv.port) as client:
                    for j in range(idx, len(workload), clients):
                        scenario, p = workload[j]
                        r = client.submit(scenario, p)
                        if r.get("status") != "ok":
                            errors.append(f"seed {p['seed']}: {r}")
                        served[j] = r.get("result")
            except Exception as err:    # noqa: BLE001
                errors.append(f"client {idx}: {type(err).__name__}: {err}")

        threads = [threading.Thread(target=actor, args=(i,), daemon=True)
                   for i in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    serial = run_sweep([SweepPoint("recovery-soak", soak_run, p)
                        for p in params])
    canon = lambda obj: json.dumps(obj, sort_keys=True, separators=(",", ":"))
    matches = [canon(served.get(i)) == canon(serial[i])
               for i in range(len(params))]
    return {
        "seeds": list(seeds),
        "num_nodes": num_nodes,
        "num_ranks": num_ranks,
        "clients": clients,
        "workers": workers,
        "digests": [rec["digest"] for rec in serial],
        "serve_matches_serial_sweep": all(matches) and not errors,
        "mismatched_seeds": [s for s, m in zip(seeds, matches) if not m],
        "errors": errors,
    }


def bench_report(*, clients: int = 4, requests: int = 32, workers: int = 2,
                 capacity: int = 16, nprocs: int = 4, seed: int = 0,
                 soak_seeds: int = 3, cache_dir: Optional[str] = None,
                 mp_context: Optional[str] = None) -> Dict[str, Any]:
    """The full BENCH_PR5 run: loadgen + backpressure + determinism."""
    workload = sim_workload(requests, seed=seed, nprocs=nprocs)
    with ServerThread(workers=workers, capacity=capacity,
                      cache_dir=cache_dir, mp_context=mp_context) as srv:
        loadgen = run_loadgen(srv.host, srv.port, workload, clients=clients)
        with ServeClient(srv.host, srv.port) as client:
            server_stats = client.stats()["stats"]

    return {
        "bench": "serve-loadgen",
        "workers": workers,
        "capacity": capacity,
        "scenario": "sim",
        "nprocs": nprocs,
        "seed": seed,
        "loadgen": loadgen,
        "server_stats": server_stats,
        "backpressure": backpressure_probe(mp_context=mp_context),
        "determinism": determinism_check(list(range(soak_seeds)),
                                         mp_context=mp_context),
    }

"""Fleet front door: a consistent-hash router over SimServer shards.

The router speaks the same newline-JSON protocol as the shards (so a
:class:`~repro.serve.client.ServeClient` cannot tell it from a single
server) and forwards every ``submit`` to the shard owning the request's
``cache_key(scenario, params)`` on a :class:`HashRing`.  Identical
submissions therefore always land on the same shard, which makes PR 8's
per-server single-flight dedup *fleet-wide by construction*: the second
concurrent submit of a key coalesces on its owner shard, wherever in
the fleet it entered.

Failover (docs/serving.md, "Fleet mode"): a forward that hits a dead
shard marks it dead on the ring and retries the same key on the ring
*successor* — bounded movement, only the dead shard's keys move.  With
every shard dead the router degrades to a structured ``rejected``
answer, composing with the PR 8 circuit-breaker semantics (a degraded
shard already rejects uncached submits itself).

Observability: routing decisions are counted under ``serve.fleet.*``
(``routed`` per shard, ``failover``, ``shards`` live-gauge) and each
forward runs inside a ``serve.route`` span on the router's telemetry
track, joining the client-minted trace-id flow of PR 7.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import itertools
import os
from typing import Any, Awaitable, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.live import LiveTelemetry
from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import prometheus_text
from repro.serve import pool, protocol
from repro.serve.client import AsyncServeClient, ServeConnectionError
from repro.sweep import cache_key


def _ring_hash(text: str) -> int:
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


class HashRing:
    """Consistent hashing with virtual nodes.

    Each node is placed at ``replicas`` pseudo-random points on a
    2^64 ring (sha256 of ``"{node}:{i}"``); a key belongs to the first
    point clockwise from its own hash.  Properties the fleet relies on
    (proven in tests/serve/test_fleet.py):

    * adding a node moves keys only *onto* the new node;
    * removing a node moves only *its* keys (to their successors);
    * expected movement is ~K/(N+1) of K keys for N nodes either way.
    """

    def __init__(self, nodes: Sequence[Any] = (), *, replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("need at least one replica per node")
        self.replicas = replicas
        self._points: List[Tuple[int, Any]] = []
        self._nodes: set = set()
        for node in nodes:
            self.add(node)

    def add(self, node: Any) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.replicas):
            self._points.append((_ring_hash(f"{node}:{i}"), node))
        self._points.sort()

    def remove(self, node: Any) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [p for p in self._points if p[1] != node]

    @property
    def nodes(self) -> frozenset:
        return frozenset(self._nodes)

    def owner(self, key: str, *, dead: frozenset = frozenset()) -> Any:
        """The live node owning ``key`` (ring successor skips ``dead``).

        Raises :class:`LookupError` when the ring is empty or every
        node is dead."""
        if not self._points:
            raise LookupError("hash ring is empty")
        h = _ring_hash(key)
        start = bisect.bisect_right(self._points, (h, object())) % len(self._points)
        seen: set = set()
        for off in range(len(self._points)):
            node = self._points[(start + off) % len(self._points)][1]
            if node in seen:
                continue
            seen.add(node)
            if node not in dead:
                return node
        raise LookupError("no live node on the ring")


class FleetRouter:
    """The routing process: one asyncio server, N shard connections.

    ``shards`` maps shard id -> :class:`~repro.serve.protocol
    .ServeAddress`.  Connections to shards are lazy, one multiplexing
    :class:`AsyncServeClient` per shard, re-dialed after failures.
    ``on_kill`` is the chaos hook's victim-killer (the fleet wires it
    to actually stop a shard when a ``kill_shard`` action fires at the
    ``fleet.route`` site).
    """

    def __init__(self, shards: Dict[int, protocol.ServeAddress], *,
                 address: Optional[protocol.ServeAddress] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 telemetry: Optional[LiveTelemetry] = None,
                 chaos: Any = None,
                 on_kill: Optional[Callable[[int], Awaitable[None]]] = None,
                 replicas: int = 64) -> None:
        if not shards:
            raise ValueError("a fleet needs at least one shard")
        self.shards = dict(shards)
        self.address = protocol.as_address(address, caller="FleetRouter")
        if self.address.role == "server":
            self.address = protocol.ServeAddress(
                host=self.address.host, port=self.address.port,
                path=self.address.path, role="router")
        self.metrics = metrics or MetricsRegistry(enabled=True)
        self.tel = telemetry if (telemetry is not None
                                 and telemetry.enabled) else None
        self.chaos = chaos
        if chaos is not None:
            chaos.attach(metrics=self.metrics)
        self.on_kill = on_kill
        self.ring = HashRing(sorted(self.shards), replicas=replicas)
        self.dead: set = set()
        self.routed: Dict[int, int] = {sid: 0 for sid in self.shards}
        self.failovers = 0
        self._clients: Dict[int, AsyncServeClient] = {}
        self._dial_locks: Dict[int, asyncio.Lock] = {}
        self._ids = itertools.count(1)
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set = set()
        self._stopping = False
        self.stopped = asyncio.Event()
        self.metrics.set("serve.fleet.shards", len(self.shards))

    @property
    def host(self) -> str:
        return self.address.host

    @property
    def port(self) -> int:
        return self.address.port

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> "FleetRouter":
        if self.address.is_unix:
            try:
                os.unlink(self.address.path)   # stale socket from a dead run
            except OSError:
                pass
            self._server = await asyncio.start_unix_server(
                self._handle_conn, path=self.address.path)
        else:
            self._server = await asyncio.start_server(
                self._handle_conn, host=self.address.host,
                port=self.address.port)
            port = self._server.sockets[0].getsockname()[1]
            self.address = self.address.with_port(port)
        # Same fork hygiene as SimServer: shard workers forked after the
        # router came up must not keep its port accepting once stopped.
        self._listen_fds = [sock.fileno() for sock in self._server.sockets]
        for fd in self._listen_fds:
            pool.share_listener(fd)
        return self

    async def stop(self) -> None:
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            for fd in getattr(self, "_listen_fds", ()):
                pool.release_listener(fd)
            self._listen_fds = []
            if self.address.is_unix:
                try:
                    os.unlink(self.address.path)
                except OSError:
                    pass
        conns = list(self._conn_tasks)
        for task in conns:
            task.cancel()
        await asyncio.gather(*conns, return_exceptions=True)
        self._conn_tasks.clear()
        for client in list(self._clients.values()):
            await client.close()
        self._clients.clear()
        self.stopped.set()

    # -- shard connections ---------------------------------------------------
    async def _client(self, sid: int) -> AsyncServeClient:
        # One dial at a time per shard: concurrent forwards must share
        # a connection, not orphan each other's read loops.
        lock = self._dial_locks.setdefault(sid, asyncio.Lock())
        async with lock:
            client = self._clients.get(sid)
            if client is not None and client._dead is None:
                return client
            if client is not None:
                await client.close()
                self._clients.pop(sid, None)
            client = await AsyncServeClient.connect(self.shards[sid],
                                                    retries=0)
            self._clients[sid] = client
            return client

    def _mark_dead(self, sid: int) -> None:
        if sid in self.dead:
            return
        self.dead.add(sid)
        self.failovers += 1
        self.metrics.inc("serve.fleet.failover")
        self.metrics.set("serve.fleet.shards",
                         len(self.shards) - len(self.dead))

    @property
    def live_shards(self) -> List[int]:
        return [sid for sid in sorted(self.shards) if sid not in self.dead]

    # -- routing -------------------------------------------------------------
    def _route_key(self, msg: Dict[str, Any]) -> str:
        scenario = msg.get("scenario")
        params = msg.get("params") or {}
        try:
            return cache_key(str(scenario), params if isinstance(params, dict)
                             else {})
        except (TypeError, ValueError):
            # Uncacheable params still need a deterministic owner.
            return f"{scenario}:{sorted(str(params))}"

    async def _forward(self, sid: int, msg: Dict[str, Any]) -> Dict[str, Any]:
        client = await self._client(sid)
        return await client.request(msg)

    async def _route_submit(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        scenario = msg.get("scenario")
        if self.chaos is not None:
            for act in self.chaos.on("fleet.route", scenario=scenario):
                if act.kind == "kill_shard" and self.on_kill is not None:
                    victims = self.live_shards
                    if victims:
                        key = self._route_key(msg)
                        victim = self.ring.owner(key,
                                                 dead=frozenset(self.dead))
                        await self.on_kill(victim)
        key = self._route_key(msg)
        tel = self.tel
        sid_span = None
        if tel is not None:
            sid_span = tel.begin("fleet:router", "serve.route",
                                 trace=str(msg.get("trace") or ""),
                                 scenario=scenario)
        try:
            while True:
                try:
                    sid = self.ring.owner(key, dead=frozenset(self.dead))
                except LookupError:
                    response = {"status": protocol.STATUS_REJECTED,
                                "reason": "fleet degraded: no live shards"}
                    if tel is not None:
                        tel.annotate(sid_span, status="rejected")
                    return response
                try:
                    response = await self._forward(sid, msg)
                except (ServeConnectionError, ConnectionError, OSError):
                    self._mark_dead(sid)
                    continue            # fail the key over to the successor
                self.routed[sid] += 1
                self.metrics.inc("serve.fleet.routed", shard=str(sid))
                response = dict(response)
                # The shard echoed the *router's* request id; _serve_line
                # restores the client's own id (or none at all).
                response.pop("id", None)
                response["shard"] = sid
                response["forwarded"] = True
                if tel is not None:
                    tel.annotate(sid_span, shard=sid,
                                 status=response.get("status"))
                return response
        finally:
            if tel is not None:
                tel.end(sid_span)

    async def _fanout(self, msg: Dict[str, Any]) -> Dict[int, Dict[str, Any]]:
        """Send ``msg`` to every live shard; map shard id -> response."""
        out: Dict[int, Dict[str, Any]] = {}
        for sid in self.live_shards:
            try:
                out[sid] = await self._forward(sid, msg)
            except (ServeConnectionError, ConnectionError, OSError):
                self._mark_dead(sid)
        return out

    # -- ops -----------------------------------------------------------------
    async def _dispatch(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        bad_version = protocol.check_version(msg)
        if bad_version is not None:
            return dict(bad_version)
        op = msg.get("op")
        if op == "submit":
            return await self._route_submit(msg)
        if op == "stats":
            return await self._op_stats(msg)
        if op == "health":
            return await self._op_health(msg)
        if op == "metrics":
            return {"status": protocol.STATUS_OK,
                    "prometheus": prometheus_text(self.metrics)}
        if op == "drain":
            replies = await self._fanout({"op": "drain"})
            ok = all(r.get("status") == protocol.STATUS_OK
                     for r in replies.values())
            return {"status": protocol.STATUS_OK if ok
                    else protocol.STATUS_ERROR,
                    "drained": ok, "shards": sorted(replies)}
        if op == "resize":
            replies = await self._fanout({"op": "resize",
                                          "workers": msg.get("workers")})
            ok = all(r.get("status") == protocol.STATUS_OK
                     for r in replies.values())
            if not ok:
                bad = dict(next(r for r in replies.values()
                                if r.get("status") != protocol.STATUS_OK))
                bad.pop("id", None)
                return bad
            return {"status": protocol.STATUS_OK,
                    "workers": {str(sid): r.get("workers")
                                for sid, r in replies.items()}}
        if op == "shutdown":
            await self._fanout({"op": "shutdown"})
            asyncio.get_running_loop().call_soon(
                lambda: asyncio.ensure_future(self.stop()))
            return {"status": protocol.STATUS_OK, "stopping": True}
        return {"status": protocol.STATUS_ERROR,
                "error": f"unknown op {op!r}; have: {', '.join(protocol.OPS)}"}

    async def _op_stats(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        replies = await self._fanout({"op": "stats"})
        per_shard = {str(sid): r.get("stats", {})
                     for sid, r in replies.items()}
        totals = {"submitted": 0, "ok": 0, "errors": 0, "rejected": 0,
                  "expired": 0, "coalesced": 0}
        for s in per_shard.values():
            for k in totals:
                totals[k] += int(s.get(k, 0))
        return {
            "status": protocol.STATUS_OK,
            "stats": {
                "fleet": {
                    "shards": len(self.shards),
                    "live": len(self.live_shards),
                    "routed": {str(sid): n for sid, n in self.routed.items()},
                    "failovers": self.failovers,
                    **totals,
                },
                "per_shard": per_shard,
            },
        }

    async def _op_health(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        replies = await self._fanout({"op": "health"})
        live = [sid for sid, r in replies.items()
                if r.get("status") == protocol.STATUS_OK]
        return {
            "status": (protocol.STATUS_OK if live
                       else protocol.STATUS_ERROR),
            "protocol_v": protocol.VERSION,
            "role": "router",
            "shards": len(self.shards),
            "live": len(live),
            "dead": sorted(self.dead),
            "per_shard": {str(sid): r for sid, r in replies.items()},
        }

    # -- the wire (same framing as SimServer) --------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        me = asyncio.current_task()
        if me is not None:
            self._conn_tasks.add(me)
            me.add_done_callback(self._conn_tasks.discard)
        lock = asyncio.Lock()
        tasks: set = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._serve_line(line, writer, lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except asyncio.CancelledError:
            if not self._stopping:
                raise
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    async def _serve_line(self, line: bytes, writer: asyncio.StreamWriter,
                          lock: asyncio.Lock) -> None:
        try:
            msg = protocol.decode(line)
        except protocol.ProtocolError as err:
            await self._send(writer, lock, {"status": protocol.STATUS_ERROR,
                                            "error": str(err)})
            return
        response = await self._dispatch(msg)
        if "id" in msg:
            response["id"] = msg["id"]
        await self._send(writer, lock, response)

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, lock: asyncio.Lock,
                    obj: Dict[str, Any]) -> None:
        try:
            data = protocol.encode(obj)
        except (TypeError, ValueError) as err:
            data = protocol.encode({"status": protocol.STATUS_ERROR,
                                    "id": obj.get("id"),
                                    "error": f"unserializable result: {err}"})
        async with lock:
            try:
                writer.write(data)
                await writer.drain()
            except (ConnectionError, OSError):
                pass

"""Process workers for the serve layer.

Each :class:`Worker` is one OS process running :func:`_worker_main`: a
recv/compute/send loop over a duplex pipe.  Scenario exceptions travel
back as ``("error", message)`` replies; a *death* (crash, ``os._exit``,
kill) surfaces to the caller as :class:`WorkerDied`, which the server
turns into a seeded-backoff retry on a fresh process.

Workers are deliberately not a ``concurrent.futures`` pool: one pipe
per worker keeps death isolated (a dying process breaks only its own
requests, never the pool) and lets the server kill a single worker to
enforce a mid-run deadline.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Dict, Optional, Tuple


class WorkerDied(RuntimeError):
    """The worker process exited (or its pipe broke) mid-request."""


def default_mp_context() -> str:
    """Same policy as ``repro.sweep``: warm fork where POSIX allows."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


# Listening-socket fds of every live server/router in this process.
# Fork-started workers inherit these fds, and a child holding one keeps
# the kernel accepting on the port after the parent closes it — so a
# "stopped" shard's address would still take connections that nobody
# ever answers (the fleet failover path hangs instead of failing over).
# Workers close their inherited copies first thing; under spawn the
# child imports a fresh, empty set and there is nothing to close.
_listener_fds: set = set()


def share_listener(fd: int) -> None:
    """Register a listening socket so forked workers close their copy."""
    _listener_fds.add(fd)


def release_listener(fd: int) -> None:
    """Unregister a listener (its server stopped); keeps later forks
    from closing an unrelated fd that reused the number."""
    _listener_fds.discard(fd)


def _worker_main(conn) -> None:
    for fd in list(_listener_fds):      # inherited via fork, see above
        try:
            os.close(fd)
        except OSError:
            pass
    _listener_fds.clear()
    # The parent starts workers daemonic so a dying server never leaks
    # them — that cleanup is driven by the *parent-side* flag.  The
    # child-side copy of the flag only forbids grandchildren, which
    # would break scenarios that themselves fork (partitioned runs,
    # repro.dsim), so clear it here.  dsim children are tied to this
    # process by their pipes and exit on EOF if it dies uncleanly.
    multiprocessing.current_process().daemon = False
    # Resolved here, in the worker process, so spawn/forkserver children
    # see the built-in scenarios without inheriting parent state.
    from repro.serve import registry

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg is None:                 # orderly retirement
            return
        scenario, params, meta = msg
        try:
            # The telemetry meta (trace id + sim-trace export path)
            # rides *beside* params, never inside them, so tracing a
            # request cannot change its cache identity or its result.
            sim_trace = (meta or {}).get("sim_trace")
            if sim_trace and registry.traceable(scenario):
                reply = ("ok", registry.run_traced(scenario, params, sim_trace))
            else:
                fn = registry.scenario(scenario)
                reply = ("ok", fn(**params))
        except BaseException as err:    # noqa: BLE001 — the wire is the boundary
            reply = ("error", f"{type(err).__name__}: {err}")
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


class Worker:
    """One worker process plus its parent end of the pipe."""

    def __init__(self, wid: int, mp_context: Optional[str] = None) -> None:
        ctx = multiprocessing.get_context(mp_context or default_mp_context())
        self.wid = wid
        self.conn, child = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(target=_worker_main, args=(child,),
                                name=f"serve-worker-{wid}", daemon=True)
        self.proc.start()
        child.close()
        self.calls = 0

    @property
    def alive(self) -> bool:
        return self.proc.is_alive()

    def call(self, scenario: str, params: Dict[str, Any],
             meta: Optional[Dict[str, Any]] = None, *,
             chaos: Any = None) -> Tuple[str, Any]:
        """Blocking request/reply; raises :class:`WorkerDied` on death.

        Runs on an executor thread — the asyncio side awaits it via
        ``asyncio.to_thread``.  ``meta`` is telemetry-only side data
        (trace id, sim-trace export path); it never enters ``params``.
        ``chaos`` (:class:`repro.chaos.ChaosPlan`) is consulted at the
        ``worker.call`` site before the dispatch; a firing action kills
        this worker, breaks its pipe, or stalls the call, all of which
        surface through the existing :class:`WorkerDied` / retry path.
        """
        if chaos is not None:
            for act in chaos.on("worker.call", scenario=scenario,
                                wid=self.wid):
                if act.kind == "kill_worker":
                    # The dead child tears the pipe down; the send or
                    # recv below then raises exactly as a real crash.
                    self.proc.kill()
                    self.proc.join(timeout=5.0)
                elif act.kind == "break_pipe":
                    try:
                        self.conn.close()
                    except OSError:
                        pass
                elif act.kind == "hang_worker":
                    time.sleep(act.delay)
        try:
            self.conn.send((scenario, params, meta))
            kind, payload = self.conn.recv()
        except (EOFError, OSError, BrokenPipeError) as err:
            raise WorkerDied(
                f"worker {self.wid} (pid {self.proc.pid}) died mid-request: "
                f"{type(err).__name__}") from None
        self.calls += 1
        return kind, payload

    def kill(self) -> None:
        """Hard-stop (deadline enforcement / death cleanup)."""
        try:
            self.proc.kill()
        except (OSError, ValueError):
            pass
        self.proc.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass

    def retire(self) -> None:
        """Orderly shutdown: sentinel, join, then force if needed."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=1.0)
        if self.proc.is_alive():
            self.kill()
        else:
            try:
                self.conn.close()
            except OSError:
                pass

"""Clients for the ``repro.serve`` job server.

:class:`ServeClient` — synchronous, one request in flight per
connection; the natural fit for scripts and per-thread loadgen actors.

:class:`AsyncServeClient` — asyncio, multiplexed: many concurrent
``submit()`` awaitables share one connection, matched to out-of-order
server completions by request id.

Both speak the newline-JSON protocol of :mod:`repro.serve.protocol`
and address endpoints through one :class:`~repro.serve.protocol
.ServeAddress` (TCP or unix socket; legacy separate host/port
arguments still work behind a ``DeprecationWarning``)::

    with ServeClient(srv.address) as c:
        r = c.submit("sim", {"spec": spec.to_payload(), "seed": 3})
        assert r["status"] == "ok"

Robustness (docs/robustness.md): both clients retry the initial
connect with bounded seeded backoff, and :class:`ServeClient`
additionally survives a connection dying *mid-rpc* — it reconnects and
resubmits the same request up to ``retries`` times within an optional
wall-clock ``retry_deadline_s``.  Resubmission is safe because the
server single-flights by cache key: a retried submit coalesces onto
(or cache-hits) the original computation, never re-running it.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import random
import socket
import time
from typing import Any, Dict, Optional, Union

from repro.serve import protocol
from repro.serve.protocol import ServeAddress, as_address


class ServeConnectionError(ConnectionError):
    """The server closed the connection mid-conversation."""


class ServeClient:
    """Blocking client; safe for one thread (use one per thread).

    ``trace="cli"`` makes the client mint one deterministic trace id per
    submit (``cli-1``, ``cli-2``, ...) and send it on the wire; with
    ``telemetry`` also given, each submit is wrapped in a wall-clock
    ``serve.client.request`` span on the ``client:<prefix>`` track, so
    the exported trace shows client-observed latency next to the
    server's own spans for the same trace id.

    ``retries`` bounds both connect attempts (``retries + 1`` total)
    and mid-rpc reconnect-and-resubmit attempts; backoff between them
    is seeded by ``retry_seed`` (deterministic), and
    ``retry_deadline_s`` caps the total wall-clock spent retrying one
    rpc.  ``chaos`` (:class:`repro.chaos.ChaosPlan`) is consulted at
    the ``client.send`` site — a firing ``drop_conn`` tears the
    connection down mid-line or after the send, exercising exactly the
    failure the retry path exists for.
    """

    def __init__(self, address: Union[ServeAddress, str, None] = None,
                 port: Optional[int] = None, *,
                 host: Optional[str] = None,
                 timeout: Optional[float] = None,
                 trace: Optional[str] = None,
                 telemetry: Any = None,
                 retries: int = 2,
                 retry_base: float = 0.05,
                 retry_seed: int = 0,
                 retry_deadline_s: Optional[float] = None,
                 chaos: Any = None) -> None:
        self.address = as_address(address, port, host=host,
                                  caller="ServeClient")
        self.host = self.address.host
        self.port = self.address.port
        self.timeout = timeout
        self.retries = max(0, retries)
        self.retry_base = retry_base
        self.retry_seed = retry_seed
        self.retry_deadline_s = retry_deadline_s
        self.chaos = chaos
        self.reconnects = 0     # connections re-established mid-rpc
        self.resubmits = 0      # requests resubmitted after a drop
        self._ids = itertools.count(1)
        self._trace_prefix = trace
        self._trace_ids = itertools.count(1)
        self.telemetry = telemetry if (telemetry is not None
                                       and telemetry.enabled) else None
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._connect()

    # -- plumbing ------------------------------------------------------------
    def _connect(self) -> None:
        """(Re)establish the connection, retrying with seeded backoff."""
        last: Optional[OSError] = None
        for attempt in range(self.retries + 1):
            try:
                if self.address.is_unix:
                    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    sock.settimeout(self.timeout)
                    sock.connect(self.address.path)
                    self._sock = sock
                else:
                    self._sock = socket.create_connection(
                        (self.host, self.port), timeout=self.timeout)
                self._file = self._sock.makefile("rwb")
                return
            except OSError as err:
                last = err
                if attempt < self.retries:
                    time.sleep(self._backoff(attempt + 1))
        assert last is not None
        raise last

    def _backoff(self, attempt: int) -> float:
        rng = random.Random(f"{self.retry_seed}:client:{attempt}")
        return self.retry_base * (2 ** (attempt - 1)) * (0.5 + 0.5 * rng.random())

    def _exchange(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        """One write/read round-trip (no retry), with the chaos hook."""
        data = protocol.encode(msg)
        if self.chaos is not None:
            for act in self.chaos.on("client.send",
                                     scenario=msg.get("scenario")):
                if act.kind != "drop_conn":
                    continue
                if act.phase == "mid":
                    # A torn request: half the line, no newline, gone.
                    self._file.write(data[:len(data) // 2])
                    self._file.flush()
                    self.close()
                    raise ServeConnectionError(
                        "chaos: connection dropped mid-line")
                self._file.write(data)      # phase == "after"
                self._file.flush()
                self.close()
                raise ServeConnectionError(
                    "chaos: connection dropped awaiting reply")
        self._file.write(data)
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServeConnectionError("server closed the connection")
        response = json.loads(line)
        assert response.get("id") in (None, msg["id"]), "response id mismatch"
        return response

    def _rpc(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        msg = dict(msg, id=next(self._ids), v=protocol.VERSION)
        t0 = time.monotonic()
        attempt = 0
        while True:
            try:
                return self._exchange(msg)
            except (ServeConnectionError, OSError):
                attempt += 1
                if attempt > self.retries:
                    raise
                delay = self._backoff(attempt)
                if self.retry_deadline_s is not None:
                    remaining = self.retry_deadline_s - (time.monotonic() - t0)
                    if remaining <= 0:
                        raise
                    delay = min(delay, remaining)
                time.sleep(delay)
                self.close()
                self._connect()
                self.reconnects += 1
                self.resubmits += 1

    def _mint(self) -> Optional[str]:
        if self._trace_prefix is None:
            return None
        from repro.obs.live import trace_id
        return trace_id(self._trace_prefix, next(self._trace_ids))

    # -- ops -----------------------------------------------------------------
    def submit(self, scenario: str, params: Optional[Dict[str, Any]] = None,
               *, deadline_s: Optional[float] = None) -> Dict[str, Any]:
        msg: Dict[str, Any] = {"op": "submit", "scenario": scenario,
                               "params": params or {}}
        if deadline_s is not None:
            msg["deadline_s"] = deadline_s
        tid = self._mint()
        if tid is not None:
            msg["trace"] = tid
        tel = self.telemetry
        if tel is not None:
            track = f"client:{self._trace_prefix or 'client'}"
            sid = tel.begin(track, "serve.client.request",
                            scenario=scenario, trace=tid)
            try:
                response = self._rpc(msg)
            finally:
                tel.end(sid)
            tel.annotate(sid, status=response.get("status"))
            return response
        return self._rpc(msg)

    def stats(self) -> Dict[str, Any]:
        return self._rpc({"op": "stats"})

    def health(self) -> Dict[str, Any]:
        return self._rpc({"op": "health"})

    def metrics(self) -> Dict[str, Any]:
        return self._rpc({"op": "metrics"})

    def drain(self) -> Dict[str, Any]:
        return self._rpc({"op": "drain"})

    def resize(self, workers: int) -> Dict[str, Any]:
        return self._rpc({"op": "resize", "workers": workers})

    def shutdown(self) -> Dict[str, Any]:
        return self._rpc({"op": "shutdown"})

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class AsyncServeClient:
    """Multiplexing asyncio client: ``await connect()`` then fire away."""

    def __init__(self) -> None:
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        self._reader_task: Optional[asyncio.Task] = None
        self._write_lock = asyncio.Lock()
        self._trace_prefix: Optional[str] = None
        self._trace_ids = itertools.count(1)
        self._dead: Optional[Exception] = None

    @classmethod
    async def connect(cls, address: Union[ServeAddress, str, None] = None,
                      port: Optional[int] = None, *,
                      host: Optional[str] = None,
                      trace: Optional[str] = None,
                      retries: int = 2,
                      retry_base: float = 0.05) -> "AsyncServeClient":
        """Connect, retrying a refused/unreachable server ``retries``
        times with exponential backoff before giving up."""
        self = cls()
        self._trace_prefix = trace
        addr = as_address(address, port, host=host,
                          caller="AsyncServeClient.connect")
        self.address = addr
        last: Optional[OSError] = None
        for attempt in range(max(0, retries) + 1):
            try:
                if addr.is_unix:
                    self._reader, self._writer = (
                        await asyncio.open_unix_connection(addr.path))
                else:
                    self._reader, self._writer = await asyncio.open_connection(
                        addr.host, addr.port)
                break
            except OSError as err:
                last = err
                if attempt < retries:
                    await asyncio.sleep(retry_base * (2 ** attempt))
        else:
            assert last is not None
            raise last
        self._reader_task = asyncio.ensure_future(self._read_loop())
        return self

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = json.loads(line)
                fut = self._pending.pop(response.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result(response)
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            # Fail everything in flight *and* mark the client dead, so
            # an rpc racing the reader's exit can't register a future
            # nobody will ever resolve (the fleet router leans on this
            # to detect a shard death promptly).
            self._dead = ServeConnectionError("server closed the connection")
            for fut in self._pending.values():
                if not fut.done():
                    fut.set_exception(
                        ServeConnectionError("server closed the connection"))
            self._pending.clear()

    async def _rpc(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        if self._dead is not None:
            raise ServeConnectionError(str(self._dead))
        rid = next(self._ids)
        msg = dict(msg, id=rid, v=protocol.VERSION)
        fut = asyncio.get_running_loop().create_future()
        self._pending[rid] = fut
        if self._dead is not None:      # reader died while we registered
            self._pending.pop(rid, None)
            raise ServeConnectionError(str(self._dead))
        try:
            async with self._write_lock:
                self._writer.write(protocol.encode(msg))
                await self._writer.drain()
        except (ConnectionError, OSError) as err:
            self._pending.pop(rid, None)
            raise ServeConnectionError(
                f"send failed: {type(err).__name__}: {err}") from None
        return await fut

    async def request(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        """Forward a raw, pre-built request object (fleet router path).

        The client assigns its own ``id`` and protocol ``v``; every
        other field (``op``, ``scenario``, ``params``, ``trace``,
        ``deadline_s``...) passes through untouched."""
        return await self._rpc(dict(msg))

    async def submit(self, scenario: str,
                     params: Optional[Dict[str, Any]] = None, *,
                     deadline_s: Optional[float] = None) -> Dict[str, Any]:
        msg: Dict[str, Any] = {"op": "submit", "scenario": scenario,
                               "params": params or {}}
        if deadline_s is not None:
            msg["deadline_s"] = deadline_s
        if self._trace_prefix is not None:
            from repro.obs.live import trace_id
            msg["trace"] = trace_id(self._trace_prefix, next(self._trace_ids))
        return await self._rpc(msg)

    async def stats(self) -> Dict[str, Any]:
        return await self._rpc({"op": "stats"})

    async def health(self) -> Dict[str, Any]:
        return await self._rpc({"op": "health"})

    async def metrics(self) -> Dict[str, Any]:
        return await self._rpc({"op": "metrics"})

    async def drain(self) -> Dict[str, Any]:
        return await self._rpc({"op": "drain"})

    async def resize(self, workers: int) -> Dict[str, Any]:
        return await self._rpc({"op": "resize", "workers": workers})

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass

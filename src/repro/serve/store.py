"""Content-addressed result store: an LRU hot tier over the disk cache.

The fleet's shared storage layer (docs/serving.md, "Fleet mode").  A
:class:`ResultStore` keeps the last ``hot_capacity`` results in an
in-memory LRU dict *above* the existing sha256-keyed
:class:`repro.sweep.SweepCache` disk tier; keys are the same
``cache_key(scenario, params)`` digests everywhere, so the store, the
single-server cache and the batch sweeps all address one content space.

Probe order is hot -> disk; a disk hit is *promoted* into the hot tier
so repeated traffic stays memory-speed.  Every probe is counted per
tier in the attached :class:`~repro.obs.metrics.MetricsRegistry`
(``serve.store.probe`` faceted by ``tier``/``result``; evictions under
``serve.store.evictions``), and :meth:`stats` returns the same counts
as a JSON-friendly record for the ``stats`` op and the fleet bench.

The store is duck-compatible with :class:`SweepCache` (``get``/``put``
/``report``), so a :class:`~repro.serve.server.SimServer` accepts one
as its ``store=`` and uses it exactly like its private cache — which is
how every shard of a :class:`~repro.serve.fleet.SimFleet` shares one.
A :class:`threading.Lock` guards the hot tier: shards on one loop, the
loadgen's client threads and a test harness may probe concurrently.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

from repro.sweep import SweepCache


class ResultStore:
    """Two-tier content-addressed result storage.

    ``cache_dir=None`` runs hot-tier-only (still enough to make
    single-flight keys and fleet dedup work); with a directory, the
    disk tier is a full :class:`SweepCache` — checksummed envelopes,
    atomic writes, corrupt-entry quarantine — shared with the sweeps.
    """

    def __init__(self, cache_dir: Optional[str] = None, *,
                 hot_capacity: int = 256,
                 metrics: Any = None, events: Any = None,
                 chaos: Any = None) -> None:
        if hot_capacity < 1:
            raise ValueError("hot tier needs capacity >= 1")
        self.hot_capacity = hot_capacity
        self.metrics = metrics
        self.disk: Optional[SweepCache] = (
            SweepCache(cache_dir, metrics=metrics, events=events, chaos=chaos)
            if cache_dir else None)
        self._hot: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hot_hits = 0
        self.hot_misses = 0
        self.disk_hits = 0
        self.disk_misses = 0
        self.evictions = 0
        self.puts = 0

    # -- the SweepCache-shaped API -------------------------------------------
    def get(self, key: str) -> Optional[Any]:
        with self._lock:
            if key in self._hot:
                self._hot.move_to_end(key)
                self.hot_hits += 1
                self._probe("hot", "hit")
                return self._hot[key]
            self.hot_misses += 1
        self._probe("hot", "miss")
        if self.disk is None:
            return None
        value = self.disk.get(key)
        if value is None:
            self.disk_misses += 1
            self._probe("disk", "miss")
            return None
        self.disk_hits += 1
        self._probe("disk", "hit")
        self._admit(key, value)        # promote: disk hit -> hot entry
        return value

    def put(self, key: str, result: Any) -> None:
        self.puts += 1
        self._admit(key, result)
        if self.disk is not None:
            self.disk.put(key, result)

    def _admit(self, key: str, value: Any) -> None:
        evicted = 0
        with self._lock:
            self._hot[key] = value
            self._hot.move_to_end(key)
            while len(self._hot) > self.hot_capacity:
                self._hot.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if self.metrics is not None:
            for _ in range(evicted):
                self.metrics.inc("serve.store.evictions")

    def _probe(self, tier: str, result: str) -> None:
        if self.metrics is not None:
            self.metrics.inc("serve.store.probe", tier=tier, result=result)

    # -- reporting -----------------------------------------------------------
    @property
    def hot_size(self) -> int:
        with self._lock:
            return len(self._hot)

    def stats(self) -> Dict[str, Any]:
        """Per-tier counters, JSON-friendly (``stats`` op / fleet bench)."""
        hot_total = self.hot_hits + self.hot_misses
        disk_total = self.disk_hits + self.disk_misses
        return {
            "hot": {
                "capacity": self.hot_capacity,
                "size": self.hot_size,
                "hits": self.hot_hits,
                "misses": self.hot_misses,
                "hit_rate": self.hot_hits / hot_total if hot_total else 0.0,
                "evictions": self.evictions,
            },
            "disk": {
                "enabled": self.disk is not None,
                "hits": self.disk_hits,
                "misses": self.disk_misses,
                "hit_rate": self.disk_hits / disk_total if disk_total else 0.0,
                "quarantined": self.disk.corrupt if self.disk else 0,
            },
            "puts": self.puts,
        }

    def report(self) -> str:
        s = self.stats()
        line = (f"store: hot {s['hot']['hits']} hit(s) / "
                f"{s['hot']['misses']} miss(es), "
                f"{s['hot']['size']}/{s['hot']['capacity']} resident, "
                f"{s['hot']['evictions']} evicted")
        if self.disk is not None:
            line += (f"; disk {s['disk']['hits']} hit(s) / "
                     f"{s['disk']['misses']} miss(es)")
            if s["disk"]["quarantined"]:
                line += f", {s['disk']['quarantined']} quarantined"
        return line

"""``repro.serve`` — the concurrent simulation-serving layer.

Long-lived job server (:class:`SimServer`) that accepts simulation
requests (scenario name + JSON params, with :class:`repro.api.SimSpec`
as the payload for simulator runs), admits them through a bounded
backpressure queue with per-request deadlines, fans them out to a
resizable multiprocessing worker pool, memoizes through the
``repro.sweep`` result cache, and retries transient worker deaths with
seeded backoff.  See docs/serving.md.

    from repro.serve import ServerThread, ServeClient

    with ServerThread(workers=4, cache_dir=".servecache") as srv:
        with ServeClient(srv.address) as client:
            client.submit("sim", {"spec": spec.to_payload(), "seed": 1})

Fleet mode (docs/serving.md, "Fleet mode"): :class:`SimFleet` runs N
shards behind a consistent-hash :class:`FleetRouter` sharing one
two-tier :class:`ResultStore`, making the per-server single-flight
dedup fleet-wide.  Endpoints everywhere are named by one
:class:`ServeAddress` (TCP or unix socket)::

    from repro.serve import FleetThread, ServeClient

    with FleetThread(shards=2, workers=1) as fleet:
        with ServeClient(fleet.address) as client:
            client.submit("sim", {"spec": spec.to_payload(), "seed": 1})
"""

from repro.serve.client import AsyncServeClient, ServeClient, ServeConnectionError
from repro.serve.fleet import FleetThread, SimFleet
from repro.serve.pool import Worker, WorkerDied
from repro.serve.protocol import VERSION, ServeAddress
from repro.serve.registry import (
    PROGRAMS,
    register_scenario,
    run_simspec,
    run_simspec_traced,
    scenario,
    scenario_names,
    traceable,
)
from repro.serve.router import FleetRouter, HashRing
from repro.serve.server import ServerThread, ServeStats, SimServer
from repro.serve.store import ResultStore

__all__ = [
    "AsyncServeClient",
    "FleetRouter",
    "FleetThread",
    "HashRing",
    "PROGRAMS",
    "ResultStore",
    "ServeAddress",
    "ServeClient",
    "ServeConnectionError",
    "ServeStats",
    "ServerThread",
    "SimFleet",
    "SimServer",
    "VERSION",
    "Worker",
    "WorkerDied",
    "register_scenario",
    "run_simspec",
    "run_simspec_traced",
    "scenario",
    "scenario_names",
    "traceable",
]

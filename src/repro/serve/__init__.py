"""``repro.serve`` — the concurrent simulation-serving layer.

Long-lived job server (:class:`SimServer`) that accepts simulation
requests (scenario name + JSON params, with :class:`repro.api.SimSpec`
as the payload for simulator runs), admits them through a bounded
backpressure queue with per-request deadlines, fans them out to a
resizable multiprocessing worker pool, memoizes through the
``repro.sweep`` result cache, and retries transient worker deaths with
seeded backoff.  See docs/serving.md.

    from repro.serve import ServerThread, ServeClient

    with ServerThread(workers=4, cache_dir=".servecache") as srv:
        with ServeClient(srv.host, srv.port) as client:
            client.submit("sim", {"spec": spec.to_payload(), "seed": 1})
"""

from repro.serve.client import AsyncServeClient, ServeClient, ServeConnectionError
from repro.serve.pool import Worker, WorkerDied
from repro.serve.registry import (
    PROGRAMS,
    register_scenario,
    run_simspec,
    run_simspec_traced,
    scenario,
    scenario_names,
    traceable,
)
from repro.serve.server import ServerThread, ServeStats, SimServer

__all__ = [
    "AsyncServeClient",
    "PROGRAMS",
    "ServeClient",
    "ServeConnectionError",
    "ServeStats",
    "ServerThread",
    "SimServer",
    "Worker",
    "WorkerDied",
    "register_scenario",
    "run_simspec",
    "run_simspec_traced",
    "scenario",
    "scenario_names",
    "traceable",
]

"""A SimServer fleet: N shards, one shared store, one router in front.

:class:`SimFleet` wires the pieces of docs/serving.md's "Fleet mode"
on a single event loop::

                     +-> shard 0 (SimServer) --+
    client -> router-+-> shard 1 (SimServer) --+-> shared ResultStore
                     +-> shard N-1           --+      (hot LRU + disk)

Every shard gets ``shard_id`` and the *same* :class:`~repro.serve
.store.ResultStore` (two-tier, keyed by ``cache_key``); the router
consistent-hashes submits so identical requests land on one shard and
coalesce there (fleet-wide single-flight).  The non-negotiable
invariant — fleet results byte-identical to a single server's for the
same ``SimSpec`` stream — holds because shards run the same scenario
registry on the same deterministic workers; routing only chooses
*where*, never *how*, a request runs.

:class:`FleetThread` mirrors :class:`~repro.serve.server.ServerThread`
for synchronous hosts (tests, the CLI's self-hosted fleet loadgen).
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, List, Optional, Union

from repro.obs.live import LiveTelemetry
from repro.obs.metrics import MetricsRegistry
from repro.serve import protocol
from repro.serve.router import FleetRouter
from repro.serve.server import SimServer
from repro.serve.store import ResultStore


class SimFleet:
    """N shards + router + shared store, all on the calling loop.

    ``shards`` is the shard count; ``**shard_kwargs`` pass through to
    every :class:`SimServer` (workers, capacity, retry knobs, chaos...).
    The fleet owns one :class:`ResultStore` (``cache_dir`` feeds its
    disk tier) shared by all shards, and the router's chaos ``on_kill``
    hook is wired to :meth:`kill_shard` so a ``kill_shard`` action at
    the ``fleet.route`` site really does take a shard down.
    """

    def __init__(self, *, shards: int = 2, workers: int = 1,
                 capacity: int = 16,
                 cache_dir: Optional[str] = None,
                 hot_capacity: int = 256,
                 address: Optional[Union[protocol.ServeAddress, str]] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 telemetry: Optional[LiveTelemetry] = None,
                 chaos: Any = None,
                 mp_context: Optional[str] = None,
                 **shard_kwargs: Any) -> None:
        if shards < 1:
            raise ValueError("a fleet needs at least one shard")
        self.n_shards = shards
        self.metrics = metrics or MetricsRegistry(enabled=True)
        self.store = ResultStore(cache_dir, hot_capacity=hot_capacity,
                                 metrics=self.metrics)
        self.servers: List[SimServer] = [
            SimServer(workers=workers, capacity=capacity,
                      address=protocol.ServeAddress(port=0, role="shard"),
                      store=self.store, shard_id=sid,
                      metrics=self.metrics, mp_context=mp_context,
                      **shard_kwargs)
            for sid in range(shards)
        ]
        self._router_address = protocol.as_address(
            address, default=protocol.ServeAddress(port=0, role="router"),
            caller="SimFleet")
        self._telemetry = telemetry
        self._chaos = chaos
        self.router: Optional[FleetRouter] = None

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> "SimFleet":
        for server in self.servers:
            await server.start()
        self.router = FleetRouter(
            {sid: server.address for sid, server in enumerate(self.servers)},
            address=self._router_address, metrics=self.metrics,
            telemetry=self._telemetry, chaos=self._chaos,
            on_kill=self.kill_shard)
        await self.router.start()
        return self

    async def stop(self) -> None:
        if self.router is not None and not self.router.stopped.is_set():
            await self.router.stop()
        for server in self.servers:
            if not server.stopped.is_set():
                await server.stop()

    async def kill_shard(self, sid: int) -> None:
        """Hard-stop one shard (chaos / failover tests).  The router
        notices on its next forward and fails the keys over."""
        server = self.servers[sid]
        if not server.stopped.is_set():
            await server.stop()

    # -- addressing ----------------------------------------------------------
    @property
    def address(self) -> protocol.ServeAddress:
        assert self.router is not None, "fleet not started"
        return self.router.address

    @property
    def host(self) -> str:
        return self.address.host

    @property
    def port(self) -> int:
        return self.address.port

    # -- reporting -----------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Fleet-level stats: routing, dedup, store tiers, per-shard."""
        per_shard = [server.stats for server in self.servers]
        return {
            "shards": self.n_shards,
            "live": len(self.router.live_shards) if self.router else 0,
            "routed": dict(self.router.routed) if self.router else {},
            "failovers": self.router.failovers if self.router else 0,
            "coalesced": sum(s.coalesced for s in per_shard),
            "ok": sum(s.ok for s in per_shard),
            "submitted": sum(s.submitted for s in per_shard),
            "store": self.store.stats(),
        }


class FleetThread:
    """Run a :class:`SimFleet` on a private event loop in a thread.

    Synchronous mirror of :class:`~repro.serve.server.ServerThread`::

        with FleetThread(shards=2, workers=1) as fleet:
            client = ServeClient(fleet.address)
    """

    def __init__(self, **fleet_kwargs: Any) -> None:
        self._kwargs = fleet_kwargs
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self.fleet: Optional[SimFleet] = None

    def __enter__(self) -> "FleetThread":
        started = threading.Event()
        boot_error: List[BaseException] = []

        def _run() -> None:
            self._loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self._loop)
            try:
                self.fleet = self._loop.run_until_complete(
                    SimFleet(**self._kwargs).start())
            except BaseException as err:   # fail fast, don't hang __enter__
                boot_error.append(err)
                started.set()
                return
            started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(target=_run, name="serve-fleet",
                                        daemon=True)
        self._thread.start()
        if not started.wait(timeout=30.0):
            raise RuntimeError("fleet failed to start within 30s")
        if boot_error:
            self._thread.join(timeout=10.0)
            self._loop = None
            raise boot_error[0]
        return self

    @property
    def address(self) -> protocol.ServeAddress:
        return self.fleet.address

    @property
    def host(self) -> str:
        return self.fleet.host

    @property
    def port(self) -> int:
        return self.fleet.port

    def call(self, coro_fn, *args: Any, timeout: float = 60.0) -> Any:
        """Run ``coro_fn(fleet, *args)`` on the fleet's loop."""
        fut = asyncio.run_coroutine_threadsafe(
            coro_fn(self.fleet, *args), self._loop)
        return fut.result(timeout=timeout)

    def __exit__(self, *exc: Any) -> None:
        if self._loop is not None:
            asyncio.run_coroutine_threadsafe(
                self.fleet.stop(), self._loop).result(timeout=30.0)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            self._loop.close()

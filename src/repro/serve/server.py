"""`repro.serve`: a long-running simulation-serving job server.

Architecture (docs/serving.md)::

    client --line-JSON--> asyncio server --bounded queue--> worker loops
                                                        --> process pool

Admission control is a bounded FIFO queue: a ``submit`` whose queue is
full is *rejected immediately* (backpressure — the client decides to
back off or shed load), so queue depth, and therefore queueing delay,
is bounded by construction.  Each admitted request carries an optional
deadline measured from admission; a request that overstays it — in the
queue or mid-run — answers ``expired`` (mid-run enforcement kills the
worker process).  Transient worker deaths are retried on a fresh
process with seeded exponential backoff, so results stay deterministic:
a served request returns byte-identical payloads to the same point run
through ``repro.sweep`` serially.

Results are memoized through the *same* sha256 on-disk cache the batch
sweeps use (``repro.sweep.SweepCache`` keyed by
``cache_key(scenario, params)``): a request the sweep CLIs already
computed is answered without touching the pool, and vice versa.

Robustness (docs/robustness.md): submits for a cache key already being
computed coalesce onto the in-flight leader (*single-flight*), which is
what makes client resubmits after a dropped reply safe — the retry
never recomputes or double-counts.  A circuit breaker flips the server
into cache-only *degraded* mode after ``breaker_threshold`` consecutive
worker deaths (cache hits still answer; uncached submits are rejected
with a ``degraded`` reason) and half-opens after a cooldown.  An
optional :class:`repro.chaos.ChaosPlan` injects worker kills, pipe
breaks, hangs and cache corruption through the ``worker.call`` and
``cache.put`` hook points.

Everything observable lands in a :class:`repro.obs.metrics
.MetricsRegistry`: queue depth, admission rejections, cache hit rate,
latency histograms (p50/p99 via the ``stats`` op), worker deaths.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from repro.obs.events import EventLog
from repro.obs.live import LiveTelemetry, trace_id
from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import prometheus_text
from repro.obs.store import RunLedger
from repro.serve import protocol
from repro.serve.pool import (
    Worker,
    WorkerDied,
    release_listener,
    share_listener,
)
from repro.serve.registry import scenario_names, traceable
from repro.sweep import SweepCache, cache_key


@dataclass
class _Request:
    seq: int
    scenario: str
    params: Dict[str, Any]
    deadline_s: Optional[float]
    enq_t: float
    future: "asyncio.Future[Dict[str, Any]]"
    key: Optional[str] = None           # cache key, when a cache is attached
    attempts: int = 0                   # completed (failed) delivery attempts
    trace: str = ""                     # live-telemetry trace id ("" = off)
    sid: Optional[int] = None           # serve.request span (telemetry only)
    sid_queue: Optional[int] = None     # serve.queue span (telemetry only)
    sim_trace: str = ""                 # exported sim-time trace, if any

    def remaining(self, now: float) -> Optional[float]:
        if self.deadline_s is None:
            return None
        return self.deadline_s - (now - self.enq_t)


@dataclass
class ServeStats:
    """Counters the ``stats`` op reports (beyond the metrics registry)."""

    started: float = 0.0
    submitted: int = 0
    ok: int = 0
    errors: int = 0
    rejected: int = 0
    expired: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    retries: int = 0
    worker_deaths: int = 0
    worker_spawns: int = 0
    max_queue_depth: int = 0
    breaker_trips: int = 0
    degraded_rejects: int = 0
    coalesced: int = 0


class SimServer:
    """The serving layer: asyncio front, multiprocessing back.

    ``await start()`` binds the socket and spawns the worker loops;
    ``host``/``port`` then hold the bound address (``port=0`` requests
    an ephemeral port).  ``workers`` is resizable at runtime via
    :meth:`resize` (or the ``resize`` wire op).
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        capacity: int = 16,
        cache_dir: Optional[str] = None,
        address: Optional[Union[protocol.ServeAddress, str]] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        store: Any = None,
        shard_id: Optional[int] = None,
        retry_limit: int = 2,
        retry_seed: int = 0,
        retry_base: float = 0.02,
        mp_context: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        telemetry: Optional[LiveTelemetry] = None,
        event_log: Optional[Union[str, EventLog]] = None,
        ledger: Optional[Union[str, RunLedger]] = None,
        trace_dir: Optional[str] = None,
        chaos: Any = None,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 30.0,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        if capacity < 1:
            raise ValueError("need a queue capacity of at least one")
        if breaker_threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.capacity = capacity
        self.address = protocol.as_address(address, port, host=host,
                                           caller="SimServer")
        self.host = self.address.host
        self.port = self.address.port
        self.shard_id = shard_id
        self.retry_limit = retry_limit
        self.retry_seed = retry_seed
        self.retry_base = retry_base
        self.mp_context = mp_context
        self.metrics = metrics or MetricsRegistry(enabled=True)
        # Live telemetry (docs/observability.md): all four are optional
        # and off by default; each instrumentation site costs exactly
        # one `is not None` branch when disabled.
        self.tel = telemetry if (telemetry is not None
                                 and telemetry.enabled) else None
        self.events = (EventLog(event_log) if isinstance(event_log, str)
                       else event_log)
        self.ledger = (RunLedger(ledger) if isinstance(ledger, str)
                       else ledger)
        # Chaos plan (docs/robustness.md): consulted at worker.call and
        # cache.put; injections show up as chaos.* metrics/events.
        self.chaos = chaos
        if chaos is not None:
            chaos.attach(metrics=self.metrics, events=self.events)
        # Result storage: an externally-shared store (the fleet's
        # two-tier ResultStore — every shard points at one) wins over a
        # private per-server SweepCache built from cache_dir.
        if store is not None:
            self.cache = store
        else:
            self.cache = (SweepCache(cache_dir, metrics=self.metrics,
                                     events=self.events, chaos=chaos)
                          if cache_dir else None)
        # Circuit breaker: after `breaker_threshold` consecutive worker
        # deaths the server flips to cache-only degraded mode; after
        # `breaker_cooldown_s` it half-opens (one more death re-trips).
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.degraded = False
        self._consec_deaths = 0
        self._breaker_opened = 0.0
        # Single-flight: one in-flight computation per cache key; later
        # submits for the same key await the leader's future (this is
        # what makes client resubmits after a dropped reply safe).
        self._singleflight: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        self.trace_dir = trace_dir
        self._trace_seq = itertools.count(1)   # fallback server-side ids
        self.stats = ServeStats()
        self._target_workers = workers
        self._queue: "asyncio.Queue[_Request]" = asyncio.Queue(maxsize=capacity)
        self._seq = itertools.count()
        self._loops: Dict[int, asyncio.Task] = {}
        self._workers: Dict[int, Worker] = {}
        self._busy: Dict[int, bool] = {}
        self._retiring: set = set()
        self._next_wid = itertools.count()
        self._inflight = 0
        self._conn_tasks: set = set()
        self._draining = False
        self._stopping = False
        self._server: Optional[asyncio.AbstractServer] = None
        self.stopped = asyncio.Event()      # set once stop() completes

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> "SimServer":
        loop = asyncio.get_running_loop()
        self.stats.started = loop.time()
        for _ in range(self._target_workers):
            self._add_loop()
        if self.address.is_unix:
            try:
                os.unlink(self.address.path)   # stale socket from a dead run
            except OSError:
                pass
            self._server = await asyncio.start_unix_server(
                self._handle_conn, path=self.address.path)
        else:
            self._server = await asyncio.start_server(
                self._handle_conn, host=self.host, port=self.port)
            self.host, self.port = self._server.sockets[0].getsockname()[:2]
            self.address = self.address.with_port(self.port)
        # Forked workers must close their inherited copy of the listen
        # socket, or a stopped server's port would stay accepting for
        # as long as any worker in the process lives (see serve.pool).
        self._listen_fds = [sock.fileno() for sock in self._server.sockets]
        for fd in self._listen_fds:
            share_listener(fd)
        return self

    async def stop(self) -> None:
        """Hard stop: cancel loops, kill workers, close the socket."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            for fd in getattr(self, "_listen_fds", ()):
                release_listener(fd)
            self._listen_fds = []
            if self.address.is_unix:
                try:
                    os.unlink(self.address.path)
                except OSError:
                    pass
        loops = list(self._loops.values())
        for task in loops:
            task.cancel()
        await asyncio.gather(*loops, return_exceptions=True)
        self._loops.clear()
        # Connection handlers for abruptly-dropped clients can still be
        # finishing; reap them so loop teardown never destroys a
        # pending task.
        conns = list(self._conn_tasks)
        for task in conns:
            task.cancel()
        await asyncio.gather(*conns, return_exceptions=True)
        self._conn_tasks.clear()
        for worker in list(self._workers.values()):
            worker.kill()
        self._workers.clear()
        while not self._queue.empty():       # orphaned admissions, if any
            req = self._queue.get_nowait()
            self._resolve(req, {"status": protocol.STATUS_ERROR,
                                "error": "server stopped"})
        if self.tel is not None and self.trace_dir is not None:
            self.tel.write(os.path.join(self.trace_dir, "serve-trace.json"))
        if self.events is not None:
            self.events.emit("serve.stopped")
            self.events.close()
        if self.ledger is not None:
            self.ledger.close()
        self.stopped.set()

    async def drain(self) -> None:
        """Stop admitting; wait until the queue and the pool are empty."""
        self._draining = True
        while self._queue.qsize() or self._inflight:
            await asyncio.sleep(0.01)

    def resize(self, workers: int) -> int:
        """Grow or shrink the worker pool; returns the new target size."""
        if workers < 1:
            raise ValueError("need at least one worker")
        current = [wid for wid in sorted(self._loops) if wid not in self._retiring]
        if workers > len(current):
            for _ in range(workers - len(current)):
                self._add_loop()
        else:
            for wid in current[workers:]:
                self._retiring.add(wid)
                if not self._busy.get(wid):
                    self._loops[wid].cancel()
        self._target_workers = workers
        return workers

    # -- worker pool ---------------------------------------------------------
    def _add_loop(self) -> None:
        wid = next(self._next_wid)
        self._busy[wid] = False
        self._loops[wid] = asyncio.get_running_loop().create_task(
            self._worker_loop(wid), name=f"serve-loop-{wid}")

    def _ensure_worker(self, wid: int) -> Worker:
        worker = self._workers.get(wid)
        if worker is None or not worker.alive:
            worker = Worker(wid, self.mp_context)
            self._workers[wid] = worker
            self.stats.worker_spawns += 1
            self.metrics.inc("serve.worker.spawns")
            if self.events is not None:
                self.events.emit("serve.worker.spawned", wid=wid,
                                 pid=worker.proc.pid)
        return worker

    def _kill_worker(self, wid: int) -> None:
        worker = self._workers.pop(wid, None)
        if worker is not None:
            worker.kill()

    async def _worker_loop(self, wid: int) -> None:
        try:
            while True:
                req = await self._queue.get()
                self._set_depth()
                self._busy[wid] = True
                self._inflight += 1
                try:
                    await self._run_request(req, wid)
                finally:
                    self._inflight -= 1
                    self._busy[wid] = False
                if wid in self._retiring:
                    break
        except asyncio.CancelledError:
            if not self._stopping and wid not in self._retiring:
                raise
        finally:
            self._busy.pop(wid, None)
            self._retiring.discard(wid)
            self._loops.pop(wid, None)
            worker = self._workers.pop(wid, None)
            if worker is not None:
                worker.retire()

    async def _run_request(self, req: _Request, wid: int) -> None:
        loop = asyncio.get_running_loop()
        wait_s = loop.time() - req.enq_t
        self.metrics.observe("serve.queue.wait", wait_s)
        tel = self.tel
        if tel is not None:
            if req.sid_queue is not None:
                tel.annotate(req.sid_queue, wait_s=round(wait_s, 6))
                tel.end(req.sid_queue)
            # Flow edge: request track -> the worker track that picked
            # it up, so Perfetto draws the hand-off arrow.
            tel.flow("serve.dispatch", f"req:{req.trace}",
                     f"serve:worker/{wid}", trace=req.trace)
        meta: Optional[Dict[str, Any]] = None
        if (tel is not None and self.trace_dir is not None
                and req.trace and traceable(req.scenario)):
            meta = {"trace": req.trace,
                    "sim_trace": os.path.join(self.trace_dir,
                                              f"sim-{req.trace}.json")}
        while True:
            remaining = req.remaining(loop.time())
            if remaining is not None and remaining <= 0:
                self._expire(req, "deadline passed while queued"
                             if req.attempts == 0
                             else "deadline passed during retry")
                return
            worker = self._ensure_worker(wid)
            run_t0 = loop.time()
            sid_run = None
            if tel is not None:
                sid_run = tel.begin(f"serve:worker/{wid}", "serve.run",
                                    trace=req.trace, scenario=req.scenario,
                                    attempt=req.attempts + 1)
            task = asyncio.ensure_future(
                asyncio.to_thread(worker.call, req.scenario, req.params, meta,
                                  chaos=self.chaos))
            if remaining is not None:
                done, _pending = await asyncio.wait({task}, timeout=remaining)
                if not done:
                    # Mid-run deadline: the only way to stop a compute-
                    # bound scenario is to kill its process; the killed
                    # pipe unblocks the executor thread with WorkerDied.
                    self._kill_worker(wid)
                    try:
                        await task
                    except WorkerDied:
                        pass
                    if tel is not None:
                        tel.annotate(sid_run, outcome="expired")
                        tel.end(sid_run)
                    self._expire(req, "deadline passed mid-run")
                    return
            try:
                kind, payload = await task
            except WorkerDied:
                self._kill_worker(wid)
                self.stats.worker_deaths += 1
                self.metrics.inc("serve.worker.deaths")
                self._note_worker_death()
                if tel is not None:
                    tel.annotate(sid_run, outcome="worker-died")
                    tel.end(sid_run)
                if self.events is not None:
                    self.events.emit("serve.worker.died", wid=wid,
                                     trace=req.trace, scenario=req.scenario,
                                     attempt=req.attempts + 1)
                req.attempts += 1
                if req.attempts > self.retry_limit:
                    self._resolve(req, {
                        "status": protocol.STATUS_ERROR,
                        "error": f"worker died {req.attempts} time(s); "
                                 f"retry budget ({self.retry_limit}) exhausted",
                        "attempts": req.attempts,
                    })
                    return
                self.stats.retries += 1
                self.metrics.inc("serve.retries")
                if self.events is not None:
                    self.events.emit("serve.request.retried", trace=req.trace,
                                     scenario=req.scenario,
                                     attempt=req.attempts)
                await asyncio.sleep(self._backoff(req))
                continue
            self._consec_deaths = 0     # a live worker answered
            run_s = loop.time() - run_t0
            self.metrics.observe("serve.run", run_s)
            if tel is not None:
                if meta is not None and os.path.exists(meta["sim_trace"]):
                    # Cross-link: wall-clock run span -> the simulated-
                    # time trace the worker exported for this request.
                    req.sim_trace = meta["sim_trace"]
                    tel.annotate(sid_run, sim_trace=req.sim_trace)
                tel.annotate(sid_run, outcome=kind)
                tel.end(sid_run)
            if kind == "ok":
                if self.cache is not None and req.key is not None:
                    self.cache.put(req.key, payload)
                self._resolve(req, {"status": protocol.STATUS_OK,
                                    "result": payload, "cached": False,
                                    "attempts": req.attempts + 1})
            else:
                self._resolve(req, {"status": protocol.STATUS_ERROR,
                                    "error": payload,
                                    "attempts": req.attempts + 1})
            return

    def _backoff(self, req: _Request) -> float:
        """Seeded exponential backoff with deterministic jitter."""
        rng = random.Random(f"{self.retry_seed}:{req.seq}:{req.attempts}")
        return self.retry_base * (2 ** (req.attempts - 1)) * (0.5 + 0.5 * rng.random())

    # -- circuit breaker -----------------------------------------------------
    def _note_worker_death(self) -> None:
        self._consec_deaths += 1
        if not self.degraded and self._consec_deaths >= self.breaker_threshold:
            self.degraded = True
            self._breaker_opened = asyncio.get_running_loop().time()
            self.stats.breaker_trips += 1
            self.metrics.inc("serve.breaker.trips")
            if self.events is not None:
                self.events.emit("serve.breaker.opened",
                                 consecutive_deaths=self._consec_deaths,
                                 threshold=self.breaker_threshold)

    def _degraded_active(self, now: float) -> bool:
        """Is cache-only mode in force right now?  Half-opens after the
        cooldown: one probe request reaches the pool, and a single
        further death re-trips immediately."""
        if not self.degraded:
            return False
        if now - self._breaker_opened >= self.breaker_cooldown_s:
            self.degraded = False
            self._consec_deaths = self.breaker_threshold - 1
            if self.events is not None:
                self.events.emit("serve.breaker.half_open")
            return False
        return True

    def _expire(self, req: _Request, why: str) -> None:
        self._resolve(req, {"status": protocol.STATUS_EXPIRED, "reason": why,
                            "attempts": req.attempts})

    def _resolve(self, req: _Request, response: Dict[str, Any]) -> None:
        if not req.future.done():
            req.future.set_result(response)

    def _set_depth(self) -> None:
        depth = self._queue.qsize()
        self.metrics.set("serve.queue.depth", depth)
        if depth > self.stats.max_queue_depth:
            self.stats.max_queue_depth = depth

    # -- the wire ------------------------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        me = asyncio.current_task()
        if me is not None:
            self._conn_tasks.add(me)
            me.add_done_callback(self._conn_tasks.discard)
        lock = asyncio.Lock()
        tasks = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(self._serve_line(line, writer, lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except asyncio.CancelledError:
            # Cancelled by stop(): finish cleanly rather than letting
            # the cancellation propagate — the streams machinery's
            # done-callback calls task.exception() and would log a
            # spurious CancelledError for every still-open connection.
            if not self._stopping:
                raise
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            # close() without wait_closed(): awaiting here leaves the
            # handler task pending across loop teardown, which asyncio's
            # streams machinery reports as a spurious CancelledError.
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    async def _serve_line(self, line: bytes, writer: asyncio.StreamWriter,
                          lock: asyncio.Lock) -> None:
        try:
            msg = protocol.decode(line)
        except protocol.ProtocolError as err:
            await self._send(writer, lock, {"status": protocol.STATUS_ERROR,
                                            "error": str(err)})
            return
        response = await self._dispatch(msg)
        if "id" in msg:
            response["id"] = msg["id"]
        await self._send(writer, lock, response)

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, lock: asyncio.Lock,
                    obj: Dict[str, Any]) -> None:
        try:
            data = protocol.encode(obj)
        except (TypeError, ValueError) as err:
            data = protocol.encode({"status": protocol.STATUS_ERROR,
                                    "id": obj.get("id"),
                                    "error": f"unserializable result: {err}"})
        async with lock:
            try:
                writer.write(data)
                await writer.drain()
            except (ConnectionError, OSError):
                pass            # client went away; the work still completed

    async def _dispatch(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        bad_version = protocol.check_version(msg)
        if bad_version is not None:
            self.metrics.inc("serve.requests", status="error")
            return dict(bad_version)
        op = msg.get("op")
        if op == "submit":
            return await self._op_submit(msg)
        if op == "stats":
            return {"status": protocol.STATUS_OK, "stats": self.snapshot()}
        if op == "health":
            return self._op_health()
        if op == "metrics":
            return {"status": protocol.STATUS_OK,
                    "prometheus": prometheus_text(self.metrics)}
        if op == "drain":
            await self.drain()
            return {"status": protocol.STATUS_OK, "drained": True,
                    "stats": self.snapshot()}
        if op == "resize":
            try:
                workers = int(msg["workers"])
                return {"status": protocol.STATUS_OK,
                        "workers": self.resize(workers)}
            except (KeyError, TypeError, ValueError) as err:
                return {"status": protocol.STATUS_ERROR,
                        "error": f"bad resize request: {err}"}
        if op == "shutdown":
            asyncio.get_running_loop().call_soon(
                lambda: asyncio.ensure_future(self.stop()))
            return {"status": protocol.STATUS_OK, "stopping": True}
        return {"status": protocol.STATUS_ERROR,
                "error": f"unknown op {op!r}; have: {', '.join(protocol.OPS)}"}

    async def _op_submit(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        scenario = msg.get("scenario")
        params = msg.get("params") or {}
        deadline_s = msg.get("deadline_s")
        self.stats.submitted += 1
        if scenario not in scenario_names():
            self.stats.errors += 1
            self.metrics.inc("serve.requests", status="error")
            return {"status": protocol.STATUS_ERROR,
                    "error": f"unknown scenario {scenario!r}; "
                             f"have: {', '.join(scenario_names())}"}
        if not isinstance(params, dict):
            self.stats.errors += 1
            self.metrics.inc("serve.requests", status="error")
            return {"status": protocol.STATUS_ERROR,
                    "error": "params must be a JSON object"}

        # Trace id: client-minted when present on the wire, else a
        # server fallback — but only when something will consume it.
        trace = str(msg.get("trace") or "")
        tel = self.tel
        observing = (tel is not None or self.events is not None
                     or self.ledger is not None)
        if not trace and observing:
            trace = trace_id("s", next(self._trace_seq))
        sid = None
        if tel is not None:
            sid = tel.begin(f"req:{trace}", "serve.request",
                            trace=trace, scenario=scenario)

        key = None
        if self.cache is not None:
            try:
                key = cache_key(scenario, params)
            except (TypeError, ValueError) as err:
                self.stats.errors += 1
                self.metrics.inc("serve.requests", status="error")
                if tel is not None:
                    tel.annotate(sid, status="error")
                    tel.end(sid)
                return {"status": protocol.STATUS_ERROR,
                        "error": f"params not cacheable: {err}"}
            hit = self.cache.get(key)
            if tel is not None:
                tel.event(f"req:{trace}", "serve.cache.probe", trace=trace,
                          result="hit" if hit is not None else "miss")
            if hit is not None:
                self.stats.cache_hits += 1
                self.stats.ok += 1
                self.metrics.inc("serve.cache", result="hit")
                self.metrics.inc("serve.requests", status="ok")
                latency = loop.time() - t0
                self.metrics.observe("serve.latency", latency)
                if tel is not None:
                    tel.annotate(sid, status="ok", cached=True)
                    tel.end(sid)
                if self.events is not None:
                    self.events.emit("serve.cache.hit", trace=trace,
                                     scenario=scenario, digest=key)
                    self.events.emit("serve.request.completed", trace=trace,
                                     scenario=scenario, status="ok",
                                     cached=True, latency_s=latency)
                if self.ledger is not None:
                    self.ledger.record(kind="serve", scenario=scenario,
                                       digest=key or "", status="ok",
                                       wall_s=latency, cached=True,
                                       trace=trace)
                response = {"status": protocol.STATUS_OK, "result": hit,
                            "cached": True, "latency_s": latency}
                if trace:
                    response["trace"] = trace
                return response
            self.stats.cache_misses += 1
            self.metrics.inc("serve.cache", result="miss")
            if self.events is not None:
                self.events.emit("serve.cache.miss", trace=trace,
                                 scenario=scenario, digest=key)

        # Single-flight: if the same cache key is already being computed,
        # coalesce onto the leader's future instead of re-running it —
        # a resubmit after a dropped reply costs no second computation.
        leader = self._singleflight.get(key) if key is not None else None
        if leader is not None and not leader.done():
            self.stats.coalesced += 1
            self.metrics.inc("serve.coalesced")
            if self.events is not None:
                self.events.emit("serve.request.coalesced", trace=trace,
                                 scenario=scenario, digest=key)
            response = dict(await leader)
            latency = loop.time() - t0
            response["latency_s"] = latency
            response["coalesced"] = True
            status = response.get("status")
            if status == protocol.STATUS_OK:
                self.stats.ok += 1
                self.metrics.observe("serve.latency", latency)
            elif status == protocol.STATUS_EXPIRED:
                self.stats.expired += 1
            else:
                self.stats.errors += 1
            self.metrics.inc("serve.requests", status=status)
            if tel is not None:
                tel.annotate(sid, status=status, coalesced=True)
                tel.end(sid)
            if self.events is not None:
                self.events.emit("serve.request.completed", trace=trace,
                                 scenario=scenario, status=status,
                                 cached=False, latency_s=latency)
            if self.ledger is not None:
                self.ledger.record(kind="serve", scenario=scenario,
                                   digest=key or "", status=str(status),
                                   wall_s=latency, cached=False, trace=trace)
            if trace:
                response["trace"] = trace
            return response

        reason = None
        if self._draining or self._stopping:
            reason = "draining"
        elif self._degraded_active(t0):
            reason = "degraded: cache-only mode (circuit breaker open)"
            self.stats.degraded_rejects += 1
        else:
            req = _Request(seq=next(self._seq), scenario=scenario,
                           params=params, deadline_s=deadline_s,
                           enq_t=t0, future=loop.create_future(), key=key,
                           trace=trace, sid=sid)
            if tel is not None:
                # Child span on the same track: Tracer nests it under
                # the still-open serve.request span automatically.
                req.sid_queue = tel.begin(f"req:{trace}", "serve.queue",
                                          trace=trace)
            try:
                self._queue.put_nowait(req)
                if key is not None:
                    self._singleflight[key] = req.future
            except asyncio.QueueFull:
                reason = "queue full"
                if tel is not None:
                    tel.end(req.sid_queue)
                    req.sid_queue = None
        if reason is not None:
            self.stats.rejected += 1
            self.metrics.inc("serve.requests", status="rejected")
            if tel is not None:
                tel.annotate(sid, status="rejected", reason=reason)
                tel.end(sid)
            if self.events is not None:
                self.events.emit("serve.request.rejected", trace=trace,
                                 scenario=scenario, reason=reason)
            response = {"status": protocol.STATUS_REJECTED, "reason": reason,
                        "capacity": self.capacity}
            if trace:
                response["trace"] = trace
            return response
        self._set_depth()
        if self.events is not None:
            self.events.emit("serve.request.admitted", trace=trace,
                             scenario=scenario, depth=self._queue.qsize())

        try:
            response = dict(await req.future)
        finally:
            if key is not None and self._singleflight.get(key) is req.future:
                del self._singleflight[key]
        latency = loop.time() - t0
        response["latency_s"] = latency
        status = response.get("status")
        if status == protocol.STATUS_OK:
            self.stats.ok += 1
            self.metrics.observe("serve.latency", latency)
        elif status == protocol.STATUS_EXPIRED:
            self.stats.expired += 1
        else:
            self.stats.errors += 1
        self.metrics.inc("serve.requests", status=status)
        if tel is not None:
            tel.annotate(sid, status=status)
            tel.end(sid)
        if self.events is not None:
            self.events.emit("serve.request.completed", trace=trace,
                             scenario=scenario, status=status, cached=False,
                             latency_s=latency,
                             attempts=response.get("attempts"))
        if self.ledger is not None:
            digest = key
            if digest is None:
                try:
                    digest = cache_key(scenario, params)
                except (TypeError, ValueError):
                    digest = ""
            self.ledger.record(kind="serve", scenario=scenario,
                               digest=digest or "", status=str(status),
                               wall_s=latency, cached=False, trace=trace,
                               trace_path=req.sim_trace)
        if trace:
            response["trace"] = trace
        return response

    def _op_health(self) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        alive = sum(1 for w in self._workers.values() if w.alive)
        return {
            "status": protocol.STATUS_OK,
            "protocol_v": protocol.VERSION,
            "shard_id": self.shard_id,
            "workers": self._target_workers,
            "workers_alive": alive,
            "queue_depth": self._queue.qsize(),
            "capacity": self.capacity,
            "draining": self._draining,
            "degraded": self._degraded_active(loop.time()),
            "breaker": {
                "threshold": self.breaker_threshold,
                "consecutive_deaths": self._consec_deaths,
                "trips": self.stats.breaker_trips,
                "cooldown_s": self.breaker_cooldown_s,
            },
            "uptime_s": loop.time() - self.stats.started,
            "scenarios": scenario_names(),
        }

    # -- reporting -----------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable stats: counters + latency percentiles."""
        loop = asyncio.get_running_loop()
        uptime = max(loop.time() - self.stats.started, 1e-9)
        lat = self.metrics.merged_histogram("serve.latency").summary()
        wait = self.metrics.merged_histogram("serve.queue.wait").summary()
        run = self.metrics.merged_histogram("serve.run").summary()
        s = self.stats
        return {
            "uptime_s": uptime,
            "workers": self._target_workers,
            "capacity": self.capacity,
            "queue_depth": self._queue.qsize(),
            "max_queue_depth": s.max_queue_depth,
            "submitted": s.submitted,
            "ok": s.ok,
            "errors": s.errors,
            "rejected": s.rejected,
            "expired": s.expired,
            "retries": s.retries,
            "worker_deaths": s.worker_deaths,
            "worker_spawns": s.worker_spawns,
            "breaker_trips": s.breaker_trips,
            "degraded_rejects": s.degraded_rejects,
            "coalesced": s.coalesced,
            "degraded": self.degraded,
            "cache": {"hits": s.cache_hits, "misses": s.cache_misses,
                      "hit_rate": (s.cache_hits / (s.cache_hits + s.cache_misses)
                                   if (s.cache_hits + s.cache_misses) else 0.0)},
            "throughput_rps": s.ok / uptime,
            "latency_s": lat,
            "queue_wait_s": wait,
            "run_s": run,
        }


class ServerThread:
    """Run a :class:`SimServer` on a private event loop in a thread.

    For synchronous hosts — the CLI's self-hosted loadgen, tests, the
    sync client's examples::

        with ServerThread(workers=2) as srv:
            client = ServeClient(srv.address)
    """

    def __init__(self, **server_kwargs: Any) -> None:
        self._kwargs = server_kwargs
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self.server: Optional[SimServer] = None

    def __enter__(self) -> "ServerThread":
        started = threading.Event()
        boot_error: List[BaseException] = []

        def _run() -> None:
            self._loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self._loop)
            try:
                self.server = self._loop.run_until_complete(
                    SimServer(**self._kwargs).start())
            except BaseException as err:   # fail fast, don't hang __enter__
                boot_error.append(err)
                started.set()
                return
            started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(target=_run, name="serve-server",
                                        daemon=True)
        self._thread.start()
        if not started.wait(timeout=30.0):
            raise RuntimeError("serve server failed to start within 30s")
        if boot_error:
            self._thread.join(timeout=10.0)
            self._loop = None
            raise boot_error[0]
        return self

    @property
    def address(self) -> protocol.ServeAddress:
        return self.server.address

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def call(self, coro_fn, *args: Any, timeout: float = 60.0) -> Any:
        """Run ``coro_fn(server, *args)`` on the server's loop."""
        fut = asyncio.run_coroutine_threadsafe(
            coro_fn(self.server, *args), self._loop)
        return fut.result(timeout=timeout)

    def __exit__(self, *exc: Any) -> None:
        if self._loop is not None:
            asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop).result(timeout=30.0)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            self._loop.close()

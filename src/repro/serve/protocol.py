"""Wire format for ``repro.serve``: newline-delimited canonical JSON.

One request object per line, one response object per line.  Responses
carry the request's ``id`` back so a client may pipeline many requests
over a single connection and match out-of-order completions (the async
client does; the sync client keeps one request in flight).

Requests::

    {"op": "submit", "id": 7, "scenario": "sim", "params": {...},
     "deadline_s": 2.5, "trace": "cli-1"}
    {"op": "stats" | "health" | "metrics" | "drain" | "resize"
          | "shutdown", "id": 8, ...op-specific fields...}

Responses always carry ``status``: ``ok`` | ``rejected`` | ``expired``
| ``error``, plus op-specific payload fields (``result``, ``stats``,
``reason``...).  See docs/serving.md for the full catalogue.

``trace`` is the optional client-minted trace id (live telemetry,
docs/observability.md).  The server echoes it in the submit response
and stamps it on every span, event-log line and ledger row the request
produces; when absent the server mints a fallback ``s-<n>`` id.
"""

from __future__ import annotations

import json
from typing import Any, Dict

# Submission outcome statuses (docs/serving.md).
STATUS_OK = "ok"
STATUS_REJECTED = "rejected"     # admission control: queue full / draining
STATUS_EXPIRED = "expired"       # deadline passed in queue or mid-run
STATUS_ERROR = "error"           # scenario raised, worker retries exhausted,
                                 # or the request itself was malformed

OPS = ("submit", "stats", "health", "metrics", "drain", "resize", "shutdown")


class ProtocolError(ValueError):
    """A line that is not a JSON object with a valid ``op``."""


def encode(obj: Dict[str, Any]) -> bytes:
    """One canonical-JSON line (sorted keys, compact separators)."""
    return (json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n").encode()


def decode(line: bytes) -> Dict[str, Any]:
    try:
        obj = json.loads(line)
    except ValueError as err:
        raise ProtocolError(f"bad JSON: {err}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    return obj

"""Wire format for ``repro.serve``: newline-delimited canonical JSON.

One request object per line, one response object per line.  Responses
carry the request's ``id`` back so a client may pipeline many requests
over a single connection and match out-of-order completions (the async
client does; the sync client keeps one request in flight).

Requests::

    {"op": "submit", "id": 7, "v": 1, "scenario": "sim", "params": {...},
     "deadline_s": 2.5, "trace": "cli-1"}
    {"op": "stats" | "health" | "metrics" | "drain" | "resize"
          | "shutdown", "id": 8, "v": 1, ...op-specific fields...}

Responses always carry ``status``: ``ok`` | ``rejected`` | ``expired``
| ``error``, plus op-specific payload fields (``result``, ``stats``,
``reason``...).  See docs/serving.md for the full catalogue.

``v`` is the protocol version (:data:`VERSION`).  The clients stamp it
on every request; a server receiving a different version answers a
one-line structured error (:func:`version_error`) instead of guessing —
required for mixed-version fleets, where a router and its shards may
be upgraded at different times.  Requests *without* ``v`` are accepted
as version-1 legacy traffic.

``trace`` is the optional client-minted trace id (live telemetry,
docs/observability.md).  The server echoes it in the submit response
and stamps it on every span, event-log line and ledger row the request
produces; when absent the server mints a fallback ``s-<n>`` id.

:class:`ServeAddress` is the one address type every client, server and
CLI in the serve layer accepts — TCP ``host:port``, a unix-domain
socket path, and an optional fleet ``role`` — replacing the five
independently-duplicated ``host``/``port`` kwarg pairs that predated
it (the legacy kwargs keep working behind a ``DeprecationWarning``).
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Optional

#: Wire-protocol version stamped by clients and validated by servers.
VERSION = 1

# Submission outcome statuses (docs/serving.md).
STATUS_OK = "ok"
STATUS_REJECTED = "rejected"     # admission control: queue full / draining
STATUS_EXPIRED = "expired"       # deadline passed in queue or mid-run
STATUS_ERROR = "error"           # scenario raised, worker retries exhausted,
                                 # or the request itself was malformed

OPS = ("submit", "stats", "health", "metrics", "drain", "resize", "shutdown")

#: Fleet roles an address may advertise (purely descriptive).
ROLES = ("server", "router", "shard")


class ProtocolError(ValueError):
    """A line that is not a JSON object with a valid ``op``."""


@dataclass(frozen=True)
class ServeAddress:
    """Where a serve endpoint lives: TCP ``host:port`` or a unix socket.

    ``port=0`` requests an ephemeral port (servers rebind it after
    listening).  ``path`` switches the endpoint to a unix-domain socket
    (``host``/``port`` are then ignored).  ``role`` is an optional
    fleet annotation: ``"router"`` for the fleet front door,
    ``"shard"`` for a backend :class:`~repro.serve.server.SimServer`,
    ``"server"`` (the default) for a standalone one.

    Accepted everywhere an endpoint is named::

        ServeClient(ServeAddress("127.0.0.1", 7077))
        ServeClient(ServeAddress.parse("127.0.0.1:7077"))
        ServeClient(ServeAddress.parse("unix:/run/repro-serve.sock"))
        SimServer(address=ServeAddress(port=0))
    """

    host: str = "127.0.0.1"
    port: int = 0
    path: Optional[str] = None      # unix-domain socket path (overrides TCP)
    role: str = "server"

    def __post_init__(self) -> None:
        if self.role not in ROLES:
            raise ValueError(f"unknown role {self.role!r} (have {ROLES})")
        if self.path is None and not (0 <= int(self.port) <= 65535):
            raise ValueError(f"port out of range: {self.port}")

    @property
    def is_unix(self) -> bool:
        return self.path is not None

    @classmethod
    def parse(cls, text: str, *, role: str = "server") -> "ServeAddress":
        """``host:port``, ``:port``, ``host``, or ``unix:/path``."""
        text = text.strip()
        if text.startswith("unix:"):
            path = text[len("unix:"):]
            if not path:
                raise ValueError("unix: address needs a socket path")
            return cls(path=path, role=role)
        host, sep, port = text.rpartition(":")
        if not sep:
            return cls(host=text or "127.0.0.1", role=role)
        try:
            return cls(host=host or "127.0.0.1", port=int(port), role=role)
        except ValueError:
            raise ValueError(f"bad address {text!r}: port must be an integer "
                             f"(or use 'unix:/path')") from None

    def with_port(self, port: int) -> "ServeAddress":
        """The same address bound to a concrete port (post-listen)."""
        return ServeAddress(host=self.host, port=port, path=self.path,
                            role=self.role)

    def __str__(self) -> str:
        if self.path is not None:
            return f"unix:{self.path}"
        return f"{self.host}:{self.port}"


def as_address(address: Any = None, port: Any = None, *,
               host: Any = None, default: Optional[ServeAddress] = None,
               caller: str = "this API") -> ServeAddress:
    """Normalize the one-address-type API surface.

    New style: a :class:`ServeAddress` (or a parseable string) as the
    single ``address`` argument.  Legacy style: separate ``host``/
    ``port`` values — still honored, with a :class:`DeprecationWarning`
    naming the caller, so the five historical host/port kwarg pairs
    keep working during the migration (docs/serving.md).
    """
    legacy_host: Optional[str] = None
    if host is not None:
        legacy_host = str(host)
    elif isinstance(address, str) and port is not None:
        legacy_host = address          # positional (host, port) call
        address = None
    if legacy_host is not None or port is not None:
        if isinstance(address, ServeAddress):
            raise TypeError(f"{caller}: pass either a ServeAddress or "
                            f"legacy host/port, not both")
        warnings.warn(
            f"{caller}: separate host/port arguments are deprecated; "
            f"pass a repro.serve.ServeAddress (or 'host:port' string)",
            DeprecationWarning, stacklevel=3)
        base = default or ServeAddress()
        return ServeAddress(host=legacy_host or base.host,
                            port=int(port if port is not None else base.port),
                            role=base.role)
    if address is None:
        return default or ServeAddress()
    if isinstance(address, ServeAddress):
        return address
    if isinstance(address, str):
        return ServeAddress.parse(address)
    raise TypeError(f"{caller}: expected ServeAddress, 'host:port' string, "
                    f"or legacy host/port, got {type(address).__name__}")


def version_error(got: Any) -> Dict[str, Any]:
    """The structured one-line reply to a version-mismatched request."""
    return {
        "status": STATUS_ERROR,
        "error": f"protocol version mismatch: server speaks v{VERSION}, "
                 f"request carried v={got!r}",
        "v": VERSION,
        "client_v": got,
    }


def check_version(msg: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """The mismatch error for ``msg``, or ``None`` when compatible.

    A missing ``v`` is accepted (pre-versioning clients are v1)."""
    v = msg.get("v")
    if v is None or v == VERSION:
        return None
    return version_error(v)


def encode(obj: Dict[str, Any]) -> bytes:
    """One canonical-JSON line (sorted keys, compact separators)."""
    return (json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n").encode()


def decode(line: bytes) -> Dict[str, Any]:
    try:
        obj = json.loads(line)
    except ValueError as err:
        raise ProtocolError(f"bad JSON: {err}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    return obj

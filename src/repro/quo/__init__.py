"""Simulated QUO runtime library (paper §IV-E).

QUO ("status quo") reconfigures run-time environments for coupled
MPI+X applications: phases with different process counts, threading
factors, and affinities.  The piece the paper measures is *process
quiescence*: parking the node's MPI processes while a subset runs
multi-threaded kernels.

Two mechanisms are provided, matching the paper's comparison:

* :meth:`QuoContext.barrier` — QUO_barrier: a low-perturbation
  node-local shared-memory barrier (the QUO 1.3 baseline);
* :meth:`QuoContext.sessions_barrier` — the prototype's replacement:
  a sessions-derived node communicator plus a loop alternating
  ``MPI_Ibarrier``/``MPI_Test`` with ``nanosleep()``, whose wakeup
  quantum is the source of the ≤3% overhead in Fig 7.
"""

from repro.quo.context import QuoContext, QUO_OBJ_MACHINE, QUO_OBJ_NODE, QUO_OBJ_SOCKET, QUO_OBJ_CORE

__all__ = [
    "QuoContext",
    "QUO_OBJ_MACHINE",
    "QUO_OBJ_NODE",
    "QUO_OBJ_SOCKET",
    "QUO_OBJ_CORE",
]

"""QUO context: node topology, binding bookkeeping, quiescence.

``QUO_create`` is where the paper integrated MPI Sessions into 2MESH
("we modified QUO_create() ... to include all relevant MPI session
initialization logic"): with ``use_sessions=True`` the context opens
its own MPI Session, resolves the ``mpi://shared`` process set, and
builds its node communicator with ``MPI_Comm_create_from_group`` —
leaving the host application's own MPI usage untouched
(compartmentalization).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.simtime.primitives import SimBarrier
from repro.simtime.process import Sleep

# Hardware object types (hwloc-style), used by the binding API.
QUO_OBJ_MACHINE = 0
QUO_OBJ_NODE = 1
QUO_OBJ_SOCKET = 2
QUO_OBJ_CORE = 3

_SHM_BARRIER_COST = 1.5e-6   # low-perturbation shared-memory barrier


def _node_barriers(cluster) -> Dict[Tuple[str, int], SimBarrier]:
    """Per-cluster registry of node barriers (QUO's mmap'd segments).

    Stored on the cluster object so sequential simulations can never
    see each other's state (a module-global keyed by id() could be
    resurrected after garbage collection)."""
    reg = getattr(cluster, "_quo_barriers", None)
    if reg is None:
        reg = {}
        cluster._quo_barriers = reg
    return reg


class QuoError(RuntimeError):
    pass


class QuoContext:
    """One process's handle on the QUO runtime."""

    def __init__(self, runtime, use_sessions: bool) -> None:
        self.runtime = runtime
        self.use_sessions = use_sessions
        self.session = None
        self.node_comm = None
        self.node_rank: int = -1
        self.node_size: int = 0
        self._bind_stack: List[int] = []
        self._shm_barrier: Optional[SimBarrier] = None
        self.freed = False

    def _barrier_key(self) -> Tuple:
        return (self.runtime.proc.nspace, self.runtime.node)

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, runtime, use_sessions: bool = False):
        """Sub-generator: QUO_create.

        ``use_sessions=False`` models QUO 1.3: node discovery via its
        own shared-memory machinery (simulated directly, ~20 SLOC of
        app perturbation avoided).  ``use_sessions=True`` models the
        prototype integration: a private MPI Session supplies the node
        communicator.
        """
        ctx = cls(runtime, use_sessions)
        local = runtime.job.topology.ranks_on_node(runtime.node)
        ctx.node_size = len(local)
        ctx.node_rank = local.index(runtime.rank_in_job)
        if use_sessions:
            ctx.session = yield from runtime.session_init()
            group = yield from ctx.session.group_from_pset("mpi://shared")
            ctx.node_comm = yield from runtime.comm_create_from_group(
                group, "quo-node"
            )
        else:
            # QUO 1.3: set up the mmap'd node barrier (no MPI objects).
            yield Sleep(runtime.machine.local_rpc_cost)
        barriers = _node_barriers(runtime.cluster)
        key = ctx._barrier_key()
        if key not in barriers:
            barriers[key] = SimBarrier(ctx.node_size)
        ctx._shm_barrier = barriers[key]
        return ctx

    def free(self):
        """Sub-generator: QUO_free."""
        self._check()
        self.freed = True
        if self.node_comm is not None:
            self.node_comm.free()
            self.node_comm = None
        if self.session is not None:
            yield from self.session.finalize()
            self.session = None
        _node_barriers(self.runtime.cluster).pop(self._barrier_key(), None)
        return
        yield  # pragma: no cover

    def _check(self) -> None:
        if self.freed:
            raise QuoError("QUO context used after free")

    # ------------------------------------------------------------------
    # introspection (QUO_nnodes / QUO_nqids / QUO_id ...)
    # ------------------------------------------------------------------
    def nqids(self) -> int:
        """Number of processes on this node (QUO_nqids)."""
        self._check()
        return self.node_size

    def qid(self) -> int:
        """This process's node-local id (QUO_id)."""
        self._check()
        return self.node_rank

    def nobjs(self, obj_type: int) -> int:
        """Hardware object count on this node (QUO_nobjs_by_type)."""
        self._check()
        cores = self.runtime.machine.cores_per_node
        return {QUO_OBJ_MACHINE: 1, QUO_OBJ_NODE: 1, QUO_OBJ_SOCKET: 2,
                QUO_OBJ_CORE: cores}[obj_type]

    # ------------------------------------------------------------------
    # binding (bookkeeping only; affinity has no cost consequence here)
    # ------------------------------------------------------------------
    def bind_push(self, obj_type: int) -> None:
        self._check()
        self._bind_stack.append(obj_type)

    def bind_pop(self) -> int:
        self._check()
        if not self._bind_stack:
            raise QuoError("QUO bind stack is empty")
        return self._bind_stack.pop()

    @property
    def bound(self) -> Optional[int]:
        return self._bind_stack[-1] if self._bind_stack else None

    def auto_distrib(self, workers_per_node: int) -> bool:
        """QUO_auto_distrib: am I one of the node's compute leaders?"""
        self._check()
        return self.node_rank < workers_per_node

    # ------------------------------------------------------------------
    # quiescence (the measured mechanisms)
    # ------------------------------------------------------------------
    def barrier(self):
        """Sub-generator: QUO_barrier — node shared-memory barrier."""
        self._check()
        yield Sleep(_SHM_BARRIER_COST)
        yield from self._shm_barrier.wait()

    def sessions_barrier(self):
        """Sub-generator: the prototype's quiescence replacement.

        "We emulated a low-perturbation MPI_Barrier() by looping over
        alternating calls to MPI_Ibarrier() and nanosleep() until
        completion" (paper §IV-E).  Each poll miss costs one nanosleep
        quantum — the source of the small overhead in Fig 7.
        """
        self._check()
        if self.node_comm is None:
            raise QuoError("sessions_barrier requires use_sessions=True")
        req = yield from self.node_comm.ibarrier()
        while True:
            done, _ = req.test()
            if done:
                return
            yield Sleep(self.runtime.machine.nanosleep_quantum)

    def quiesce(self):
        """Sub-generator: barrier via whichever mechanism this context uses."""
        if self.use_sessions:
            yield from self.sessions_barrier()
        else:
            yield from self.barrier()

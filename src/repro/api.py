"""The public entry point: launch simulated MPI programs.

    from repro.api import run_mpi

    def main(mpi):
        world = yield from mpi.mpi_init()
        value = yield from world.allreduce(world.rank, op=SUM)
        yield from mpi.mpi_finalize()
        return value

    results = run_mpi(8, main)

Each rank's ``main`` is a generator receiving its
:class:`~repro.ompi.runtime.MpiRuntime`; blocking MPI calls are
``yield from``-ed.  ``run_mpi`` boots a cluster, launches the job,
runs the simulation to quiescence, and returns per-rank results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.cluster import Cluster
from repro.machine.model import MachineModel
from repro.ompi.config import MpiConfig
from repro.ompi.pml.ob1 import Fabric
from repro.ompi.runtime import MpiRuntime
from repro.prrte.launch import Job


@dataclass
class MpiWorld:
    """A launched job plus everything needed to run rank programs."""

    cluster: Cluster
    job: Job
    fabric: Fabric
    runtimes: List[MpiRuntime]

    @property
    def num_ranks(self) -> int:
        return self.job.num_ranks

    def spawn_ranks(self, main: Callable, args: Sequence[Any] = ()) -> List:
        """Start ``main(runtime, *args)`` on every rank; returns processes."""
        from repro.simtime.trace import track_for_proc

        procs = []
        for rank, rt in enumerate(self.runtimes):
            gen = main(rt, *args)
            sim = self.cluster.spawn(
                gen, name=f"rank{rank}", track=track_for_proc(self.job.proc(rank))
            )
            self.cluster.faults.register_rank_proc(self.job.proc(rank), sim)
            procs.append(sim)
        for p in procs:
            p.defuse()
        return procs

    def run(self, until: Optional[float] = None) -> float:
        return self.cluster.run(until=until)


def make_world(
    nprocs: int,
    machine: Optional[MachineModel] = None,
    ppn: Optional[int] = None,
    config: Optional[MpiConfig] = None,
    psets: Optional[Dict[str, Sequence[int]]] = None,
    grpcomm_mode: str = "tree",
    tracer=None,
    cluster: Optional[Cluster] = None,
    fabric: Optional[Fabric] = None,
    recovery: bool = False,
    recovery_seed: int = 0,
    engine_compat: bool = False,
) -> MpiWorld:
    """Boot a cluster and launch (but do not run) an MPI job.

    Pass an existing ``cluster`` (and optionally ``fabric``) to co-host
    several jobs on one DVM — the PRRTE model, where one set of daemons
    serves many ``prun`` invocations.  Co-hosted jobs share the PMIx
    servers and the PGCID space but have distinct namespaces.
    ``recovery=True`` enables the fault-recovery layer (reliable RML,
    tree healing, ULFM-lite shrink — docs/recovery.md).
    """
    if cluster is None:
        cluster = Cluster(machine=machine, grpcomm_mode=grpcomm_mode, tracer=tracer,
                          recovery=recovery, recovery_seed=recovery_seed,
                          engine_compat=engine_compat)
    elif machine is not None and machine is not cluster.machine:
        raise ValueError("pass machine or an existing cluster, not both")
    job = cluster.launch(nprocs, ppn=ppn, psets=psets)
    fabric = fabric or Fabric(cluster)
    config = config or MpiConfig.baseline()
    runtimes = [MpiRuntime(cluster, job, fabric, r, config) for r in range(nprocs)]
    for rt in runtimes:
        cluster.faults.register_runtime(rt)
    return MpiWorld(cluster=cluster, job=job, fabric=fabric, runtimes=runtimes)


def run_mpi(
    nprocs: int,
    main: Callable,
    *,
    machine: Optional[MachineModel] = None,
    ppn: Optional[int] = None,
    config: Optional[MpiConfig] = None,
    psets: Optional[Dict[str, Sequence[int]]] = None,
    args: Sequence[Any] = (),
    grpcomm_mode: str = "tree",
    tracer=None,
    return_world: bool = False,
):
    """Run ``main`` on ``nprocs`` simulated ranks to completion.

    Returns the list of per-rank return values (or ``(results, world)``
    when ``return_world`` is set, for benchmarks that need the clock or
    counters afterwards).  Raises the first rank failure, if any.
    """
    world = make_world(
        nprocs,
        machine=machine,
        ppn=ppn,
        config=config,
        psets=psets,
        grpcomm_mode=grpcomm_mode,
        tracer=tracer,
    )
    procs = world.spawn_ranks(main, args)
    world.run()
    for p in procs:
        if p.exception is not None:
            raise p.exception
    results = [p.result for p in procs]
    if return_world:
        return results, world
    return results

"""The public entry point: launch simulated MPI programs.

    from repro.api import SimSpec, run_mpi

    def main(mpi):
        world = yield from mpi.mpi_init()
        value = yield from world.allreduce(world.rank, op=SUM)
        yield from mpi.mpi_finalize()
        return value

    results = run_mpi(SimSpec(nprocs=8), main)

Each rank's ``main`` is a generator receiving its
:class:`~repro.ompi.runtime.MpiRuntime`; blocking MPI calls are
``yield from``-ed.  ``run_mpi`` boots a cluster, launches the job,
runs the simulation to quiescence, and returns per-rank results.

:class:`SimSpec` is the one description of a simulated run — machine,
layout, MPI config, recovery and engine knobs — shared by
:func:`make_world`, :func:`run_mpi`, ``Cluster.from_spec``, the
``repro.serve`` wire format and the ``repro.sweep`` cache keys.  The
historical loose-kwargs spellings still work but are deprecated
(``DeprecationWarning``); see docs/api.md.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster import Cluster
from repro.machine.model import MachineModel
from repro.ompi.config import MpiConfig
from repro.ompi.pml.ob1 import Fabric
from repro.ompi.runtime import MpiRuntime
from repro.prrte.launch import Job


@dataclass(frozen=True)
class SimSpec:
    """Immutable description of one simulated run.

    Consolidates the parameters that used to be loose kwargs spread
    across ``make_world``/``run_mpi``/``Cluster``.  A spec is pure
    data: everything except ``tracer`` round-trips through
    :meth:`to_payload`/:meth:`from_payload` (the ``repro.serve`` wire
    format, also usable as a sweep-cache key component).
    """

    nprocs: int = 1
    machine: Optional[MachineModel] = None      # None -> laptop preset
    ppn: Optional[int] = None                   # procs per node; None -> packed
    config: Optional[MpiConfig] = None          # None -> MpiConfig.baseline()
    psets: Optional[Mapping[str, Tuple[int, ...]]] = None
    grpcomm_mode: str = "tree"
    grpcomm_radix: int = 2
    tracer: Any = None                          # live object; never serialized
    recovery: bool = False
    recovery_seed: int = 0
    engine_compat: bool = False
    partitions: int = 1                 # worker processes (repro.dsim); 1 = in-process

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError("need at least one rank")
        if self.partitions < 1:
            raise ValueError("need at least one partition")
        if self.psets is not None:
            # Normalize to plain dict-of-tuples so equality and payloads
            # are insensitive to the caller's container choices.
            object.__setattr__(
                self, "psets",
                {name: tuple(ranks) for name, ranks in dict(self.psets).items()},
            )

    def replace(self, **overrides: Any) -> "SimSpec":
        """A copy of this spec with the given fields overridden."""
        return replace(self, **overrides)

    # -- wire format ---------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """JSON-serializable dict; inverse of :meth:`from_payload`.

        This is the ``repro.serve`` request format and is stable under
        canonical JSON dumping, so ``repro.sweep.cache_key`` over it is
        a valid cache identity.  A live ``tracer`` cannot cross a
        process boundary and is rejected.
        """
        if self.tracer is not None:
            raise ValueError("SimSpec.tracer is not wire-serializable; "
                             "attach tracers on the receiving side")
        return {
            "nprocs": self.nprocs,
            "machine": asdict(self.machine) if self.machine is not None else None,
            "ppn": self.ppn,
            "config": asdict(self.config) if self.config is not None else None,
            "psets": ({name: list(ranks) for name, ranks in self.psets.items()}
                      if self.psets is not None else None),
            "grpcomm_mode": self.grpcomm_mode,
            "grpcomm_radix": self.grpcomm_radix,
            "recovery": self.recovery,
            "recovery_seed": self.recovery_seed,
            "engine_compat": self.engine_compat,
            "partitions": self.partitions,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "SimSpec":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown SimSpec payload field(s): {unknown}")
        kw: Dict[str, Any] = dict(payload)
        if kw.get("machine") is not None:
            kw["machine"] = MachineModel(**kw["machine"])
        if kw.get("config") is not None:
            kw["config"] = MpiConfig(**kw["config"])
        if kw.get("tracer") is not None:
            raise ValueError("SimSpec payloads cannot carry a tracer")
        kw.pop("tracer", None)
        return cls(**kw)


@dataclass
class MpiWorld:
    """A launched job plus everything needed to run rank programs."""

    cluster: Cluster
    job: Job
    fabric: Fabric
    runtimes: List[MpiRuntime]
    spec: Optional[SimSpec] = None      # the spec this world was built from

    @property
    def num_ranks(self) -> int:
        return self.job.num_ranks

    def spawn_ranks(self, main: Callable, args: Sequence[Any] = (),
                    ranks: Optional[Sequence[int]] = None) -> List:
        """Start ``main(runtime, *args)`` on every rank; returns processes.

        ``ranks`` restricts spawning to a subset (``repro.dsim`` workers
        start only the ranks their partition owns); the returned list
        then covers exactly those ranks, in the given order.
        """
        from repro.simtime.trace import track_for_proc

        procs = []
        selected = range(len(self.runtimes)) if ranks is None else ranks
        for rank in selected:
            rt = self.runtimes[rank]
            gen = main(rt, *args)
            sim = self.cluster.spawn(
                gen, name=f"rank{rank}", track=track_for_proc(self.job.proc(rank))
            )
            self.cluster.faults.register_rank_proc(self.job.proc(rank), sim)
            procs.append(sim)
        for p in procs:
            p.defuse()
        return procs

    def run(self, until: Optional[float] = None) -> float:
        return self.cluster.run(until=until)


# Legacy make_world/run_mpi kwargs subsumed by SimSpec, with the
# defaults the old signatures used.  Anything here passed explicitly
# (i.e. differing from the default) routes through the deprecation shim.
_LEGACY_DEFAULTS: Dict[str, Any] = {
    "machine": None,
    "ppn": None,
    "config": None,
    "psets": None,
    "grpcomm_mode": "tree",
    "grpcomm_radix": 2,
    "tracer": None,
    "recovery": False,
    "recovery_seed": 0,
    "engine_compat": False,
}


def _resolve_spec(caller: str, nprocs, spec: Optional[SimSpec],
                  legacy: Dict[str, Any]) -> SimSpec:
    """One SimSpec from (positional nprocs-or-spec, spec=, legacy kwargs).

    The shim keeps every historical call shape working; non-default
    legacy kwargs emit a ``DeprecationWarning`` naming the replacement.
    """
    if isinstance(nprocs, SimSpec):
        if spec is not None:
            raise TypeError(f"{caller}: spec passed twice")
        spec, nprocs = nprocs, None
    used = {k: v for k, v in legacy.items() if v is not _LEGACY_DEFAULTS[k]
            and v != _LEGACY_DEFAULTS[k]}
    if spec is not None:
        if not isinstance(spec, SimSpec):
            raise TypeError(f"{caller}: spec must be a SimSpec, "
                            f"got {type(spec).__name__}")
        if used:
            raise TypeError(f"{caller}: pass spec=... or the legacy kwargs "
                            f"({', '.join(sorted(used))}), not both")
        if nprocs is not None and nprocs != spec.nprocs:
            raise ValueError(f"{caller}: nprocs={nprocs} conflicts with "
                             f"spec.nprocs={spec.nprocs}")
        return spec
    if nprocs is None:
        raise TypeError(f"{caller}: pass nprocs or a SimSpec")
    if used:
        warnings.warn(
            f"{caller}({', '.join(sorted(used))}=...) legacy kwargs are "
            f"deprecated; build a repro.api.SimSpec and pass "
            f"{caller}(spec) (docs/api.md)",
            DeprecationWarning, stacklevel=3,
        )
    return SimSpec(nprocs=nprocs, **legacy)


def make_world(
    nprocs=None,
    machine: Optional[MachineModel] = None,
    ppn: Optional[int] = None,
    config: Optional[MpiConfig] = None,
    psets: Optional[Dict[str, Sequence[int]]] = None,
    grpcomm_mode: str = "tree",
    tracer=None,
    cluster: Optional[Cluster] = None,
    fabric: Optional[Fabric] = None,
    recovery: bool = False,
    recovery_seed: int = 0,
    engine_compat: bool = False,
    *,
    grpcomm_radix: int = 2,
    spec: Optional[SimSpec] = None,
) -> MpiWorld:
    """Boot a cluster and launch (but do not run) an MPI job.

    The first positional may be a :class:`SimSpec` (preferred) or a
    rank count combined with legacy kwargs (deprecated shim).  Pass an
    existing ``cluster`` (and optionally ``fabric``) to co-host several
    jobs on one DVM — the PRRTE model, where one set of daemons serves
    many ``prun`` invocations.  Co-hosted jobs share the PMIx servers
    and the PGCID space but have distinct namespaces.
    ``recovery=True`` enables the fault-recovery layer (reliable RML,
    tree healing, ULFM-lite shrink — docs/recovery.md).
    """
    spec = _resolve_spec(
        "make_world", nprocs, spec,
        dict(machine=machine, ppn=ppn, config=config, psets=psets,
             grpcomm_mode=grpcomm_mode, grpcomm_radix=grpcomm_radix,
             tracer=tracer, recovery=recovery, recovery_seed=recovery_seed,
             engine_compat=engine_compat),
    )
    if cluster is None:
        cluster = Cluster.from_spec(spec)
    elif spec.machine is not None and spec.machine is not cluster.machine:
        raise ValueError("pass machine or an existing cluster, not both")
    job = cluster.launch(spec.nprocs, ppn=spec.ppn, psets=spec.psets)
    fabric = fabric or Fabric(cluster)
    config = spec.config or MpiConfig.baseline()
    runtimes = [MpiRuntime(cluster, job, fabric, r, config)
                for r in range(spec.nprocs)]
    for rt in runtimes:
        cluster.faults.register_runtime(rt)
    return MpiWorld(cluster=cluster, job=job, fabric=fabric,
                    runtimes=runtimes, spec=spec)


def run_mpi(
    nprocs=None,
    main: Optional[Callable] = None,
    *,
    machine: Optional[MachineModel] = None,
    ppn: Optional[int] = None,
    config: Optional[MpiConfig] = None,
    psets: Optional[Dict[str, Sequence[int]]] = None,
    args: Sequence[Any] = (),
    grpcomm_mode: str = "tree",
    grpcomm_radix: int = 2,
    tracer=None,
    recovery: bool = False,
    recovery_seed: int = 0,
    engine_compat: bool = False,
    return_world: bool = False,
    spec: Optional[SimSpec] = None,
):
    """Run ``main`` on the ranks described by a :class:`SimSpec`.

    ``run_mpi(SimSpec(nprocs=8), main)`` — or the deprecated
    ``run_mpi(8, main, machine=...)`` shim.  Every spec field
    (including ``recovery``/``recovery_seed``/``engine_compat``, which
    the old kwargs API silently dropped) reaches :func:`make_world`:
    the two entry points share one parameter path and cannot diverge.

    Returns the list of per-rank return values (or ``(results, world)``
    when ``return_world`` is set, for benchmarks that need the clock or
    counters afterwards).  Raises the first rank failure, if any.
    """
    if main is None:
        raise TypeError("run_mpi: missing the per-rank main() generator")
    spec = _resolve_spec(
        "run_mpi", nprocs, spec,
        dict(machine=machine, ppn=ppn, config=config, psets=psets,
             grpcomm_mode=grpcomm_mode, grpcomm_radix=grpcomm_radix,
             tracer=tracer, recovery=recovery, recovery_seed=recovery_seed,
             engine_compat=engine_compat),
    )
    world = make_world(spec=spec)
    procs = world.spawn_ranks(main, args)
    world.run()
    for p in procs:
        if p.exception is not None:
            raise p.exception
    results = [p.result for p in procs]
    if return_world:
        return results, world
    return results

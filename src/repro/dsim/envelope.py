"""Cross-partition message envelopes and the request-token codec.

An *envelope* is the picklable form of one in-flight message crossing a
partition boundary, as a plain tuple::

    (kind, dst_pid, arrival, origin, payload, copies)

* ``kind`` — ``"rml"`` (daemon-to-daemon) or ``"pml"`` (ob1 packet),
* ``dst_pid`` — destination partition (routing key for the coordinator),
* ``arrival`` — exact sender-computed simulated arrival time (every
  sender-side effect — busy booking, fault delays, FIFO floors — has
  already been folded in, so the receiver schedules at this instant
  verbatim),
* ``origin`` — ``(send_time, src_pid, seq)``: the deterministic
  injection tie-break key.  Envelopes are injected sorted by
  ``(arrival, origin)`` so same-instant arrivals at one destination
  keep the single-process send order,
* ``payload`` — the :class:`~repro.prrte.rml.RmlMessage` itself, or
  ``(dst_proc, packet_slots)`` for pml,
* ``copies`` — fault-injected duplicate count (scheduling shape is
  mirrored exactly: one batch entry for rml, N entries for pml).

ob1 :class:`~repro.ompi.pml.ob1.Packet` objects can carry live
``Request`` handles (``sender_req``/``recv_req``) that must never be
pickled: a request is engine-side state owned by exactly one partition.
:class:`RequestTokens` replaces a handle with a ``("tok", home_pid,
idx)`` tuple at encode time and resolves it back *only* in its home
partition — tokens belonging to another partition pass through
untouched, which is exactly the rendezvous protocol's round trip (RTS
carries the sender's request to the receiver, CTS carries it home
again alongside the receiver's request, DATA returns the receiver's).
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.ompi.pml.ob1 import Packet

_TOK = "tok"
_PKT_SLOTS = Packet.__slots__


class RequestTokens:
    """Per-partition identity table for request handles."""

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self._by_idx: Dict[int, Any] = {}
        self._idx_of: Dict[int, int] = {}    # id(obj) -> idx
        self._next = 0

    def encode(self, obj: Any) -> Any:
        if obj is None:
            return None
        if isinstance(obj, tuple) and len(obj) == 3 and obj[0] == _TOK:
            return obj                       # foreign token: pass through
        idx = self._idx_of.get(id(obj))
        if idx is None:
            self._next += 1
            idx = self._next
            self._idx_of[id(obj)] = idx
            self._by_idx[idx] = obj          # strong ref: id() stays valid
        return (_TOK, self.pid, idx)

    def decode(self, value: Any) -> Any:
        if (isinstance(value, tuple) and len(value) == 3
                and value[0] == _TOK and value[1] == self.pid):
            return self._by_idx[value[2]]
        return value


def encode_packet(pkt: Packet, tokens: RequestTokens) -> Dict[str, Any]:
    """Slot-dict form of a packet; request handles become tokens.

    Only set slots are captured, so lazily-initialized slots stay unset
    after decode (``getattr`` raises exactly as it would locally).
    """
    state: Dict[str, Any] = {}
    for slot in _PKT_SLOTS:
        try:
            v = getattr(pkt, slot)
        except AttributeError:
            continue
        if slot in ("sender_req", "recv_req"):
            v = tokens.encode(v)
        state[slot] = v
    return state


def decode_packet(state: Dict[str, Any], tokens: RequestTokens) -> Packet:
    pkt = Packet.__new__(Packet)
    for slot, v in state.items():
        if slot in ("sender_req", "recv_req"):
            v = tokens.decode(v)
        setattr(pkt, slot, v)
    return pkt


class Boundary:
    """Sender-side boundary: collects outbound envelopes for one window.

    Installed as ``rml.boundary`` / ``fabric.boundary``; the delivery
    paths call :meth:`ship_rml`/:meth:`ship_pml` *instead of* scheduling
    the arrival locally (all sender-side counters and bookings have
    already run, so partition counter sums equal the single-process
    values).  The worker drains the buffer at every window barrier.
    """

    def __init__(self, ctx, engine, tokens: RequestTokens) -> None:
        self.ctx = ctx
        self.engine = engine
        self.tokens = tokens
        self.out: list = []
        self.shipped = 0
        self._seq = 0

    def owns_node(self, node: int) -> bool:
        return self.ctx.owns_node(node)

    def owns_proc(self, proc: Any) -> bool:
        return self.ctx.owns_proc(proc)

    def _origin(self) -> Tuple[float, int, int]:
        self._seq += 1
        return (self.engine.now, self.ctx.pid, self._seq)

    def ship_rml(self, arrival: float, msg: Any, copies: int) -> None:
        self.shipped += 1
        self.out.append(("rml", self.ctx.pmap.node_partition(msg.dst),
                         arrival, self._origin(), msg, copies))

    def ship_pml(self, when: float, dst: Any, pkt: Packet, copies: int) -> None:
        self.shipped += 1
        self.out.append(("pml", self.ctx.proc_partition(dst), when,
                         self._origin(), (dst, encode_packet(pkt, self.tokens)),
                         copies))

    def ship_ctl(self, arrival: float, dst: Any, payload: Tuple[str, Any]) -> None:
        """Out-of-band control traffic (ULFM revoke fan-out)."""
        self.shipped += 1
        self.out.append(("ctl", self.ctx.proc_partition(dst), arrival,
                         self._origin(), (dst, payload), 1))

    def drain(self) -> list:
        out, self.out = self.out, []
        return out

"""Conservative parallel simulation of one world across processes.

``repro.dsim`` shards a single simulated world *by node* across N
forked worker partitions.  Each partition runs the ordinary fast-path
:class:`~repro.simtime.engine.Engine` over its local daemons and ranks;
cross-partition RML/ob1 traffic is exchanged at conservative
time-window barriers whose lookahead is the per-link latency floor of
the :class:`~repro.machine.model.MachineModel` (see
docs/performance.md, "Partitioned execution").

The contract is *bit-equivalence*: a partitioned run produces the same
per-rank results, final clock, total event count, layer counters, soak
digests and (canonically normalized) Perfetto traces as the
single-process reference — including under partition-safe fault plans.
``SimSpec(partitions=1)`` (the default) never touches this package.

Entry points::

    from repro import dsim
    res = dsim.run_partitioned(SimSpec(nprocs=64, machine=..., partitions=4),
                               rank_main)
    res.t_end, res.events, res.result_list(64)

or, one level up, ``repro.obs.run_scenario(..., partitions=N)``,
``repro.recovery.soak_run(..., partitions=N, partition_safe=True)``
and serve's ``sim`` scenario via ``SimSpec.partitions``.
"""

from repro.dsim.coordinator import (
    DsimResult,
    PartitionRankError,
    WorkerFailed,
    run_partitioned,
)
from repro.dsim.partition import (
    PartitionCtx,
    PartitionError,
    PartitionMap,
    validate_plan,
)

__all__ = [
    "DsimResult",
    "PartitionCtx",
    "PartitionError",
    "PartitionMap",
    "PartitionRankError",
    "WorkerFailed",
    "run_partitioned",
    "validate_plan",
]

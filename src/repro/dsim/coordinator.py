"""The conservative-window coordinator (parent-process side).

One simulated world, partitioned by node across N forked workers.  The
parent never builds the world: it forks the workers (mirroring the
``repro.serve.pool`` pipe/fork idiom), then drives the classic
synchronous conservative loop:

    global_next = min(worker peeks ∪ pending envelope arrivals)
    window_end  = global_next + L          (L = inter-node latency floor)
    inject pending envelopes, run every partition to < window_end,
    collect fresh outbound envelopes, repeat.

Safety argument (docs/performance.md "Partitioned execution"): any
message sent at time t >= global_next arrives at t' >= t + L >=
window_end, so nothing injected at the next barrier can land inside the
window a partition already executed.  The lookahead L
(:func:`lookahead_for`) is the smallest cross-node delivery floor in
the model; fault-injected delays and FIFO floors only *raise* arrival
times, so the bound holds under every fault plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.api import SimSpec
from repro.dsim.merge import merge_counters, merge_metrics, merge_tracers
from repro.dsim.partition import PartitionError, PartitionMap, validate_plan
from repro.dsim.worker import WorkerSetup, worker_main
from repro.machine.presets import laptop
from repro.simtime.engine import DeadlockError


@dataclass
class DsimResult:
    """Merged outcome of one partitioned run."""

    nparts: int
    t_end: float
    events: int
    windows: int
    boundary_msgs: int
    results: Dict[int, Any]                 # rank -> return value
    failures: Dict[int, Tuple[str, str]]    # rank -> (exc type name, message)
    dead_ranks: List[int]
    counters: Dict[str, Any]
    tracer: Any = None                      # merged Tracer (traced runs)
    metrics: Any = None                     # merged MetricsRegistry
    partition_events: List[int] = field(default_factory=list)

    def result_list(self, num_ranks: int) -> List[Any]:
        """Per-rank results in rank order (every rank must have one)."""
        missing = [r for r in range(num_ranks) if r not in self.results]
        if missing:
            raise PartitionError(f"no result for rank(s) {missing}; "
                                 f"failures: {self.failures}")
        return [self.results[r] for r in range(num_ranks)]

    def raise_first_failure(self) -> None:
        if self.failures:
            rank, (tname, msg) = sorted(self.failures.items())[0]
            raise PartitionRankError(rank, tname, msg)


class PartitionRankError(RuntimeError):
    """A rank program failed inside a worker partition."""

    def __init__(self, rank: int, type_name: str, message: str) -> None:
        super().__init__(f"rank {rank}: {type_name}: {message}")
        self.rank = rank
        self.type_name = type_name
        self.message = message


class WorkerFailed(RuntimeError):
    """A partition worker died or reported an internal error."""


def lookahead_for(machine) -> float:
    """The conservative lookahead L for a machine model.

    Every cross-node delivery path has a latency floor:

    * ob1 packets ride the network BTL: ``delivery = done +
      wire_time`` with ``done > now``, so the floor is
      ``inter_node_latency``;
    * RML daemon messages book ``process_cost + server_msg_cost/2``
      (with ``process_cost = server_msg_cost/2``), so the floor is
      ``server_msg_cost``;
    * revoke control fan-out uses ``machine.wire_time`` —
      ``inter_node_latency`` again.

    L is the *minimum* of those floors — on a fast interconnect the
    BTL latency dominates the window size, on a slow one (laptop's
    20us wire) the RML software floor does.
    """
    return min(machine.inter_node_latency, machine.server_msg_cost)


def _check(reply, pid: int, expect: str):
    if not isinstance(reply, tuple) or not reply:
        raise WorkerFailed(f"partition {pid}: malformed reply {reply!r}")
    if reply[0] == "error":
        _, tname, msg, tb = reply
        raise WorkerFailed(
            f"partition {pid} failed: {tname}: {msg}\n{tb}")
    if reply[0] != expect:
        raise WorkerFailed(
            f"partition {pid}: expected {expect!r}, got {reply[0]!r}")
    return reply


def run_partitioned(
    spec: SimSpec,
    main,
    *,
    args: tuple = (),
    plan=None,
    traced: bool = False,
    metrics_on: bool = False,
) -> DsimResult:
    """Run ``main`` on every rank of ``spec`` across ``spec.partitions``
    worker processes; returns the merged :class:`DsimResult`.

    Raises :class:`PartitionError` when the run cannot be partitioned
    (more partitions than nodes, a fault plan that is not
    partition-safe, or a live tracer on the spec — workers build their
    own).  Rank results must be picklable.  Runs go to quiescence (no
    ``until`` horizon); a global deadlock raises
    :class:`~repro.simtime.engine.DeadlockError` like the in-process
    engine would.
    """
    import multiprocessing

    from repro.serve.pool import default_mp_context

    nparts = spec.partitions
    if nparts < 1:
        raise PartitionError("need at least one partition")
    if spec.tracer is not None:
        raise PartitionError(
            "partitioned runs build per-worker tracers; pass traced=True "
            "instead of attaching a tracer to the spec")
    machine = spec.machine or laptop()
    pmap = PartitionMap(nparts, machine.num_nodes)
    validate_plan(plan, nparts)
    lookahead = lookahead_for(machine)
    setup = WorkerSetup(spec, main, args=args, plan=plan, traced=traced,
                        metrics_on=metrics_on)

    method = default_mp_context()
    if method != "fork":
        raise PartitionError(
            "repro.dsim needs the fork start method (worker setup is "
            "inherited, not pickled)")
    ctx = multiprocessing.get_context(method)
    conns = []
    procs = []
    try:
        for pid in range(nparts):
            parent, child = ctx.Pipe(duplex=True)
            proc = ctx.Process(target=worker_main,
                               args=(child, pid, pmap, setup),
                               name=f"dsim-worker-{pid}", daemon=True)
            proc.start()
            child.close()
            conns.append(parent)
            procs.append(proc)

        peeks: List[Optional[float]] = []
        for pid, conn in enumerate(conns):
            reply = _check(_recv(conn, pid), pid, "ready")
            peeks.append(reply[1])

        pending: List[list] = [[] for _ in range(nparts)]
        windows = 0
        boundary_msgs = 0
        while True:
            times = [p for p in peeks if p is not None]
            for bucket in pending:
                times.extend(env[2] for env in bucket)
            if not times:
                break
            window_end = min(times) + lookahead
            for pid, conn in enumerate(conns):
                conn.send(("window", window_end, pending[pid]))
            pending = [[] for _ in range(nparts)]
            for pid, conn in enumerate(conns):
                reply = _check(_recv(conn, pid), pid, "ok")
                _, outbound, peek = reply
                peeks[pid] = peek
                for env in outbound:
                    pending[env[1]].append(env)
                    boundary_msgs += 1
            windows += 1

        blobs = []
        for pid, conn in enumerate(conns):
            conn.send(("finish",))
            blobs.append(_check(_recv(conn, pid), pid, "result")[1])
    finally:
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()

    return _merge(nparts, windows, boundary_msgs, blobs,
                  traced=traced, metrics_on=metrics_on)


def _recv(conn, pid: int):
    try:
        return conn.recv()
    except (EOFError, OSError) as err:
        raise WorkerFailed(f"partition {pid} died: {err}") from err


def _merge(nparts: int, windows: int, boundary_msgs: int, blobs: List[dict],
           *, traced: bool, metrics_on: bool) -> DsimResult:
    t_end = max(b["now"] for b in blobs)
    live = [name for b in blobs for name in b["live"]]
    if live:
        shown = ", ".join(sorted(live)[:10]) + (" …" if len(live) > 10 else "")
        raise DeadlockError(
            f"simulation deadlock: {len(live)} process(es) blocked forever "
            f"at t={t_end}: {shown}")

    results: Dict[int, Any] = {}
    failures: Dict[int, Tuple[str, str]] = {}
    dead: set = set()
    for b in blobs:
        results.update(b["results"])
        failures.update(b["failures"])
        dead.update(b["dead_ranks"])

    tracer = None
    if traced:
        tracer = merge_tracers((b["pid"], b["tracer"]) for b in blobs)
    metrics = None
    if metrics_on:
        metrics = merge_metrics([b["metrics"] for b in blobs], tracer)
        metrics.inc("dsim.window.advance", windows, force=True)
        metrics.inc("dsim.boundary.msgs", boundary_msgs, force=True)

    return DsimResult(
        nparts=nparts,
        t_end=t_end,
        events=sum(b["events"] for b in blobs),
        windows=windows,
        boundary_msgs=boundary_msgs,
        results=results,
        failures=failures,
        dead_ranks=sorted(dead),
        counters=merge_counters(blobs),
        tracer=tracer,
        metrics=metrics,
        partition_events=[b["events"] for b in blobs],
    )

"""The per-partition worker process.

Each worker builds the *full* world from the same :class:`SimSpec`
(construction is synchronous and deterministic, so every partition
agrees on topology, routing trees, psets and namespaces), then spawns
only its local ranks and attaches the cross-partition boundary.  From
then on it is a command loop over the parent pipe::

    <- ("ready", peek)                        after construction
    -> ("window", end, envelopes)             inject, run_window(end)
    <- ("ok", outbound, peek)
    -> ("finish",)
    <- ("result", blob)                       counters, results, trace

Replication rules (what runs everywhere vs. owner-only) live in the
:class:`~repro.faults.FaultManager` (``faults.dsim``) and in the
non-owner filtering below; the invariant throughout is that *summing*
any logical counter across partitions reproduces the single-process
value, and that every event executes at the same simulated time it
would have executed in one process.
"""

from __future__ import annotations

import traceback
from typing import Any, Dict, List, Optional

from repro.api import SimSpec, make_world
from repro.dsim.envelope import Boundary, RequestTokens, decode_packet
from repro.dsim.partition import PartitionCtx, PartitionMap
from repro.simtime.trace import Tracer


class WorkerSetup:
    """Everything a worker needs to build its world (fork-inherited)."""

    def __init__(self, spec: SimSpec, main, args=(), plan=None,
                 traced: bool = False, metrics_on: bool = False) -> None:
        self.spec = spec
        self.main = main
        self.args = tuple(args)
        self.plan = plan
        self.traced = traced
        self.metrics_on = metrics_on


class WorkerState:
    """The built world plus partition wiring, bundled for the loop."""

    def __init__(self, ctx: PartitionCtx, world, boundary: Boundary,
                 tokens: RequestTokens, local: List[int], procs: List[Any],
                 tracer: Optional[Tracer]) -> None:
        self.ctx = ctx
        self.world = world
        self.cluster = world.cluster
        self.engine = world.cluster.engine
        self.boundary = boundary
        self.tokens = tokens
        self.local = local
        self.procs = procs
        self.tracer = tracer


def build_partition(pid: int, pmap: PartitionMap, setup: WorkerSetup) -> WorkerState:
    """Construct one partition's replica of the world.

    Runs in the worker process (or inline, for tests).  The tracer gets
    a disjoint id space (``id_start=pid+1, id_step=nparts``) so merged
    sids/fids never collide and a flow id shipped inside an envelope
    still names the sender's allocation at the receiver.
    """
    ctx = PartitionCtx(pid, pmap)
    tracer = None
    if setup.traced:
        tracer = Tracer(id_start=pid + 1, id_step=pmap.nparts)
        tracer.record_unmatched_flow_ends = True
    spec = setup.spec.replace(tracer=tracer, partitions=1)
    world = make_world(spec=spec)
    cluster = world.cluster
    ctx.bind_job(world.job.nspace, world.job.topology)

    tokens = RequestTokens(pid)
    boundary = Boundary(ctx, cluster.engine, tokens)
    cluster.dvm.rml.boundary = boundary
    world.fabric.boundary = boundary
    cluster.faults.dsim = ctx

    topo = world.job.topology
    local = [r for r in range(world.num_ranks) if ctx.owns_node(topo.node_of(r))]
    # MPI runtimes observe peer failures (one notification event per
    # runtime per death); restrict to local ranks so the per-partition
    # counts sum to the single-process R notifications.
    cluster.faults._runtimes = [world.runtimes[r] for r in local]

    if setup.metrics_on:
        cluster.metrics.enabled = True
    if setup.plan is not None:
        cluster.install_faults(setup.plan)
    if tracer is not None and pid != 0:
        # Replicated construction emits the launch instant everywhere;
        # it belongs to the HNP's partition only.
        tracer.instants[:] = [i for i in tracer.instants
                              if i.name != "prrte.dvm.launch"]
    procs = world.spawn_ranks(setup.main, setup.args, ranks=local)
    return WorkerState(ctx, world, boundary, tokens, local, procs, tracer)


def inject_envelopes(state: WorkerState, envelopes: list) -> None:
    """Schedule cross-partition arrivals, mirroring the local shapes.

    Envelopes are sorted by ``(arrival, origin)`` so same-instant
    arrivals keep the deterministic global send order; each is then
    scheduled exactly as the sender-side code would have: one
    ``call_at`` per rml message (``call_at_batch`` for fault
    duplicates), one ``call_at`` per pml packet copy.  Lookahead
    guarantees every arrival is in this partition's future.
    """
    if not envelopes:
        return
    engine = state.engine
    rml = state.cluster.dvm.rml
    fabric = state.world.fabric
    for env in sorted(envelopes, key=lambda e: (e[2], e[3])):
        kind, _dst_pid, arrival, _origin, payload, copies = env
        if kind == "rml":
            msg = payload
            deliver = rml._daemons[msg.dst]
            if copies == 1:
                engine.call_at(arrival, lambda m=msg, d=deliver: rml._arrive(m, d))
            else:
                engine.call_at_batch(
                    arrival,
                    [lambda m=msg, d=deliver: rml._arrive(m, d)] * copies)
        elif kind == "pml":
            dst, slots = payload
            pkt = decode_packet(slots, state.tokens)
            ep = fabric.endpoint(dst)
            for _ in range(copies):
                engine.call_at(arrival,
                               lambda e=ep, p=pkt: fabric._deliver_checked(e, p))
        else:  # "ctl": out-of-band control traffic (revoke fan-out)
            dst, (op, ident) = payload
            if op != "revoke":
                raise ValueError(f"unknown dsim ctl op {op!r}")
            ep = fabric._endpoints.get(dst)
            if ep is None:
                # Mirrors the sender-side ``ep is None: continue`` in
                # Communicator.revoke: the peer deregistered (died) or
                # never finished init.
                continue
            engine.call_at(arrival,
                           lambda r=ep.runtime, i=ident: r.remote_revoke(i))


def _sanitize_attrs(attrs: Dict[str, Any]) -> None:
    # Exporters stringify non-primitive attr values anyway (see
    # repro.obs.export._args); doing it before pickling keeps arbitrary
    # layer objects out of the pipe without changing exported bytes.
    for k, v in attrs.items():
        if not isinstance(v, (str, int, float, bool, type(None))):
            attrs[k] = str(v)


def sanitize_tracer(tracer: Tracer) -> Tracer:
    for s in tracer.spans.values():
        _sanitize_attrs(s.attrs)
    for i in tracer.instants:
        _sanitize_attrs(i.attrs)
    for f in tracer.flows.values():
        _sanitize_attrs(f.attrs)
    for r in tracer.records:
        _sanitize_attrs(r.detail)
    return tracer


def result_blob(state: WorkerState, setup: WorkerSetup) -> Dict[str, Any]:
    """Everything the coordinator needs to merge this partition."""
    world, cluster, engine = state.world, state.cluster, state.engine
    if setup.metrics_on:
        from repro.obs.metrics import snapshot_cluster

        snapshot_cluster(cluster.metrics, cluster, world)

    results: Dict[int, Any] = {}
    failures: Dict[int, tuple] = {}
    for rank, p in zip(state.local, state.procs):
        if p.exception is not None:
            failures[rank] = (type(p.exception).__name__, str(p.exception))
        else:
            results[rank] = p.result

    rml = cluster.dvm.rml
    dead = cluster.faults.dead_procs
    counters = {
        "rml.messages_sent": rml.messages_sent,
        "rml.bytes_sent": rml.bytes_sent,
        "rml.dropped": getattr(rml, "dropped", 0),
        "rml.retransmits": rml.retransmits,
        "rml.acks_sent": rml.acks_sent,
        "rml.dup_suppressed": rml.dup_suppressed,
        "rml.retry_exhausted": rml.retry_exhausted,
        "pml.packets": world.fabric.packets,
        "pml.bytes": world.fabric.bytes,
        "dvm.fence_retries": cluster.dvm.fence_retries,
        "dvm.pgcids_allocated": cluster.dvm.pgcids_allocated,
        "dvm.heals": sum(d.heals for d in cluster.dvm.daemons),
        "dvm.grpcomm_restarts": sum(d.grpcomm.restarts
                                    for d in cluster.dvm.daemons),
        "recovery_stats": dict(cluster.recovery_stats),
        "faults_stats": dict(cluster.faults.stats),
    }
    metrics_dump = None
    if setup.metrics_on:
        m = cluster.metrics
        metrics_dump = (
            dict(m.counters), dict(m.gauges),
            {k: (h.values, h._count, h._total, h._min, h._max)
             for k, h in m.histograms.items()},
        )
    return {
        "pid": state.ctx.pid,
        "now": engine.now,
        "events": engine.events_executed,
        "live": sorted(getattr(p, "name", "?") for p in engine._live),
        "results": results,
        "failures": failures,
        "dead_ranks": sorted(r for r in range(world.num_ranks)
                             if world.job.proc(r) in dead),
        "shipped": state.boundary.shipped,
        "counters": counters,
        "tracer": sanitize_tracer(state.tracer) if state.tracer else None,
        "metrics": metrics_dump,
    }


def worker_main(conn, pid: int, pmap: PartitionMap, setup: WorkerSetup) -> None:
    """Worker entry point (fork start method: ``setup`` never pickles)."""
    try:
        state = build_partition(pid, pmap, setup)
        conn.send(("ready", state.engine.peek_next_time()))
        while True:
            cmd = conn.recv()
            op = cmd[0]
            if op == "window":
                inject_envelopes(state, cmd[2])
                state.engine.run_window(cmd[1])
                conn.send(("ok", state.boundary.drain(),
                           state.engine.peek_next_time()))
            elif op == "finish":
                conn.send(("result", result_blob(state, setup)))
                conn.close()
                return
            else:
                raise RuntimeError(f"unknown dsim command {op!r}")
    except BaseException as err:  # noqa: BLE001 — forwarded to the parent
        try:
            conn.send(("error", type(err).__name__, str(err),
                       traceback.format_exc()))
        except Exception:
            pass
        raise SystemExit(1)

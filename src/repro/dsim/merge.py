"""Merging per-partition traces and metrics into one logical run.

Track names in the merged trace are namespaced ``p{pid}:`` so the
per-partition timelines stay distinguishable in Perfetto (and two
partitions' ``events:faults`` tracks never collide); the canonical
normal form (:func:`repro.obs.export.canonical_chrome_trace`) strips
the prefix again when proving partitioned/serial equivalence.
Single-partition runs never pass through here — ``partitions=1``
bypasses dsim entirely, so its output stays byte-identical.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.simtime.trace import FlowEdge, Instant, Span, Tracer


def merge_tracers(parts: Iterable[Tuple[int, Tracer]]) -> Tracer:
    """One tracer from per-partition tracers with disjoint id spaces.

    Cross-partition flows arrive as two halves under the same
    (sender-allocated) fid: the full record from the sender and a
    partial ``src_track=""`` record from the receiver (see
    ``Tracer.record_unmatched_flow_ends``); they are unified here.
    """
    merged = Tracer()
    max_id = 0
    for pid, tr in parts:
        prefix = f"p{pid}:"
        for rec in tr.records:
            merged.records.append(rec)
            merged._by_category.setdefault(rec.category, []).append(rec)
        for sid, s in tr.spans.items():
            merged.spans[sid] = Span(sid, prefix + s.track, s.name, s.start,
                                     s.parent, s.end, s.attrs)
            max_id = max(max_id, sid)
        for i in tr.instants:
            merged.instants.append(
                Instant(i.time, prefix + i.track, i.name, i.span, i.attrs))
        for fid, f in tr.flows.items():
            max_id = max(max_id, fid)
            if f.name == "" and f.src_track == "":
                half = FlowEdge(fid, "", "", 0.0, 0,
                                prefix + f.dst_track, f.dst_time, f.dst_span,
                                f.attrs)
            else:
                half = FlowEdge(
                    fid, f.name, prefix + f.src_track, f.src_time, f.src_span,
                    prefix + f.dst_track if f.dst_track is not None else None,
                    f.dst_time, f.dst_span, f.attrs)
            cur = merged.flows.get(fid)
            if cur is None:
                merged.flows[fid] = half
            else:
                src, dst = (cur, half) if cur.name or cur.src_track else (half, cur)
                src.dst_track = dst.dst_track
                src.dst_time = dst.dst_time
                src.dst_span = dst.dst_span
                merged.flows[fid] = src
    merged._next_sid = merged._next_fid = max_id + 1
    return merged


def adopt_tracer(target: Tracer, merged: Tracer) -> None:
    """Transplant a merged tracer's contents into a caller-owned tracer
    (for call sites that attached their own Tracer object up front)."""
    target.records[:] = merged.records
    target._by_category = merged._by_category
    target.spans = merged.spans
    target.instants = merged.instants
    target.flows = merged.flows
    target._stacks = {}
    target._next_sid = merged._next_sid
    target._next_fid = merged._next_fid


def merge_metrics(dumps: List[Optional[tuple]],
                  merged_tracer: Optional[Tracer]) -> MetricsRegistry:
    """Sum counters/gauges and concatenate histograms across partitions.

    Every structural gauge the workers snapshot is a per-partition
    share of a global count (non-owner replicas contribute zero), so
    summing reproduces the single-process snapshot.  The two exceptions
    are ``obs.spans``/``obs.flows``: per-partition flow tables count
    each cross-partition flow's two halves twice, so they are re-set
    from the merged tracer.
    """
    m = MetricsRegistry()
    m.enabled = True
    for dump in dumps:
        if dump is None:
            continue
        counters, gauges, hists = dump
        for k, v in counters.items():
            m.counters[k] = m.counters.get(k, 0.0) + v
        for k, v in gauges.items():
            m.gauges[k] = m.gauges.get(k, 0.0) + v
        for k, (values, count, total, mn, mx) in hists.items():
            h = m.histograms.get(k)
            if h is None:
                h = m.histograms[k] = Histogram()
            h.values.extend(values)
            h._count += count
            h._total += total
            h._min = min(h._min, mn)
            h._max = max(h._max, mx)
    if merged_tracer is not None:
        m.set("obs.spans", len(merged_tracer.spans), force=True)
        m.set("obs.flows", len(merged_tracer.flows), force=True)
    return m


def merge_counters(blobs: List[dict]) -> Dict[str, object]:
    """Sum the raw layer counters shipped in worker result blobs."""
    out: Dict[str, object] = {}
    for blob in blobs:
        for k, v in blob["counters"].items():
            if isinstance(v, dict):
                slot = out.setdefault(k, {})
                for kk, vv in v.items():
                    slot[kk] = slot.get(kk, 0) + vv
            else:
                out[k] = out.get(k, 0) + v
    return out

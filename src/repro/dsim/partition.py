"""Partitioning of one simulated world across worker processes.

A partition owns a contiguous block of *nodes* (and therefore every
daemon, PMIx server and rank hosted on them).  Contiguous blocks keep
the HNP (node 0) in partition 0 and make ownership checks pure
arithmetic — no per-message dict lookups on the hot boundary path.

Everything here is shared by the coordinator (parent process) and the
workers: both sides build the same :class:`PartitionMap` from
``(partitions, num_nodes)`` and therefore agree on ownership without
exchanging any state.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.simtime.faults import KILL_KINDS, FaultPlan


class PartitionError(ValueError):
    """A run cannot be partitioned as requested (one-line reason)."""


class PartitionMap:
    """Block placement of ``num_nodes`` nodes over ``nparts`` partitions.

    Partition ``k`` owns the ``k``-th contiguous block; the first
    ``num_nodes % nparts`` partitions get one extra node.  Node 0 (the
    HNP) always lands in partition 0.
    """

    def __init__(self, nparts: int, num_nodes: int) -> None:
        if nparts < 1:
            raise PartitionError("need at least one partition")
        if num_nodes < 1:
            raise PartitionError("need at least one node")
        if nparts > num_nodes:
            raise PartitionError(
                f"cannot split {num_nodes} node(s) across {nparts} partitions"
                " (at most one partition per node)")
        self.nparts = nparts
        self.num_nodes = num_nodes
        self._base, self._rem = divmod(num_nodes, nparts)

    def node_partition(self, node: int) -> int:
        """The partition owning ``node``."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range [0,{self.num_nodes})")
        big = self._rem * (self._base + 1)
        if node < big:
            return node // (self._base + 1)
        return self._rem + (node - big) // self._base

    def nodes_of(self, pid: int) -> range:
        """The contiguous node block owned by partition ``pid``."""
        if not 0 <= pid < self.nparts:
            raise ValueError(f"partition {pid} out of range [0,{self.nparts})")
        start = pid * self._base + min(pid, self._rem)
        size = self._base + (1 if pid < self._rem else 0)
        return range(start, start + size)


class PartitionCtx:
    """One partition's view: its id, the map, and rank->node bindings.

    Attached to the :class:`~repro.faults.FaultManager` (``faults.dsim``)
    and consulted by the RML/fabric boundary hooks, so it must answer
    ownership questions for both daemons (by node id) and rank procs
    (via the bound job topologies).
    """

    def __init__(self, pid: int, pmap: PartitionMap) -> None:
        self.pid = pid
        self.pmap = pmap
        self.nparts = pmap.nparts
        self._jobs: Dict[str, Any] = {}     # nspace -> Topology

    def bind_job(self, nspace: str, topology: Any) -> None:
        self._jobs[nspace] = topology

    def node_of_proc(self, proc: Any) -> int:
        try:
            topo = self._jobs[proc.nspace]
        except KeyError:
            raise PartitionError(
                f"no topology bound for namespace {proc.nspace!r}") from None
        return topo.node_of(proc.rank)

    def owns_node(self, node: int) -> bool:
        return self.pmap.node_partition(node) == self.pid

    def owns_proc(self, proc: Any) -> bool:
        return self.owns_node(self.node_of_proc(proc))

    def proc_partition(self, proc: Any) -> int:
        return self.pmap.node_partition(self.node_of_proc(proc))


def validate_plan(plan: FaultPlan, nparts: int) -> None:
    """Reject fault plans whose semantics cannot be partitioned.

    Message actions are consulted *sender-side*; their ``seen``/``hits``
    counters and (for lossy links) PRNG roll sequences stay globally
    consistent only when every matching message originates in a single
    partition — i.e. the action is pinned to one layer and one concrete
    source.  Kills must be clock-triggered: an ``after_count`` kill
    fires on the Nth matching message, and no partition observes the
    global message stream.
    """
    if nparts <= 1 or plan is None:
        return
    for act in plan.actions:
        if act.kind in KILL_KINDS:
            if act.after_count is not None:
                raise PartitionError(
                    f"fault action '{act.describe()}' is not partition-safe: "
                    "message-triggered kills need the global message stream "
                    "(use at_time= instead of after_count=)")
        elif act.layer is None or act.src is None:
            raise PartitionError(
                f"fault action '{act.describe()}' is not partition-safe: "
                "message actions must pin layer= and a concrete src= so one "
                "partition observes every matching message")

"""Parallel sweep executor with an on-disk result cache.

Every figure/soak sweep in this repo is a list of *independent* points:
``(scenario name, parameter dict)`` pairs evaluated by a deterministic,
module-level function.  :func:`run_sweep` fans those points across
worker processes (``--jobs N`` on the CLIs) and memoizes results on disk
so a re-run of an already-computed point is a file read.

Cache key (docs/performance.md):

    sha256(scenario name, canonical-JSON params, source digest)

where the *source digest* is a content hash over every ``.py`` file
under ``src/repro`` — any change to the simulator invalidates every
cached point, so a stale cache can never masquerade as a fresh result.
The digest is content-based (not mtime-based): re-checkouts and clock
skew do not thrash the cache.  Parameters must be JSON-serializable;
two parameter dicts that differ only in key order hash identically
(canonical ``sort_keys`` dump).

Determinism contract: because every sweep point is a pure function of
its parameters (the simulator's central promise), results are identical
whether points run serially, in parallel, or arrive from the cache —
``tests/test_sweep.py`` and the ``run_recovery.py --jobs`` digest tests
hold this to byte equality.

Robustness (docs/robustness.md):

* Cache entries are **checksummed**: :meth:`SweepCache.put` writes a
  ``{"__sweep_cache__": 1, "sha256": ..., "result": ...}`` envelope and
  :meth:`SweepCache.get` verifies it.  A torn, tampered or unparseable
  file is *quarantined* (renamed to ``<key>.json.corrupt``) instead of
  being re-read — and re-failed — every run, counted in
  :attr:`SweepCache.corrupt` and surfaced as a ``sweep.cache.corrupt``
  metric/event when a registry/event log is attached.
* :func:`run_sweep` can **isolate point crashes** (``isolate=True``): a
  raising point yields an :func:`error_record` and the sweep completes.
* A ``checkpoint`` JSONL file persists each completed point as it
  finishes, so an interrupted sweep resumes where it left off (error
  records are never checkpointed — a resume recomputes them).
* A :class:`repro.chaos.ChaosPlan` can be injected (``chaos=``) to
  attack the cache (torn writes, corruption) and the points themselves
  (``crash_point``) deterministically.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

_SRC_ROOT = os.path.dirname(os.path.abspath(__file__))

_source_digest_cache: Optional[str] = None


def source_digest() -> str:
    """Content hash of the simulator source tree (cached per process)."""
    global _source_digest_cache
    if _source_digest_cache is None:
        h = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(_SRC_ROOT)):
            dirnames.sort()
            if "__pycache__" in dirpath:
                continue
            for fname in sorted(filenames):
                if not fname.endswith(".py"):
                    continue
                path = os.path.join(dirpath, fname)
                h.update(os.path.relpath(path, _SRC_ROOT).encode())
                with open(path, "rb") as fh:
                    h.update(fh.read())
        _source_digest_cache = h.hexdigest()
    return _source_digest_cache


def cache_key(scenario: str, params: Dict[str, Any]) -> str:
    """Stable key for one sweep point: (scenario, params, source digest)."""
    blob = json.dumps(
        {"scenario": scenario, "params": params, "source": source_digest()},
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


#: Envelope marker + format version for checksummed cache entries.
ENVELOPE_KEY = "__sweep_cache__"
ENVELOPE_VERSION = 1


def result_digest(result: Any) -> str:
    """sha256 over the canonical JSON of a cached result payload."""
    blob = json.dumps(result, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class SweepCache:
    """Directory of checksummed JSON result files keyed by :func:`cache_key`.

    Writes are atomic (tmp file + rename), so a parallel sweep racing on
    the same point at worst writes the identical bytes twice.  Every
    entry is a checksum envelope (``{"__sweep_cache__": 1, "sha256":
    ..., "result": ...}``); a read that fails to parse, lacks the
    envelope, or fails checksum verification is quarantined — renamed to
    ``<key>.json.corrupt`` — and counted as a miss, so a damaged entry
    fails exactly once instead of every run.

    ``metrics`` / ``events`` (both optional) surface quarantines as a
    ``sweep.cache.corrupt`` counter/event; ``chaos`` is a
    :class:`repro.chaos.ChaosPlan` whose ``cache.put`` site can corrupt
    or tear writes for fault-injection tests.
    """

    def __init__(self, cache_dir: str, *, metrics: Any = None,
                 events: Any = None, chaos: Any = None) -> None:
        self.dir = cache_dir
        os.makedirs(cache_dir, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.metrics = metrics
        self.events = events
        self.chaos = chaos

    def _path(self, key: str) -> str:
        return os.path.join(self.dir, key + ".json")

    def get(self, key: str) -> Optional[Any]:
        path = self._path(key)
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except OSError:                       # absent/unreadable: plain miss
            self.misses += 1
            return None
        except ValueError:                    # torn or garbage bytes
            self._quarantine(key, path, "unparseable JSON")
            self.misses += 1
            return None
        if not (isinstance(entry, dict)
                and entry.get(ENVELOPE_KEY) == ENVELOPE_VERSION
                and "sha256" in entry and "result" in entry):
            self._quarantine(key, path, "missing checksum envelope")
            self.misses += 1
            return None
        if result_digest(entry["result"]) != entry["sha256"]:
            self._quarantine(key, path, "checksum mismatch")
            self.misses += 1
            return None
        self.hits += 1
        return entry["result"]

    def put(self, key: str, result: Any) -> None:
        path = self._path(key)
        data = json.dumps({ENVELOPE_KEY: ENVELOPE_VERSION,
                           "sha256": result_digest(result),
                           "result": result}, sort_keys=True)
        if self.chaos is not None:
            for act in self.chaos.on("cache.put", key=key):
                if act.kind == "torn_write":
                    data = data[:max(1, len(data) // 2)]
                elif act.kind == "corrupt_cache":
                    mid = len(data) // 2
                    blot = "\x00chaos\x00"
                    data = data[:mid] + blot + data[mid + len(blot):]
        tmp = path + f".tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            fh.write(data)
        os.replace(tmp, path)

    def _quarantine(self, key: str, path: str, why: str) -> None:
        """Move a damaged entry aside so it cannot fail again."""
        self.corrupt += 1
        quarantined = path + ".corrupt"
        try:
            os.replace(path, quarantined)
        except OSError:
            quarantined = None                # racing reader beat us to it
        if self.metrics is not None:
            self.metrics.inc("sweep.cache.corrupt")
        if self.events is not None:
            self.events.emit("sweep.cache.corrupt", digest=key, reason=why,
                             quarantined=bool(quarantined))

    def report(self) -> str:
        line = f"cache: {self.hits} hit(s), {self.misses} miss(es)"
        if self.corrupt:
            line += f", {self.corrupt} corrupt entr(ies) quarantined"
        return line + f" in {self.dir}"


@dataclass
class SweepPoint:
    """One unit of work: ``fn(**params)`` with a cache identity.

    ``fn`` must be picklable (a module-level callable) and ``params``
    JSON-serializable when a cache is in use.  ``scenario`` namespaces
    the cache so two sweeps with coincidentally equal params never
    collide.
    """

    scenario: str
    fn: Callable[..., Any]
    params: Dict[str, Any] = field(default_factory=dict)

    def key(self) -> str:
        return cache_key(self.scenario, self.params)


class SweepPointCrash(RuntimeError):
    """A sweep point was killed by an injected ``crash_point`` fault."""


def error_record(scenario: str, err: BaseException) -> Dict[str, Any]:
    """The in-band record an isolated crashing point yields.

    Error records are never cached or checkpointed, so a re-run (or a
    checkpoint resume) recomputes exactly the failed points.
    """
    return {"sweep_error": {"scenario": scenario,
                            "type": type(err).__name__,
                            "message": str(err)}}


def is_error_record(obj: Any) -> bool:
    return isinstance(obj, dict) and "sweep_error" in obj


def _invoke(payload: Tuple[Callable, Dict[str, Any]]) -> Any:
    fn, params = payload
    return fn(**params)


def _invoke_timed(payload: Tuple[Callable, Dict[str, Any]]) -> Tuple[Any, float]:
    """:func:`_invoke` plus the point's own wall-clock seconds.

    Only engaged when telemetry or a ledger is attached: with ``jobs >
    1`` the parent cannot time individual points (they overlap), so the
    child measures itself and ships the duration home with the result.
    """
    fn, params = payload
    t0 = time.monotonic()
    result = fn(**params)
    return result, time.monotonic() - t0


def _invoke_shielded(
        payload: Tuple[Callable, Dict[str, Any], str]) -> Tuple[Any, float]:
    """:func:`_invoke_timed` with per-point crash isolation: a raising
    point comes back as an :func:`error_record` instead of poisoning the
    pool.  KeyboardInterrupt/SystemExit still propagate."""
    fn, params, scenario = payload
    t0 = time.monotonic()
    try:
        result = fn(**params)
    except Exception as err:        # noqa: BLE001 — isolation is the point
        result = error_record(scenario, err)
    return result, time.monotonic() - t0


def _load_checkpoint(path: str) -> Dict[str, Any]:
    """Completed points from a checkpoint file, keyed by cache key.

    A torn trailing line (interrupted mid-write) is skipped, matching
    the event-log convention."""
    out: Dict[str, Any] = {}
    try:
        fh = open(path)
    except OSError:
        return out
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError:
                continue
            if isinstance(obj, dict) and "key" in obj and "result" in obj:
                out[obj["key"]] = obj["result"]
    return out


def run_sweep(
    points: Sequence[SweepPoint],
    *,
    jobs: int = 1,
    cache: Optional[SweepCache] = None,
    mp_context: Optional[str] = None,
    telemetry: Any = None,
    ledger: Any = None,
    isolate: bool = False,
    checkpoint: Optional[str] = None,
    chaos: Any = None,
) -> List[Any]:
    """Evaluate all points; returns results in input order.

    ``jobs <= 1`` runs serially in-process (no pickling requirements).
    With ``jobs > 1`` the uncached points are fanned across a
    ``multiprocessing`` pool; results are byte-identical to the serial
    run because every point is deterministic and order is restored by
    index.  A cache, when given, is consulted first and fed afterwards.

    ``telemetry`` (:class:`repro.obs.LiveTelemetry`) records one
    wall-clock ``sweep.task`` span per evaluated point on the
    ``sweep:task`` track; ``ledger`` (:class:`repro.obs.RunLedger`)
    appends one ``kind="sweep"`` row per point (cache hits included).
    Both are off by default and never affect results.

    Robustness controls (docs/robustness.md):

    ``isolate=True``
        A point that raises yields an :func:`error_record` in its slot
        and the sweep completes; without it the first crash aborts the
        sweep (the historical behavior).  Interrupts
        (KeyboardInterrupt/SystemExit) always propagate.
    ``checkpoint=PATH``
        Completed points are appended to a JSONL file *as they finish*;
        a re-run with the same checkpoint loads them instead of
        recomputing, so an interrupted sweep resumes where it left off.
        Error records are never checkpointed.
    ``chaos=ChaosPlan``
        Consults the plan's ``sweep.point`` site once per dispatched
        point (in input order, so injections are deterministic); a
        firing ``crash_point`` raises :class:`SweepPointCrash` in place
        of the computation.
    """
    tel = telemetry if (telemetry is not None and telemetry.enabled) else None
    observed = tel is not None or ledger is not None
    results: List[Any] = [None] * len(points)
    todo: List[int] = []
    keys: Dict[int, str] = {}
    need_keys = (cache is not None or ledger is not None
                 or checkpoint is not None)
    done = _load_checkpoint(checkpoint) if checkpoint else {}
    for i, pt in enumerate(points):
        if need_keys:
            keys[i] = pt.key()
        if done and keys[i] in done:
            results[i] = done[keys[i]]
            if tel is not None:
                tel.event("sweep:task", "sweep.checkpoint.hit",
                          scenario=pt.scenario, index=i)
            if ledger is not None:
                ledger.record(kind="sweep", scenario=pt.scenario,
                              digest=keys[i], wall_s=0.0, cached=True)
            continue
        if cache is not None:
            hit = cache.get(keys[i])
            if hit is not None:
                results[i] = hit
                if tel is not None:
                    tel.event("sweep:task", "sweep.cache.hit",
                              scenario=pt.scenario, index=i)
                if ledger is not None:
                    ledger.record(kind="sweep", scenario=pt.scenario,
                                  digest=keys[i], wall_s=0.0, cached=True)
                continue
        todo.append(i)

    if not todo:
        return results

    # Chaos is consulted in input order at dispatch time (parent side),
    # so injections are identical for serial and parallel runs.
    crashed: set = set()
    if chaos is not None:
        for i in todo:
            for act in chaos.on("sweep.point", scenario=points[i].scenario,
                                index=i):
                if act.kind == "crash_point":
                    crashed.add(i)
        if crashed and not isolate:
            i = min(crashed)
            raise SweepPointCrash(
                f"injected crash at sweep point {i} "
                f"({points[i].scenario}); run with isolate=True to "
                f"convert crashes into error records")

    ckpt_fh = open(checkpoint, "a") if checkpoint else None

    def persist(i: int, result: Any, dt: Optional[float]) -> None:
        results[i] = result
        failed = is_error_record(result)
        if not failed:
            if cache is not None:
                cache.put(keys[i], result)
            if ckpt_fh is not None:
                ckpt_fh.write(json.dumps(
                    {"key": keys[i], "result": result},
                    sort_keys=True, separators=(",", ":")) + "\n")
                ckpt_fh.flush()
        if ledger is not None:
            ledger.record(kind="sweep", scenario=points[i].scenario,
                          digest=keys.get(i, ""), wall_s=dt,
                          status="error" if failed else "ok", cached=False)

    try:
        if jobs <= 1 or len(todo) == 1:
            for i in todo:
                try:
                    if i in crashed:
                        raise SweepPointCrash(
                            f"injected crash at sweep point {i}")
                    if tel is not None:
                        with tel.span("sweep:task", "sweep.task",
                                      scenario=points[i].scenario, index=i):
                            result, dt = _invoke_timed(
                                (points[i].fn, points[i].params))
                    elif observed:
                        result, dt = _invoke_timed(
                            (points[i].fn, points[i].params))
                    else:
                        result, dt = _invoke(
                            (points[i].fn, points[i].params)), 0.0
                except Exception as err:    # noqa: BLE001 — isolation opt-in
                    if not isolate:
                        raise
                    result, dt = error_record(points[i].scenario, err), 0.0
                persist(i, result, dt)
        else:
            # fork keeps the warm interpreter (and the imported simulator)
            # on POSIX; spawn is the portable fallback.
            method = mp_context or (
                "fork" if "fork" in multiprocessing.get_all_start_methods()
                else "spawn")
            ctx = multiprocessing.get_context(method)
            fanout = [i for i in todo if i not in crashed]
            for i in sorted(crashed):
                persist(i, error_record(points[i].scenario,
                                        SweepPointCrash(
                                            f"injected crash at sweep "
                                            f"point {i}")), 0.0)
            if fanout:
                with ctx.Pool(processes=min(jobs, len(fanout))) as pool:
                    if isolate:
                        payloads = [(points[i].fn, points[i].params,
                                     points[i].scenario) for i in fanout]
                        timed = pool.imap(_invoke_shielded, payloads,
                                          chunksize=1)
                    elif observed:
                        payloads = [(points[i].fn, points[i].params)
                                    for i in fanout]
                        timed = pool.imap(_invoke_timed, payloads,
                                          chunksize=1)
                    else:
                        payloads = [(points[i].fn, points[i].params)
                                    for i in fanout]
                        timed = ((r, None) for r in
                                 pool.imap(_invoke, payloads, chunksize=1))
                    # imap streams in input order, so each completed
                    # point is checkpointed/cached as soon as it lands.
                    for i, (result, dt) in zip(fanout, timed):
                        if tel is not None:
                            tel.event("sweep:task", "sweep.task.done",
                                      scenario=points[i].scenario, index=i,
                                      wall_s=round(dt, 6))
                        persist(i, result, dt)
    finally:
        if ckpt_fh is not None:
            ckpt_fh.close()
    return results

"""Parallel sweep executor with an on-disk result cache.

Every figure/soak sweep in this repo is a list of *independent* points:
``(scenario name, parameter dict)`` pairs evaluated by a deterministic,
module-level function.  :func:`run_sweep` fans those points across
worker processes (``--jobs N`` on the CLIs) and memoizes results on disk
so a re-run of an already-computed point is a file read.

Cache key (docs/performance.md):

    sha256(scenario name, canonical-JSON params, source digest)

where the *source digest* is a content hash over every ``.py`` file
under ``src/repro`` — any change to the simulator invalidates every
cached point, so a stale cache can never masquerade as a fresh result.
The digest is content-based (not mtime-based): re-checkouts and clock
skew do not thrash the cache.  Parameters must be JSON-serializable;
two parameter dicts that differ only in key order hash identically
(canonical ``sort_keys`` dump).

Determinism contract: because every sweep point is a pure function of
its parameters (the simulator's central promise), results are identical
whether points run serially, in parallel, or arrive from the cache —
``tests/test_sweep.py`` and the ``run_recovery.py --jobs`` digest tests
hold this to byte equality.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

_SRC_ROOT = os.path.dirname(os.path.abspath(__file__))

_source_digest_cache: Optional[str] = None


def source_digest() -> str:
    """Content hash of the simulator source tree (cached per process)."""
    global _source_digest_cache
    if _source_digest_cache is None:
        h = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(_SRC_ROOT)):
            dirnames.sort()
            if "__pycache__" in dirpath:
                continue
            for fname in sorted(filenames):
                if not fname.endswith(".py"):
                    continue
                path = os.path.join(dirpath, fname)
                h.update(os.path.relpath(path, _SRC_ROOT).encode())
                with open(path, "rb") as fh:
                    h.update(fh.read())
        _source_digest_cache = h.hexdigest()
    return _source_digest_cache


def cache_key(scenario: str, params: Dict[str, Any]) -> str:
    """Stable key for one sweep point: (scenario, params, source digest)."""
    blob = json.dumps(
        {"scenario": scenario, "params": params, "source": source_digest()},
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


class SweepCache:
    """Directory of JSON result files keyed by :func:`cache_key`.

    Writes are atomic (tmp file + rename), so a parallel sweep racing on
    the same point at worst writes the identical bytes twice.
    """

    def __init__(self, cache_dir: str) -> None:
        self.dir = cache_dir
        os.makedirs(cache_dir, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.dir, key + ".json")

    def get(self, key: str) -> Optional[Any]:
        try:
            with open(self._path(key)) as fh:
                result = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: Any) -> None:
        path = self._path(key)
        tmp = path + f".tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(result, fh, sort_keys=True)
        os.replace(tmp, path)

    def report(self) -> str:
        return f"cache: {self.hits} hit(s), {self.misses} miss(es) in {self.dir}"


@dataclass
class SweepPoint:
    """One unit of work: ``fn(**params)`` with a cache identity.

    ``fn`` must be picklable (a module-level callable) and ``params``
    JSON-serializable when a cache is in use.  ``scenario`` namespaces
    the cache so two sweeps with coincidentally equal params never
    collide.
    """

    scenario: str
    fn: Callable[..., Any]
    params: Dict[str, Any] = field(default_factory=dict)

    def key(self) -> str:
        return cache_key(self.scenario, self.params)


def _invoke(payload: Tuple[Callable, Dict[str, Any]]) -> Any:
    fn, params = payload
    return fn(**params)


def _invoke_timed(payload: Tuple[Callable, Dict[str, Any]]) -> Tuple[Any, float]:
    """:func:`_invoke` plus the point's own wall-clock seconds.

    Only engaged when telemetry or a ledger is attached: with ``jobs >
    1`` the parent cannot time individual points (they overlap), so the
    child measures itself and ships the duration home with the result.
    """
    fn, params = payload
    t0 = time.monotonic()
    result = fn(**params)
    return result, time.monotonic() - t0


def run_sweep(
    points: Sequence[SweepPoint],
    *,
    jobs: int = 1,
    cache: Optional[SweepCache] = None,
    mp_context: Optional[str] = None,
    telemetry: Any = None,
    ledger: Any = None,
) -> List[Any]:
    """Evaluate all points; returns results in input order.

    ``jobs <= 1`` runs serially in-process (no pickling requirements).
    With ``jobs > 1`` the uncached points are fanned across a
    ``multiprocessing`` pool; results are byte-identical to the serial
    run because every point is deterministic and order is restored by
    index.  A cache, when given, is consulted first and fed afterwards.

    ``telemetry`` (:class:`repro.obs.LiveTelemetry`) records one
    wall-clock ``sweep.task`` span per evaluated point on the
    ``sweep:task`` track; ``ledger`` (:class:`repro.obs.RunLedger`)
    appends one ``kind="sweep"`` row per point (cache hits included).
    Both are off by default and never affect results.
    """
    tel = telemetry if (telemetry is not None and telemetry.enabled) else None
    observed = tel is not None or ledger is not None
    results: List[Any] = [None] * len(points)
    todo: List[int] = []
    keys: Dict[int, str] = {}
    for i, pt in enumerate(points):
        if cache is not None or ledger is not None:
            keys[i] = pt.key()
        if cache is not None:
            hit = cache.get(keys[i])
            if hit is not None:
                results[i] = hit
                if tel is not None:
                    tel.event("sweep:task", "sweep.cache.hit",
                              scenario=pt.scenario, index=i)
                if ledger is not None:
                    ledger.record(kind="sweep", scenario=pt.scenario,
                                  digest=keys[i], wall_s=0.0, cached=True)
                continue
        todo.append(i)

    if not todo:
        return results

    timings: Dict[int, float] = {}
    if jobs <= 1 or len(todo) == 1:
        computed = []
        for i in todo:
            if tel is not None:
                with tel.span("sweep:task", "sweep.task",
                              scenario=points[i].scenario, index=i):
                    result, dt = _invoke_timed((points[i].fn, points[i].params))
            elif observed:
                result, dt = _invoke_timed((points[i].fn, points[i].params))
            else:
                result, dt = _invoke((points[i].fn, points[i].params)), 0.0
            timings[i] = dt
            computed.append(result)
    else:
        # fork keeps the warm interpreter (and the imported simulator)
        # on POSIX; spawn is the portable fallback.
        method = mp_context or (
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        ctx = multiprocessing.get_context(method)
        payloads = [(points[i].fn, points[i].params) for i in todo]
        with ctx.Pool(processes=min(jobs, len(todo))) as pool:
            if observed:
                timed = pool.map(_invoke_timed, payloads, chunksize=1)
                computed = [r for r, _ in timed]
                for i, (_, dt) in zip(todo, timed):
                    timings[i] = dt
                    if tel is not None:
                        tel.event("sweep:task", "sweep.task.done",
                                  scenario=points[i].scenario, index=i,
                                  wall_s=round(dt, 6))
            else:
                computed = pool.map(_invoke, payloads, chunksize=1)

    for i, result in zip(todo, computed):
        results[i] = result
        if cache is not None:
            cache.put(keys[i], result)
        if ledger is not None:
            ledger.record(kind="sweep", scenario=points[i].scenario,
                          digest=keys.get(i, ""), wall_s=timings.get(i),
                          cached=False)
    return results

"""Machine presets encoding Table I of the paper.

=========  ==========================  ==========================
           Trinity                     Jupiter
=========  ==========================  ==========================
Model      Cray XC40                   Cray XC30
CPU        2x 16-core E5-2698 v3       2x 14-core E5-2690 v4
RAM        128 GB                      64 GB
Network    Aries                       Aries
=========  ==========================  ==========================

The latency/bandwidth constants approximate published Aries numbers;
the NFS startup constants reflect the paper's remark that its software
stack lived on "a relatively slow NFS-mounted file system".
"""

from __future__ import annotations

from repro.machine.model import MachineModel


def trinity(num_nodes: int = 4) -> MachineModel:
    """LANL Trinity: Cray XC40, 32 cores/node, Aries interconnect."""
    return MachineModel(
        name="Trinity (Cray XC40)",
        num_nodes=num_nodes,
        cores_per_node=32,
        intra_node_latency=0.35e-6,
        intra_node_bandwidth=7.0e9,
        inter_node_latency=1.30e-6,
        inter_node_bandwidth=9.7e9,
    )


def jupiter(num_nodes: int = 4) -> MachineModel:
    """Jupiter: Cray XC30, 28 cores/node, Aries interconnect."""
    return MachineModel(
        name="Jupiter (Cray XC30)",
        num_nodes=num_nodes,
        cores_per_node=28,
        intra_node_latency=0.30e-6,
        intra_node_bandwidth=8.0e9,
        inter_node_latency=1.40e-6,
        inter_node_bandwidth=8.5e9,
    )


def laptop(num_nodes: int = 1) -> MachineModel:
    """A small shared-memory box; convenient for examples and tests.

    Startup costs are scaled way down so unit tests spend their budget
    on protocol logic rather than simulated NFS stalls.
    """
    return MachineModel(
        name="laptop",
        num_nodes=num_nodes,
        cores_per_node=8,
        intra_node_latency=0.20e-6,
        intra_node_bandwidth=12.0e9,
        inter_node_latency=20.0e-6,
        inter_node_bandwidth=1.0e9,
        nfs_base_load=1.0e-3,
        nfs_contention=1.0e-5,
        proc_local_init=0.2e-3,
        session_subsys_init=0.1e-3,
        session_handle_init_cost=0.5e-3,
        fence_client_cost_cold=20.0e-6,
        group_client_cost_cold=40.0e-6,
        add_procs_local_cost=5.0e-6,
    )

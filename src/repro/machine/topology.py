"""Rank-to-node placement.

The launcher maps ranks onto nodes; all cost decisions downstream only
need "are these two ranks on the same node" plus the list of node-local
peers, both of which this class answers in O(1)/O(ppn).
"""

from __future__ import annotations

from typing import List, Sequence


class Topology:
    """Block ("by node") placement of ``num_ranks`` over nodes.

    ``ppn`` is the number of processes per node; the final node may be
    partially filled.  This matches the default mapping used by prun and
    srun in the paper's experiments.
    """

    def __init__(self, num_ranks: int, ppn: int) -> None:
        if num_ranks < 1:
            raise ValueError("need at least one rank")
        if ppn < 1:
            raise ValueError("ppn must be >= 1")
        self.num_ranks = num_ranks
        self.ppn = ppn
        self.num_nodes = (num_ranks + ppn - 1) // ppn

    @classmethod
    def from_nodes(cls, num_nodes: int, ppn: int) -> "Topology":
        """Topology that fully subscribes ``num_nodes`` at ``ppn`` each."""
        return cls(num_nodes * ppn, ppn)

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        self._check(rank)
        return rank // self.ppn

    def local_rank_of(self, rank: int) -> int:
        """Rank's index among the processes of its node."""
        self._check(rank)
        return rank % self.ppn

    def ranks_on_node(self, node: int) -> List[int]:
        """All ranks hosted by ``node``, in rank order."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range [0,{self.num_nodes})")
        lo = node * self.ppn
        hi = min(lo + self.ppn, self.num_ranks)
        return list(range(lo, hi))

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def node_leader(self, node: int) -> int:
        """Lowest rank on a node (acts as the node's representative)."""
        return self.ranks_on_node(node)[0]

    def nodes_of(self, ranks: Sequence[int]) -> List[int]:
        """Sorted list of distinct nodes hosting any of ``ranks``."""
        return sorted({self.node_of(r) for r in ranks})

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} out of range [0,{self.num_ranks})")

    def __repr__(self) -> str:  # pragma: no cover
        return f"Topology(num_ranks={self.num_ranks}, ppn={self.ppn})"

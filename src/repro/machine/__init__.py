"""Machine models: the hardware-substitution layer.

The paper's testbeds (Table I) are Cray XC systems we cannot access; a
:class:`MachineModel` encodes the cost structure that drives every
simulated timing — link latencies and bandwidths, per-message software
overheads, PMIx RPC costs, and the NFS-filesystem startup penalty the
paper calls out for its MPI-initialization numbers.
"""

from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.machine.presets import trinity, jupiter, laptop

__all__ = ["MachineModel", "Topology", "trinity", "jupiter", "laptop"]

"""Cost model for a simulated cluster.

All times are simulated seconds, all sizes bytes.  The constants are not
meant to match the paper's absolute numbers (its testbed is gone); they
are chosen so the *ratios* the paper reports hold: inter- vs intra-node
latency, PMIx group-construct cost vs an allreduce, NFS-bound startup
growth, and the small per-message penalty of the extended exCID header.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class MachineModel:
    """Immutable description of cluster hardware + system software costs."""

    name: str = "generic"
    num_nodes: int = 1
    cores_per_node: int = 16

    # -- interconnect ------------------------------------------------------
    intra_node_latency: float = 0.30e-6     # shared-memory one-way latency
    intra_node_bandwidth: float = 8.0e9     # bytes/s
    inter_node_latency: float = 1.30e-6     # NIC-to-NIC one-way latency
    inter_node_bandwidth: float = 10.0e9    # bytes/s
    eager_limit: int = 4096                 # bytes; above this, rendezvous

    # -- per-message software costs (the PML's CPU time) --------------------
    send_overhead: float = 0.10e-6          # sender-side injection cost
    match_overhead: float = 0.08e-6         # receiver-side tag-match cost
    extended_match_overhead: float = 0.25e-6  # hash lookup of exCID -> comm
    # (the extended header's 20 wire bytes live in pml.headers)

    # -- runtime / PMIx costs -----------------------------------------------
    local_rpc_cost: float = 2.0e-6          # client <-> node-local PMIx server
    server_msg_cost: float = 8.0e-6         # PMIx server <-> server (sw + wire)
    daemon_wireup_cost: float = 150.0e-6    # per-daemon DVM bootstrap cost
    pgcid_allocate_cost: float = 5.0e-6     # HNP assigns a 64-bit PGCID

    # Server-side processing per local participant in collective PMIx ops.
    # The first group/fence on a server is "cold" (connection setup, state
    # allocation — dominant in the paper's startup measurements); later
    # operations are "warm" (what an MPI_Comm_dup-acquired PGCID costs).
    fence_client_cost_cold: float = 2.2e-3
    fence_client_cost_warm: float = 8.0e-6
    group_client_cost_cold: float = 6.0e-3
    group_client_cost_warm: float = 20.0e-6

    # -- process startup ----------------------------------------------------
    # The paper attributes its large absolute init times to libraries being
    # loaded from "a relatively slow NFS-mounted file system"; contention
    # grows with the number of processes hitting the filesystem at once.
    nfs_base_load: float = 0.250            # per-process library load, alone
    nfs_contention: float = 0.004           # extra seconds per concurrent proc
    proc_local_init: float = 3.0e-3         # MCA registry, malloc pools, ...
    session_subsys_init: float = 1.0e-3     # per-subsystem lazy init (sessions)
    session_handle_init_cost: float = 60.0e-3  # first-session MPI resource init
    add_procs_local_cost: float = 0.1e-3    # per node-local peer at MPI_Init

    # -- fault handling ------------------------------------------------------
    # How long until a death is noticed: the HNP's daemon heartbeat
    # timeout (node failures) and the runtime's error-propagation delay
    # (proc failures) share one constant at this fidelity.
    daemon_failure_detect: float = 50.0e-6
    # Bounded-termination net: once faults are active, a PMIx collective
    # stuck longer than this fails with PMIX_ERR_TIMEOUT instead of
    # hanging (covers races the propagation protocol cannot see).
    fault_collective_timeout: float = 0.5
    # Reliable-RML retransmission (recovery mode, docs/recovery.md).
    # The base RTO is ~10x the server-to-server hop plus payload time, so
    # a healthy link never retransmits; the full 8-retry exponential
    # backoff sums to ~0.05 s, comfortably inside the collective timeout.
    rml_rto: float = 2.0e-4
    rml_backoff: float = 2.0
    rml_max_retries: int = 8

    # -- OS scheduling -------------------------------------------------------
    # Effective nanosleep() wakeup granularity under load (timer slack +
    # scheduler latency on a busy node) — drives the sessions-quiescence
    # overhead in the 2MESH experiment.
    nanosleep_quantum: float = 30.0e-6

    def with_nodes(self, num_nodes: int) -> "MachineModel":
        """A copy of this model scaled to ``num_nodes`` nodes."""
        return replace(self, num_nodes=num_nodes)

    def replace(self, **kw) -> "MachineModel":
        """A copy of this model with the given fields overridden."""
        return replace(self, **kw)

    # -- derived costs -------------------------------------------------------
    def wire_time(self, same_node: bool, nbytes: int) -> float:
        """One-way transfer time for ``nbytes`` between two ranks."""
        if same_node:
            return self.intra_node_latency + nbytes / self.intra_node_bandwidth
        return self.inter_node_latency + nbytes / self.inter_node_bandwidth

    def nfs_load_time(self, concurrent_procs: int) -> float:
        """Library-load time with ``concurrent_procs`` processes competing.

        Contention grows with the logarithm of the total process count:
        NFS read caching means most of the cost is metadata round-trips,
        which scale sub-linearly in practice.
        """
        if concurrent_procs < 1:
            concurrent_procs = 1
        return self.nfs_base_load + self.nfs_contention * math.log2(concurrent_procs + 1) * 10.0

    def describe(self) -> Dict[str, str]:
        """Human-readable summary used by the Table I bench target."""
        return {
            "Model": self.name,
            "Nodes": str(self.num_nodes),
            "Cores/node": str(self.cores_per_node),
            "Intra latency": f"{self.intra_node_latency * 1e6:.2f} us",
            "Inter latency": f"{self.inter_node_latency * 1e6:.2f} us",
            "Intra bandwidth": f"{self.intra_node_bandwidth / 1e9:.1f} GB/s",
            "Inter bandwidth": f"{self.inter_node_bandwidth / 1e9:.1f} GB/s",
        }

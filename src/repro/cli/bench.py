"""Wall-clock benchmark CLI: fast-path engine vs compat reference.

Usage::

    python -m repro bench                     # full suite -> BENCH_PR9.json
    python -m repro bench --quick             # small scales, smoke-sized
    python -m repro bench --cases fence-storm comm-dup --repeats 5
    python -m repro bench --jobs 4            # one worker process per case
    python -m repro bench --serve             # serve loadgen -> BENCH_PR5.json
    python -m repro bench --fleet             # sharded fleet -> BENCH_PR10.json
    python -m repro bench --fleet --check     # gate vs committed BENCH_PR10.json
    python -m repro bench --check             # gate vs committed BENCH_PR9.json
    python -m repro bench --check BENCH_PR6.json --tolerance 0.3
    python -m repro bench --ledger obs/ledger.sqlite   # record runs

Scheduler cases run twice — once on the default fast-path scheduler,
once on ``Engine(compat=True)`` — and report events/second plus the
speedup.  Partitioned cases (``fig3-init-1k-p4``, ``fig3-init-4k``)
instead compare one-process execution against ``repro.dsim`` running
the same world across N worker processes; their >=2x bar is only
*enforced* when the host has at least that many cores (the report
records ``cores``, so single-core measurements are tracked honestly —
see docs/performance.md, "Partitioned execution").  Cases with an
enforced acceptance bar fail the run when they miss it.

``--jobs`` fans cases across worker processes via ``repro.sweep``; use
it for a fast sanity pass, not for publishable numbers — concurrent
cases contend for cores and perturb each other's wall times.

``--check`` is the regression gate: after the run, the fresh report is
compared case-by-case against a committed baseline (default
``BENCH_PR6.json``) and the process exits non-zero if any case's
speedup fell more than ``--tolerance`` below the committed trajectory,
if event counts drifted at identical params, or if a baseline case went
missing.  Gate full runs against full baselines — quick-mode numbers
are smoke-sized and noisy.

``--serve`` benchmarks the ``repro.serve`` layer instead: a closed-loop
load generator against an in-process server, emitting throughput,
latency percentiles, the backpressure proof and the serve-vs-sweep
determinism check (docs/serving.md).

``--fleet`` benchmarks the sharded fleet (docs/serving.md, "Fleet
mode"): the same workload through one server and through 1/2/4 shards
behind the consistent-hash router, recording scaling, routing balance,
fleet-wide dedup and hot-tier hit rates.  Like the partitioned cases,
the fleet scaling bar is only *enforced* when the host has at least as
many cores as shards; ``--check`` gates against ``BENCH_PR10.json``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import cli
from repro.bench.harness import format_table
from repro.bench.perf import (CASES, PARTITIONED_CASES, check_regression,
                              run_case_point)
from repro.sweep import SweepPoint, run_sweep

# Sentinel for a bare ``--check``: resolved to the mode's committed
# baseline (BENCH_PR9.json, or BENCH_PR10.json under --fleet) after
# parsing, when the mode flags are known.
_CHECK_DEFAULT = "__default_baseline__"


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=None, metavar="FILE",
                    help="where to write the JSON report (default: "
                         "BENCH_PR9.json; BENCH_PR5.json with --serve; "
                         "BENCH_PR10.json with --fleet)")
    ap.add_argument("--check", nargs="?", const=_CHECK_DEFAULT,
                    default=None, metavar="BASELINE",
                    help="after running, gate the fresh report against a "
                         "committed baseline JSON (default baseline: "
                         "BENCH_PR9.json, or BENCH_PR10.json with --fleet); "
                         "exits non-zero on regression")
    ap.add_argument("--tolerance", type=float, default=0.2,
                    metavar="FRAC",
                    help="allowed relative speedup drop vs the baseline "
                         "before --check fails (default: %(default)s)")
    ap.add_argument("--quick", action="store_true",
                    help="small scales (CI smoke), still both engines")
    ap.add_argument("--repeats", type=int, default=3,
                    help="best-of-N wall-clock repeats (default: 3)")
    ap.add_argument("--cases", nargs="+", metavar="NAME",
                    choices=[c.name for c in CASES]
                    + [c.name for c in PARTITIONED_CASES],
                    help="subset of cases (default: all)")
    cli.add_jobs(ap, help="worker processes (timings contend; keep 1 for "
                          "publishable numbers; with --serve: server pool "
                          "size, default 2)")
    ap.add_argument("--serve", action="store_true",
                    help="benchmark the repro.serve layer (loadgen) instead "
                         "of the engine cases")
    ap.add_argument("--fleet", action="store_true",
                    help="benchmark the sharded serve fleet (1/2/4 shards "
                         "behind the consistent-hash router) instead of the "
                         "engine cases")
    ap.add_argument("--ledger", metavar="PATH",
                    help="append one kind=bench row per case to this "
                         "RunLedger sqlite file (python -m repro obs --runs)")
    cli.add_seed(ap, help="workload seed for --serve (default: %(default)s)")
    args = ap.parse_args(argv)

    if args.check == _CHECK_DEFAULT:
        args.check = "BENCH_PR10.json" if args.fleet else "BENCH_PR9.json"
    if args.fleet:
        return fleet_bench(args)
    if args.serve:
        return serve_bench(args)
    if args.out is None:
        args.out = "BENCH_PR9.json"

    selected = [c for c in CASES + PARTITIONED_CASES
                if args.cases is None or c.name in args.cases]
    points = [
        SweepPoint("bench", run_case_point,
                   {"case": c.name, "quick": args.quick,
                    "repeats": args.repeats})
        for c in selected
    ]
    # Deliberately no cache here: a memoized wall time is a stale
    # measurement, not a result.
    records = run_sweep(points, jobs=args.jobs)

    report = {
        "bench": "engine-fast-path",
        "mode": "quick" if args.quick else "full",
        "repeats": args.repeats,
        "python": sys.version.split()[0],
        "cases": {c.name: rec for c, rec in zip(selected, records)},
    }

    rows = []
    failed = []
    for case in selected:
        rec = report["cases"][case.name]
        if rec.get("kind") == "partitioned":
            # serial vs N-worker dsim: the bar only binds when the host
            # can actually run the workers in parallel.
            if not rec["enforced"]:
                bar = (f"track ({rec['cores']} core"
                       f"{'s' if rec['cores'] != 1 else ''})"
                       if case.min_speedup else "track")
            else:
                bar = f">={case.min_speedup:.1f}x"
            ok = (args.quick or not rec["enforced"]
                  or rec["speedup"] >= case.min_speedup)
            ref_col = f"{rec['serial_eps']:,.0f}"
            opt_col = f"{rec['partitioned_eps']:,.0f}"
        else:
            bar = f">={case.min_speedup:.1f}x" if case.min_speedup else "track"
            # The acceptance bars are a full-scale claim; quick scales
            # are smoke-sized and too noisy to fail a run on.
            ok = (args.quick or case.min_speedup is None
                  or rec["speedup"] >= case.min_speedup)
            ref_col = f"{rec['compat_eps']:,.0f}"
            opt_col = f"{rec['fast_eps']:,.0f}"
        if not ok:
            failed.append(case.name)
        rows.append([
            case.name,
            f"{rec['events']}",
            ref_col,
            opt_col,
            f"{rec['speedup']:.2f}x",
            bar,
            "ok" if ok else "FAIL",
        ])
    print(format_table(
        ["case", "events", "ref ev/s", "opt ev/s", "speedup", "bar", ""],
        rows,
    ))

    # Load the baseline before writing: with --out == --check the gate
    # must compare against the *committed* trajectory, not the file the
    # fresh report just replaced.
    baseline = None
    if args.check is not None:
        try:
            with open(args.check) as fh:
                baseline = json.load(fh)
        except OSError as err:
            print(f"cannot read baseline {args.check!r}: {err}",
                  file=sys.stderr)
            return 2

    rc = cli.write_json(args.out, report)
    if rc:
        return rc
    if args.ledger:
        from repro.bench.perf import ledger_records
        from repro.obs import RunLedger

        with RunLedger(args.ledger) as ledger:
            for row in ledger_records(report):
                ledger.record(**row)
        print(f"recorded {len(report['cases'])} case(s) in {args.ledger}")
    if failed:
        print(f"FAILED speedup bars: {', '.join(failed)}", file=sys.stderr)
        return 1
    if baseline is not None:
        regressions = check_regression(report, baseline,
                                       tolerance=args.tolerance)
        if regressions:
            print(f"FAILED regression gate vs {args.check}:",
                  file=sys.stderr)
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"regression gate vs {args.check}: ok "
              f"(tolerance {args.tolerance:.0%})")
    return 0


def fleet_bench(args) -> int:
    """--fleet: the sharded-fleet scaling benchmark (BENCH_PR10.json)."""
    from repro.serve.loadgen import fleet_report

    out = args.out or "BENCH_PR10.json"
    report = fleet_report(quick=args.quick)

    rows = []
    failed = []
    for name in sorted(report["cases"]):
        rec = report["cases"][name]
        if rec["min_speedup"] is None:
            bar = "track"
        elif not rec["enforced"]:
            bar = (f"track ({rec['cores']} core"
                   f"{'s' if rec['cores'] != 1 else ''})")
        else:
            bar = f">={rec['min_speedup']:.1f}x"
        ok = (args.quick or not rec["enforced"]
              or rec["speedup"] >= rec["min_speedup"])
        if not ok:
            failed.append(name)
        rows.append([
            name,
            f"{rec['shards']}",
            f"{rec['events']}",
            f"{rec['throughput_rps']:.1f}",
            f"{rec['speedup']:.2f}x",
            f"{rec['balance']['max_over_mean']:.2f}",
            f"{rec['dedup']['hit_rate']:.2f}",
            f"{rec['hot']['hit_rate']:.2f}",
            bar,
            "ok" if ok else "FAIL",
        ])
    print(format_table(
        ["case", "shards", "events", "req/s", "speedup", "imbalance",
         "dedup", "hot", "bar", ""],
        rows,
    ))

    baseline = None
    if args.check is not None:
        try:
            with open(args.check) as fh:
                baseline = json.load(fh)
        except OSError as err:
            print(f"cannot read baseline {args.check!r}: {err}",
                  file=sys.stderr)
            return 2

    rc = cli.write_json(out, report)
    if rc:
        return rc
    if failed:
        print(f"FAILED fleet scaling bars: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    if baseline is not None:
        regressions = check_regression(report, baseline,
                                       tolerance=args.tolerance)
        if regressions:
            print(f"FAILED regression gate vs {args.check}:", file=sys.stderr)
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"regression gate vs {args.check}: ok "
              f"(tolerance {args.tolerance:.0%})")
    return 0


def serve_bench(args) -> int:
    """--serve: the closed-loop serve-layer benchmark (BENCH_PR5.json)."""
    from repro.serve.loadgen import bench_report

    out = args.out or "BENCH_PR5.json"
    workers = args.jobs if args.jobs > 1 else 2
    requests = 12 if args.quick else 32
    report = bench_report(clients=4, requests=requests, workers=workers,
                          seed=args.seed,
                          soak_seeds=2 if args.quick else 3)
    lg, bp, det = (report["loadgen"], report["backpressure"],
                   report["determinism"])
    lat = lg["latency_s"]
    print(format_table(
        ["metric", "value"],
        [["throughput", f"{lg['throughput_rps']:.1f} req/s"],
         ["latency p50", f"{lat.get('p50', 0) * 1e3:.1f} ms"],
         ["latency p99", f"{lat.get('p99', 0) * 1e3:.1f} ms"],
         ["requests ok", f"{lg['by_status'].get('ok', 0)}/{lg['completed']}"],
         ["backpressure", f"{bp['rejected']}/{bp['burst']} rejected, "
                          f"max depth {bp['max_queue_depth']}/{bp['capacity']}"],
         ["determinism", "byte-identical" if det["serve_matches_serial_sweep"]
                         else "MISMATCH"]],
    ))
    rc = cli.write_json(out, report)
    if rc:
        return rc
    if not (det["serve_matches_serial_sweep"] and bp["bounded"]
            and bp["rejections_observed"]):
        print("FAILED serve acceptance: determinism/backpressure",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

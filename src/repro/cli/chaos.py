"""Chaos-soak the operational serve/sweep/cache stack (docs/robustness.md).

Usage::

    python -m repro chaos                        # 50 seeds, summary
    python -m repro chaos --seeds 200 --json
    python -m repro chaos --seed 7 --verbose     # one seed, full record
    python -m repro chaos --seeds 20 --verify-determinism

Each seed derives a survivable :func:`repro.chaos.chaos_plan` and runs
two legs (``repro.chaos.soak_run``):

* **serve** — a job server plus client under injected worker kills,
  pipe breaks, worker hangs, and mid-line/post-send connection drops;
  the retried/resubmitted results must be byte-identical to a clean
  server's.
* **sweep** — a parallel sweep writing through a cache under injected
  torn writes and corruption; both the damaged pass and a re-read pass
  (which must quarantine every damaged entry) must be byte-identical
  to a cache-less run.

A seed *passes* when both legs hold byte parity.  ``--verify-
determinism`` runs every seed twice and compares the full records —
injection schedules included — byte-for-byte.  Unless ``--skip-
degraded``, one extra corrupt-cache + dead-worker scenario
(``repro.chaos.degraded_run``) must complete in cache-only degraded
mode instead of crashing, and unless ``--skip-fleet`` a shard of a
2-shard fleet is killed mid-stream (``repro.chaos.fleet_failover_run``)
and every request must still complete via the ring successor.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import cli
from repro.chaos import degraded_run, fleet_failover_run, soak_run
from repro.sweep import SweepPoint, run_sweep


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--seeds", type=int, default=50,
                    help="number of seeds to soak (default: %(default)s)")
    ap.add_argument("--first-seed", type=int, default=0)
    cli.add_seed(ap, default=None,
                 help="run exactly one seed (overrides --seeds)")
    ap.add_argument("--requests", type=int, default=4, metavar="N",
                    help="serve requests per seed (default: %(default)s)")
    ap.add_argument("--points", type=int, default=6, metavar="N",
                    help="sweep points per seed (default: %(default)s)")
    ap.add_argument("--nprocs", type=int, default=4, metavar="N",
                    help="ranks per served sim request (default: %(default)s)")
    ap.add_argument("--verify-determinism", action="store_true",
                    help="run every seed twice and compare record digests")
    ap.add_argument("--skip-degraded", action="store_true",
                    help="skip the corrupt-cache + dead-worker degraded-mode "
                         "scenario")
    ap.add_argument("--skip-fleet", action="store_true",
                    help="skip the shard-death fleet-failover scenario")
    cli.add_json_flag(ap, help="emit one JSON record per seed (ndjson)")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args(argv)

    if args.seed is not None:
        seeds = [args.seed]
    else:
        seeds = list(range(args.first_seed, args.first_seed + args.seeds))

    kw = dict(requests=args.requests, points_n=args.points,
              nprocs=args.nprocs)
    # Always serial: each soak point spawns its own server worker pools,
    # which a daemonic sweep-pool worker is not allowed to do.
    points = [SweepPoint("chaos-soak-run", soak_run, {"seed": s, **kw})
              for s in seeds]
    records = run_sweep(points)
    rerun = run_sweep(points) if args.verify_determinism else None

    failures, nondet = [], []
    injected = 0
    for i, seed in enumerate(seeds):
        rec = records[i]
        if not rec["ok"]:
            failures.append(seed)
        if rerun is not None and rerun[i]["digest"] != rec["digest"]:
            nondet.append(seed)
        injected += sum(rec["serve"]["injected"].values())
        injected += sum(rec["sweep"]["injected"].values())
        if args.json:
            print(json.dumps(rec, sort_keys=True))
        elif args.verbose:
            print(json.dumps(rec, sort_keys=True, indent=2))
        else:
            status = "ok  " if rec["ok"] else "FAIL"
            inj = {**rec["serve"]["injected"], **rec["sweep"]["injected"]}
            print(f"seed {seed:4d}  {status} "
                  f"deaths={rec['serve']['worker_deaths']} "
                  f"reconnects={rec['serve']['client_reconnects']} "
                  f"quarantined={rec['sweep']['quarantined']} "
                  f"injected=[{', '.join(f'{k}={v}' for k, v in sorted(inj.items()))}]")

    degraded_ok = True
    if not args.skip_degraded:
        deg = degraded_run()
        degraded_ok = deg["ok"]
        verdict = "ok" if degraded_ok else "FAIL"
        print(f"degraded-mode scenario: {verdict} "
              f"(reject reason: {deg['reject_reason']!r}, "
              f"quarantined={deg['quarantined']}, "
              f"breaker_trips={deg['breaker_trips']})", file=sys.stderr)

    fleet_ok = True
    if not args.skip_fleet:
        flt = fleet_failover_run()
        fleet_ok = flt["ok"]
        verdict = "ok" if fleet_ok else "FAIL"
        print(f"fleet-failover scenario: {verdict} "
              f"(killed={flt['killed']}, failovers={flt['failovers']}, "
              f"live_after={flt['live_after']}/{flt['shards']})",
              file=sys.stderr)

    n = len(seeds)
    print(f"\n{n - len(failures)}/{n} seeds byte-identical under chaos "
          f"({injected} faults injected)", file=sys.stderr)
    if failures:
        print(f"FAILED seeds: {failures}", file=sys.stderr)
    if nondet:
        print(f"NON-DETERMINISTIC seeds: {nondet}", file=sys.stderr)
    return 1 if (failures or nondet or not degraded_ok or not fleet_ok) else 0


if __name__ == "__main__":
    sys.exit(main())

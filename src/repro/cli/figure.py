"""Run one or more paper figures (or ablations) from the shell.

Usage::

    python -m repro figure --list
    python -m repro figure fig3b
    python -m repro figure fig5c --presync
    python -m repro figure fig7 --full            # includes P3 (1,024 ranks)
    python -m repro figure fig3a fig3b fig4 --jobs 3
    python -m repro figure fig7 --cache-dir .figcache   # instant re-runs

``--jobs N`` fans independent figures across processes; ``--cache-dir``
memoizes results on disk keyed by (figure, params, source digest) — see
docs/performance.md for the invalidation rules.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro import cli
from repro.bench import figures
from repro.bench.harness import BenchResult
from repro.sweep import SweepPoint, run_sweep


def _unknown_msg(name: str, catalog) -> str:
    import difflib

    msg = f"unknown figure {name!r}; try --list"
    close = difflib.get_close_matches(name, catalog, n=3)
    if close:
        msg += " (did you mean: " + ", ".join(close) + "?)"
    return msg


def _figure_kwargs(fn, args) -> dict:
    """Per-figure kwargs from the CLI flags, filtered by signature."""
    kwargs = {}
    params = inspect.signature(fn).parameters
    if "quick" in params:
        kwargs["quick"] = not args.full
    if "presync" in params and args.presync:
        kwargs["presync"] = True
    if args.obs:
        kwargs["obs"] = True
    if args.partitions > 1:
        kwargs["partitions"] = args.partitions
    return kwargs


def main(argv=None) -> int:
    catalog = figures.entry_points()
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("figure", nargs="*",
                        help="entry point name(s) (see --list)")
    parser.add_argument("--list", action="store_true", help="list available figures")
    parser.add_argument("--full", action="store_true", help="paper-scale sweeps")
    parser.add_argument("--presync", action="store_true", help="fig5c: pair pre-sync")
    cli.add_partitions(parser,
                       help="compute each run across N worker processes "
                            "(repro.dsim); bit-identical results, only "
                            "supported by some figures")
    parser.add_argument("--csv", metavar="FILE", help="also write the series as CSV")
    cli.add_obs(parser, help="instrument runs: attach critical-path "
                             "breakdowns (figures that support it)")
    cli.add_json_path(parser, help="write the result (series + obs data) as JSON")
    cli.add_jobs(parser, help="run figures across N worker processes")
    cli.add_cache_dir(parser)
    args = parser.parse_args(argv)

    # Validate the figure names even when --list is passed: listing must
    # not mask a typo'd name with a zero exit status.
    unknown = [name for name in args.figure if name not in catalog]

    if args.list or not args.figure:
        for name in sorted(catalog):
            doc = (inspect.getdoc(catalog[name]) or "").splitlines()
            print(f"  {name:28s} {doc[0] if doc else ''}")
        for name in unknown:
            print(_unknown_msg(name, catalog), file=sys.stderr)
        return 2 if unknown else 0

    if unknown:
        for name in unknown:
            print(_unknown_msg(name, catalog), file=sys.stderr)
        return 2
    if (args.csv or args.json) and len(args.figure) != 1:
        print("--csv/--json need exactly one figure", file=sys.stderr)
        return 2
    if args.obs:
        unsupported = [
            name for name in args.figure
            if "obs" not in inspect.signature(catalog[name]).parameters
        ]
        if unsupported:
            print(f"{', '.join(unsupported)} does not support --obs",
                  file=sys.stderr)
            return 2
    if args.partitions > 1:
        unsupported = [
            name for name in args.figure
            if "partitions" not in inspect.signature(catalog[name]).parameters
        ]
        if unsupported:
            print(f"{', '.join(unsupported)} does not support --partitions",
                  file=sys.stderr)
            return 2

    points = [
        SweepPoint("figure", figures.run_point,
                   {"figure": name, **_figure_kwargs(catalog[name], args)})
        for name in args.figure
    ]
    cache = cli.cache_from_args(args)

    t0 = time.time()
    payloads = run_sweep(points, jobs=args.jobs, cache=cache)
    for i, payload in enumerate(payloads):
        result = BenchResult.from_payload(payload)
        if i:
            print()
        print(result.render())
        if result.obs:
            for key, data in result.obs.items():
                print(f"\n-- obs {key}: critical-path attribution "
                      f"(total {data['total'] * 1e3:.3f} ms) --")
                for name, dur in data["by_stage"].items():
                    pct = 100.0 * dur / data["total"] if data["total"] else 0.0
                    print(f"  {dur * 1e3:>10.3f}ms {pct:5.1f}%  {name}")
        if args.json:
            try:
                with open(args.json, "w") as fh:
                    fh.write(result.to_json())
            except OSError as err:
                print(f"cannot write {args.json}: {err}", file=sys.stderr)
                return 1
            print(f"wrote {args.json}")
        if args.csv:
            try:
                with open(args.csv, "w") as fh:
                    fh.write(result.to_csv())
            except OSError as err:
                print(f"cannot write {args.csv}: {err}", file=sys.stderr)
                return 1
            print(f"wrote {args.csv}")
    cli.report_cache(cache)
    print(f"\n({time.time() - t0:.1f}s wall)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

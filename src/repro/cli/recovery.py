"""Chaos-soak the fault-recovery layer from the shell (docs/recovery.md).

Usage::

    python -m repro recovery                      # 50 seeds, summary
    python -m repro recovery --seeds 200 --json
    python -m repro recovery --seed 7 --verbose   # one seed, full record
    python -m repro recovery --seeds 20 --verify-determinism
    python -m repro recovery --jobs 4             # fan seeds across cores
    python -m repro recovery --cache-dir .soakcache   # memoize per-seed runs

Each seed boots a recovery-enabled cluster (reliable RML + tree healing
+ ULFM-lite), installs a survivable fault plan — lossy RML links plus
one guaranteed node kill — and drives every rank through

    compute -> revoke -> agree -> shrink -> allreduce(shrunk)

A seed *passes* when the run stays inside the simulated-time bound,
every survivor lands on the same freshly-CID'd shrunk communicator, and
the final allreduce is correct.  Same seed, same digest — add
``--verify-determinism`` to re-run each seed and compare byte-for-byte.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import cli
from repro.recovery import SIM_BOUND, soak_run
from repro.sweep import SweepPoint, run_sweep


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--seeds", type=int, default=50,
                    help="number of seeds to sweep (default: 50)")
    ap.add_argument("--first-seed", type=int, default=0)
    cli.add_seed(ap, default=None,
                 help="run exactly one seed (overrides --seeds)")
    ap.add_argument("--nodes", type=int, default=4)
    ap.add_argument("--ranks", type=int, default=8)
    ap.add_argument("--no-node-kill", action="store_true",
                    help="drop the guaranteed node kill from each plan")
    ap.add_argument("--no-lossy", action="store_true",
                    help="drop the guaranteed lossy RML link from each plan")
    ap.add_argument("--verify-determinism", action="store_true",
                    help="run every seed twice and compare digests")
    cli.add_json_flag(ap, help="emit one JSON record per seed (ndjson)")
    ap.add_argument("--verbose", action="store_true")
    cli.add_jobs(ap, help="fan seeds across N worker processes "
                          "(per-seed output and digests are identical to "
                          "a serial run)")
    cli.add_cache_dir(ap)
    args = ap.parse_args(argv)

    if args.seed is not None:
        seeds = [args.seed]
    else:
        seeds = list(range(args.first_seed, args.first_seed + args.seeds))

    kw = dict(num_nodes=args.nodes, num_ranks=args.ranks,
              with_node_kill=not args.no_node_kill, lossy=not args.no_lossy)
    points = [SweepPoint("recovery-soak", soak_run, {"seed": s, **kw})
              for s in seeds]
    cache = cli.cache_from_args(args)
    records = run_sweep(points, jobs=args.jobs, cache=cache)
    if args.verify_determinism:
        # Recompute every seed uncached: a hit is then verified against a
        # fresh run, not against itself.
        rerun = run_sweep(points, jobs=args.jobs)

    failures = []
    nondet = []
    totals = {"retransmits": 0, "dup_suppressed": 0, "fence_retries": 0,
              "reparents": 0, "grpcomm_restarts": 0, "revokes": 0,
              "shrinks": 0, "dead": 0}
    for i, seed in enumerate(seeds):
        rec = records[i]
        if args.verify_determinism:
            if rerun[i]["digest"] != rec["digest"]:
                nondet.append(seed)
        if not rec["ok"]:
            failures.append(seed)
        for k in totals:
            totals[k] += len(rec["dead_ranks"]) if k == "dead" else rec[k]
        if args.json:
            print(json.dumps(rec, sort_keys=True))
        elif args.verbose:
            for k in sorted(rec):
                print(f"  {k}: {rec[k]}")
        else:
            status = "ok  " if rec["ok"] else "FAIL"
            print(f"seed {seed:4d}  {status} dead={rec['dead_ranks']} "
                  f"t={rec['t_end']:.3f}s retx={rec['retransmits']} "
                  f"fence_retries={rec['fence_retries']} "
                  f"heals={rec['reparents']}")

    n = len(seeds)
    cli.report_cache(cache)
    print(f"\n{n - len(failures)}/{n} seeds survived "
          f"(bound {SIM_BOUND}s simulated)", file=sys.stderr)
    print("totals: " + ", ".join(f"{k}={v}" for k, v in sorted(totals.items())),
          file=sys.stderr)
    if failures:
        print(f"FAILED seeds: {failures}", file=sys.stderr)
    if nondet:
        print(f"NON-DETERMINISTIC seeds: {nondet}", file=sys.stderr)
    return 1 if (failures or nondet) else 0


if __name__ == "__main__":
    sys.exit(main())

"""Run a fault-injection scenario from the shell (see docs/faults.md).

Usage::

    python -m repro faults --list
    python -m repro faults fence-kill
    python -m repro faults node-down
    python -m repro faults chaos --seed 7 --ranks 8

Each scenario boots a small cluster, installs a deterministic
:class:`repro.simtime.faults.FaultPlan`, runs to quiescence, and prints
per-rank outcomes plus the FaultManager's statistics.  Same seed, same
output — scenarios are bit-deterministic.
"""

from __future__ import annotations

import argparse
import sys

from repro.cluster import Cluster
from repro.faults import FaultPlan, random_plan
from repro.machine.presets import laptop
from repro.pmix.types import PMIX_ERR_PROC_ABORTED, PmixError, status_name
from repro.simtime.process import ProcessKilled, Sleep


def _boot(nodes: int, ranks: int, ppn: int):
    cluster = Cluster(machine=laptop(num_nodes=nodes))
    job = cluster.launch(ranks, ppn=ppn)
    return cluster, job


def _spawn(cluster, job, gens):
    procs = []
    for rank, gen in enumerate(gens):
        sim = cluster.spawn(gen, name=f"rank{rank}")
        cluster.faults.register_rank_proc(job.proc(rank), sim)
        procs.append(sim)
    for p in procs:
        p.defuse()
    return procs


def _report(cluster, procs, outcomes):
    for rank, sim in enumerate(procs):
        if isinstance(sim.exception, ProcessKilled):
            outcome = "killed"
        else:
            outcome = outcomes.get(rank, sim.result)
        print(f"  rank {rank}: {outcome}")
    stats = ", ".join(f"{k}={v}" for k, v in sorted(cluster.faults.stats.items()))
    print(f"  fault stats: {stats or '<none>'}")
    print(f"  sim time: {cluster.now * 1e3:.3f} ms")
    return 0


def scenario_fence_kill(args) -> int:
    """Kill one rank mid-fence; survivors get a typed error, not a hang."""
    ranks = args.ranks
    cluster, job = _boot(nodes=4, ranks=ranks, ppn=max(1, ranks // 4))
    victim = ranks - 1
    # The kill fires when the first fence contribution crosses the RML —
    # i.e. genuinely mid-collective, independent of startup timing.
    plan = FaultPlan().kill_proc(victim, after_count=1, layer="rml", tag="grpcomm_up")
    cluster.install_faults(plan)
    outcomes = {}

    def rank_proc(rank):
        client = job.client(rank)
        yield from client.init()
        notified = []
        client.register_event_handler(
            [PMIX_ERR_PROC_ABORTED],
            lambda code, src, info: notified.append(src.rank),
        )
        client.put("ep", f"ep-{rank}")
        yield from client.commit()
        if rank == victim:
            # The victim dawdles: the others are already waiting in the
            # fence when the kill fires, so it never contributes.
            yield Sleep(5e-4)
        try:
            yield from client.fence()
            outcomes[rank] = "fence ok"
        except PmixError as err:
            yield Sleep(1e-3)   # let the ABORTED notification drain
            outcomes[rank] = f"fence failed ({status_name(err.status)}), notified of {sorted(set(notified))}"

    procs = _spawn(cluster, job, [rank_proc(r) for r in range(ranks)])
    cluster.run()
    print(f"fence-kill: {ranks} ranks / 4 nodes, victim rank {victim}")
    return _report(cluster, procs, outcomes)


def scenario_node_down(args) -> int:
    """Kill a whole node mid-group-construct; survivors evict its procs."""
    ranks = args.ranks
    cluster, job = _boot(nodes=4, ranks=ranks, ppn=max(1, ranks // 4))
    plan = FaultPlan().kill_node(3, after_count=1, layer="rml", tag="grpcomm_up")
    cluster.install_faults(plan)
    outcomes = {}

    def rank_proc(rank):
        client = job.client(rank)
        yield from client.init()
        procs_all = [job.proc(r) for r in range(ranks)]
        try:
            pgcid = yield from client.group_construct("demo", procs_all)
            outcomes[rank] = f"group ok (pgcid {pgcid})"
        except PmixError as err:
            outcomes[rank] = f"group failed ({status_name(err.status)})"

    procs = _spawn(cluster, job, [rank_proc(r) for r in range(ranks)])
    cluster.run()
    print(f"node-down: {ranks} ranks / 4 nodes, killing node 3 mid-construct")
    return _report(cluster, procs, outcomes)


def scenario_chaos(args) -> int:
    """Seeded-random faults against repeated fences (bounded termination)."""
    ranks = args.ranks
    cluster, job = _boot(nodes=4, ranks=ranks, ppn=max(1, ranks // 4))
    plan = random_plan(args.seed, num_ranks=ranks, num_nodes=4)
    cluster.install_faults(plan)
    print(f"chaos (seed {args.seed}): {plan.describe()}")
    outcomes = {}

    def rank_proc(rank):
        client = job.client(rank)
        yield from client.init()
        done = 0
        try:
            for _ in range(3):
                yield from client.fence()
                done += 1
                yield Sleep(2e-4)
            outcomes[rank] = f"{done}/3 fences ok"
        except PmixError as err:
            outcomes[rank] = f"stopped after {done} fences ({status_name(err.status)})"

    procs = _spawn(cluster, job, [rank_proc(r) for r in range(ranks)])
    cluster.run()
    return _report(cluster, procs, outcomes)


SCENARIOS = {
    "fence-kill": scenario_fence_kill,
    "node-down": scenario_node_down,
    "chaos": scenario_chaos,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scenario", nargs="?", help="scenario name (see --list)")
    parser.add_argument("--list", action="store_true", help="list scenarios")
    parser.add_argument("--seed", type=int, default=1, help="chaos: plan seed")
    parser.add_argument("--ranks", type=int, default=8, help="job size")
    args = parser.parse_args(argv)

    unknown = args.scenario is not None and args.scenario not in SCENARIOS
    if args.list or not args.scenario:
        for name, fn in sorted(SCENARIOS.items()):
            print(f"  {name:12s} {(fn.__doc__ or '').strip().splitlines()[0]}")
        if unknown:
            print(f"unknown scenario {args.scenario!r}; try --list", file=sys.stderr)
            return 2
        return 0
    if unknown:
        print(f"unknown scenario {args.scenario!r}; try --list", file=sys.stderr)
        return 2
    return SCENARIOS[args.scenario](args)


if __name__ == "__main__":
    raise SystemExit(main())

"""Run an instrumented scenario and print its observability report.

Usage::

    python -m repro obs --list
    python -m repro obs --scenario fig3-init
    python -m repro obs --scenario fig3-init --export /tmp/trace.json
    python -m repro obs --scenario fence-chain --nodes 4 --ppn 1
    python -m repro obs --scenario fig3-init --json report.json
    python -m repro obs --runs obs/ledger.sqlite --last 20
    python -m repro obs --runs obs/ledger.sqlite --trend
    python -m repro obs --runs obs/ledger.sqlite --kind serve \\
        --run-scenario sim --digest b7f0b9 --json runs.json

The report has four sections: end-to-end timing, the span flamegraph,
the metrics table, and the critical path through the span/causality DAG.
``--export`` additionally writes a Chrome ``trace_event`` JSON loadable
in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``;
``--json`` writes a machine-readable summary (timing, span/flow counts,
metric rows, critical-path stages).

``--runs LEDGER`` switches to the run-ledger query mode
(docs/observability.md): print the recorded serve/sweep/bench runs —
filter by ``--kind``, ``--run-scenario``, ``--digest`` prefix and
``--since``; ``--trend`` aggregates per (kind, scenario) instead.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import cli
from repro.obs import (
    chrome_trace,
    compute_critical_path,
    dumps,
    flame_report,
    validate_chrome_trace,
)
from repro.obs.scenarios import MACHINES, run_scenario, scenario_names


def _runs_mode(args) -> int:
    """``--runs LEDGER``: query the persistent run ledger."""
    from repro.obs import RunLedger

    if not os.path.exists(args.runs):
        print(f"no ledger at {args.runs}", file=sys.stderr)
        return 2
    with RunLedger(args.runs) as ledger:
        if args.trend:
            rows = ledger.trend(kind=args.kind, scenario=args.run_scenario,
                                since=args.since)
            if args.json:
                rc = cli.write_json(args.json, {"trend": rows})
                if rc:
                    return rc
            for r in rows:
                mean = r["wall_mean_s"]
                print(f"{r['kind']:<6} {r['scenario']:<16} "
                      f"runs={r['runs']} ok={r['ok']} cached={r['cached']}  "
                      f"wall mean={mean * 1e3:.1f}ms" if mean is not None
                      else f"{r['kind']:<6} {r['scenario']:<16} "
                           f"runs={r['runs']} ok={r['ok']} cached={r['cached']}")
            if not rows:
                print("(no runs recorded)")
            return 0
        rows = ledger.query(kind=args.kind, scenario=args.run_scenario,
                            digest=args.digest, since=args.since,
                            limit=args.last)
    if args.json:
        rc = cli.write_json(args.json, {"runs": rows})
        if rc:
            return rc
    for r in rows:
        wall = f"{r['wall_s'] * 1e3:7.1f}ms" if r["wall_s"] is not None \
            else "       --"
        cached = "cache" if r["cached"] else "     "
        trace = f"  trace={r['trace']}" if r["trace"] else ""
        sim = f"  sim={r['trace_path']}" if r["trace_path"] else ""
        print(f"#{r['id']:<4} {r['kind']:<6} {r['scenario']:<16} "
              f"{r['status']:<8} {wall} {cached} "
              f"{r['digest'][:12]}{trace}{sim}")
    if not rows:
        print("(no runs matched)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenario", help="scenario name (see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list available scenarios")
    parser.add_argument("--nodes", type=int, default=2)
    parser.add_argument("--ppn", type=int, default=2)
    parser.add_argument("--machine", default="jupiter",
                        choices=sorted(MACHINES))
    parser.add_argument("--export", metavar="FILE",
                        help="write Chrome trace_event JSON")
    cli.add_json_path(parser, help="write a machine-readable run summary "
                                   "(timing, counts, metrics, critical path)")
    runs = parser.add_argument_group("run-ledger mode")
    runs.add_argument("--runs", metavar="LEDGER",
                      help="query a RunLedger sqlite file instead of "
                           "running a scenario")
    runs.add_argument("--kind", choices=["serve", "sweep", "bench"],
                      help="filter ledger rows by producer kind")
    runs.add_argument("--run-scenario", metavar="NAME",
                      help="filter ledger rows by scenario name")
    runs.add_argument("--digest", metavar="PREFIX",
                      help="filter ledger rows by spec-digest prefix")
    runs.add_argument("--since", type=float, metavar="UNIX_TS",
                      help="only rows recorded at or after this time")
    runs.add_argument("--last", type=int, default=50, metavar="N",
                      help="show at most the newest N rows "
                           "(default: %(default)s)")
    runs.add_argument("--trend", action="store_true",
                      help="aggregate per (kind, scenario) instead of "
                           "listing rows")
    args = parser.parse_args(argv)

    if args.runs:
        return _runs_mode(args)

    if args.list or not args.scenario:
        for name in scenario_names():
            print(f"  {name}")
        if args.scenario and args.scenario not in scenario_names():
            print(f"unknown scenario {args.scenario!r}", file=sys.stderr)
            return 2
        return 0

    try:
        run = run_scenario(args.scenario, nodes=args.nodes, ppn=args.ppn,
                           machine=args.machine)
    except KeyError as err:
        print(err.args[0], file=sys.stderr)
        return 2

    print(f"== scenario {run.name}: {args.nodes} node(s) x {args.ppn} ppn "
          f"on {args.machine} ==")
    print(f"end-to-end simulated time: {run.t_end * 1e3:.3f} ms")
    print(f"spans: {len(run.tracer.spans)}  flows: {len(run.tracer.flows)}  "
          f"events: {len(run.tracer.records)}")

    print("\n-- span flamegraph (inclusive / self / count) --")
    print(flame_report(run.tracer))

    print("\n-- metrics --")
    print(run.metrics.render())

    print("\n-- critical path --")
    print(compute_critical_path(run.tracer).render())

    if args.json:
        path = compute_critical_path(run.tracer)
        summary = {
            "scenario": run.name,
            "nodes": args.nodes,
            "ppn": args.ppn,
            "machine": args.machine,
            "t_end": run.t_end,
            "spans": len(run.tracer.spans),
            "flows": len(run.tracer.flows),
            "events": len(run.tracer.records),
            "metrics": [list(row) for row in run.metrics.rows()],
            "critical_path": {stage: dur for stage, dur in path.by_stage().items()},
        }
        rc = cli.write_json(args.json, summary)
        if rc:
            return rc

    if args.export:
        obj = chrome_trace(run.tracer)
        errors = validate_chrome_trace(obj)
        if errors:
            for e in errors:
                print(f"trace validation: {e}", file=sys.stderr)
            return 1
        try:
            with open(args.export, "w") as fh:
                fh.write(dumps(obj))
        except OSError as err:
            print(f"cannot write {args.export}: {err}", file=sys.stderr)
            return 1
        print(f"\nwrote {len(obj['traceEvents'])} trace events to "
              f"{args.export} (load in Perfetto or chrome://tracing)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

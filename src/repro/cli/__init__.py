"""Shared argparse conventions for the ``python -m repro`` CLI.

Every subcommand spells the common flags identically by building them
here:

``--jobs N``        worker processes (sweeps: ``repro.sweep``; serve: pool size)
``--cache-dir DIR`` on-disk result cache (``repro.sweep.SweepCache``)
``--seed N``        the base PRNG seed of whatever the tool sweeps/generates
``--obs``           attach observability instrumentation to the runs
``--json [FILE]``   machine-readable output (a path, or a flag for ndjson)
``--addr ADDR``     a serve endpoint (``host:port`` or ``unix:/path``)
``--partitions N``  conservative parallel simulation across N processes

Keeping the definitions in one module keeps help strings, metavars and
defaults from drifting between the subcommand modules
(``repro.cli.figure``, ``repro.cli.recovery``, ``repro.cli.chaos``,
``repro.cli.faults``, ``repro.cli.bench``, ``repro.cli.obs``,
``repro.cli.serve``) — and the deprecated ``tools/*.py`` shims that
forward to them.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional

from repro.sweep import SweepCache


def positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def add_jobs(parser: argparse.ArgumentParser, *, default: int = 1,
             help: Optional[str] = None) -> None:          # noqa: A002
    parser.add_argument(
        "--jobs", type=positive_int, default=default, metavar="N",
        help=help or "fan work across N worker processes (default: %(default)s)")


def add_cache_dir(parser: argparse.ArgumentParser, *,
                  help: Optional[str] = None) -> None:     # noqa: A002
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        help=help or "on-disk result cache (see docs/performance.md)")


def cache_from_args(args: argparse.Namespace) -> Optional[SweepCache]:
    """The tool's :class:`SweepCache`, or ``None`` without --cache-dir."""
    cache_dir = getattr(args, "cache_dir", None)
    return SweepCache(cache_dir) if cache_dir else None


def report_cache(cache: Optional[SweepCache]) -> None:
    """The standard post-run one-liner, on stderr like all diagnostics."""
    if cache is not None:
        print(cache.report(), file=sys.stderr)


def add_seed(parser: argparse.ArgumentParser, *, default: Any = 0,
             help: Optional[str] = None) -> None:          # noqa: A002
    parser.add_argument(
        "--seed", type=int, default=default, metavar="N",
        help=help or "base seed (default: %(default)s)")


def add_obs(parser: argparse.ArgumentParser, *,
            help: Optional[str] = None) -> None:           # noqa: A002
    parser.add_argument(
        "--obs", action="store_true",
        help=help or "instrument runs with the observability layer "
                     "(docs/observability.md)")


def add_json_path(parser: argparse.ArgumentParser, *,
                  help: Optional[str] = None) -> None:     # noqa: A002
    """``--json FILE``: write one JSON document to FILE."""
    parser.add_argument(
        "--json", metavar="FILE",
        help=help or "write the result as JSON to FILE")


def add_json_flag(parser: argparse.ArgumentParser, *,
                  help: Optional[str] = None) -> None:     # noqa: A002
    """``--json``: switch stdout to machine-readable (nd)JSON records."""
    parser.add_argument(
        "--json", action="store_true",
        help=help or "emit machine-readable JSON records on stdout")


def add_addr(parser: argparse.ArgumentParser, *, default_port: int,
             help: Optional[str] = None) -> None:          # noqa: A002
    """``--addr`` plus the legacy ``--host``/``--port`` pair.

    Resolve with :func:`address_from_args`; ``--addr`` wins when given.
    """
    parser.add_argument(
        "--addr", metavar="ADDR", default=None,
        help=help or "server address: host:port or unix:/path "
                     "(overrides --host/--port)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=default_port,
                        help="server port (default: %(default)s)")


def address_from_args(args: argparse.Namespace):
    """The :class:`repro.serve.ServeAddress` named by ``args``."""
    from repro.serve.protocol import ServeAddress
    if getattr(args, "addr", None):
        return ServeAddress.parse(args.addr)
    return ServeAddress(host=args.host, port=args.port)


def add_partitions(parser: argparse.ArgumentParser, *,
                   help: Optional[str] = None) -> None:    # noqa: A002
    parser.add_argument(
        "--partitions", type=positive_int, default=1, metavar="N",
        help=help or "run the simulation across N conservatively "
                     "synchronised worker processes (repro.dsim); results "
                     "and digests are unchanged")


def write_json(path: str, obj: Any, *, indent: Optional[int] = 2,
               label: str = "") -> int:
    """Write ``obj`` to ``path`` with the tools' shared conventions:
    sorted keys, trailing newline, ``wrote <path>`` confirmation, and a
    nonzero return (not an exception) on OS errors."""
    try:
        with open(path, "w") as fh:
            json.dump(obj, fh, sort_keys=True, indent=indent)
            fh.write("\n")
    except OSError as err:
        print(f"cannot write {path}: {err}", file=sys.stderr)
        return 1
    print(f"wrote {label or path}")
    return 0

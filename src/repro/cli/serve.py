"""Operate the ``repro.serve`` simulation-serving layer from the shell.

Usage::

    python -m repro serve start --jobs 4 --capacity 32 --port 7077
    python -m repro serve start --telemetry obs/ --port 7077
    python -m repro serve submit sim --param seed=3 --param 'spec={"nprocs":4}'
    python -m repro serve submit recovery-soak --param seed=7 --json
    python -m repro serve stats --addr 127.0.0.1:7077 [--json]
    python -m repro serve health --port 7077 [--json]
    python -m repro serve metrics --port 7077
    python -m repro serve drain --port 7077
    python -m repro serve resize 8 --port 7077
    python -m repro serve shutdown --port 7077
    python -m repro serve loadgen --clients 4 --requests 32 --out BENCH_PR5.json
    python -m repro serve loadgen --shards 2 --requests 32 --out fleet.json

Every subcommand names its endpoint the same way: ``--addr host:port``
(or ``--addr unix:/path``), with the legacy ``--host``/``--port`` pair
still accepted.  Routers and plain servers speak the same wire
protocol, so ``--addr`` may point at either a :class:`SimServer` or a
:class:`FleetRouter` front-end (docs/serving.md, "Fleet mode").

``start --telemetry DIR`` switches on the live-telemetry stack
(docs/observability.md): wall-clock spans to ``DIR/serve-trace.json``
(written at shutdown, per-request sim traces next to it), the JSONL
event log to ``DIR/events.jsonl``, and the run ledger to
``DIR/ledger.sqlite`` (query with ``python -m repro obs --runs``).
``metrics`` prints the server's registry as Prometheus text.

``start`` runs a server in the foreground until interrupted.  The
other subcommands are thin wrappers over one wire op each.  ``loadgen``
self-hosts an in-process server (unless ``--addr``/``--port`` points at
a running one, or ``--shards N`` self-hosts an N-shard fleet) and
writes the closed-loop throughput/latency/backpressure/determinism
report — the committed ``BENCH_PR5.json``; see docs/serving.md for how
to read it.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro import cli
from repro.serve import FleetThread, ServeClient, ServeConnectionError, \
    SimServer, scenario_names
from repro.serve.loadgen import bench_report, run_loadgen, sim_workload


def _fmt(value) -> str:
    """Human-readable scalar: floats rounded, everything else as-is."""
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _param(text: str):
    """``key=value`` with a JSON-parsed value (bare words stay strings)."""
    key, sep, raw = text.partition("=")
    if not sep:
        raise argparse.ArgumentTypeError(f"expected key=value, got {text!r}")
    try:
        return key, json.loads(raw)
    except ValueError:
        return key, raw


def _client(args) -> ServeClient:
    address = cli.address_from_args(args)
    try:
        return ServeClient(address)
    except OSError as err:
        print(f"cannot reach server at {address}: {err}", file=sys.stderr)
        raise SystemExit(1) from None


async def _serve_forever(args) -> None:
    obs_kwargs = {}
    if args.telemetry:
        import os

        from repro.obs import LiveTelemetry
        os.makedirs(args.telemetry, exist_ok=True)
        obs_kwargs = dict(
            telemetry=LiveTelemetry(),
            event_log=os.path.join(args.telemetry, "events.jsonl"),
            ledger=os.path.join(args.telemetry, "ledger.sqlite"),
            trace_dir=args.telemetry,
        )
    server = await SimServer(
        workers=args.jobs, capacity=args.capacity, cache_dir=args.cache_dir,
        address=cli.address_from_args(args), retry_seed=args.seed,
        retry_limit=args.retry_limit,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown, **obs_kwargs,
    ).start()
    print(f"serving on {server.address} "
          f"(workers={args.jobs}, capacity={args.capacity}, "
          f"scenarios: {', '.join(scenario_names())})", file=sys.stderr)
    if args.telemetry:
        print(f"telemetry -> {args.telemetry} (events.jsonl, ledger.sqlite, "
              f"serve-trace.json at shutdown)", file=sys.stderr)
    try:
        await server.stopped.wait()         # until SIGINT or a shutdown op
    finally:
        if not server.stopped.is_set():
            await server.stop()


async def _fleet_snapshot(fleet):
    return fleet.snapshot()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve", description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("start", help="run a server in the foreground")
    cli.add_addr(p, default_port=7077)
    cli.add_jobs(p, default=2, help="worker processes in the pool "
                                    "(default: %(default)s)")
    p.add_argument("--capacity", type=cli.positive_int, default=16,
                   metavar="N", help="bounded-queue depth; submits beyond it "
                                     "are rejected (default: %(default)s)")
    cli.add_cache_dir(p)
    cli.add_seed(p, help="retry-backoff jitter seed (default: %(default)s)")
    p.add_argument("--retry-limit", type=int, default=2, metavar="N",
                   help="worker-death retries per request (default: %(default)s)")
    p.add_argument("--breaker-threshold", type=cli.positive_int, default=5,
                   metavar="N", help="consecutive worker deaths that trip the "
                   "cache-only circuit breaker (default: %(default)s)")
    p.add_argument("--breaker-cooldown", type=float, default=30.0,
                   metavar="SECONDS", help="degraded-mode cooldown before the "
                   "breaker half-opens (default: %(default)s)")
    p.add_argument("--telemetry", metavar="DIR",
                   help="enable live telemetry: wall-clock traces, JSONL "
                        "event log, and run ledger under DIR")

    p = sub.add_parser("submit", help="submit one request and print the result")
    p.add_argument("scenario", help=f"one of: {', '.join(scenario_names())}")
    p.add_argument("--param", type=_param, action="append", default=[],
                   metavar="KEY=VALUE", help="scenario parameter "
                   "(JSON value; repeatable)")
    p.add_argument("--deadline", type=float, metavar="SECONDS",
                   help="per-request deadline from admission")
    cli.add_partitions(p, help="run the simulation across N worker processes "
                               "(repro.dsim) — sim and recovery-soak only; "
                               "results and digests are unchanged")
    cli.add_addr(p, default_port=7077)
    cli.add_json_flag(p, help="print the full JSON response")

    for name, help_text in [("stats", "print serving statistics"),
                            ("health", "print a liveness summary")]:
        p = sub.add_parser(name, help=help_text)
        cli.add_addr(p, default_port=7077)
        cli.add_json_flag(p, help="print the full JSON response")

    for name, help_text in [("metrics", "print Prometheus text exposition"),
                            ("drain", "stop admitting, wait for quiescence"),
                            ("shutdown", "stop the server")]:
        p = sub.add_parser(name, help=help_text)
        cli.add_addr(p, default_port=7077)

    p = sub.add_parser("resize", help="resize the worker pool")
    p.add_argument("workers", type=cli.positive_int)
    cli.add_addr(p, default_port=7077)

    p = sub.add_parser("loadgen", help="closed-loop load test -> BENCH_PR5.json")
    p.add_argument("--clients", type=cli.positive_int, default=4, metavar="N",
                   help="concurrent closed-loop clients (default: %(default)s)")
    p.add_argument("--requests", type=cli.positive_int, default=32, metavar="N",
                   help="total requests across clients (default: %(default)s)")
    cli.add_jobs(p, default=2, help="worker processes in the self-hosted "
                                    "server (default: %(default)s)")
    p.add_argument("--capacity", type=cli.positive_int, default=16, metavar="N")
    p.add_argument("--nprocs", type=cli.positive_int, default=4, metavar="N",
                   help="ranks per sim request (default: %(default)s)")
    p.add_argument("--shards", type=cli.positive_int, default=None, metavar="N",
                   help="self-host an N-shard fleet behind a consistent-hash "
                        "router instead of a single server")
    cli.add_cache_dir(p, help="serve through an on-disk result cache")
    cli.add_seed(p, help="workload seed (default: %(default)s)")
    p.add_argument("--out", default="BENCH_PR5.json", metavar="FILE",
                   help="report path (default: %(default)s)")
    cli.add_addr(p, default_port=0)

    args = parser.parse_args(argv)
    try:
        return _run(args)
    except ServeConnectionError as err:
        # The connection died mid-conversation (server shut down or
        # crashed under us): one line, nonzero exit, no traceback.
        print(f"lost connection to server at {cli.address_from_args(args)}: "
              f"{err}", file=sys.stderr)
        return 1


def _run(args) -> int:
    if args.cmd == "start":
        try:
            asyncio.run(_serve_forever(args))
        except KeyboardInterrupt:
            print("\nstopped", file=sys.stderr)
        return 0

    if args.cmd == "submit":
        params = dict(args.param)
        if args.partitions > 1:
            if args.scenario == "sim":
                spec = dict(params.get("spec") or {})
                spec["partitions"] = args.partitions
                params["spec"] = spec
            elif args.scenario == "recovery-soak":
                params["partitions"] = args.partitions
            else:
                print(f"scenario {args.scenario!r} does not support "
                      f"--partitions", file=sys.stderr)
                return 2
        with _client(args) as client:
            response = client.submit(args.scenario, params,
                                     deadline_s=args.deadline)
        if args.json:
            print(json.dumps(response, sort_keys=True, indent=2))
        else:
            status = response.get("status")
            print(f"status: {status}")
            for key in ("reason", "error"):
                if key in response:
                    print(f"{key}: {response[key]}")
            if "result" in response:
                print(json.dumps(response["result"], sort_keys=True, indent=2))
            if "latency_s" in response:
                print(f"latency: {response['latency_s'] * 1e3:.1f} ms "
                      f"(cached: {response.get('cached', False)})")
        return 0 if response.get("status") == "ok" else 1

    if args.cmd in ("stats", "health"):
        with _client(args) as client:
            response = (client.stats if args.cmd == "stats"
                        else client.health)()
        if args.json:
            print(json.dumps(response, sort_keys=True, indent=2))
        else:
            body = response.get("stats", response) if args.cmd == "stats" \
                else response
            for key in sorted(body):
                if key in ("status", "id"):
                    continue
                value = body[key]
                if isinstance(value, dict):
                    rendered = "  ".join(
                        f"{k}={_fmt(value[k])}" for k in sorted(value))
                elif isinstance(value, list):
                    rendered = ", ".join(str(v) for v in value)
                else:
                    rendered = _fmt(value)
                print(f"{key}: {rendered}")
        return 0 if response.get("status") == "ok" else 1

    if args.cmd == "metrics":
        with _client(args) as client:
            response = client.metrics()
        if response.get("status") != "ok":
            print(json.dumps(response, sort_keys=True, indent=2))
            return 1
        sys.stdout.write(response.get("prometheus", ""))
        return 0

    if args.cmd in ("drain", "shutdown", "resize"):
        with _client(args) as client:
            response = {
                "drain": client.drain, "shutdown": client.shutdown,
                "resize": lambda: client.resize(args.workers),
            }[args.cmd]()
        print(json.dumps(response, sort_keys=True, indent=2))
        return 0 if response.get("status") == "ok" else 1

    if args.cmd == "loadgen":
        if args.addr or args.port:      # target an already-running endpoint
            address = cli.address_from_args(args)
            workload = sim_workload(args.requests, seed=args.seed,
                                    nprocs=args.nprocs)
            report = {"bench": "serve-loadgen",
                      "target": str(address),
                      "loadgen": run_loadgen(address, workload,
                                             clients=args.clients)}
        elif args.shards:               # self-host a sharded fleet
            workload = sim_workload(args.requests, seed=args.seed,
                                    nprocs=args.nprocs)
            with FleetThread(shards=args.shards, workers=args.jobs,
                             capacity=args.capacity,
                             cache_dir=args.cache_dir) as fleet:
                lg = run_loadgen(fleet.address, workload,
                                 clients=args.clients)
                snap = fleet.call(_fleet_snapshot)
            report = {"bench": "serve-fleet-loadgen", "shards": args.shards,
                      "loadgen": lg, "fleet": snap}
        else:
            report = bench_report(
                clients=args.clients, requests=args.requests,
                workers=args.jobs, capacity=args.capacity,
                nprocs=args.nprocs, seed=args.seed, cache_dir=args.cache_dir)
        lg = report["loadgen"]
        lat = lg["latency_s"]
        print(f"{lg['completed']} requests, {lg['clients']} clients: "
              f"{lg['throughput_rps']:.1f} req/s  "
              f"p50 {lat.get('p50', 0) * 1e3:.1f} ms  "
              f"p99 {lat.get('p99', 0) * 1e3:.1f} ms")
        if "fleet" in report:
            fl = report["fleet"]
            routed = fl.get("routed", {})
            print(f"fleet: {fl.get('live', 0)}/{fl.get('shards', 0)} shards "
                  f"live, routed " +
                  " ".join(f"shard{sid}={routed[sid]}"
                           for sid in sorted(routed)) +
                  f", coalesced {fl.get('coalesced', 0)}")
        if "backpressure" in report:
            bp = report["backpressure"]
            print(f"backpressure: {bp['rejected']}/{bp['burst']} rejected at "
                  f"{bp['oversubscription']}x oversubscription, max queue "
                  f"depth {bp['max_queue_depth']}/{bp['capacity']}")
        if "determinism" in report:
            det = report["determinism"]
            verdict = "byte-identical" if det["serve_matches_serial_sweep"] \
                else f"MISMATCH: {det['mismatched_seeds']} {det['errors']}"
            print(f"determinism: served soak seeds {det['seeds']} vs serial "
                  f"sweep: {verdict}")
        rc = cli.write_json(args.out, report)
        if rc:
            return rc
        ok = report.get("determinism", {}).get("serve_matches_serial_sweep",
                                               True)
        bounded = report.get("backpressure", {}).get("bounded", True)
        return 0 if (ok and bounded) else 1

    return 2


if __name__ == "__main__":
    raise SystemExit(main())

"""The ``python -m repro`` dispatcher: one entry point, seven subcommands.

Usage::

    python -m repro <subcommand> [args...]
    python -m repro figure fig3b
    python -m repro bench --fleet --check
    python -m repro serve loadgen --shards 2 --requests 16

Each subcommand lives in its own ``repro.cli.<module>`` and is imported
lazily, so ``python -m repro figure`` never pays for the serve layer's
imports (and vice versa).  The historic ``tools/*.py`` scripts forward
here unchanged — see docs/serving.md for the migration table.
"""

from __future__ import annotations

import importlib
import sys

# subcommand -> (module, one-line help). Order is the help-text order.
COMMANDS = {
    "figure": ("repro.cli.figure",
               "run paper figures / ablations (tools/run_figure.py)"),
    "recovery": ("repro.cli.recovery",
                 "chaos-soak the fault-recovery layer (tools/run_recovery.py)"),
    "chaos": ("repro.cli.chaos",
              "chaos-soak the serve/sweep/cache stack (tools/run_chaos.py)"),
    "faults": ("repro.cli.faults",
               "run one fault-injection scenario (tools/run_faults.py)"),
    "bench": ("repro.cli.bench",
              "wall-clock benchmarks and regression gates (tools/bench.py)"),
    "obs": ("repro.cli.obs",
            "observability reports and run-ledger queries "
            "(tools/obs_report.py)"),
    "serve": ("repro.cli.serve",
              "operate the simulation-serving layer (tools/serve.py)"),
}


def _usage(stream) -> None:
    print("usage: python -m repro <subcommand> [args...]\n", file=stream)
    print("subcommands:", file=stream)
    for name, (_, help_text) in COMMANDS.items():
        print(f"  {name:10s} {help_text}", file=stream)
    print("\n`python -m repro <subcommand> --help` for per-command flags.",
          file=stream)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        _usage(sys.stdout)
        return 0
    name, rest = argv[0], argv[1:]
    if name not in COMMANDS:
        print(f"unknown subcommand {name!r}", file=sys.stderr)
        _usage(sys.stderr)
        return 2
    module = importlib.import_module(COMMANDS[name][0])
    return module.main(rest)


if __name__ == "__main__":
    raise SystemExit(main())

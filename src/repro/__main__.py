"""``python -m repro``: the unified CLI (see ``repro.cli.main``)."""

from repro.cli.main import main

if __name__ == "__main__":
    raise SystemExit(main())

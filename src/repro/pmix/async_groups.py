"""Asynchronous PMIx group construction: the invite/join model.

Paper §III-A: "Asynchronous construction is based on an *invite, join*
model that allows the initiator to replace processes that refuse the
invitation or fail to respond within a specified time ... processes can
depart the group at any time (with remaining participants receiving
asynchronous notifications of the departure)".

The collective form (used by the MPI prototype) lives in
``pmix.server``; this module adds the asynchronous form:

* the initiator calls :meth:`AsyncGroupMixin.group_invite`;
* each target's registered invite handler decides join/decline;
* non-responders are dropped when the timeout expires;
* everyone who joined receives a ``grp_ready`` callback with the PGCID;
* members may later call :meth:`AsyncGroupMixin.group_leave`, raising a
  ``PMIX_GROUP_LEFT`` event at the survivors.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.pmix.types import PmixProc
from repro.simtime.primitives import SimEvent

#: Event code for departure notifications (PMIx group extension).
PMIX_GROUP_LEFT = 152


@dataclass
class AsyncGroupResult:
    gid: str
    pgcid: int
    members: Tuple[PmixProc, ...]     # inviter + everyone who accepted
    declined: Tuple[PmixProc, ...]
    timed_out: Tuple[PmixProc, ...]


@dataclass
class _InviteState:
    gid: str
    inviter: PmixProc
    targets: List[PmixProc]
    responses: Dict[PmixProc, bool] = field(default_factory=dict)
    event: SimEvent = field(default_factory=SimEvent)
    timer: Any = None
    done: bool = False


class AsyncGroupServerMixin:
    """Server-side machinery, mixed into PmixServer."""

    def _init_async_groups(self) -> None:
        self._invites: Dict[Tuple[str, int], _InviteState] = {}
        self._invite_serials = itertools.count()
        self.daemon.add_handler("grp_invite", self._handle_invite)
        self.daemon.add_handler("grp_invite_resp", self._handle_invite_resp)
        self.daemon.add_handler("grp_ready", self._handle_ready)
        self.daemon.add_handler("grp_leave", self._handle_leave)

    # -- initiator side ----------------------------------------------------
    def start_invite(
        self, inviter: PmixProc, gid: str, targets: List[PmixProc],
        timeout: Optional[float],
    ) -> SimEvent:
        serial = next(self._invite_serials)
        state = _InviteState(gid=gid, inviter=inviter, targets=list(targets))
        self._invites[(gid, serial)] = state
        for target in targets:
            self.daemon.send(
                self.node_of(target),
                "grp_invite",
                {"gid": gid, "serial": serial, "inviter": inviter,
                 "reply_to": self.node, "target": target},
            )
        if timeout is not None:
            state.timer = self.engine.call_later(
                timeout, lambda: self._invite_timeout(gid, serial)
            )
        if not targets:
            self._finish_invite(gid, serial)
        return state.event

    def _handle_invite_resp(self, msg) -> None:
        key = (msg.payload["gid"], msg.payload["serial"])
        state = self._invites.get(key)
        if state is None or state.done:
            return
        state.responses[msg.payload["target"]] = msg.payload["accept"]
        if len(state.responses) == len(state.targets):
            self._finish_invite(*key)

    def _invite_timeout(self, gid: str, serial: int) -> None:
        state = self._invites.get((gid, serial))
        if state is not None and not state.done:
            self._finish_invite(gid, serial)

    def _finish_invite(self, gid: str, serial: int) -> None:
        state = self._invites[(gid, serial)]
        state.done = True
        if state.timer is not None:
            state.timer.cancel()
        accepted = [t for t in state.targets if state.responses.get(t)]
        declined = tuple(t for t in state.targets if state.responses.get(t) is False)
        timed_out = tuple(t for t in state.targets if t not in state.responses)
        members = tuple([state.inviter] + accepted)
        pgcid = self.daemon.dvm.allocate_pgcid()

        from repro.pmix.server import GroupRecord

        result = AsyncGroupResult(
            gid=gid, pgcid=pgcid, members=members,
            declined=declined, timed_out=timed_out,
        )
        self.groups[gid] = GroupRecord(gid=gid, members=members, pgcid=pgcid)
        # Tell every joined member (including remote ones) the group is up.
        for member in accepted:
            self.daemon.send(
                self.node_of(member),
                "grp_ready",
                {"gid": gid, "pgcid": pgcid, "members": members, "target": member},
            )
        self._invites.pop((gid, serial), None)
        self.engine.call_later(
            self.machine.local_rpc_cost, lambda: state.event.succeed(result)
        )

    # -- target side ------------------------------------------------------------
    def _handle_invite(self, msg) -> None:
        target = msg.payload["target"]
        client = self.local_clients.get(target)
        accept = False
        if client is not None and client.invite_handler is not None:
            decision = client.invite_handler(
                msg.payload["gid"], msg.payload["inviter"], {}
            )
            if decision is None:
                # The target deferred: no response is ever sent, so the
                # initiator's timeout decides (the "fail to respond
                # within a specified time" case of §III-A).
                return
            accept = bool(decision)
        self.daemon.send(
            msg.payload["reply_to"],
            "grp_invite_resp",
            {"gid": msg.payload["gid"], "serial": msg.payload["serial"],
             "target": target, "accept": accept},
        )

    def _handle_ready(self, msg) -> None:
        target = msg.payload["target"]
        client = self.local_clients.get(target)
        from repro.pmix.server import GroupRecord

        self.groups[msg.payload["gid"]] = GroupRecord(
            gid=msg.payload["gid"],
            members=msg.payload["members"],
            pgcid=msg.payload["pgcid"],
        )
        if client is not None and client.group_ready_handler is not None:
            self.engine.call_later(
                self.machine.local_rpc_cost,
                lambda: client.group_ready_handler(
                    msg.payload["gid"], msg.payload["pgcid"], msg.payload["members"]
                ),
            )

    # -- departure ------------------------------------------------------------------
    def group_leave(self, proc: PmixProc, gid: str) -> None:
        """A member departs: every server updates its record and raises
        PMIX_GROUP_LEFT at its local registered clients."""
        for node in range(self.machine.num_nodes):
            self.daemon.send(node, "grp_leave", {"gid": gid, "proc": proc})

    def _handle_leave(self, msg) -> None:
        gid = msg.payload["gid"]
        proc = msg.payload["proc"]
        record = self.groups.get(gid)
        if record is not None:
            from repro.pmix.server import GroupRecord

            remaining = tuple(m for m in record.members if m != proc)
            self.groups[gid] = GroupRecord(gid=gid, members=remaining, pgcid=record.pgcid)
        for reg in list(self._event_regs):
            if reg.codes is None or PMIX_GROUP_LEFT in reg.codes:
                self.engine.call_later(
                    self.machine.local_rpc_cost,
                    lambda r=reg: r.callback(PMIX_GROUP_LEFT, proc, {"gid": gid}),
                )

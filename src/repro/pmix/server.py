"""Node-local PMIx server.

One server per node, co-located with (and attached to) the PRRTE daemon.
Implements the server half of fence, group construct/destruct, direct
modex, event forwarding, and pset queries.  Collective operations follow
the paper's three-stage hierarchy: (1) local clients notify their
server, (2) servers exchange via grpcomm, (3) servers release their
local clients.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from typing import TYPE_CHECKING

from repro.pmix.datastore import Datastore
from repro.pmix.types import (
    ABORTED_MARKER,
    PMIX_ERR_NOT_FOUND,
    PMIX_ERR_PROC_ABORTED,
    PMIX_ERR_PROC_TERMINATED,
    PMIX_ERR_TIMEOUT,
    PmixError,
    PmixProc,
)
from repro.simtime.primitives import SimEvent
from repro.simtime.trace import track_for_daemon, track_for_proc

if TYPE_CHECKING:  # break the pmix <-> prrte import cycle; runtime duck-typed
    from repro.prrte.dvm import Daemon
    from repro.prrte.psets import PsetRegistry

# A dead participant's stand-in contribution (defined in pmix.types so
# the grpcomm restart path can share it; re-exported here for backward
# compatibility).  It travels through grpcomm like a blob, so every
# server sees the same failed-participant set and releases its clients
# with the same error.


@dataclass
class _LocalCollective:
    """Stage-one state: local participants rendezvousing at this server."""

    sig: Hashable
    local_participants: List[PmixProc] = field(default_factory=list)
    arrived: Dict[PmixProc, Dict] = field(default_factory=dict)
    events: Dict[PmixProc, SimEvent] = field(default_factory=dict)
    launched: bool = False
    # Launch parameters (kept so death notifications can trigger the
    # launch later, without the original arriving call's arguments).
    participants: Optional[List[PmixProc]] = None   # None = whole namespace
    nspace: str = ""
    need_context_id: bool = False
    on_complete: Optional[Callable[[Any], None]] = None
    kind: str = "fence"
    aborted: set = field(default_factory=set)       # dead local participants
    timer: Any = None                               # bounded-termination timer
    obs_span: int = 0                               # pmix.server.<kind> span


@dataclass
class _EventRegistration:
    proc: PmixProc
    codes: Optional[Tuple[int, ...]]  # None = all codes
    callback: Callable[[int, PmixProc, Dict], None]


@dataclass
class GroupRecord:
    gid: str
    members: Tuple[PmixProc, ...]
    pgcid: int


from repro.pmix.async_groups import AsyncGroupServerMixin


class PmixServer(AsyncGroupServerMixin):
    """The PMIx server for one node."""

    def __init__(self, daemon: "Daemon", psets: "PsetRegistry") -> None:
        self.daemon = daemon
        self.node = daemon.node
        self.engine = daemon.engine
        self.machine = daemon.machine
        self.psets = psets
        self.datastore = Datastore()
        self.job_maps: Dict[str, Dict[int, int]] = {}   # nspace -> rank -> node
        self.local_clients: Dict[PmixProc, Any] = {}
        self.dead_procs: set = set()   # procs this server knows have died
        self.groups: Dict[str, GroupRecord] = {}
        self._collectives: Dict[Hashable, _LocalCollective] = {}
        self._event_regs: List[_EventRegistration] = []
        self._dmodex_pending: Dict[int, SimEvent] = {}
        self._dmodex_ids = itertools.count()
        self._busy_until = 0.0
        self._warm_kinds: set = set()   # "fence"/"group" ops done before
        daemon.pmix_server = self
        daemon.add_handler("dmodex_req", self._handle_dmodex_req)
        daemon.add_handler("dmodex_resp", self._handle_dmodex_resp)
        daemon.add_handler("event_fwd", self._handle_event_fwd)
        daemon.add_handler("pub_resp", self._handle_pub_resp)
        self._pub_pending: Dict[int, SimEvent] = {}
        self._pub_ids = itertools.count()
        self._init_async_groups()

    # -- registration -------------------------------------------------------
    def register_namespace(self, nspace: str, rank_to_node: Dict[int, int], job_info: Dict[str, Any]) -> None:
        """Install the job map and job-level info (done at launch on every node)."""
        self.job_maps[nspace] = dict(rank_to_node)
        by_node: Dict[int, List[int]] = {}
        for rank, node in rank_to_node.items():
            by_node.setdefault(node, []).append(rank)
        self._node_ranks = getattr(self, "_node_ranks", {})
        self._node_ranks[nspace] = {n: sorted(rs) for n, rs in by_node.items()}
        for key, value in job_info.items():
            self.datastore.put_job(nspace, key, value)

    def local_ranks(self, nspace: str) -> List[int]:
        """Ranks of ``nspace`` hosted on this node."""
        return self._node_ranks.get(nspace, {}).get(self.node, [])

    def job_nodes(self, nspace: str) -> List[int]:
        return sorted(self._node_ranks.get(nspace, {}))

    def register_client(self, client: Any) -> None:
        self.local_clients[client.proc] = client

    def deregister_client(self, proc: PmixProc) -> None:
        self.local_clients.pop(proc, None)
        self._event_regs = [r for r in self._event_regs if r.proc != proc]

    def node_of(self, proc: PmixProc) -> int:
        try:
            return self.job_maps[proc.nspace][proc.rank]
        except KeyError:
            raise PmixError(PMIX_ERR_NOT_FOUND, f"unknown process {proc}") from None

    def _node_has_live_participant(self, node: int, state) -> bool:
        """Does ``node`` host at least one participant of ``state`` this
        server does not know to be dead?  (Recovery-mode collectives wait
        only on nodes that can still contribute.)"""
        if state.participants is None:
            rank_map = self.job_maps.get(state.nspace, {})
            local = [PmixProc(state.nspace, r)
                     for r, home in rank_map.items() if home == node]
        else:
            local = [p for p in state.participants if self.node_of(p) == node]
        return any(p not in self.dead_procs for p in local)

    # -- stage-one collective rendezvous ---------------------------------------
    def _client_cost(self, kind: str) -> float:
        """Server-side processing per arriving client for one collective.

        First operation of each kind on this server is "cold": the server
        establishes internal state/connections (dominant in the paper's
        startup measurements); later operations are cheap.
        """
        warm = kind in self._warm_kinds
        m = self.machine
        if kind == "group":
            return m.group_client_cost_warm if warm else m.group_client_cost_cold
        return m.fence_client_cost_warm if warm else m.fence_client_cost_cold

    def collective_arrive(
        self,
        sig: Hashable,
        proc: PmixProc,
        participants: Optional[List[PmixProc]],
        blob: Dict,
        need_context_id: bool = False,
        on_complete: Optional[Callable[[Any], None]] = None,
        kind: str = "fence",
    ) -> SimEvent:
        """A local client arrives at collective ``sig``.

        Returns the event that will succeed (with the grpcomm result)
        once stage three releases this client — or *fail* with a
        :class:`PmixError` if a participant died.  ``on_complete`` runs
        once per *server* when the inter-server exchange finishes (used
        to merge fence data / record groups); it is skipped on error.
        The server's CPU serializes arrival processing — this is stage
        one of the paper's hierarchy and the source of the per-ppn cost
        in Fig 3.
        """
        state = self._collectives.get(sig)
        if state is None:
            if participants is None:
                # Whole-namespace collective: resolve locals from the job
                # map without materializing the full participant list.
                local = [
                    PmixProc(proc.nspace, r) for r in self.local_ranks(proc.nspace)
                ]
            else:
                local = [p for p in participants if self.node_of(p) == self.node]
            state = _LocalCollective(
                sig=sig,
                local_participants=local,
                participants=list(participants) if participants is not None else None,
                nspace=proc.nspace,
                need_context_id=need_context_id,
                on_complete=on_complete,
                kind=kind,
            )
            # Participants already known dead contribute a marker.
            state.aborted = {p for p in local if p in self.dead_procs}
            self._collectives[sig] = state
            self._arm_fault_timer(state)
            state.obs_span = self.engine.tracer.begin(
                self.engine.now, track_for_daemon(self.node),
                f"pmix.server.{kind}", nlocal=len(local),
            )
        if proc in state.arrived:
            raise PmixError(
                PMIX_ERR_NOT_FOUND, f"{proc} arrived twice at collective {sig!r}"
            )
        state.arrived[proc] = blob
        ev = SimEvent()
        state.events[proc] = ev

        # Stage 1: the server processes this notification serially.
        self._busy_until = max(self.engine.now, self._busy_until) + self._client_cost(kind)

        self._maybe_launch(state)
        return ev

    def _maybe_launch(self, state: _LocalCollective) -> None:
        """Stage 2: launch the inter-server exchange once every local
        participant has either arrived or is known dead."""
        if state.launched or not state.arrived:
            return
        if not all(
            p in state.arrived or p in state.aborted
            for p in state.local_participants
        ):
            return
        state.launched = True
        self._warm_kinds.add(state.kind)
        m = self.engine.metrics
        if m is not None and m.enabled:
            m.observe(f"pmix.{state.kind}.fanin", len(state.arrived), node=self.node)
            m.inc(f"pmix.{state.kind}.collectives", node=self.node)
        contribution: Dict = dict(state.arrived)
        for p in state.aborted:
            contribution[p] = ABORTED_MARKER
        if state.participants is None:
            nodes = self.job_nodes(state.nspace)
        else:
            nodes = sorted({self.node_of(p) for p in state.participants})
        # Nodes known dead cannot contribute; surviving daemons that have
        # heard the daemon_down announcement agree on the reduced set.
        nodes = [n for n in nodes if n == self.node or not self.daemon.is_node_down(n)]
        if self.daemon.grpcomm.recovery:
            # A live node whose local participants ALL died will never
            # launch this collective (no client is left to call in), so
            # waiting on its contribution would hang until the timeout.
            # Drop it; its procs simply come back absent from the merged
            # data, which the recovery layer treats as failure evidence
            # (docs/recovery.md).
            nodes = [n for n in nodes if n == self.node
                     or self._node_has_live_participant(n, state)]
        sig = state.sig

        def launch() -> None:
            if self._collectives.get(sig) is not state:
                return  # timed out / aborted while queued behind the CPU
            done = self.daemon.grpcomm.allgather(
                sig, nodes, contribution, need_context_id=state.need_context_id
            )

            def on_done(result, exc) -> None:
                if exc is not None:  # pragma: no cover
                    raise exc
                if self._collectives.get(sig) is not state:
                    return
                self._release(state, result)

            done.add_waiter(on_done)

        # Stage 2 starts once every local notification is processed.
        self.engine.call_at(max(self.engine.now, self._busy_until), launch)

    def _release(self, state: _LocalCollective, result) -> None:
        """Stage 3: release local clients one RPC at a time."""
        self._collectives.pop(state.sig, None)
        self._cancel_fault_timer(state)
        failed = []
        if getattr(result, "status", 0) == 0:
            failed = sorted(
                p for p, v in result.data.items() if v == ABORTED_MARKER
            )
        if getattr(result, "status", 0) != 0 or failed:
            status = getattr(result, "status", 0) or PMIX_ERR_PROC_ABORTED
            message = f"collective {state.sig!r} aborted"
            if failed:
                message += f"; dead participants: {', '.join(str(p) for p in failed)}"
            self._release_error(state, status, message, failed=failed)
            return
        if state.on_complete is not None:
            state.on_complete(result)
        release_cost = self.machine.local_rpc_cost
        release_at = max(self.engine.now, self._busy_until)
        tr = self.engine.tracer
        for proc, client_ev in state.events.items():
            release_at += release_cost
            # Stage 3 is a logical handoff (no wire message): record the
            # causality edge explicitly so the critical-path walk can
            # cross from the server timeline back to the client's.
            if tr.enabled:
                tr.flow("pmix.release", track_for_daemon(self.node),
                        self.engine.now, track_for_proc(proc), release_at)
            self.engine.call_at(release_at, lambda e=client_ev: e.succeed(result))
        self._busy_until = release_at
        tr.end(release_at, state.obs_span)

    def _release_error(
        self, state: _LocalCollective, status: int, message: str, failed=()
    ) -> None:
        """Release waiting clients with a typed error instead of hanging.

        ``failed`` names the dead participants (when known); it rides on
        the :class:`PmixError` so survivors can re-issue the collective
        with an evicted membership (docs/recovery.md).
        """
        self._trace("collective_error", sig=repr(state.sig), status=status,
                    kind=state.kind)
        release_cost = self.machine.local_rpc_cost
        release_at = max(self.engine.now, self._busy_until)
        tr = self.engine.tracer
        for proc, client_ev in state.events.items():
            if client_ev.triggered:
                continue
            release_at += release_cost
            if tr.enabled:
                tr.flow("pmix.release_error", track_for_daemon(self.node),
                        self.engine.now, track_for_proc(proc), release_at)
            self.engine.call_at(
                release_at,
                lambda e=client_ev: e.triggered
                or e.fail(PmixError(status, message, failed_procs=failed)),
            )
        self._busy_until = release_at
        tr.end(release_at, state.obs_span)

    # -- fault handling -----------------------------------------------------
    def _faults(self):
        return getattr(self.daemon.dvm, "faults", None)

    def _trace(self, event: str, **detail) -> None:
        faults = self._faults()
        if faults is not None:
            faults.cluster.trace("faults", event, node=self.node, **detail)

    def _arm_fault_timer(self, state: _LocalCollective) -> None:
        """Bounded termination: once faults are active, no collective may
        wait forever — propagation races fail with PMIX_ERR_TIMEOUT."""
        faults = self._faults()
        if faults is None or not faults.active:
            return
        state.timer = self.engine.call_later(
            self.machine.fault_collective_timeout,
            lambda: self._collective_timeout(state),
        )

    def _cancel_fault_timer(self, state: _LocalCollective) -> None:
        if state.timer is not None:
            state.timer.cancel()
            state.timer = None

    def _collective_timeout(self, state: _LocalCollective) -> None:
        if self._collectives.get(state.sig) is not state:
            return
        self._collectives.pop(state.sig, None)
        self.daemon.grpcomm.abort_sig(state.sig)
        self._release_error(
            state,
            PMIX_ERR_TIMEOUT,
            f"collective {state.sig!r} abandoned after "
            f"{self.machine.fault_collective_timeout}s under fault injection",
        )

    def client_aborted(self, proc: PmixProc, code: Optional[int] = None) -> None:
        """Home-server entry point for a local client's death.

        Marks the proc dead here, then broadcasts the failure event to
        every node (including this one) so registered handlers and the
        other servers learn about it.  ``code`` adds a second event with
        a caller-chosen status (compatibility with the legacy
        ``Cluster.fail_process``, which raised PROC_TERMINATED).
        """
        already = proc in self.dead_procs
        self._mark_proc_dead(proc)
        if already:
            return
        self.notify_event(PMIX_ERR_PROC_ABORTED, proc, {"reason": "process died"})
        if code is not None and code != PMIX_ERR_PROC_ABORTED:
            self.notify_event(code, proc, {"reason": "process died"})

    def _mark_proc_dead(self, proc: PmixProc) -> None:
        """Local bookkeeping for a death (idempotent, no broadcasting)."""
        if proc in self.dead_procs:
            return
        self.dead_procs.add(proc)
        self.local_clients.pop(proc, None)
        self._event_regs = [r for r in self._event_regs if r.proc != proc]
        self.psets.evict(proc)
        # A dead proc can no longer arrive at stage one: collectives
        # waiting on it launch now, contributing an aborted marker.
        for state in list(self._collectives.values()):
            if (
                not state.launched
                and proc in state.local_participants
                and proc not in state.arrived
                and proc not in state.aborted
            ):
                state.aborted.add(proc)
                self._maybe_launch(state)

    def node_down(self, down: int) -> None:
        """A daemon died: evict its procs and notify local handlers.

        Called on every surviving daemon by the daemon_down xcast; the
        in-flight grpcomm instances are failed separately by
        :meth:`repro.prrte.grpcomm.GrpcommModule.node_down`.
        """
        victims = []
        for nspace, rank_map in self.job_maps.items():
            for rank, home in rank_map.items():
                if home == down:
                    victims.append(PmixProc(nspace, rank))
        for proc in sorted(victims):
            already = proc in self.dead_procs
            self._mark_proc_dead(proc)
            if not already:
                # Local delivery only: every surviving server runs this
                # same handler, so no re-broadcast is needed.
                self._deliver_local_event(
                    PMIX_ERR_PROC_ABORTED, proc, {"reason": f"node {down} failed"}
                )

    # -- fence ---------------------------------------------------------------
    def fence_arrive(
        self,
        sig: Hashable,
        proc: PmixProc,
        participants: Optional[List[PmixProc]],
        blob: Dict,
        collect: bool,
    ) -> SimEvent:
        def merge(result) -> None:
            if collect:
                for peer, peer_blob in result.data.items():
                    if peer_blob == ABORTED_MARKER:
                        continue  # dead participant's stand-in, not a blob
                    self.datastore.merge_blob(peer, peer_blob)

        share = blob if collect else {}
        return self.collective_arrive(
            sig, proc, participants, share, on_complete=merge, kind="fence"
        )

    # -- groups ----------------------------------------------------------------
    def group_construct_arrive(
        self,
        sig: Hashable,
        gid: str,
        proc: PmixProc,
        participants: List[PmixProc],
        directives: Dict[str, Any],
    ) -> SimEvent:
        def record(result) -> None:
            self.groups[gid] = GroupRecord(
                gid=gid, members=tuple(sorted(result.data)), pgcid=result.context_id
            )

        return self.collective_arrive(
            sig,
            proc,
            participants,
            {proc: True},
            need_context_id=True,
            on_complete=record,
            kind="group",
        )

    def group_destruct_arrive(
        self, sig: Hashable, gid: str, proc: PmixProc, participants: List[PmixProc]
    ) -> SimEvent:
        def drop(result) -> None:
            self.groups.pop(gid, None)

        return self.collective_arrive(
            sig, proc, participants, {proc: True}, on_complete=drop, kind="group"
        )

    # -- direct modex -------------------------------------------------------------
    def request_remote(self, proc: PmixProc, key: str) -> SimEvent:
        """Fetch one remote rank's blob from its home server (dmodex)."""
        req_id = next(self._dmodex_ids)
        ev = SimEvent()
        self._dmodex_pending[req_id] = ev
        self.daemon.send(
            self.node_of(proc),
            "dmodex_req",
            {
                "req_id": req_id,
                "reply_to": self.node,
                "nspace": proc.nspace,
                "rank": proc.rank,
                "key": key,
            },
        )
        return ev

    def _handle_dmodex_req(self, msg) -> None:
        proc = PmixProc(msg.payload["nspace"], msg.payload["rank"])
        blob = self.datastore.rank_blob(proc)
        self.daemon.send(
            msg.payload["reply_to"],
            "dmodex_resp",
            {"req_id": msg.payload["req_id"], "proc": proc, "blob": blob},
        )

    def _handle_dmodex_resp(self, msg) -> None:
        ev = self._dmodex_pending.pop(msg.payload["req_id"], None)
        if ev is None:
            return
        self.datastore.merge_blob(msg.payload["proc"], msg.payload["blob"])
        ev.succeed(msg.payload["blob"])

    # -- publish / lookup (HNP data board) --------------------------------------------
    def publish(self, key: str, value: Any) -> None:
        self.daemon.send(self.daemon.dvm.hnp_node, "pub_put", {"key": key, "value": value})

    def unpublish(self, key: str) -> None:
        self.daemon.send(self.daemon.dvm.hnp_node, "pub_unpublish", {"key": key})

    def lookup(self, key: str, wait: bool) -> SimEvent:
        """Returns an event succeeding with (found, value)."""
        req_id = next(self._pub_ids)
        ev = SimEvent()
        self._pub_pending[req_id] = ev
        self.daemon.send(
            self.daemon.dvm.hnp_node,
            "pub_lookup",
            {"key": key, "reply_to": self.node, "req_id": req_id, "wait": wait},
        )
        return ev

    def _handle_pub_resp(self, msg) -> None:
        ev = self._pub_pending.pop(msg.payload["req_id"], None)
        if ev is not None:
            ev.succeed((msg.payload["found"], msg.payload["value"]))

    # -- events ----------------------------------------------------------------------
    def register_event_handler(
        self,
        proc: PmixProc,
        codes: Optional[List[int]],
        callback: Callable[[int, PmixProc, Dict], None],
    ) -> None:
        self._event_regs.append(
            _EventRegistration(proc=proc, codes=tuple(codes) if codes else None, callback=callback)
        )

    def notify_event(self, code: int, source: PmixProc, info: Dict[str, Any]) -> None:
        """Originate an event: forward to every daemon for local delivery."""
        for node in range(self.machine.num_nodes):
            self.daemon.send(node, "event_fwd", {"code": code, "source": source, "info": info})

    def _handle_event_fwd(self, msg) -> None:
        code = msg.payload["code"]
        source = msg.payload["source"]
        info = msg.payload["info"]
        if code in (PMIX_ERR_PROC_ABORTED, PMIX_ERR_PROC_TERMINATED):
            # Failure propagation: every server learns of the death from
            # the event itself, keeping liveness views consistent.
            self._mark_proc_dead(source)
        self._deliver_local_event(code, source, info)

    def _deliver_local_event(self, code: int, source: PmixProc, info: Dict) -> None:
        for reg in list(self._event_regs):
            if reg.codes is None or code in reg.codes:
                self.engine.call_later(
                    self.machine.local_rpc_cost,
                    lambda r=reg: r.callback(code, source, info),
                )

    # -- queries ------------------------------------------------------------------------
    def query_psets(self) -> Tuple[int, List[str]]:
        return self.psets.count(), self.psets.names()

    def query_pset_membership(self, name: str) -> Optional[Tuple[PmixProc, ...]]:
        return self.psets.members(name)

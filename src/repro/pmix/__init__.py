"""Simulated PMIx: Process Management Interface for Exascale.

Implements the subset of PMIx v4 the paper's prototype relies on —
client init/finalize, put/get/commit, fence, the *group* extension
(collective construct/destruct returning a 64-bit Process Group Context
Identifier), event notification, and the query keys used to discover
process sets (``PMIX_QUERY_NUM_PSETS`` / ``PMIX_QUERY_PSET_NAMES``).

One :class:`~repro.pmix.server.PmixServer` runs per simulated node;
inter-server exchange rides on the PRRTE grpcomm substrate exactly as
described in paper §III-A (three-stage hierarchical pattern).
"""

from repro.pmix.types import (
    PmixProc,
    PmixStatus,
    PmixError,
    PMIX_RANK_WILDCARD,
    PMIX_SUCCESS,
    PMIX_ERR_TIMEOUT,
    PMIX_ERR_NOT_FOUND,
    PMIX_ERR_PROC_TERMINATED,
    PMIX_ERR_INVALID_OPERATION,
    PMIX_QUERY_NUM_PSETS,
    PMIX_QUERY_PSET_NAMES,
    PMIX_GROUP_CONTEXT_ID,
    PMIX_JOB_SIZE,
    PMIX_LOCAL_RANK,
    PMIX_NODE_ID,
    PMIX_TIMEOUT,
    PMIX_GROUP_LEADER,
    PMIX_GROUP_NOTIFY_TERMINATION,
)
from repro.pmix.client import PmixClient
from repro.pmix.server import PmixServer

__all__ = [
    "PmixProc",
    "PmixStatus",
    "PmixError",
    "PmixClient",
    "PmixServer",
    "PMIX_RANK_WILDCARD",
    "PMIX_SUCCESS",
    "PMIX_ERR_TIMEOUT",
    "PMIX_ERR_NOT_FOUND",
    "PMIX_ERR_PROC_TERMINATED",
    "PMIX_ERR_INVALID_OPERATION",
    "PMIX_QUERY_NUM_PSETS",
    "PMIX_QUERY_PSET_NAMES",
    "PMIX_GROUP_CONTEXT_ID",
    "PMIX_JOB_SIZE",
    "PMIX_LOCAL_RANK",
    "PMIX_NODE_ID",
    "PMIX_TIMEOUT",
    "PMIX_GROUP_LEADER",
    "PMIX_GROUP_NOTIFY_TERMINATION",
]

"""PMIx client library (the process-side API).

Every simulated MPI process owns one :class:`PmixClient` connected to
its node's :class:`~repro.pmix.server.PmixServer`.  All potentially
blocking calls are sub-generators used as ``result = yield from
client.fence(...)`` inside a simulated process.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.pmix.server import PmixServer
from repro.pmix.types import (
    PMIX_ERR_NOT_FOUND,
    PMIX_ERR_PROC_ABORTED,
    PMIX_ERR_TIMEOUT,
    PMIX_JOB_SIZE,
    PMIX_QUERY_NUM_PSETS,
    PMIX_QUERY_PSET_NAMES,
    PMIX_RANK_WILDCARD,
    PMIX_TIMEOUT,
    PmixError,
    PmixProc,
    info_dict,
)
from repro.simtime.process import Sleep, SimTimeout, Wait
from repro.simtime.trace import track_for_daemon, track_for_proc


class PmixClient:
    """Client-side PMIx connection for one process."""

    def __init__(self, proc: PmixProc, server: PmixServer) -> None:
        self.proc = proc
        self.server = server
        self.engine = server.engine
        self.machine = server.machine
        self.obs_track = track_for_proc(proc)
        self.initialized = False
        self._staged: Dict[str, Any] = {}
        self._coll_counters: Dict[Hashable, "itertools.count"] = {}
        self._group_pgcids: Dict[str, int] = {}
        # Asynchronous group construction (invite/join model).
        self.invite_handler: Optional[Callable] = None
        self.group_ready_handler: Optional[Callable] = None

    # -- lifecycle ------------------------------------------------------------
    def init(self):
        """PMIx_Init: connect to the local server (idempotent refcount elided:
        the MPI layer tracks its own refcounts; a second init is an error)."""
        if self.initialized:
            raise PmixError(PMIX_ERR_NOT_FOUND, "client already initialized")
        tr = self.engine.tracer
        sid = tr.begin(self.engine.now, self.obs_track, "pmix.client.init")
        yield Sleep(self.machine.local_rpc_cost)
        self.server.register_client(self)
        self.initialized = True
        tr.end(self.engine.now, sid)
        return self.proc

    def finalize(self):
        tr = self.engine.tracer
        sid = tr.begin(self.engine.now, self.obs_track, "pmix.client.finalize")
        yield Sleep(self.machine.local_rpc_cost)
        self.server.deregister_client(self.proc)
        self.initialized = False
        tr.end(self.engine.now, sid)

    # -- kvs ---------------------------------------------------------------------
    def put(self, key: str, value: Any) -> None:
        """Stage a (key, value); visible to others after commit + fence."""
        self._staged[key] = value

    def commit(self):
        """Push staged data to the local server."""
        if self._staged:
            yield Sleep(self.machine.local_rpc_cost)
            for key, value in self._staged.items():
                self.server.datastore.put(self.proc, key, value)
            self._staged.clear()

    def get(self, proc: PmixProc, key: str):
        """PMIx_Get: local lookup, falling back to direct modex."""
        yield Sleep(self.machine.local_rpc_cost)
        found, value = self.server.datastore.get(proc, key)
        if found:
            return value
        if proc.rank == PMIX_RANK_WILDCARD or self.server.node_of(proc) == self.server.node:
            raise PmixError(PMIX_ERR_NOT_FOUND, f"{key} for {proc}")
        ev = self.server.request_remote(proc, key)
        yield Wait(ev)
        found, value = self.server.datastore.get(proc, key)
        if not found:
            raise PmixError(PMIX_ERR_NOT_FOUND, f"{key} for {proc}")
        return value

    # -- collectives ---------------------------------------------------------------
    @staticmethod
    def _member_key(participants) -> Hashable:
        """Cheap membership fingerprint for collective signatures.

        Avoids hashing the full (possibly huge) participant tuple on
        every operation.  Two *concurrent* collectives collide only if
        they share kind, extra id, count, endpoints, and rank sum — and
        MPI/PMIx ordering rules already forbid the overlapping cases.
        """
        n = len(participants)
        ranksum = 0
        for p in participants:
            ranksum += p.rank
        return (n, participants[0], participants[-1], ranksum)

    @staticmethod
    def _ordered(procs) -> Tuple[PmixProc, ...]:
        """Participants in canonical order (fast path: already sorted)."""
        procs = tuple(procs)
        for i in range(len(procs) - 1):
            if procs[i + 1] < procs[i]:
                return tuple(sorted(procs))
        return procs

    def _next_sig(self, kind: str, member_key: Hashable, extra: Hashable = None) -> Hashable:
        key = (kind, member_key, extra)
        counter = self._coll_counters.setdefault(key, itertools.count())
        return (kind, member_key, extra, next(counter))

    def fence(self, procs: Optional[List[PmixProc]] = None, collect: bool = True):
        """PMIx_Fence over ``procs`` (default: the whole namespace).

        The whole-namespace form never materializes the participant
        list — servers resolve membership from the job map.
        """
        if procs:
            participants = self._ordered(procs)
            member_key: Hashable = self._member_key(participants)
            send_participants: Optional[list] = list(participants)
        else:
            member_key = ("ns-all", self.proc.nspace)
            send_participants = None
        sig = self._next_sig("fence", member_key, collect)
        blob = self.server.datastore.rank_blob(self.proc)
        tr = self.engine.tracer
        sid = tr.begin(self.engine.now, self.obs_track, "pmix.client.fence",
                       nprocs=len(procs) if procs else -1, collect=collect)
        t_req = self.engine.now
        yield Sleep(self.machine.local_rpc_cost)
        if tr.enabled:
            tr.flow("pmix.rpc.fence", self.obs_track, t_req,
                    track_for_daemon(self.server.node), self.engine.now)
        ev = self.server.fence_arrive(sig, self.proc, send_participants, blob, collect)
        try:
            result = yield Wait(ev)
        finally:
            tr.end(self.engine.now, sid)
        return result

    def fence_retry(
        self,
        procs: Optional[List[PmixProc]] = None,
        collect: bool = True,
        max_attempts: int = 4,
    ):
        """Survivor-reissued PMIx_Fence (docs/recovery.md).

        Like :meth:`fence`, but a fence that fails with
        PMIX_ERR_PROC_ABORTED is re-issued with the dead participants
        evicted from the membership; PMIX_ERR_TIMEOUT retries with the
        membership unchanged (a net for propagation races).  The
        whole-namespace form is materialized to an explicit sorted proc
        list so eviction changes the collective signature identically on
        every survivor — the failed set travels through grpcomm, so all
        survivors prune the same procs.
        """
        if procs:
            members = list(self._ordered(procs))
        else:
            rank_map = self.server.job_maps[self.proc.nspace]
            members = [PmixProc(self.proc.nspace, r) for r in sorted(rank_map)]
        tr = self.engine.tracer
        last: Optional[PmixError] = None
        for attempt in range(max_attempts):
            try:
                result = yield from self.fence(members, collect=collect)
                return result
            except PmixError as err:
                if err.status == PMIX_ERR_PROC_ABORTED:
                    dead = set(err.failed_procs)
                    if dead:
                        members = [p for p in members if p not in dead]
                        if self.proc not in members:
                            raise
                elif err.status != PMIX_ERR_TIMEOUT:
                    raise
                last = err
                self.server.daemon.dvm.fence_retries += 1
                if tr.enabled:
                    tr.event(self.engine.now, self.obs_track,
                             "recovery.pmix.fence_retry",
                             attempt=attempt + 1, status=err.status,
                             members=len(members))
        assert last is not None
        raise last

    def group_construct(
        self,
        gid: str,
        procs: List[PmixProc],
        directives: Optional[Dict[str, Any]] = None,
    ):
        """PMIx_Group_construct (collective form, paper Fig 2).

        Returns the 64-bit PGCID.  Honors the ``PMIX_TIMEOUT`` directive:
        if any participant fails to arrive in time this raises
        ``PmixError(PMIX_ERR_TIMEOUT)``.
        """
        directives = info_dict(directives)
        participants = self._ordered(procs)
        if self.proc not in participants:
            raise PmixError(PMIX_ERR_NOT_FOUND, f"{self.proc} not in group {gid!r}")
        sig = self._next_sig("grp", self._member_key(participants), gid)
        tr = self.engine.tracer
        sid = tr.begin(self.engine.now, self.obs_track, "pmix.client.group_construct",
                       gid=gid, nprocs=len(participants))
        t_req = self.engine.now
        yield Sleep(self.machine.local_rpc_cost)
        if tr.enabled:
            tr.flow("pmix.rpc.group", self.obs_track, t_req,
                    track_for_daemon(self.server.node), self.engine.now)
        ev = self.server.group_construct_arrive(sig, gid, self.proc, list(participants), directives)
        timeout = directives.get(PMIX_TIMEOUT)
        try:
            result = yield Wait(ev, timeout=timeout)
        except SimTimeout:
            raise PmixError(
                PMIX_ERR_TIMEOUT, f"group {gid!r} construct timed out after {timeout}s"
            ) from None
        finally:
            tr.end(self.engine.now, sid)
        self._group_pgcids[gid] = result.context_id
        return result.context_id

    def group_destruct(self, gid: str, procs: List[PmixProc], timeout: Optional[float] = None):
        """PMIx_Group_destruct (collective)."""
        participants = self._ordered(procs)
        sig = self._next_sig("grpdel", self._member_key(participants), gid)
        tr = self.engine.tracer
        sid = tr.begin(self.engine.now, self.obs_track, "pmix.client.group_destruct",
                       gid=gid, nprocs=len(participants))
        yield Sleep(self.machine.local_rpc_cost)
        ev = self.server.group_destruct_arrive(sig, gid, self.proc, list(participants))
        try:
            yield Wait(ev, timeout=timeout)
        except SimTimeout:
            raise PmixError(
                PMIX_ERR_TIMEOUT, f"group {gid!r} destruct timed out after {timeout}s"
            ) from None
        finally:
            tr.end(self.engine.now, sid)
        self._group_pgcids.pop(gid, None)

    # -- queries -------------------------------------------------------------------
    def query(self, keys: List[str]):
        """PMIx_Query_info: pset discovery and friends."""
        tr = self.engine.tracer
        sid = tr.begin(self.engine.now, self.obs_track, "pmix.client.query",
                       keys=",".join(keys))
        yield Sleep(self.machine.local_rpc_cost)
        tr.end(self.engine.now, sid)
        out: Dict[str, Any] = {}
        for key in keys:
            if key == PMIX_QUERY_NUM_PSETS:
                out[key] = self.server.query_psets()[0]
            elif key == PMIX_QUERY_PSET_NAMES:
                out[key] = self.server.query_psets()[1]
            elif key == PMIX_JOB_SIZE:
                found, value = self.server.datastore.get(
                    PmixProc(self.proc.nspace, PMIX_RANK_WILDCARD), PMIX_JOB_SIZE
                )
                if not found:
                    raise PmixError(PMIX_ERR_NOT_FOUND, key)
                out[key] = value
            else:
                raise PmixError(PMIX_ERR_NOT_FOUND, f"unsupported query key {key!r}")
        return out

    def pset_membership(self, name: str):
        """Resolve a pset name to its member processes."""
        tr = self.engine.tracer
        sid = tr.begin(self.engine.now, self.obs_track, "pmix.client.pset_membership",
                       pset=name)
        yield Sleep(self.machine.local_rpc_cost)
        tr.end(self.engine.now, sid)
        members = self.server.query_pset_membership(name)
        if members is None:
            raise PmixError(PMIX_ERR_NOT_FOUND, f"process set {name!r}")
        return members

    # -- publish / lookup ------------------------------------------------------------
    def publish(self, key: str, value: Any):
        """PMIx_Publish: post (key, value) on the job-global data board.

        The classic dynamic-process rendezvous: a server publishes its
        "port", clients look it up.
        """
        yield Sleep(self.machine.local_rpc_cost)
        self.server.publish(key, value)

    def lookup(self, key: str, wait: bool = False, timeout: Optional[float] = None):
        """PMIx_Lookup: fetch a published value.

        ``wait=False``: returns (found, value) immediately (one HNP round
        trip).  ``wait=True``: blocks until someone publishes the key (or
        raises PMIX_ERR_TIMEOUT after ``timeout`` seconds).
        """
        yield Sleep(self.machine.local_rpc_cost)
        ev = self.server.lookup(key, wait)
        try:
            found, value = yield Wait(ev, timeout=timeout)
        except SimTimeout:
            raise PmixError(PMIX_ERR_TIMEOUT, f"lookup of {key!r} timed out") from None
        return found, value

    def unpublish(self, key: str):
        """PMIx_Unpublish."""
        yield Sleep(self.machine.local_rpc_cost)
        self.server.unpublish(key)

    # -- asynchronous groups (invite/join, paper §III-A) -----------------------------
    def set_invite_handler(self, fn: Callable[[str, PmixProc, Dict], bool]) -> None:
        """Register the callback deciding whether to join invited groups."""
        self.invite_handler = fn

    def set_group_ready_handler(self, fn: Callable[[str, int, tuple], None]) -> None:
        """Register the callback fired when a joined group completes."""
        self.group_ready_handler = fn

    def group_invite(
        self,
        gid: str,
        procs: List[PmixProc],
        timeout: Optional[float] = None,
    ):
        """Sub-generator: asynchronously construct a group by invitation.

        Returns an :class:`~repro.pmix.async_groups.AsyncGroupResult`;
        targets that decline or fail to respond within ``timeout`` are
        simply left out (the "replace processes that refuse" model).
        """
        targets = [p for p in procs if p != self.proc]
        yield Sleep(self.machine.local_rpc_cost)
        ev = self.server.start_invite(self.proc, gid, targets, timeout)
        result = yield Wait(ev)
        self._group_pgcids[gid] = result.pgcid
        return result

    def group_leave(self, gid: str):
        """Sub-generator: depart a group; survivors get PMIX_GROUP_LEFT."""
        yield Sleep(self.machine.local_rpc_cost)
        self.server.group_leave(self.proc, gid)
        self._group_pgcids.pop(gid, None)

    # -- events --------------------------------------------------------------------
    def register_event_handler(
        self, codes: Optional[List[int]], callback: Callable[[int, PmixProc, Dict], None]
    ) -> None:
        self.server.register_event_handler(self.proc, codes, callback)

    def notify_event(self, code: int, info: Optional[Dict[str, Any]] = None) -> None:
        self.server.notify_event(code, self.proc, info or {})

"""PMIx identifiers, status codes, and attribute keys.

Mirrors the names of the PMIx v4 specification for the slice this
prototype exercises.  Status codes are small ints; failures surface as
:class:`PmixError` carrying the status.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

# -- status codes ------------------------------------------------------------
PMIX_SUCCESS = 0
PMIX_ERR_TIMEOUT = -4
PMIX_ERR_NOT_FOUND = -5
PMIX_ERR_INVALID_OPERATION = -13
PMIX_ERR_PROC_TERMINATED = -22
PMIX_ERR_LOST_CONNECTION = -25
PMIX_ERR_PROC_ABORTED = -26

_STATUS_NAMES = {
    PMIX_SUCCESS: "PMIX_SUCCESS",
    PMIX_ERR_TIMEOUT: "PMIX_ERR_TIMEOUT",
    PMIX_ERR_NOT_FOUND: "PMIX_ERR_NOT_FOUND",
    PMIX_ERR_INVALID_OPERATION: "PMIX_ERR_INVALID_OPERATION",
    PMIX_ERR_PROC_TERMINATED: "PMIX_ERR_PROC_TERMINATED",
    PMIX_ERR_LOST_CONNECTION: "PMIX_ERR_LOST_CONNECTION",
    PMIX_ERR_PROC_ABORTED: "PMIX_ERR_PROC_ABORTED",
}


def status_name(code: int) -> str:
    return _STATUS_NAMES.get(code, f"PMIX_STATUS({code})")


# Sentinel blob standing in for a dead participant's contribution in a
# collective result (lives here so both the PMIx server and the PRRTE
# grpcomm restart path can use it without a circular import).
ABORTED_MARKER = "__pmix_proc_aborted__"


class PmixStatus(int):
    """An int subclass whose repr shows the symbolic status name."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return status_name(int(self))


class PmixError(Exception):
    """Raised by PMIx client operations that fail.

    ``failed_procs`` names the participants whose death caused the
    failure (when known) — survivors use it to re-issue the operation
    with an evicted membership (docs/recovery.md).
    """

    def __init__(self, status: int, message: str = "", failed_procs=()) -> None:
        self.status = status
        self.failed_procs = tuple(failed_procs)
        super().__init__(f"{status_name(status)}: {message}" if message else status_name(status))


# -- rank sentinel ------------------------------------------------------------
PMIX_RANK_WILDCARD = -1  # refers to job-level (not rank-level) data

# -- reserved keys -------------------------------------------------------------
PMIX_JOB_SIZE = "pmix.job.size"
PMIX_LOCAL_RANK = "pmix.lrank"
PMIX_NODE_ID = "pmix.nodeid"
PMIX_LOCAL_PEERS = "pmix.lpeers"
PMIX_UNIV_SIZE = "pmix.univ.size"

# -- query keys (paper §III-A) --------------------------------------------------
PMIX_QUERY_NUM_PSETS = "pmix.qry.psetnum"
PMIX_QUERY_PSET_NAMES = "pmix.qry.psets"
PMIX_QUERY_PSET_MEMBERSHIP = "pmix.qry.pmems"

# -- group directives (paper §III-A constructor options) -------------------------
PMIX_GROUP_CONTEXT_ID = "pmix.grp.ctxid"        # request a PGCID
PMIX_GROUP_LEADER = "pmix.grp.ldr"              # designate a leader process
PMIX_TIMEOUT = "pmix.timeout"                   # seconds before ERR_TIMEOUT
PMIX_GROUP_NOTIFY_TERMINATION = "pmix.grp.notifyterm"
PMIX_GROUP_FT_COLLECTIVE = "pmix.grp.ftcoll"    # treat early death as error


class PmixProc:
    """A process identifier: (namespace, rank).

    ``rank == PMIX_RANK_WILDCARD`` designates the whole namespace, as in
    the PMIx spec.  Implemented as a slotted value class with a
    precomputed hash — these ids are created and hashed millions of
    times per simulation (every message, every collective signature).
    """

    __slots__ = ("nspace", "rank", "_hash")

    def __init__(self, nspace: str, rank: int) -> None:
        self.nspace = nspace
        self.rank = rank
        self._hash = hash((nspace, rank))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if other.__class__ is PmixProc:
            return self.rank == other.rank and self.nspace == other.nspace
        return NotImplemented

    def __lt__(self, other: "PmixProc") -> bool:
        return (self.nspace, self.rank) < (other.nspace, other.rank)

    def __le__(self, other: "PmixProc") -> bool:
        return (self.nspace, self.rank) <= (other.nspace, other.rank)

    def __gt__(self, other: "PmixProc") -> bool:
        return (self.nspace, self.rank) > (other.nspace, other.rank)

    def __ge__(self, other: "PmixProc") -> bool:
        return (self.nspace, self.rank) >= (other.nspace, other.rank)

    def __repr__(self) -> str:
        return f"PmixProc(nspace={self.nspace!r}, rank={self.rank})"

    def __str__(self) -> str:
        r = "*" if self.rank == PMIX_RANK_WILDCARD else str(self.rank)
        return f"{self.nspace}:{r}"


@dataclass
class PmixInfo:
    """A (key, value) directive, optionally flagged as required."""

    key: str
    value: Any
    required: bool = False


def info_dict(infos) -> Dict[str, Any]:
    """Normalize a list of PmixInfo / (key, value) pairs / dict to a dict."""
    if infos is None:
        return {}
    if isinstance(infos, dict):
        return dict(infos)
    out: Dict[str, Any] = {}
    for item in infos:
        if isinstance(item, PmixInfo):
            out[item.key] = item.value
        else:
            key, value = item
            out[key] = value
    return out


def lookup_info(infos, key: str, default: Optional[Any] = None) -> Any:
    """Fetch one directive from any accepted 'info' representation."""
    return info_dict(infos).get(key, default)

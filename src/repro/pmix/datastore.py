"""Per-namespace key-value storage.

Each PMIx server keeps one :class:`Datastore`: job-level data (rank
``PMIX_RANK_WILDCARD``) plus per-rank data published via put/commit and
propagated by fence or direct-modex requests.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

from repro.pmix.types import PMIX_RANK_WILDCARD, PmixProc


class Datastore:
    """Nested mapping nspace -> rank -> key -> value."""

    def __init__(self) -> None:
        self._data: Dict[str, Dict[int, Dict[str, Any]]] = {}

    def put(self, proc: PmixProc, key: str, value: Any) -> None:
        self._data.setdefault(proc.nspace, {}).setdefault(proc.rank, {})[key] = value

    def put_job(self, nspace: str, key: str, value: Any) -> None:
        """Store job-level data (visible via the wildcard rank)."""
        self.put(PmixProc(nspace, PMIX_RANK_WILDCARD), key, value)

    def get(self, proc: PmixProc, key: str) -> Tuple[bool, Any]:
        """Return (found, value); falls back to job-level data."""
        by_rank = self._data.get(proc.nspace)
        if by_rank is None:
            return False, None
        rank_data = by_rank.get(proc.rank)
        if rank_data is not None and key in rank_data:
            return True, rank_data[key]
        if proc.rank != PMIX_RANK_WILDCARD:
            job = by_rank.get(PMIX_RANK_WILDCARD)
            if job is not None and key in job:
                return True, job[key]
        return False, None

    def has(self, proc: PmixProc, key: str) -> bool:
        return self.get(proc, key)[0]

    def rank_blob(self, proc: PmixProc) -> Dict[str, Any]:
        """All committed data for one rank (what fence exchanges)."""
        return dict(self._data.get(proc.nspace, {}).get(proc.rank, {}))

    def merge_blob(self, proc: PmixProc, blob: Dict[str, Any]) -> None:
        if not blob:
            return
        self._data.setdefault(proc.nspace, {}).setdefault(proc.rank, {}).update(blob)

    def namespaces(self) -> Iterable[str]:
        return self._data.keys()

    def drop_namespace(self, nspace: str) -> None:
        self._data.pop(nspace, None)

    def size_estimate(self, nspace: Optional[str] = None) -> int:
        """Rough byte size of stored blobs (drives exchange message sizes)."""
        spaces = [nspace] if nspace else list(self._data)
        total = 0
        for ns in spaces:
            for rank_data in self._data.get(ns, {}).values():
                for key, value in rank_data.items():
                    total += len(key) + _value_size(value)
        return total


def _value_size(value: Any) -> int:
    """Approximate wire size of a stored value in bytes."""
    if isinstance(value, (bytes, bytearray, str)):
        return len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return 8 + sum(_value_size(v) for v in value)
    if isinstance(value, dict):
        return 8 + sum(len(str(k)) + _value_size(v) for k, v in value.items())
    return 8

"""One-call bootstrapping of the whole simulated system.

A :class:`Cluster` owns the simulation engine, the machine model, the
PRRTE DVM (daemon per node), the PMIx servers, and the pset registry —
everything below the MPI library.  Higher layers (``repro.api``) launch
jobs and MPI rank processes on top of it.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.faults import FaultManager, FaultPlan
from repro.machine.model import MachineModel
from repro.machine.presets import laptop
from repro.pmix.server import PmixServer
from repro.prrte.dvm import DVM
from repro.prrte.launch import Job, JobSpec, Launcher
from repro.prrte.psets import PsetRegistry
from repro.simtime.engine import Engine
from repro.simtime.process import SimProcess
from repro.simtime.trace import NullTracer, Tracer


class Cluster:
    """A booted simulated machine: engine + DVM + PMIx servers."""

    def __init__(
        self,
        machine: Optional[MachineModel] = None,
        grpcomm_mode: str = "tree",
        grpcomm_radix: int = 2,
        tracer: Optional[Tracer] = None,
        recovery: bool = False,
        recovery_seed: int = 0,
        engine_compat: bool = False,
    ) -> None:
        self.machine = machine or laptop()
        # ``engine_compat`` selects the pure-heap reference scheduler +
        # reference trampoline (docs/performance.md) — used by the
        # golden-trace equivalence tests and as the bench baseline.
        self.engine = Engine(compat=engine_compat)
        self.tracer = tracer or NullTracer()
        # Observability (docs/observability.md): every layer reaches the
        # tracer through the engine it already holds; metrics stay
        # disabled until a caller flips ``metrics.enabled`` (snapshot
        # harvesting works regardless).
        self.engine.tracer = self.tracer
        from repro.obs.metrics import MetricsRegistry

        self.metrics = MetricsRegistry()
        self.engine.metrics = self.metrics
        self.psets = PsetRegistry()
        self.dvm = DVM(self.engine, self.machine, grpcomm_mode, grpcomm_radix)
        self.servers = [PmixServer(daemon, self.psets) for daemon in self.dvm.daemons]
        self.launcher = Launcher(self.dvm, self.psets)
        # Fault injection (docs/faults.md): inert until a plan is
        # installed or a kill is requested.
        self.faults = FaultManager(self)
        self.dvm.faults = self.faults
        self.dvm.rml.faults = self.faults
        # Recovery layer (docs/recovery.md): reliable RML + routing-tree
        # healing + grpcomm restart.  Strictly opt-in — with it off the
        # stack keeps the detect-and-fail semantics of docs/faults.md.
        self.recovery = recovery
        from collections import Counter

        self.recovery_stats = Counter()   # revoke/agree/shrink/... counters
        if recovery:
            self.dvm.rml.enable_reliability(seed=recovery_seed)
            for daemon in self.dvm.daemons:
                daemon.grpcomm.recovery = True

    @classmethod
    def from_spec(cls, spec) -> "Cluster":
        """Boot a cluster from a :class:`repro.api.SimSpec`.

        Only the cluster-level spec fields are consumed here; job-level
        fields (``nprocs``/``ppn``/``psets``/``config``) are applied by
        ``make_world`` when it launches on top of this cluster.
        """
        return cls(machine=spec.machine, grpcomm_mode=spec.grpcomm_mode,
                   grpcomm_radix=spec.grpcomm_radix, tracer=spec.tracer,
                   recovery=spec.recovery, recovery_seed=spec.recovery_seed,
                   engine_compat=spec.engine_compat)

    @property
    def now(self) -> float:
        return self.engine.now

    def launch(
        self,
        num_ranks: int,
        ppn: Optional[int] = None,
        psets: Optional[Dict[str, Sequence[int]]] = None,
        nspace: Optional[str] = None,
    ) -> Job:
        """Launch a job (prun equivalent); ppn defaults to filling nodes."""
        if ppn is None:
            ppn = min(num_ranks, self.machine.cores_per_node)
        spec = JobSpec(num_ranks=num_ranks, ppn=ppn, psets=psets or {}, nspace=nspace)
        job = self.launcher.launch(spec)
        if self.faults.default_job is None:
            self.faults.default_job = job
        return job

    def install_faults(self, plan: FaultPlan) -> None:
        """Install a fault plan (one per cluster; see docs/faults.md)."""
        self.faults.install(plan)

    def spawn(self, gen, name: str = "", track: Optional[str] = None) -> SimProcess:
        """Start a simulated process on this cluster's engine.

        ``track`` names the observability timeline the process lives on
        (e.g. ``rank:<nspace>/<rank>``); its lifetime becomes a
        ``simtime.proc.run`` root span there.
        """
        proc = SimProcess(self.engine, gen, name)
        if self.tracer.enabled:
            proc.obs_span = self.tracer.begin(
                self.engine.now, track or f"proc:{proc.name}",
                "simtime.proc.run", proc=proc.name,
            )
        proc.start()
        return proc

    def run(self, until: Optional[float] = None) -> float:
        """Drive the simulation until quiescent (or ``until``)."""
        return self.engine.run(until=until)

    def trace(self, category: str, event: str, **detail) -> None:
        self.tracer.emit(self.engine.now, category, event, **detail)

    def fail_process(self, job: Job, rank: int, sim_proc: Optional[SimProcess] = None) -> None:
        """Inject a process failure (fault-tolerance demos, §II-C).

        Delegates to the :class:`~repro.faults.FaultManager`: kills the
        rank's simulated process, marks it dead at its PMIx server (which
        evicts it from psets and aborts collectives it was part of), and
        broadcasts both a PMIX_ERR_PROC_ABORTED event and — kept for
        backward compatibility with pre-fault-subsystem handlers — a
        PMIX_ERR_PROC_TERMINATED event.
        """
        from repro.pmix.types import PMIX_ERR_PROC_TERMINATED

        self.faults.kill_rank(
            job, rank, sim_proc=sim_proc, code=PMIX_ERR_PROC_TERMINATED
        )

"""Wall-clock benchmark suite: fast-path engine vs compat reference.

Measures events/second on canonical workloads, once on the default
fast-path scheduler and once on ``Engine(compat=True)`` (the pure-heap
reference), and reports the speedup.  Two kinds of cases:

* **scheduler-bound kernels** (``fence-storm``, ``comm-dup``): distilled
  from the two hottest runtime patterns — the PMIx fence fan-in
  (staggered arrivals, a timed wait per participant whose watchdog timer
  is canceled on completion, then a same-timestamp release cascade) and
  the CID-allocation chains behind ``MPI_Comm_dup`` (long zero-delay
  message round-trips punctuated by daemon hops).  These isolate the
  engine + trampoline, which is where the fast paths live, and carry the
  ISSUE's >= 2x acceptance bar.
* **full-stack scenarios** (``recovery-soak``, ``fig3-init``): end-to-end
  runs of the real middleware stack.  Most of their wall-clock is
  app-layer Python (collectives, PMIx bookkeeping), so the scheduler
  speedup is diluted — they are tracked for trend, not held to 2x.

Every case also cross-checks determinism: the fast and compat runs must
execute exactly the same number of engine events (the golden-trace tests
prove the stronger byte-identical-ordering property).

``tools/bench.py`` is the CLI; ``benchmarks/test_perf.py`` asserts the
speedup bars; ``tests/bench/test_perf_smoke.py`` runs a tiny guard in
tier-1.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.simtime.engine import Engine
from repro.simtime.primitives import SimEvent
from repro.simtime.process import SLEEP0, SimProcess, Sleep, Wait


def _spawn(engine: Engine, gen, name: str = "") -> SimProcess:
    proc = SimProcess(engine, gen, name)
    proc.defuse()
    proc.start()
    return proc


# ---------------------------------------------------------------------------
# scheduler-bound kernels
# ---------------------------------------------------------------------------
def fence_storm(compat: bool, procs: int = 64, rounds: int = 120) -> int:
    """PMIx-fence fan-in kernel; returns events executed.

    Per round, each participant arrives after a per-rank stagger (heap
    traffic at distinct timestamps), blocks in a *timed* wait — arming a
    watchdog timer that completion cancels, the retransmission-timer
    pattern that motivated lazy deletion — and the last arrival releases
    everyone into a same-timestamp drain chain (ready-lane traffic).
    """
    engine = Engine(compat=compat)
    state = {"count": 0, "event": SimEvent()}

    def rank(r: int):
        for rnd in range(rounds):
            yield Sleep((r + 1) * 1e-8)
            state["count"] += 1
            if state["count"] == procs:
                event = state["event"]
                state["event"] = SimEvent()
                state["count"] = 0
                event.succeed(rnd)
            else:
                # The stagger makes arrival order strict, so the fence
                # completes long before the watchdog: every timer here
                # is armed and then canceled.
                yield Wait(state["event"], timeout=1.0)
            # Post-release cascade: grpcomm release -> per-client PMIx
            # notify -> completion callbacks, all at the same instant.
            for _ in range(10):
                yield SLEEP0
    for r in range(procs):
        _spawn(engine, rank(r), f"rank{r}")
    engine.run()
    return engine.events_executed


def comm_dup(compat: bool, procs: int = 32, dups: int = 100) -> int:
    """CID-allocation chain kernel; returns events executed.

    Models the ``MPI_Comm_dup`` hot loop: each dup is a burst of
    zero-delay allocation round-trips (agreement messages landing at the
    same instant) followed by one short daemon hop.  Almost pure
    ready-lane + trampoline traffic.
    """
    engine = Engine(compat=compat)

    def rank(r: int):
        for _ in range(dups):
            for _ in range(10):
                yield SLEEP0
            yield Sleep(1e-7)
    for r in range(procs):
        _spawn(engine, rank(r), f"rank{r}")
    engine.run()
    return engine.events_executed


# ---------------------------------------------------------------------------
# full-stack scenarios
# ---------------------------------------------------------------------------
def recovery_soak(compat: bool, seeds: int = 3) -> int:
    """End-to-end chaos soak (repro.recovery) across a few seeds."""
    from repro.recovery import soak_run

    events = 0
    for seed in range(seeds):
        events += soak_run(seed, engine_compat=compat)["events"]
    return events


def fig3_init(compat: bool, nodes: int = 2, ppn: int = 4) -> int:
    """The paper's Fig 3 Sessions-init scenario, fully instrumented."""
    from repro.obs.scenarios import run_scenario

    run = run_scenario("fig3-init", nodes=nodes, ppn=ppn,
                       engine_compat=compat)
    return run.cluster.engine.events_executed


def fig3_init_1k(compat: bool, nodes: int = 64, ppn: int = 16) -> int:
    """Fig 3 Sessions-init at cluster scale (default 1024 simulated
    ranks) — the large-scale point the paper's evaluation is about.
    Same scenario as ``fig3-init``; split out as its own case so the
    committed trajectory tracks the big configuration explicitly."""
    return fig3_init(compat, nodes=nodes, ppn=ppn)


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------
@dataclass
class BenchCase:
    name: str
    fn: Callable[..., int]          # fn(compat, **params) -> events executed
    params: Dict[str, int]
    quick_params: Dict[str, int]
    min_speedup: Optional[float]    # acceptance bar, None = tracked only

    def run(self, compat: bool, quick: bool) -> int:
        return self.fn(compat, **(self.quick_params if quick else self.params))


CASES: List[BenchCase] = [
    BenchCase("fence-storm", fence_storm,
              dict(procs=64, rounds=120), dict(procs=16, rounds=20),
              min_speedup=2.0),
    BenchCase("comm-dup", comm_dup,
              dict(procs=32, dups=100), dict(procs=8, dups=20),
              min_speedup=2.0),
    BenchCase("recovery-soak", recovery_soak,
              dict(seeds=3), dict(seeds=1), min_speedup=None),
    BenchCase("fig3-init", fig3_init,
              dict(nodes=4, ppn=8), dict(nodes=2, ppn=2), min_speedup=None),
    BenchCase("fig3-init-1k", fig3_init_1k,
              dict(nodes=64, ppn=16), dict(nodes=16, ppn=8),
              min_speedup=None),
]


def measure(fn: Callable[[], int], repeats: int = 3):
    """Best-of-``repeats`` wall time for one run of ``fn``.

    Best-of (not mean) because scheduler noise is strictly additive:
    the fastest observed run is the closest estimate of the true cost.
    """
    best = float("inf")
    events = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        ev = fn()
        dt = time.perf_counter() - t0
        if events is None:
            events = ev
        elif ev != events:
            raise RuntimeError(f"nondeterministic event count: {ev} != {events}")
        if dt < best:
            best = dt
    return events, best


def run_case(case: BenchCase, *, quick: bool = False,
             repeats: int = 3) -> Dict[str, object]:
    """Measure one case fast vs compat; returns the result record."""
    ev_fast, t_fast = measure(lambda: case.run(False, quick), repeats)
    ev_compat, t_compat = measure(lambda: case.run(True, quick), repeats)
    if ev_fast != ev_compat:
        raise RuntimeError(
            f"{case.name}: fast/compat event counts diverge "
            f"({ev_fast} != {ev_compat}) — determinism contract broken"
        )
    return {
        "kind": "scheduler",
        "params": case.quick_params if quick else case.params,
        "events": ev_fast,
        "fast_s": t_fast,
        "compat_s": t_compat,
        "fast_eps": ev_fast / t_fast,
        "compat_eps": ev_compat / t_compat,
        "speedup": t_compat / t_fast,
        "min_speedup": case.min_speedup,
    }


# ---------------------------------------------------------------------------
# partitioned cases: one world, N worker processes (repro.dsim)
# ---------------------------------------------------------------------------
@dataclass
class PartitionedCase:
    """Serial vs partitioned execution of one full-stack workload.

    A different axis from the scheduler cases: both sides run the
    fast-path engine; the measured ratio is single-process wall time
    over N-worker conservative-parallel wall time.  ``min_speedup`` is
    a real-parallelism claim, so it is only *enforced* when the host
    actually has at least ``partitions`` cores (the committed record
    carries ``cores`` so the context of every measurement is explicit —
    see docs/performance.md, "Partitioned execution").
    """

    name: str
    params: Dict[str, int]          # nodes, ppn, partitions
    quick_params: Dict[str, int]
    min_speedup: Optional[float]


PARTITIONED_CASES: List[PartitionedCase] = [
    PartitionedCase("fig3-init-1k-p4",
                    dict(nodes=64, ppn=16, partitions=4),
                    dict(nodes=16, ppn=4, partitions=4),
                    min_speedup=2.0),
    PartitionedCase("fig3-init-4k",
                    dict(nodes=256, ppn=16, partitions=4),
                    dict(nodes=32, ppn=4, partitions=4),
                    min_speedup=None),
]


def _partitioned_spec(nodes: int, ppn: int):
    from repro.api import SimSpec
    from repro.machine.presets import jupiter
    from repro.ompi.config import MpiConfig

    return SimSpec(nprocs=nodes * ppn, machine=jupiter(nodes), ppn=ppn,
                   config=MpiConfig.sessions_prototype())


def run_partitioned_case(case: PartitionedCase, *, quick: bool = False,
                         repeats: int = 3) -> Dict[str, object]:
    """Measure one case serially vs partitioned; returns the record.

    Both sides run untraced (tracing skews a wall-clock claim) and must
    execute exactly the same number of engine events — the dsim
    bit-equivalence contract, cross-checked here on every measurement.
    """
    from repro import dsim
    from repro.api import make_world
    from repro.obs.scenarios import _sessions_init_main

    p = case.quick_params if quick else case.params
    nodes, ppn, nparts = p["nodes"], p["ppn"], p["partitions"]
    spec = _partitioned_spec(nodes, ppn)

    def serial() -> int:
        world = make_world(spec=spec)
        procs = world.spawn_ranks(_sessions_init_main)
        world.run()
        for proc in procs:
            if proc.exception is not None:
                raise proc.exception
        return world.cluster.engine.events_executed

    shape: Dict[str, int] = {}

    def partitioned() -> int:
        res = dsim.run_partitioned(spec.replace(partitions=nparts),
                                   _sessions_init_main)
        res.raise_first_failure()
        shape["windows"] = res.windows
        shape["boundary_msgs"] = res.boundary_msgs
        return res.events

    ev_serial, t_serial = measure(serial, repeats)
    ev_part, t_part = measure(partitioned, repeats)
    if ev_serial != ev_part:
        raise RuntimeError(
            f"{case.name}: serial/partitioned event counts diverge "
            f"({ev_serial} != {ev_part}) — dsim equivalence contract broken"
        )
    cores = os.cpu_count() or 1
    return {
        "kind": "partitioned",
        "params": p,
        "events": ev_serial,
        "partitions": nparts,
        "cores": cores,
        "windows": shape["windows"],
        "boundary_msgs": shape["boundary_msgs"],
        "serial_s": t_serial,
        "partitioned_s": t_part,
        "serial_eps": ev_serial / t_serial,
        "partitioned_eps": ev_part / t_part,
        "speedup": t_serial / t_part,
        "min_speedup": case.min_speedup,
        "enforced": case.min_speedup is not None and cores >= nparts,
    }


def run_case_point(case: str, quick: bool = False,
                   repeats: int = 3) -> Dict[str, object]:
    """Sweep-friendly wrapper (module-level, picklable): run one named
    case and return its result record — what ``tools/bench.py --jobs``
    fans across processes via :mod:`repro.sweep`."""
    lookup = {c.name: c for c in CASES}
    if case in lookup:
        return run_case(lookup[case], quick=quick, repeats=repeats)
    part_lookup = {c.name: c for c in PARTITIONED_CASES}
    return run_partitioned_case(part_lookup[case], quick=quick,
                                repeats=repeats)


def check_regression(report: Dict[str, object], baseline: Dict[str, object],
                     tolerance: float = 0.2) -> List[str]:
    """Regression gate: compare a fresh bench report to a committed one.

    Returns a list of human-readable failures (empty = gate passes):

    * a case present in the baseline but absent from the report —
      coverage must never silently shrink;
    * an event-count drift at identical params — the determinism
      contract is exact, so any drift is a hard failure regardless of
      tolerance;
    * a speedup below ``baseline * (1 - tolerance)`` — wall-clock noise
      is real, so only the relative trajectory is gated.  For the
      ``partitioned``/``fleet`` kinds the speedup is compared only when
      both records ran on the same core count *and* both were enforced
      (the host could actually parallelize); un-enforced records keep
      the deterministic checks only.

    Speedups are only comparable like-for-like: gate a full run against
    a full baseline (``tools/bench.py --check``); a quick-vs-full
    comparison still runs but skips the event check (params differ).
    """
    failures: List[str] = []
    base_cases = baseline.get("cases", {})
    cur_cases = report.get("cases", {})
    for name in sorted(base_cases):
        base = base_cases[name]
        rec = cur_cases.get(name)
        if rec is None:
            failures.append(f"{name}: case missing from current report")
            continue
        if base.get("kind", "scheduler") != rec.get("kind", "scheduler"):
            failures.append(
                f"{name}: case kind changed "
                f"{base.get('kind', 'scheduler')!r} -> "
                f"{rec.get('kind', 'scheduler')!r}; speedups are only "
                f"comparable within a kind"
            )
            continue
        if base.get("params") == rec.get("params") \
                and base.get("events") != rec.get("events"):
            failures.append(
                f"{name}: event count drifted {base.get('events')} -> "
                f"{rec.get('events')} at identical params (determinism "
                f"contract; not subject to tolerance)"
            )
        if rec.get("kind") in ("partitioned", "fleet"):
            # A partitioned (or fleet-scaling) speedup is a property of
            # the host's core count; comparing across hosts gates
            # nothing meaningful.  Un-enforced records (no bar, or a
            # host that cannot run the workers in parallel) are honest
            # trajectory tracking, not gates — their wall-clock ratio
            # is noise-bound, so only the deterministic checks apply.
            if rec.get("cores") != base.get("cores"):
                continue
            if not (rec.get("enforced") and base.get("enforced")):
                continue
        floor = base["speedup"] * (1.0 - tolerance)
        if rec["speedup"] < floor:
            failures.append(
                f"{name}: speedup {rec['speedup']:.2f}x fell below "
                f"baseline {base['speedup']:.2f}x minus {tolerance:.0%} "
                f"tolerance (floor {floor:.2f}x)"
            )
    return failures


def run_bench(*, quick: bool = False, repeats: int = 3,
              cases: Optional[List[str]] = None) -> Dict[str, object]:
    """Run the suite; returns the BENCH_*.json payload."""
    selected = [c for c in CASES if cases is None or c.name in cases]
    results = {case.name: run_case(case, quick=quick, repeats=repeats)
               for case in selected}
    for case in PARTITIONED_CASES:
        if cases is None or case.name in cases:
            results[case.name] = run_partitioned_case(case, quick=quick,
                                                      repeats=repeats)
    return {
        "bench": "engine-fast-path",
        "mode": "quick" if quick else "full",
        "repeats": repeats,
        "python": sys.version.split()[0],
        "cases": results,
    }


def ledger_records(report: Dict[str, object]) -> List[Dict[str, object]]:
    """One :class:`repro.obs.RunLedger` row per bench case.

    ``tools/bench.py --ledger`` appends these (``kind="bench"``), so the
    run ledger holds the whole measured history next to the serve and
    sweep rows — every perf claim traceable to a recorded run.
    """
    rows: List[Dict[str, object]] = []
    for name in sorted(report.get("cases", {})):
        rec = report["cases"][name]
        if rec.get("kind") == "partitioned":
            detail = {
                "events": rec["events"],
                "speedup": rec["speedup"],
                "serial_s": rec["serial_s"],
                "partitions": rec["partitions"],
                "cores": rec["cores"],
                "mode": report.get("mode"),
            }
            wall = rec["partitioned_s"]
        else:
            detail = {
                "events": rec["events"],
                "speedup": rec["speedup"],
                "compat_s": rec["compat_s"],
                "mode": report.get("mode"),
            }
            wall = rec["fast_s"]
        rows.append({
            "kind": "bench",
            "scenario": name,
            "status": "ok",
            "wall_s": wall,
            "detail": detail,
        })
    return rows

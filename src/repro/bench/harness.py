"""Shared benchmark plumbing: result containers and table printing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


@dataclass
class Series:
    """One line of a figure: label + (x, y) points."""

    label: str
    points: List[Tuple[Any, float]] = field(default_factory=list)

    def add(self, x: Any, y: float) -> None:
        self.points.append((x, y))

    def ys(self) -> List[float]:
        return [y for _x, y in self.points]

    def xs(self) -> List[Any]:
        return [x for x, _y in self.points]

    def y_at(self, x: Any) -> float:
        for px, py in self.points:
            if px == x:
                return py
        raise KeyError(x)


@dataclass
class BenchResult:
    """Output of one figure/table reproduction."""

    exp_id: str                     # e.g. "fig3a"
    title: str
    series: Dict[str, Series] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    obs: Dict[str, Any] = field(default_factory=dict)   # --obs breakdowns

    def series_for(self, label: str) -> Series:
        if label not in self.series:
            self.series[label] = Series(label)
        return self.series[label]

    def ratio(self, num_label: str, den_label: str) -> List[Tuple[Any, float]]:
        """Pointwise ratio of two series sharing x values."""
        num = self.series[num_label]
        den = self.series[den_label]
        return [(x, y / den.y_at(x)) for x, y in num.points]

    def to_csv(self) -> str:
        """CSV rendering: one row per x, one column per series (for
        plotting the reproduced figures with external tooling)."""
        labels = list(self.series)
        xs: List[Any] = []
        for s in self.series.values():
            for x in s.xs():
                if x not in xs:
                    xs.append(x)
        lines = ["x," + ",".join(str(lbl) for lbl in labels)]
        for x in xs:
            cells = [str(x)]
            for lbl in labels:
                try:
                    cells.append(repr(self.series[lbl].y_at(x)))
                except KeyError:
                    cells.append("")
            lines.append(",".join(cells))
        return "\n".join(lines) + "\n"

    def to_payload(self) -> Dict[str, Any]:
        """JSON-serializable dict; inverse of :meth:`from_payload`.  This
        is what the sweep cache stores, so it must capture everything
        render()/to_csv()/to_json() read."""
        return {
            "exp_id": self.exp_id,
            "title": self.title,
            "series": {lbl: [list(p) for p in s.points]
                       for lbl, s in self.series.items()},
            "notes": self.notes,
            "obs": self.obs,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "BenchResult":
        result = cls(
            exp_id=payload["exp_id"],
            title=payload["title"],
            notes=list(payload.get("notes", [])),
            obs=dict(payload.get("obs", {})),
        )
        for lbl, points in payload.get("series", {}).items():
            series = result.series_for(lbl)
            for x, y in points:
                series.add(x, y)
        return result

    def to_json(self) -> str:
        """Deterministic JSON dump (the ``--json`` flag of run_figure)."""
        import json

        return json.dumps(self.to_payload(), sort_keys=True, indent=2) + "\n"

    def render(self, unit: str = "") -> str:
        """Paper-style text rendering: one row per x, one column per series."""
        labels = list(self.series)
        xs: List[Any] = []
        for s in self.series.values():
            for x in s.xs():
                if x not in xs:
                    xs.append(x)
        headers = ["x"] + [f"{lbl}{f' [{unit}]' if unit else ''}" for lbl in labels]
        rows = []
        for x in xs:
            row: List[str] = [str(x)]
            for lbl in labels:
                try:
                    row.append(f"{self.series[lbl].y_at(x):.6g}")
                except KeyError:
                    row.append("-")
            rows.append(row)
        out = [f"== {self.exp_id}: {self.title} =="]
        out.append(format_table(headers, rows))
        for note in self.notes:
            out.append(f"   note: {note}")
        return "\n".join(out)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("no values")
    prod = 1.0
    for v in values:
        prod *= v
    return prod ** (1.0 / len(values))

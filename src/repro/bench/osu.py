"""Ports of the (modified) OSU microbenchmarks used in paper §IV-C.

Each function runs a complete simulated job and returns timings in
simulated seconds.  ``mode`` selects the initialization path:

* ``"world"``   — baseline Open MPI: MPI_Init + MPI_COMM_WORLD
  (consensus CID generator);
* ``"sessions"`` — the prototype: MPI_Session_init →
  MPI_Group_from_session_pset("mpi://world") →
  MPI_Comm_create_from_group (exCID generator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.api import SimSpec, make_world
from repro.machine.presets import jupiter
from repro.ompi.config import MpiConfig
from repro.simtime.process import Sleep

#: Message sizes (bytes) for the latency / bandwidth sweeps — a subset
#: of the OSU powers-of-two to keep event counts sane.
DEFAULT_SIZES = (1, 8, 64, 512, 4096, 32768, 262144, 1048576)


def _config_for(mode: str, dup_policy: str = "pgcid-per-dup") -> MpiConfig:
    if mode == "world":
        return MpiConfig.baseline()
    if mode == "sessions":
        return MpiConfig.sessions_prototype(dup_policy)
    raise ValueError(f"unknown mode {mode!r}")


def _bootstrap(mode: str, mpi, tag: str = "osu"):
    """Sub-generator: initialize per ``mode``; returns the benchmark comm."""
    if mode == "world":
        comm = yield from mpi.mpi_init()
        return comm
    session = yield from mpi.session_init()
    group = yield from session.group_from_pset("mpi://world")
    comm = yield from mpi.comm_create_from_group(group, tag)
    mpi._osu_session = session
    return comm


def _teardown(mode: str, mpi, comm):
    if mode == "world":
        yield from mpi.mpi_finalize()
    else:
        comm.free()
        yield from mpi._osu_session.finalize()


# ---------------------------------------------------------------------------
# osu_init (Fig 3)
# ---------------------------------------------------------------------------
@dataclass
class InitTiming:
    total: float          # job-start to communicator-ready (max over ranks)
    binary_load: float    # modeled NFS library-load component (same per path)
    handle: float         # sessions only: MPI_Session_init, minus binary load
    comm_construct: float  # sessions only: MPI_Comm_create_from_group


def osu_init(nodes: int, ppn: int, mode: str, machine_factory=jupiter,
             tracer=None, partitions: int = 1) -> InitTiming:
    """The osu_init benchmark (modified for sessions as in the paper).

    Pass a :class:`~repro.simtime.trace.Tracer` to record spans/flows for
    the run (the ``--obs`` mode of ``tools/run_figure.py``).

    ``partitions > 1`` executes the same world across that many worker
    processes (:mod:`repro.dsim`); all returned timings are simulated
    time, so they are bit-identical to the single-process run — the flag
    only changes the wall-clock side of the computation.
    """
    machine = machine_factory(nodes)
    spec = SimSpec(nprocs=nodes * ppn, machine=machine,
                   ppn=ppn, config=_config_for(mode))
    nfs = machine.nfs_load_time(nodes * ppn)

    def main(mpi):
        # Marks are *returned* (not appended to a closure) so the same
        # program runs under repro.dsim, where each rank executes in a
        # worker process and only return values cross back.
        t0 = mpi.engine.now
        if mode == "world":
            yield from mpi.mpi_init()
            t1 = mpi.engine.now
            yield from mpi.mpi_finalize()
            return (t0, t1)
        session = yield from mpi.session_init()
        t1 = mpi.engine.now
        group = yield from session.group_from_pset("mpi://world")
        t2 = mpi.engine.now
        comm = yield from mpi.comm_create_from_group(group, "osu-init")
        t3 = mpi.engine.now
        comm.free()
        yield from session.finalize()
        return (t0, t1, t2, t3)

    if partitions > 1:
        from repro import dsim
        from repro.dsim.merge import adopt_tracer

        res = dsim.run_partitioned(
            spec.replace(partitions=partitions), main,
            traced=tracer is not None)
        res.raise_first_failure()
        if tracer is not None:
            adopt_tracer(tracer, res.tracer)
        marks: List[Tuple[float, ...]] = res.result_list(spec.nprocs)
    else:
        world = make_world(spec=spec.replace(tracer=tracer))
        procs = world.spawn_ranks(main)
        world.run()
        for p in procs:
            if p.exception:
                raise p.exception
        marks = [p.result for p in procs]
    if mode == "world":
        total = max(t1 - t0 for t0, t1 in marks)
        return InitTiming(total=total, binary_load=nfs, handle=0.0, comm_construct=0.0)
    total = max(m[3] - m[0] for m in marks)
    handle = sum(m[1] - m[0] for m in marks) / len(marks) - nfs
    commc = sum(m[3] - m[2] for m in marks) / len(marks)
    return InitTiming(total=total, binary_load=nfs, handle=handle, comm_construct=commc)


# ---------------------------------------------------------------------------
# MPI_Comm_dup timing (Fig 4)
# ---------------------------------------------------------------------------
def osu_comm_dup(
    nodes: int,
    ppn: int,
    mode: str,
    iterations: int = 40,
    machine_factory=jupiter,
    dup_policy: str = "pgcid-per-dup",
) -> float:
    """Per-iteration MPI_Comm_dup + MPI_Comm_free time (seconds)."""
    machine = machine_factory(nodes)
    world = make_world(spec=SimSpec(nprocs=nodes * ppn, machine=machine,
                                    ppn=ppn,
                                    config=_config_for(mode, dup_policy)))
    out: List[float] = []

    def main(mpi):
        comm = yield from _bootstrap(mode, mpi, "osu-dup")
        # One untimed dup warms the PMIx "group" path so Fig 4 measures
        # the steady-state PGCID acquisition cost, as the paper does.
        warm = yield from comm.dup()
        warm.free()
        yield from comm.barrier()
        t0 = mpi.engine.now
        for _ in range(iterations):
            dup = yield from comm.dup()
            dup.free()
        yield from comm.barrier()
        if comm.rank == 0:
            out.append((mpi.engine.now - t0) / iterations)
        yield from _teardown(mode, mpi, comm)

    procs = world.spawn_ranks(main)
    world.run()
    for p in procs:
        if p.exception:
            raise p.exception
    return out[0]


# ---------------------------------------------------------------------------
# osu_latency (Fig 5a)
# ---------------------------------------------------------------------------
def osu_latency(
    mode: str,
    sizes=DEFAULT_SIZES,
    machine=None,
    skip: int = 5,
    iterations: int = 40,
) -> Dict[int, float]:
    """On-node ping-pong latency by message size (seconds, one way)."""
    machine = machine or jupiter(1)
    world = make_world(spec=SimSpec(nprocs=2, machine=machine, ppn=2,
                                    config=_config_for(mode)))
    out: Dict[int, float] = {}

    def main(mpi):
        comm = yield from _bootstrap(mode, mpi, "osu-lat")
        rank = comm.rank
        for size in sizes:
            yield from comm.barrier()
            t0 = None
            for i in range(skip + iterations):
                if i == skip:
                    t0 = mpi.engine.now
                if rank == 0:
                    yield from comm.send(None, 1, tag=1, nbytes=size)
                    yield from comm.recv(1, tag=1)
                else:
                    yield from comm.recv(0, tag=1)
                    yield from comm.send(None, 0, tag=1, nbytes=size)
            if rank == 0:
                out[size] = (mpi.engine.now - t0) / (2 * iterations)
        yield from _teardown(mode, mpi, comm)

    procs = world.spawn_ranks(main)
    world.run()
    for p in procs:
        if p.exception:
            raise p.exception
    return out


# ---------------------------------------------------------------------------
# osu collective latency (osu_allreduce / osu_bcast / osu_barrier style)
# ---------------------------------------------------------------------------
def osu_collective(
    mode: str,
    op_name: str,
    nodes: int = 2,
    ppn: int = 8,
    sizes=(8, 4096, 65536),
    iterations: int = 10,
    skip: int = 2,
    machine_factory=jupiter,
) -> Dict[int, float]:
    """Per-iteration collective latency by payload size (seconds).

    ``op_name`` in {"allreduce", "bcast", "barrier", "allgather",
    "alltoall"}; for "barrier" the size axis collapses to {0}.  The
    ``skip`` warmup iterations absorb first-touch costs (exCID
    handshakes, lazy peer discovery) as real OSU does.
    """
    machine = machine_factory(nodes)
    world = make_world(spec=SimSpec(nprocs=nodes * ppn, machine=machine,
                                    ppn=ppn, config=_config_for(mode)))
    out: Dict[int, float] = {}
    if op_name == "barrier":
        sizes = (0,)

    def main(mpi):
        from repro.ompi.constants import SUM

        comm = yield from _bootstrap(mode, mpi, f"osu-{op_name}")
        for size in sizes:
            yield from comm.barrier()
            t0 = None
            for _i in range(skip + iterations):
                if _i == skip:
                    yield from comm.barrier()
                    t0 = mpi.engine.now
                if op_name == "allreduce":
                    yield from comm.allreduce(1.0, op=SUM, nbytes=size)
                elif op_name == "bcast":
                    yield from comm.bcast(None, root=0, nbytes=size)
                elif op_name == "allgather":
                    yield from comm.allgather(None, nbytes=size)
                elif op_name == "alltoall":
                    yield from comm.alltoall([None] * comm.size, nbytes=size)
                elif op_name == "barrier":
                    yield from comm.barrier()
                else:
                    raise ValueError(f"unknown collective {op_name!r}")
            elapsed = mpi.engine.now - t0
            yield from comm.barrier()
            if comm.rank == 0:
                out[size] = elapsed / iterations
        yield from _teardown(mode, mpi, comm)

    procs = world.spawn_ranks(main)
    world.run()
    for p in procs:
        if p.exception:
            raise p.exception
    return out


# ---------------------------------------------------------------------------
# osu_bw (unidirectional bandwidth; supporting data for Fig 5)
# ---------------------------------------------------------------------------
def osu_bw(
    mode: str,
    sizes=DEFAULT_SIZES,
    machine=None,
    window: int = 16,
    iterations: int = 8,
) -> Dict[int, float]:
    """Unidirectional streaming bandwidth between 2 on-node ranks.

    Sender posts ``window`` isends per iteration; the receiver answers
    one ACK per window.  Returns {size: bytes/s}.
    """
    machine = machine or jupiter(1)
    world = make_world(spec=SimSpec(nprocs=2, machine=machine, ppn=2,
                                    config=_config_for(mode)))
    out: Dict[int, float] = {}

    def main(mpi):
        comm = yield from _bootstrap(mode, mpi, "osu-bw")
        rank = comm.rank
        for size in sizes:
            yield from comm.barrier()
            t0 = mpi.engine.now
            for _ in range(iterations):
                if rank == 0:
                    reqs = []
                    for _w in range(window):
                        reqs.append((yield from comm.isend(None, 1, tag=2, nbytes=size)))
                    for req in reqs:
                        yield from req.wait()
                    yield from comm.recv(1, tag=4)
                else:
                    reqs = [comm.irecv(source=0, tag=2) for _w in range(window)]
                    for req in reqs:
                        yield from req.wait()
                    yield from comm.send(None, 0, tag=4, nbytes=4)
            if rank == 0:
                out[size] = iterations * window * size / (mpi.engine.now - t0)
        yield from _teardown(mode, mpi, comm)

    procs = world.spawn_ranks(main)
    world.run()
    for p in procs:
        if p.exception:
            raise p.exception
    return out


# ---------------------------------------------------------------------------
# osu_mbw_mr (Fig 5b / 5c)
# ---------------------------------------------------------------------------
def osu_mbw_mr(
    mode: str,
    pairs: int,
    sizes=DEFAULT_SIZES,
    machine=None,
    window: int = 32,
    iterations: int = 8,
    presync: bool = False,
) -> Dict[int, Tuple[float, float]]:
    """Multiple-bandwidth / message-rate test.

    ``pairs`` sender/receiver pairs (rank i with rank i+pairs) on one
    node.  Per the paper's account of OSU 5.6, a single ``MPI_Barrier``
    precedes the timing loop; with 2 processes that barrier completes
    the exCID→local-CID switch, with more pairs it does not (the
    barrier's fan-in pattern never exchanges between the test's rank
    pairs).  ``presync=True`` adds the paper's fix: an
    ``MPI_Sendrecv`` between each pair before timing.

    Returns {size: (bandwidth bytes/s, message rate msgs/s)}.
    """
    machine = machine or jupiter(1)
    nprocs = 2 * pairs
    if nprocs > machine.cores_per_node:
        raise ValueError("mbw_mr must fit on one node")
    world = make_world(spec=SimSpec(nprocs=nprocs, machine=machine, ppn=nprocs,
                                    config=_config_for(mode)))
    out: Dict[int, Tuple[float, float]] = {}

    def main(mpi):
        comm = yield from _bootstrap(mode, mpi, "osu-mbw")
        rank = comm.rank
        is_sender = rank < pairs
        peer = rank + pairs if is_sender else rank - pairs
        for size in sizes:
            if presync:
                # The paper's fix: synchronize each pair (completing the
                # exCID handshake) before timing.  An extra untimed
                # barrier also absorbs the one-time lazy-add_procs
                # discovery of the barrier fan-out partners (§III-B1).
                yield from comm.sendrecv(None, peer, peer, sendtag=3, recvtag=3, nbytes=4)
                yield from comm.barrier()
            yield from comm.barrier()
            t0 = mpi.engine.now
            for _ in range(iterations):
                if is_sender:
                    reqs = []
                    for _w in range(window):
                        reqs.append((yield from comm.isend(None, peer, tag=2, nbytes=size)))
                    for req in reqs:
                        yield from req.wait()
                    yield from comm.recv(peer, tag=4)        # window ACK
                else:
                    reqs = [comm.irecv(source=peer, tag=2) for _w in range(window)]
                    for req in reqs:
                        yield from req.wait()
                    yield from comm.send(None, peer, tag=4, nbytes=4)
            elapsed = mpi.engine.now - t0
            # Aggregate over pairs: the reported figure uses the slowest
            # sender's time, so an unswitched pair's first-window
            # extended-header cost is visible (as in the paper's Fig 5c).
            times = yield from comm.gather(elapsed if is_sender else None, root=0)
            if rank == 0:
                worst = max(t for t in times if t is not None)
                total_bytes = pairs * iterations * window * size
                total_msgs = pairs * iterations * window
                out[size] = (total_bytes / worst, total_msgs / worst)
        yield from _teardown(mode, mpi, comm)

    procs = world.spawn_ranks(main)
    world.run()
    for p in procs:
        if p.exception:
            raise p.exception
    return out

"""One entry point per paper table/figure (and the DESIGN.md ablations).

Every function returns a :class:`~repro.bench.harness.BenchResult`
whose series mirror the lines of the original plot; ``quick=True``
trims the sweeps for CI-speed runs, ``quick=False`` runs the full
paper-scale sweeps.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.apps.twomesh.driver import PROBLEMS, run_twomesh
from repro.bench.harness import BenchResult
from repro.bench.hpcc import hpcc_ring_latency
from repro.bench.osu import osu_comm_dup, osu_init, osu_latency, osu_mbw_mr
from repro.machine.presets import jupiter, trinity
from repro.ompi.config import MpiConfig


def _init_nodes(quick: bool) -> List[int]:
    return [2, 8] if quick else [1, 2, 4, 8, 16, 32]


def _init_nodes_ppn28(quick: bool) -> List[int]:
    return [2, 4] if quick else [2, 4, 8, 16, 32]


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------
def table1() -> BenchResult:
    """Hardware/software table: the two machine models used throughout."""
    res = BenchResult(exp_id="table1", title="Hardware and software used for this study")
    machines = [trinity(1), jupiter(1)]
    keys = list(machines[0].describe())
    for key in keys:
        row = " | ".join(f"{m.name}: {m.describe()[key]}" for m in machines)
        res.notes.append(f"{key:>16}  {row}")
    return res


# ---------------------------------------------------------------------------
# Fig 3: MPI initialization time
# ---------------------------------------------------------------------------
def fig3(ppn: int, quick: bool = True, obs: bool = False,
         partitions: int = 1) -> BenchResult:
    """Fig 3: MPI init time by node count, MPI_Init vs Sessions sequence.

    ``obs=True`` instruments every sessions run with a tracer and
    attaches a per-phase critical-path breakdown and metric counters to
    ``result.obs`` (one entry per node count).

    ``partitions > 1`` computes each point across that many worker
    processes (:mod:`repro.dsim`); the simulated timings — and therefore
    the figure — are bit-identical to the single-process run.  Points
    with fewer nodes than partitions fall back to one process (a
    partition must own at least one node).
    """
    nodes_list = _init_nodes(quick) if ppn == 1 else _init_nodes_ppn28(quick)
    res = BenchResult(
        exp_id=f"fig3{'a' if ppn == 1 else 'b'}",
        title=f"MPI initialization time, {ppn} process(es) per node",
    )
    base = res.series_for("MPI_Init")
    sess = res.series_for("Sessions")
    for nodes in nodes_list:
        nparts = partitions if nodes >= partitions else 1
        base.add(nodes, osu_init(nodes, ppn, "world",
                                 partitions=nparts).total)
        tracer = None
        if obs:
            from repro.simtime.trace import Tracer

            tracer = Tracer()
        timing = osu_init(nodes, ppn, "sessions", tracer=tracer,
                          partitions=nparts)
        if tracer is not None:
            from repro.obs import compute_critical_path

            cp = compute_critical_path(tracer)
            # Partitioned runs namespace merged-trace tracks as "p{k}:";
            # attribution is partition-agnostic, so strip the prefixes
            # to keep the figure payload bit-identical across modes.
            strip = lambda t: re.sub(r"(^|->)p\d+:", r"\1", t)  # noqa: E731
            res.obs[f"nodes={nodes}"] = {
                "total": cp.total,
                "stages": [
                    {"name": st.name, "track": strip(st.track),
                     "kind": st.kind, "start": st.start,
                     "duration": st.duration}
                    for st in cp.stages
                ],
                "by_stage": dict(cp.by_stage()),
                "spans": len(tracer.spans),
                "flows": len(tracer.flows),
            }
        sess.add(nodes, timing.total)
        specific = timing.handle + timing.comm_construct
        if specific > 0:
            res.notes.append(
                f"nodes={nodes}: session-handle share of sessions-specific time "
                f"= {timing.handle / specific:.2f}"
            )
    return res


def fig3a(quick: bool = True, obs: bool = False,
          partitions: int = 1) -> BenchResult:
    """Fig 3a: init time with 1 MPI process per node."""
    return fig3(ppn=1, quick=quick, obs=obs, partitions=partitions)


def fig3b(quick: bool = True, obs: bool = False,
          partitions: int = 1) -> BenchResult:
    """Fig 3b: init time with 28 MPI processes per node."""
    return fig3(ppn=28, quick=quick, obs=obs, partitions=partitions)


# ---------------------------------------------------------------------------
# Fig 4: MPI_Comm_dup time
# ---------------------------------------------------------------------------
def fig4(quick: bool = True, ppn: int = 28) -> BenchResult:
    """Fig 4: MPI_Comm_dup per-iteration time, both init paths."""
    nodes_list = _init_nodes_ppn28(quick)
    res = BenchResult(
        exp_id="fig4",
        title=f"MPI_Comm_dup per-iteration time, {ppn} processes per node",
    )
    base = res.series_for("MPI_Init")
    sess = res.series_for("Sessions")
    for nodes in nodes_list:
        base.add(nodes, osu_comm_dup(nodes, ppn, "world"))
        sess.add(nodes, osu_comm_dup(nodes, ppn, "sessions"))
    res.notes.append(
        "sessions overhead = PMIx group context-id acquisition per dup (paper §IV-C2)"
    )
    return res


# ---------------------------------------------------------------------------
# Fig 5: latency / multiple bandwidth / message rate (relative)
# ---------------------------------------------------------------------------
def fig5a(quick: bool = True) -> BenchResult:
    """Fig 5a: relative on-node latency by message size (2 procs)."""
    sizes = (1, 64, 4096, 262144) if quick else (1, 8, 64, 512, 4096, 32768, 262144, 1048576)
    res = BenchResult(
        exp_id="fig5a", title="Relative on-node latency by message size (2 procs)"
    )
    base = osu_latency("world", sizes=sizes)
    sess = osu_latency("sessions", sizes=sizes)
    rel = res.series_for("Sessions/MPI_Init latency ratio")
    for size in sizes:
        rel.add(size, sess[size] / base[size])
    return res


def _mbw_result(exp_id: str, title: str, pairs: int, sizes, presync: bool = False) -> BenchResult:
    res = BenchResult(exp_id=exp_id, title=title)
    base = osu_mbw_mr("world", pairs=pairs, sizes=sizes, presync=presync)
    sess = osu_mbw_mr("sessions", pairs=pairs, sizes=sizes, presync=presync)
    bw = res.series_for("Sessions/MPI_Init bandwidth ratio")
    mr = res.series_for("Sessions/MPI_Init message-rate ratio")
    for size in sizes:
        bw.add(size, sess[size][0] / base[size][0])
        mr.add(size, sess[size][1] / base[size][1])
    return res


def fig5b(quick: bool = True) -> BenchResult:
    """Fig 5b: relative bandwidth/message rate, 1 pair (identical)."""
    sizes = (1, 64, 4096, 262144) if quick else (1, 8, 64, 512, 4096, 32768, 262144)
    return _mbw_result(
        "fig5b", "Relative bandwidth / message rate, 2 processes (1 pair)", 1, sizes
    )


def fig5c(quick: bool = True, presync: bool = False) -> BenchResult:
    """Fig 5c: 8 pairs — handshake cost at small sizes; presync fixes it."""
    sizes = (1, 64, 4096, 262144) if quick else (1, 8, 64, 512, 4096, 32768, 262144)
    title = "Relative bandwidth / message rate, 16 processes (8 pairs)"
    if presync:
        title += " with sendrecv pre-synchronization"
    res = _mbw_result("fig5c", title, 8, sizes, presync=presync)
    if not presync:
        res.notes.append(
            "the pre-loop MPI_Barrier does not switch the test pairs to "
            "local-CID matching; the first window pays the extended-header "
            "cost (paper §IV-C3)"
        )
    return res


# ---------------------------------------------------------------------------
# Fig 6: HPCC ring latency
# ---------------------------------------------------------------------------
def fig6(ordering: str, quick: bool = True, ppn: int = 28) -> BenchResult:
    """Fig 6: HPCC 8-byte ring latency, sessions vs baseline."""
    nodes_list = [2] if quick else [2, 4, 8, 16]
    res = BenchResult(
        exp_id=f"fig6{'a' if ordering == 'random' else 'b'}",
        title=f"HPCC 8-byte {ordering}-order ring latency, {ppn} ppn",
    )
    base = res.series_for("MPI_Init")
    sess = res.series_for("Sessions")
    for nodes in nodes_list:
        base.add(nodes, hpcc_ring_latency(nodes, ppn, "world", ordering))
        sess.add(nodes, hpcc_ring_latency(nodes, ppn, "sessions", ordering))
    return res


def fig6a(quick: bool = True) -> BenchResult:
    """Fig 6a: random-order ring latency."""
    return fig6("random", quick=quick)


def fig6b(quick: bool = True) -> BenchResult:
    """Fig 6b: natural-order ring latency."""
    return fig6("natural", quick=quick)


# ---------------------------------------------------------------------------
# Fig 7: 2MESH normalized execution time
# ---------------------------------------------------------------------------
def fig7(quick: bool = True) -> BenchResult:
    """Fig 7: normalized 2MESH execution times (quiescence overhead)."""
    problems = ["P1", "P2"] if quick else ["P1", "P2", "P3"]
    res = BenchResult(exp_id="fig7", title="Normalized 2MESH execution times")
    base = res.series_for("Baseline")
    sess = res.series_for("Sessions")
    norm = res.series_for("Sessions/Baseline")
    for name in problems:
        problem = PROBLEMS[name]
        t_base = run_twomesh(problem, use_sessions=False)
        t_sess = run_twomesh(problem, use_sessions=True)
        base.add(name, t_base)
        sess.add(name, t_sess)
        norm.add(name, t_sess / t_base)
    res.notes.append("paper: sessions quiescence overhead <= 3% (section IV-E)")
    return res


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md section 4)
# ---------------------------------------------------------------------------
def ablation_dup_policy(nodes: int = 2, ppn: int = 28) -> BenchResult:
    """exCID dup policies: PGCID-per-dup (prototype) vs subfield derivation."""
    res = BenchResult(
        exp_id="ablation-dup-policy",
        title="MPI_Comm_dup: consensus vs PGCID-per-dup vs subfield derivation",
    )
    s = res.series_for("per-iteration dup time")
    s.add("consensus", osu_comm_dup(nodes, ppn, "world"))
    s.add("pgcid-per-dup", osu_comm_dup(nodes, ppn, "sessions", dup_policy="pgcid-per-dup"))
    s.add("subfield", osu_comm_dup(nodes, ppn, "sessions", dup_policy="subfield"))
    res.notes.append(
        "subfield derivation amortizes the PGCID over 255 dups (paper §III-B3: "
        '"more communicators could be created before needing to request a new '
        'PMIx group context identifier")'
    )
    return res


def ablation_fragmentation(nodes: int = 2, ppn: int = 8, holes: int = 48) -> BenchResult:
    """CID-space fragmentation: consensus degrades, exCID does not (§IV-C2)."""
    from repro.api import SimSpec, make_world

    res = BenchResult(
        exp_id="ablation-fragmentation",
        title=f"MPI_Comm_dup with {holes} fragmented CID slots",
    )
    series = res.series_for("per-iteration dup time")

    def measure(mode: str, fragment: bool) -> float:
        machine = jupiter(nodes)
        config = (
            MpiConfig.sessions_prototype("subfield") if mode == "sessions" else MpiConfig.baseline()
        )
        world = make_world(spec=SimSpec(nprocs=nodes * ppn, machine=machine,
                                        ppn=ppn, config=config))
        out: List[float] = []

        def main(mpi):
            if mode == "world":
                comm = yield from mpi.mpi_init()
            else:
                session = yield from mpi.session_init()
                group = yield from session.group_from_pset("mpi://world")
                comm = yield from mpi.comm_create_from_group(group, "frag")
            if fragment:
                # Each rank's local CID table gets holes at *different*
                # indices: the worst case for the consensus search.
                sentinel = object()
                for i in range(holes):
                    idx = 2 + i * 2 + (comm.rank % 2)
                    if mpi.cid_table.is_free(idx):
                        mpi.cid_table.reserve(idx, sentinel)
            yield from comm.barrier()
            t0 = mpi.engine.now
            iters = 10
            for _ in range(iters):
                dup = yield from comm.dup()
                dup.free()
            yield from comm.barrier()
            if comm.rank == 0:
                out.append((mpi.engine.now - t0) / iters)
            if mode == "world":
                yield from mpi.mpi_finalize()
            else:
                comm.free()
                yield from session.finalize()

        procs = world.spawn_ranks(main)
        world.run()
        for p in procs:
            if p.exception:
                raise p.exception
        return out[0]

    series.add("consensus/clean", measure("world", False))
    series.add("consensus/fragmented", measure("world", True))
    series.add("excid/clean", measure("sessions", False))
    series.add("excid/fragmented", measure("sessions", True))
    return res


def ablation_grpcomm(nodes_list: Optional[List[int]] = None, ppn: int = 8) -> BenchResult:
    """PMIx group construct: hierarchical tree vs flat all-to-all exchange."""
    from repro.api import SimSpec, make_world

    nodes_list = nodes_list or [2, 4, 8, 16]
    res = BenchResult(
        exp_id="ablation-grpcomm",
        title="PMIx group-construct wire strategy (warm), by node count",
    )

    def measure(nodes: int, mode: str) -> float:
        machine = jupiter(nodes)
        world = make_world(spec=SimSpec(
            nprocs=nodes * ppn,
            machine=machine,
            ppn=ppn,
            config=MpiConfig.sessions_prototype(),
            grpcomm_mode=mode,
        ))
        out: List[float] = []

        def main(mpi):
            session = yield from mpi.session_init()
            group = yield from session.group_from_pset("mpi://world")
            comm = yield from mpi.comm_create_from_group(group, "warmup")
            yield from comm.barrier()
            t0 = mpi.engine.now
            comm2 = yield from mpi.comm_create_from_group(group, "timed")
            yield from comm2.barrier()
            if comm.rank == 0:
                out.append(mpi.engine.now - t0)
            comm2.free()
            comm.free()
            yield from session.finalize()

        procs = world.spawn_ranks(main)
        world.run()
        for p in procs:
            if p.exception:
                raise p.exception
        return out[0]

    tree = res.series_for("tree (hierarchical)")
    flat = res.series_for("flat all-to-all")
    for nodes in nodes_list:
        tree.add(nodes, measure(nodes, "tree"))
        flat.add(nodes, measure(nodes, "flat"))
    return res


def ablation_eager_limit(
    limits=(256, 4096, 65536), sizes=(64, 4096, 65536, 1048576)
) -> BenchResult:
    """Eager/rendezvous crossover: where does the RTS/CTS handshake pay?

    Small messages suffer when forced through rendezvous (extra round
    trip dominates); large messages are insensitive (bandwidth-bound).
    """
    from repro.bench.osu import osu_bw
    from repro.machine.presets import jupiter

    res = BenchResult(
        exp_id="ablation-eager-limit",
        title="Bandwidth by message size for different eager limits",
    )
    for limit in limits:
        machine = jupiter(1).replace(eager_limit=limit)
        bw = osu_bw("world", sizes=sizes, machine=machine)
        series = res.series_for(f"eager_limit={limit}")
        for size in sizes:
            series.add(size, bw[size])
    res.notes.append("rendezvous (size > limit) pays an extra RTS/CTS round trip")
    return res


def ablation_handshake(pairs: int = 4, sizes=(1, 64, 4096)) -> BenchResult:
    """exCID handshake on vs forced-extended-headers: isolates the
    per-message cost the local-CID switch avoids."""
    from repro.api import SimSpec, make_world

    res = BenchResult(
        exp_id="ablation-handshake",
        title="Message rate: exCID switch vs always-extended headers",
    )

    def measure(always_extended: bool) -> Dict[int, float]:
        config = MpiConfig.sessions_prototype()
        config.excid_always_extended = always_extended
        machine = jupiter(1)
        world = make_world(spec=SimSpec(nprocs=2 * pairs, machine=machine,
                                        ppn=2 * pairs, config=config))
        rates: Dict[int, float] = {}

        def main(mpi):
            session = yield from mpi.session_init()
            group = yield from session.group_from_pset("mpi://world")
            comm = yield from mpi.comm_create_from_group(group, "hs")
            rank = comm.rank
            is_sender = rank < pairs
            peer = rank + pairs if is_sender else rank - pairs
            window, iters = 32, 8
            for size in sizes:
                yield from comm.barrier()
                t0 = mpi.engine.now
                for _ in range(iters):
                    if is_sender:
                        reqs = []
                        for _w in range(window):
                            reqs.append((yield from comm.isend(None, peer, tag=2, nbytes=size)))
                        for req in reqs:
                            yield from req.wait()
                        yield from comm.recv(peer, tag=4)
                    else:
                        reqs = [comm.irecv(source=peer, tag=2) for _w in range(window)]
                        for req in reqs:
                            yield from req.wait()
                        yield from comm.send(None, peer, tag=4, nbytes=4)
                if rank == 0:
                    rates[size] = pairs * iters * window / (mpi.engine.now - t0)
            comm.free()
            yield from session.finalize()

        procs = world.spawn_ranks(main)
        world.run()
        for p in procs:
            if p.exception:
                raise p.exception
        return rates

    normal = measure(False)
    forced = measure(True)
    ratio = res.series_for("forced-extended / normal message rate")
    for size in sizes:
        ratio.add(size, forced[size] / normal[size])
    return res


def entry_points() -> Dict[str, "object"]:
    """Name -> callable for every figure/table/ablation in this module.
    Single source of truth for ``tools/run_figure.py`` and the sweep
    runner."""
    return {
        name: fn
        for name, fn in globals().items()
        if name.startswith(("fig", "table", "ablation_")) and callable(fn)
    }


def run_point(figure: str, **kwargs) -> dict:
    """Sweep-friendly wrapper: run one figure, return its JSON payload.

    Module-level (hence picklable for ``repro.sweep``) and payload-valued
    (hence cacheable); reconstruct with ``BenchResult.from_payload``.
    """
    return entry_points()[figure](**kwargs).to_payload()

"""HPC Challenge bandwidth/latency ring test (paper §IV-D, Fig 6).

As in the paper's modified HPCC 1.5.0, the application initializes MPI
with MPI_Init (World Process Model) and *only* the latency/bandwidth
component (``main_bench_lat_bw``) opens its own MPI Session, creating
the ring communicator with ``MPI_Comm_create_from_group`` — the
compartmentalization demonstration.  The baseline runs the same rings
on MPI_COMM_WORLD under the baseline build.

Measured quantity: 8-byte ring latency, natural order and random
order(s), averaged per hop.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.api import SimSpec, make_world
from repro.machine.presets import jupiter
from repro.ompi.config import MpiConfig

RING_MSG_BYTES = 8


def _ring_pass(comm, order: List[int], iterations: int):
    """Sub-generator: per-hop latency of an 8-byte message circulating
    the ring ``iterations`` times.

    ``order`` is the ring permutation: order[i] passes to
    order[(i+1) % n].  A serial circulation makes the ordering visible:
    a natural-order ring crosses nodes only at node boundaries, while a
    random-order ring pays the inter-node latency on nearly every hop —
    the classic natural-vs-random gap HPCC reports.
    """
    n = len(order)
    pos = order.index(comm.rank)
    right = order[(pos + 1) % n]
    left = order[(pos - 1) % n]
    yield from comm.barrier()
    t0 = comm.runtime.engine.now
    for _ in range(iterations):
        if pos == 0:
            yield from comm.send(None, right, tag=11, nbytes=RING_MSG_BYTES)
            yield from comm.recv(left, tag=11)
        else:
            yield from comm.recv(left, tag=11)
            yield from comm.send(None, right, tag=11, nbytes=RING_MSG_BYTES)
    elapsed = comm.runtime.engine.now - t0
    return elapsed / (n * iterations)


def hpcc_ring_latency(
    nodes: int,
    ppn: int,
    mode: str,
    ordering: str = "natural",
    iterations: int = 12,
    n_random_orders: int = 3,
    machine_factory=jupiter,
    seed: int = 20190923,
) -> float:
    """8-byte ring latency in seconds for one configuration.

    ``mode="world"`` uses the baseline build on MPI_COMM_WORLD;
    ``mode="sessions"`` keeps MPI_Init for the app but runs the ring on
    a sessions-derived communicator (the paper's modification).
    """
    if ordering not in ("natural", "random"):
        raise ValueError(f"unknown ordering {ordering!r}")
    machine = machine_factory(nodes)
    nprocs = nodes * ppn
    config = MpiConfig.sessions_prototype() if mode == "sessions" else MpiConfig.baseline()
    world = make_world(spec=SimSpec(nprocs=nprocs, machine=machine, ppn=ppn,
                                    config=config))
    results: List[float] = []

    orders: List[List[int]] = []
    if ordering == "natural":
        orders.append(list(range(nprocs)))
    else:
        rng = random.Random(seed)
        for _ in range(n_random_orders):
            perm = list(range(nprocs))
            rng.shuffle(perm)
            orders.append(perm)

    def main(mpi):
        # The application proper uses the World Process Model...
        yield from mpi.mpi_init()
        if mode == "sessions":
            # ...and main_bench_lat_bw opens its own session for the ring.
            session = yield from mpi.session_init()
            group = yield from session.group_from_pset("mpi://world")
            comm = yield from mpi.comm_create_from_group(group, "hpcc-latbw")
        else:
            comm = mpi.COMM_WORLD
        for order in orders:
            lat = yield from _ring_pass(comm, order, iterations)
            # The ring's origin rank observes full circulations.
            if comm.rank == order[0]:
                results.append(lat)
        if mode == "sessions":
            comm.free()
            yield from session.finalize()
        yield from mpi.mpi_finalize()

    procs = world.spawn_ranks(main)
    world.run()
    for p in procs:
        if p.exception:
            raise p.exception
    return sum(results) / len(results)

"""Benchmark ports and the per-figure reproduction harness.

``osu`` ports the OSU microbenchmarks the paper modified (osu_init,
osu_latency, osu_mbw_mr); ``hpcc`` ports the HPC Challenge ring
latency test; ``figures`` exposes one entry point per paper table or
figure, each printing the same rows/series the paper reports and
returning structured data the bench suite asserts shapes on.
"""

from repro.bench.harness import BenchResult, Series, format_table
from repro.bench import figures

__all__ = ["BenchResult", "Series", "format_table", "figures"]

"""Fig 5: relative on-node latency, bandwidth and message rate.

Paper shapes:

* 5a — latency under sessions is essentially identical to baseline
  ("a small effect on latency — in some cases showing an improvement");
* 5b — with 2 processes the pre-loop barrier completes the
  exCID→local-CID switch, so bandwidth/message-rate are identical;
* 5c — with 16 processes (8 pairs) the barrier does NOT pre-switch the
  test pairs, so the first window pays the extended-header cost and
  sessions lags at small sizes; adding an MPI_Sendrecv pre-sync makes
  the rates "essentially identical" again.
"""

from repro.bench import figures


def test_fig5a_latency(run_figure, quick):
    res = run_figure(figures.fig5a, quick)
    ratios = res.series["Sessions/MPI_Init latency ratio"]
    for size, ratio in ratios.points:
        assert 0.9 < ratio < 1.1, f"size={size}: latency ratio {ratio}"
    # "in some cases showing an improvement": at least one point <= 1.
    assert any(r <= 1.0 for _s, r in ratios.points)


def test_fig5b_two_procs(run_figure, quick):
    res = run_figure(figures.fig5b, quick)
    for label in res.series:
        for size, ratio in res.series[label].points:
            assert 0.95 < ratio < 1.05, f"{label} size={size}: {ratio}"


def test_fig5c_sixteen_procs(run_figure, quick):
    res = run_figure(figures.fig5c, quick)
    mr = res.series["Sessions/MPI_Init message-rate ratio"]
    small = mr.points[0][1]
    assert small < 0.95, f"small-size rate should show the handshake cost ({small})"
    large = mr.points[-1][1]
    assert 0.95 < large < 1.05, f"large messages amortize the handshake ({large})"


def test_fig5c_presync_identical(run_figure, quick):
    res = run_figure(figures.fig5c, quick, True)
    for label in res.series:
        for size, ratio in res.series[label].points:
            assert 0.95 < ratio < 1.05, f"{label} size={size}: {ratio}"

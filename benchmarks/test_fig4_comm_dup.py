"""Fig 4: MPI_Comm_dup per-iteration time.

Paper shape: the sessions prototype's dup is clearly slower than the
baseline's consensus-algorithm dup, with the overhead "accounted for by
the overhead of acquiring a PMIx group context identifier".
"""

from repro.bench import figures


def test_fig4(run_figure, quick):
    res = run_figure(figures.fig4, quick)
    for x, ratio in res.ratio("Sessions", "MPI_Init"):
        assert ratio > 3.0, f"nodes={x}: sessions dup should be clearly slower ({ratio:.1f}x)"
    # Both curves in a credible range: us-scale baseline, sub-10ms sessions.
    for label, lo, hi in (("MPI_Init", 1e-6, 1e-3), ("Sessions", 1e-5, 1e-2)):
        for _x, y in res.series[label].points:
            assert lo < y < hi, f"{label} dup time {y}"


def test_fig4_consensus_grows_with_scale(benchmark, quick):
    """The consensus allreduce cost grows with the communicator size."""
    from repro.bench.osu import osu_comm_dup

    small = osu_comm_dup(2, 28, "world")
    large = benchmark.pedantic(
        osu_comm_dup, args=(4 if quick else 16, 28, "world"), rounds=1, iterations=1
    )
    assert large > small

"""Shared plumbing for the figure-reproduction benchmark suite.

Every bench runs a complete simulated experiment exactly once per
measurement round (``pedantic`` mode) — re-running a deterministic
simulation many times would only measure the simulator, not change the
reproduced numbers.  The *simulated* results (the paper's quantities)
are attached to ``benchmark.extra_info`` and printed, and each test
asserts the paper's qualitative shape.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-full",
        action="store_true",
        default=False,
        help="run the full paper-scale sweeps instead of the quick ones",
    )


@pytest.fixture
def quick(request) -> bool:
    return not request.config.getoption("--paper-full")


@pytest.fixture
def run_figure(benchmark):
    """Run a figure entry point once under pytest-benchmark and report it."""

    def _run(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
        rendered = result.render()
        print("\n" + rendered)
        benchmark.extra_info["figure"] = result.exp_id
        benchmark.extra_info["rendered"] = rendered
        return result

    return _run

"""Fig 3: MPI initialization time, MPI_Init vs the Sessions sequence.

Paper shape: the sessions approach (MPI_Session_init +
MPI_Group_from_session_pset + MPI_Comm_create_from_group) costs ~20%
more than MPI_Init; at 28 ppn about 30% of the sessions-specific time
is session-handle initialization (the rest is communicator
construction); at 1 ppn the handle initialization dominates.
"""

import pytest

from repro.bench import figures
from repro.bench.osu import osu_init


def test_fig3a(run_figure, quick):
    res = run_figure(figures.fig3a, quick)
    for x, ratio in res.ratio("Sessions", "MPI_Init"):
        assert 1.02 < ratio < 1.6, f"nodes={x}: sessions/init ratio {ratio}"


def test_fig3b(run_figure, quick):
    res = run_figure(figures.fig3b, quick)
    for x, ratio in res.ratio("Sessions", "MPI_Init"):
        assert 1.05 < ratio < 1.6, f"nodes={x}: sessions/init ratio {ratio}"


def test_breakdown_28ppn(benchmark):
    """§IV-C1: ~30% of sessions-specific time is handle init at 28 ppn."""
    timing = benchmark.pedantic(osu_init, args=(4, 28, "sessions"), rounds=1, iterations=1)
    specific = timing.handle + timing.comm_construct
    frac = timing.handle / specific
    assert 0.2 < frac < 0.45, f"handle fraction {frac}"


def test_breakdown_1ppn_handle_dominates(benchmark):
    """§IV-C1: at 1 ppn, startup is dominated by MPI resource init."""
    timing = benchmark.pedantic(osu_init, args=(8, 1, "sessions"), rounds=1, iterations=1)
    specific = timing.handle + timing.comm_construct
    assert timing.handle / specific > 0.6


def test_init_grows_with_scale(benchmark):
    small = osu_init(2, 1, "world").total
    large = benchmark.pedantic(osu_init, args=(16, 1, "world"), rounds=1, iterations=1).total
    assert large > small
